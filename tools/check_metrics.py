#!/usr/bin/env python3
"""Lints a Prometheus text-exposition (0.0.4) scrape.

Validates the /metrics output the telemetry server produces (and that an
external Prometheus would have to parse):

  * every sample's metric family has a # HELP and # TYPE line, emitted
    BEFORE the family's first sample, and exactly once per family
  * metric and label names are legal, label values use only the three
    escapes the format defines (\\, \", \n)
  * histogram families expose _bucket/_sum/_count series; per label-set
    the buckets are cumulative (non-decreasing in le), terminate in an
    le="+Inf" bucket, and the +Inf bucket equals the _count sample
  * counter samples are non-negative

Usage:
  tools/check_metrics.py SCRAPE_FILE [--require=name,name...]
      [--require-label=key]

--require fails unless each named family has at least one sample;
--require-label fails unless at least one sample carries that label
(CI passes --require-label=worker to prove the fleet poll worked).

Exit codes: 0 ok, 1 validation failure, 2 bad invocation/unreadable
input. Stdlib only.
"""

import argparse
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name{labels} value  (labels optional).
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)\s*$")


def fail(msg):
    print("check_metrics: FAIL: %s" % msg, file=sys.stderr)
    return 1


def parse_label_value(raw, lineno):
    """Unescapes a quoted label value; returns None on an illegal escape."""
    out = []
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\":
            if i + 1 >= len(raw) or raw[i + 1] not in ("\\", '"', "n"):
                return None
            out.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
            i += 2
        elif c == '"':
            return None  # unescaped quote inside a value
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_labels(raw, lineno, errors):
    """'a="x",b="y"' -> dict, appending messages to errors on problems."""
    labels = {}
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0:
            errors.append("line %d: malformed label block %r" % (lineno, raw))
            return labels
        name = raw[i:eq]
        if not LABEL_NAME_RE.match(name):
            errors.append("line %d: bad label name %r" % (lineno, name))
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            errors.append("line %d: label value not quoted" % lineno)
            return labels
        # Scan to the closing unescaped quote.
        j = eq + 2
        while j < len(raw):
            if raw[j] == "\\":
                j += 2
                continue
            if raw[j] == '"':
                break
            j += 1
        if j >= len(raw):
            errors.append("line %d: unterminated label value" % lineno)
            return labels
        value = parse_label_value(raw[eq + 2:j], lineno)
        if value is None:
            errors.append("line %d: illegal escape in label value %r"
                          % (lineno, raw[eq + 2:j]))
            value = raw[eq + 2:j]
        labels[name] = value
        i = j + 1
        if i < len(raw) and raw[i] == ",":
            i += 1
    return labels


def family_of(name):
    """Histogram sample names map back to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    parser = argparse.ArgumentParser(
        description="lint a Prometheus 0.0.4 text scrape")
    parser.add_argument("scrape", help="scrape file to validate")
    parser.add_argument("--require", default="",
                        help="comma-separated family names that must have "
                             "samples")
    parser.add_argument("--require-label", default="",
                        help="a label key at least one sample must carry")
    args = parser.parse_args()

    try:
        with open(args.scrape, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print("check_metrics: cannot read %s: %s" % (args.scrape, e),
              file=sys.stderr)
        return 2

    errors = []
    helped = set()
    typed = {}           # family -> declared type
    sampled = set()      # families that have emitted a sample already
    sample_count = 0
    label_keys = set()
    # (family, frozen labels minus 'le') -> list of (le, value, lineno)
    buckets = {}
    counts = {}          # (family, frozen labels) -> _count value
    values_by_family = {}

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append("line %d: HELP line without text" % lineno)
                continue
            name = parts[2]
            if name in helped:
                errors.append("line %d: duplicate HELP for %s"
                              % (lineno, name))
            if name in sampled:
                errors.append("line %d: HELP for %s after its samples"
                              % (lineno, name))
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                errors.append("line %d: malformed TYPE line %r"
                              % (lineno, line))
                continue
            name = parts[2]
            if name in typed:
                errors.append("line %d: duplicate TYPE for %s"
                              % (lineno, name))
            if name in sampled:
                errors.append("line %d: TYPE for %s after its samples"
                              % (lineno, name))
            typed[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append("line %d: unparseable sample %r" % (lineno, line))
            continue
        name, _, raw_labels, raw_value = m.groups()
        if not METRIC_RE.match(name):
            errors.append("line %d: bad metric name %r" % (lineno, name))
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                errors.append("line %d: bad sample value %r"
                              % (lineno, raw_value))
            value = 0.0
        labels = parse_labels(raw_labels, lineno, errors) if raw_labels \
            else {}
        label_keys.update(labels.keys())

        family = family_of(name)
        if family not in typed:
            errors.append("line %d: sample %s has no TYPE line"
                          % (lineno, name))
        if family not in helped:
            errors.append("line %d: sample %s has no HELP line"
                          % (lineno, name))
        sampled.add(family)
        sample_count += 1
        values_by_family.setdefault(family, []).append(value)

        if typed.get(family) == "counter" and value < 0:
            errors.append("line %d: counter %s is negative" % (lineno, name))
        if typed.get(family) == "histogram":
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            key = (family, tuple(sorted(key_labels.items())))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append("line %d: bucket without le label"
                                  % lineno)
                    continue
                le = (float("inf") if labels["le"] == "+Inf"
                      else float(labels["le"]))
                buckets.setdefault(key, []).append((le, value, lineno))
            elif name.endswith("_count"):
                counts[key] = (value, lineno)

    for (family, labelset), series in buckets.items():
        ordered = sorted(series, key=lambda s: s[0])
        prev = None
        for le, value, lineno in ordered:
            if prev is not None and value < prev:
                errors.append(
                    "line %d: %s buckets not cumulative at le=%g"
                    % (lineno, family, le))
            prev = value
        if not ordered or ordered[-1][0] != float("inf"):
            errors.append("histogram %s%s has no le=\"+Inf\" bucket"
                          % (family, dict(labelset)))
        else:
            inf_value = ordered[-1][1]
            if labelset_count := counts.get((family, labelset)):
                if inf_value != labelset_count[0]:
                    errors.append(
                        "histogram %s%s: +Inf bucket %g != _count %g"
                        % (family, dict(labelset), inf_value,
                           labelset_count[0]))
            else:
                errors.append("histogram %s%s has no _count sample"
                              % (family, dict(labelset)))

    for name in filter(None, args.require.split(",")):
        if name not in sampled:
            errors.append("required family %s has no samples" % name)
    if args.require_label and args.require_label not in label_keys:
        errors.append("no sample carries required label %r"
                      % args.require_label)

    if errors:
        for e in errors:
            fail(e)
        return 1
    print("check_metrics: OK: %d samples across %d families (%d histogram "
          "label-sets checked)"
          % (sample_count, len(sampled), len(buckets)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
