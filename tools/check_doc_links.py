#!/usr/bin/env python3
# Copyright 2026 mpqopt authors.
"""Fails on dead relative links in Markdown files.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Checks every inline Markdown link ``[text](target)`` whose target is a
relative path (external ``http(s)://`` / ``mailto:`` links and pure
``#fragment`` anchors are skipped). A target may carry a ``#fragment`` or
point at a directory; the path part must exist relative to the linking
file. Exit status is the number of dead links, so CI fails iff any link
is broken.
"""

import os
import re
import sys

# Inline links only, one per match: [text](target). Reference-style links
# and autolinks are not used in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path):
    dead = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue  # same-file anchor
                if not os.path.exists(os.path.join(base, file_part)):
                    dead.append((line_no, target))
    return dead


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = 0
    for path in argv[1:]:
        for line_no, target in check_file(path):
            print(f"{path}:{line_no}: dead link -> {target}")
            total += 1
    if total == 0:
        print(f"checked {len(argv) - 1} file(s): all relative links resolve")
    return min(total, 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
