#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by --trace-out=.

The exporters (obs::TraceCollector::WriteChromeTrace, used by mpqopt_cli
and macrobench) emit one flat JSON array of complete ("ph": "X") events;
chrome://tracing and Perfetto load it directly. CI runs this after the
macro smoke so a malformed export — or a silent loss of the worker-side
spans the kTracedTask envelope ships home — fails the build instead of
shipping an unloadable artifact.

Checks, in order:
  1. the file parses as one JSON array with at least one event;
  2. every event has the complete-event shape: name/ph/pid/tid/ts/dur
     with ph == "X", numeric non-negative ts/dur, and a numeric tid
     (the trace id) plus an args.trace_id matching it;
  3. with --expect-spans=a,b,...: each named span appears in at least
     one event;
  4. with --expect-worker-spans: at least one worker.serve event exists
     AND shares its tid with a master-side service.optimize event —
     i.e. the trace id genuinely joined the two sides of the RPC.

Exit codes: 0 valid, 1 validation failure, 2 usage/input error.
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid", "ts", "dur")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(
        description="Validate a --trace-out= Chrome trace-event JSON file."
    )
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument(
        "--expect-spans",
        default="",
        metavar="CSV",
        help="comma-separated span names that must each appear at least once",
    )
    parser.add_argument(
        "--expect-worker-spans",
        action="store_true",
        help="require worker.serve events sharing a trace id (tid) with "
        "master-side service.optimize events",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_trace: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    if not isinstance(events, list):
        return fail("top-level JSON value is not an array")
    if not events:
        return fail("trace contains no events")

    names = set()
    tids_by_name = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"event {i} is not an object")
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            return fail(f"event {i} is missing keys: {', '.join(missing)}")
        if event["ph"] != "X":
            return fail(f"event {i}: ph is {event['ph']!r}, expected 'X'")
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or value < 0:
                return fail(f"event {i}: {key} is not a non-negative number")
        if not isinstance(event["tid"], int):
            return fail(f"event {i}: tid (the trace id) is not an integer")
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id != event["tid"]:
            return fail(
                f"event {i}: args.trace_id ({trace_id!r}) does not match "
                f"tid ({event['tid']!r})"
            )
        names.add(event["name"])
        tids_by_name.setdefault(event["name"], set()).add(event["tid"])

    for wanted in [s for s in args.expect_spans.split(",") if s]:
        if wanted not in names:
            return fail(f"expected span {wanted!r} appears in no event")

    if args.expect_worker_spans:
        worker_tids = tids_by_name.get("worker.serve", set())
        master_tids = tids_by_name.get("service.optimize", set())
        if not worker_tids:
            return fail("no worker.serve events — worker-side spans lost")
        joined = worker_tids & master_tids
        if not joined:
            return fail(
                "worker.serve and service.optimize events never share a "
                "trace id — the wire propagation is broken"
            )

    print(
        f"check_trace: OK: {len(events)} events, {len(names)} distinct "
        f"spans across {len({e['tid'] for e in events})} traces"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
