// Copyright 2026 mpqopt authors.
//
// mpqopt_cli — command-line front end to the optimizer library.
//
// Generates a Steinbrunn benchmark query (or a fixed-seed one) and runs
// the requested optimizer variant, printing the plan(s), cost(s), and
// cluster statistics. Intended for quick exploration and scripting:
//
//   mpqopt_cli --tables=16 --shape=star --workers=64 --space=linear
//   mpqopt_cli --tables=12 --objective=mo --alpha=2 --workers=16
//   mpqopt_cli --tables=10 --variant=pqo --parametric-table=0
//   mpqopt_cli --tables=10 --variant=io --space=bushy
//   mpqopt_cli --tables=12 --workers=16 --backend=async --concurrent-queries=8
//   mpqopt_cli --tables=12 --backend=rpc --workers-addr=127.0.0.1:7001
//   mpqopt_cli --tables=12 --concurrent-queries=32 --unique-queries=4
//       --plan-cache --plan-cache-mb=16   (one line)
//
// The usage text is generated from kFlagDocs below — new flags document
// themselves by adding a row, and the accepted --backend= values come
// from the backend name table (BackendKindList), so --help can never
// drift from the real option surface.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/percentile.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "optimizer/pqo.h"
#include "plan/plan.h"
#include "service/optimizer_service.h"
#include "sma/sma.h"

namespace mpqopt {
namespace {

struct CliOptions {
  int tables = 10;
  JoinGraphShape shape = JoinGraphShape::kStar;
  PlanSpace space = PlanSpace::kLinear;
  uint64_t workers = 1;
  uint64_t seed = 42;
  Objective objective = Objective::kTime;
  double alpha = 10.0;
  std::string variant = "dp";
  int parametric_table = 0;
  BackendKind backend = BackendKind::kThread;
  std::string workers_addr;
  int worker_retries = 2;
  int worker_backoff_ms = 50;
  int concurrent_queries = 0;
  int unique_queries = 0;  // 0 = every query distinct
  bool plan_cache = false;
  int plan_cache_mb = 64;
  double plan_cache_ttl = 0;
  bool admission = false;
  double tenant_rate = 0;
  double tenant_burst = 1;
  Priority priority = Priority::kInteractive;
  int queue_depth = 64;
  bool coalesce = false;
  std::string trace_out;
  double slow_query_ms = 0;
  int telemetry_port = -1;  // -1 = no telemetry server
  int stall_watchdog_ms = 0;
  bool statz = false;
  /// True once any serving-only flag (--plan-cache*, --unique-queries)
  /// was given, so Main can reject them outside serving mode instead of
  /// silently ignoring them.
  bool serving_flags_used = false;
  bool help = false;
};

/// One row of the option surface: flag name, value placeholder shown in
/// --help (null for valueless flags), and help text. This table is the
/// single authority for the usage message.
struct FlagDoc {
  const char* name;
  const char* value;  // placeholder, or nullptr for boolean flags
  const char* help;
};

const FlagDoc kFlagDocs[] = {
    {"--tables", "N", "number of tables joined by each query"},
    {"--shape", "chain|star|cycle|clique", "join graph shape"},
    {"--space", "linear|bushy", "plan space"},
    {"--workers", "M", "plan-space partitions (power of two)"},
    {"--seed", "S", "workload generator seed"},
    {"--objective", "time|mo", "single- or multi-objective optimization"},
    {"--alpha", "A", "multi-objective approximation factor"},
    {"--variant", "dp|io|pqo|sma",
     "optimizer variant (sma = the per-level broadcast baseline, "
     "distributed through stateful worker sessions)"},
    {"--parametric-table", "T", "parametric table for --variant=pqo"},
    {"--backend", nullptr /* filled from BackendKindList() */,
     "worker-execution runtime"},
    {"--workers-addr", "HOST:PORT[,HOST:PORT...]",
     "rpc worker endpoints (required for --backend=rpc)"},
    {"--worker-retries", "N",
     "rpc: redials per worker failure before it is marked dead "
     "(default 2; 0 = dead on first failure)"},
    {"--worker-backoff-ms", "MS",
     "rpc: initial redial backoff, doubling per failure (default 50)"},
    {"--concurrent-queries", "Q",
     "serving mode: optimize Q queries concurrently via OptimizerService"},
    {"--unique-queries", "U",
     "serving mode: draw the Q queries from U distinct shapes "
     "(repeated-workload axis; 0 = all distinct)"},
    {"--plan-cache", nullptr,
     "serving mode: memoize plans by query fingerprint"},
    {"--plan-cache-mb", "MB", "plan cache byte budget (default 64)"},
    {"--plan-cache-ttl", "SECONDS",
     "plan cache entry lifetime (0 = never expires)"},
    {"--admission", nullptr,
     "serving mode: admission control in front of the backend "
     "(quota + bounded priority queue)"},
    {"--tenant-rate", "R",
     "admission: per-tenant sustained admissions/second "
     "(default 0 = unlimited)"},
    {"--tenant-burst", "B",
     "admission: per-tenant burst credit (bucket capacity, default 1)"},
    {"--priority", nullptr /* filled from PriorityList() */,
     "admission: priority class the queries run as (default interactive)"},
    {"--queue-depth", "N",
     "admission: per-class queue depth; arrivals past it are shed "
     "(default 64)"},
    {"--coalesce", nullptr,
     "rpc: coalesce per-partition scatter requests into one batch frame "
     "per worker"},
    {"--trace-out", "PATH",
     "serving mode: write per-query span traces as Chrome trace-event "
     "JSON (load in chrome://tracing or Perfetto)"},
    {"--slow-query-ms", "MS",
     "serving mode: print a span breakdown to stderr for any query "
     "slower than MS milliseconds (0 = off)"},
    {"--telemetry-port", "PORT",
     "serving mode: serve /metrics (Prometheus, fleet-wide), /healthz, "
     "/readyz, /statz and /debug/flightrecorder over HTTP on "
     "127.0.0.1:PORT (0 picks an ephemeral port)"},
    {"--stall-watchdog-ms", "MS",
     "flag any rpc round in flight longer than MS milliseconds into the "
     "flight recorder and obs.stalls_total (0 = off)"},
    {"--statz", nullptr,
     "dump the metrics registry (counters/gauges/histograms) on exit"},
    {"--processes", nullptr, "alias for --backend=process"},
    {"--help", nullptr, "print this message"},
};

void PrintUsage(FILE* out, const char* argv0) {
  std::fprintf(out, "usage: %s [flags]\n", argv0);
  const std::string backends = BackendKindList();
  const std::string priorities = PriorityList();
  for (const FlagDoc& doc : kFlagDocs) {
    const char* value = doc.value;
    if (value == nullptr && std::strcmp(doc.name, "--backend") == 0) {
      value = backends.c_str();
    }
    if (value == nullptr && std::strcmp(doc.name, "--priority") == 0) {
      value = priorities.c_str();
    }
    std::string flag = doc.name;
    if (value != nullptr) {
      flag += "=";
      flag += value;
    }
    std::fprintf(out, "  %-42s %s\n", flag.c_str(), doc.help);
  }
  std::fprintf(out,
               "--backend=rpc dispatches worker tasks to mpqopt_worker "
               "server\nprocesses at the --workers-addr endpoints.\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--tables", &v)) {
      opts->tables = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--shape", &v)) {
      if (v == "chain") {
        opts->shape = JoinGraphShape::kChain;
      } else if (v == "star") {
        opts->shape = JoinGraphShape::kStar;
      } else if (v == "cycle") {
        opts->shape = JoinGraphShape::kCycle;
      } else if (v == "clique") {
        opts->shape = JoinGraphShape::kClique;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--space", &v)) {
      if (v == "linear") {
        opts->space = PlanSpace::kLinear;
      } else if (v == "bushy") {
        opts->space = PlanSpace::kBushy;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      char* end = nullptr;
      opts->workers = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') {
        std::fprintf(stderr, "invalid --workers value: %s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opts->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--objective", &v)) {
      if (v == "time") {
        opts->objective = Objective::kTime;
      } else if (v == "mo") {
        opts->objective = Objective::kTimeAndBuffer;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--alpha", &v)) {
      opts->alpha = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--variant", &v)) {
      opts->variant = v;
    } else if (ParseFlag(argv[i], "--parametric-table", &v)) {
      opts->parametric_table = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--backend", &v)) {
      StatusOr<BackendKind> kind = ParseBackendKind(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return false;
      }
      opts->backend = kind.value();
    } else if (ParseFlag(argv[i], "--workers-addr", &v)) {
      opts->workers_addr = v;
    } else if (ParseFlag(argv[i], "--worker-retries", &v)) {
      opts->worker_retries = std::atoi(v.c_str());
      if (opts->worker_retries < 0) {
        std::fprintf(stderr, "--worker-retries must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--worker-backoff-ms", &v)) {
      opts->worker_backoff_ms = std::atoi(v.c_str());
      if (opts->worker_backoff_ms < 0) {
        std::fprintf(stderr, "--worker-backoff-ms must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--concurrent-queries", &v)) {
      opts->concurrent_queries = std::atoi(v.c_str());
      if (opts->concurrent_queries < 1) {
        std::fprintf(stderr, "--concurrent-queries must be >= 1\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--unique-queries", &v)) {
      opts->unique_queries = std::atoi(v.c_str());
      opts->serving_flags_used = true;
      if (opts->unique_queries < 0) {
        std::fprintf(stderr, "--unique-queries must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--plan-cache-mb", &v)) {
      opts->plan_cache_mb = std::atoi(v.c_str());
      opts->serving_flags_used = true;
      if (opts->plan_cache_mb < 1) {
        std::fprintf(stderr, "--plan-cache-mb must be >= 1\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--plan-cache-ttl", &v)) {
      opts->plan_cache_ttl = std::atof(v.c_str());
      opts->serving_flags_used = true;
    } else if (ParseFlag(argv[i], "--plan-cache", &v)) {
      opts->plan_cache = true;
      opts->serving_flags_used = true;
    } else if (ParseFlag(argv[i], "--admission", &v)) {
      opts->admission = true;
      opts->serving_flags_used = true;
    } else if (ParseFlag(argv[i], "--tenant-rate", &v)) {
      opts->tenant_rate = std::atof(v.c_str());
      opts->serving_flags_used = true;
      if (opts->tenant_rate < 0) {
        std::fprintf(stderr, "--tenant-rate must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--tenant-burst", &v)) {
      opts->tenant_burst = std::atof(v.c_str());
      opts->serving_flags_used = true;
      if (opts->tenant_burst < 1) {
        std::fprintf(stderr, "--tenant-burst must be >= 1\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--priority", &v)) {
      StatusOr<Priority> priority = ParsePriority(v);
      opts->serving_flags_used = true;
      if (!priority.ok()) {
        std::fprintf(stderr, "%s\n", priority.status().ToString().c_str());
        return false;
      }
      opts->priority = priority.value();
    } else if (ParseFlag(argv[i], "--queue-depth", &v)) {
      opts->queue_depth = std::atoi(v.c_str());
      opts->serving_flags_used = true;
      if (opts->queue_depth < 0) {
        std::fprintf(stderr, "--queue-depth must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--coalesce", &v)) {
      opts->coalesce = true;
    } else if (ParseFlag(argv[i], "--trace-out", &v)) {
      opts->trace_out = v;
      opts->serving_flags_used = true;
      if (opts->trace_out.empty()) {
        std::fprintf(stderr, "--trace-out needs a path\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--slow-query-ms", &v)) {
      opts->slow_query_ms = std::atof(v.c_str());
      opts->serving_flags_used = true;
      if (opts->slow_query_ms < 0) {
        std::fprintf(stderr, "--slow-query-ms must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--telemetry-port", &v)) {
      opts->telemetry_port = std::atoi(v.c_str());
      opts->serving_flags_used = true;
      if (v.empty() || opts->telemetry_port < 0 ||
          opts->telemetry_port > 65535) {
        std::fprintf(stderr, "invalid --telemetry-port value: %s\n",
                     v.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--stall-watchdog-ms", &v)) {
      opts->stall_watchdog_ms = std::atoi(v.c_str());
      if (opts->stall_watchdog_ms < 0) {
        std::fprintf(stderr, "--stall-watchdog-ms must be >= 0\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--statz", &v)) {
      opts->statz = true;
    } else if (ParseFlag(argv[i], "--processes", &v)) {
      // Back-compat alias for --backend=process.
      opts->backend = BackendKind::kProcess;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      opts->help = true;
      return true;  // help wins over everything else on the line
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int RunPqo(const Query& query, const CliOptions& cli) {
  PqoConfig config;
  config.space = cli.space;
  config.parametric_table = cli.parametric_table;
  const uint64_t m =
      UsableWorkers(query.num_tables(), cli.space, cli.workers);
  StatusOr<PqoResult> result = ParallelParametricOptimize(query, m, config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("parametric optimal set over theta in [0,1] (%llu partitions):\n",
              static_cast<unsigned long long>(m));
  for (const PqoPlan& plan : result.value().plans) {
    std::printf("  [%.3f, %.3f)  cost = %.4g + %.4g*theta\n    %s\n",
                plan.theta_begin, plan.theta_end, plan.cost.constant,
                plan.cost.slope,
                PlanToString(result.value().arena, plan.plan).c_str());
  }
  return 0;
}

MpqOptions BuildMpqOptions(const CliOptions& cli) {
  MpqOptions opts;
  opts.space = cli.space;
  opts.objective = cli.objective;
  opts.alpha = cli.alpha;
  opts.interesting_orders = cli.variant == "io";
  opts.num_workers = cli.workers;
  return opts;
}

/// Builds the selected execution backend; for --backend=rpc this connects
/// to the --workers-addr endpoints and can fail.
StatusOr<std::shared_ptr<ExecutionBackend>> BuildBackend(
    const CliOptions& cli, const MpqOptions& opts) {
  BackendOptions backend_opts;
  backend_opts.network = opts.network;
  backend_opts.max_threads = opts.max_threads;
  backend_opts.workers_addr = cli.workers_addr;
  backend_opts.worker_retries = cli.worker_retries;
  backend_opts.worker_backoff_ms = cli.worker_backoff_ms;
  backend_opts.coalesce_scatter = cli.coalesce;
  return MakeBackend(cli.backend, backend_opts);
}

/// Prints the session-counters report line when any session activity
/// happened — zero-noise for the stateless variants. The single
/// formatter for both the single-query (BackendHealth) and serving
/// (ServiceStats) reports, so the two cannot drift.
void PrintSessionCounters(const SessionCounterSnapshot& sessions) {
  if (sessions.sessions_opened == 0 && sessions.sessions_failed == 0) return;
  std::printf("sessions           %llu opened, %llu rounds, %llu replicas "
              "recovered, %llu failed\n",
              static_cast<unsigned long long>(sessions.sessions_opened),
              static_cast<unsigned long long>(sessions.session_rounds),
              static_cast<unsigned long long>(sessions.sessions_recovered),
              static_cast<unsigned long long>(sessions.sessions_failed));
}

/// Serving mode: Q concurrently optimized queries multiplexed onto one
/// shared backend through the OptimizerService. With --unique-queries=U,
/// the Q queries cycle through U distinct shapes — the repeated-workload
/// axis the plan cache (--plan-cache) serves from memory.
int RunService(QueryGenerator* generator, const CliOptions& cli) {
  const int unique =
      cli.unique_queries > 0
          ? std::min(cli.unique_queries, cli.concurrent_queries)
          : cli.concurrent_queries;
  std::vector<Query> distinct;
  distinct.reserve(static_cast<size_t>(unique));
  for (int i = 0; i < unique; ++i) {
    distinct.push_back(generator->Generate(cli.tables));
  }
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(cli.concurrent_queries));
  for (int i = 0; i < cli.concurrent_queries; ++i) {
    queries.push_back(distinct[static_cast<size_t>(i) % distinct.size()]);
  }
  const MpqOptions opts = BuildMpqOptions(cli);
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      BuildBackend(cli, opts);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  // The telemetry server shares the service's backend so /healthz and
  // fleet /metrics see the same supervised workers the queries run on.
  std::shared_ptr<ExecutionBackend> shared_backend = backend.value();
  ServiceOptions service_opts;
  service_opts.backend = std::move(backend).value();
  service_opts.enable_plan_cache = cli.plan_cache;
  service_opts.plan_cache_bytes =
      static_cast<size_t>(cli.plan_cache_mb) << 20;
  service_opts.plan_cache_ttl_seconds = cli.plan_cache_ttl;
  service_opts.enable_admission = cli.admission;
  service_opts.admission.tenant_rate = cli.tenant_rate;
  service_opts.admission.tenant_burst = cli.tenant_burst;
  service_opts.admission.queue_depth = cli.queue_depth;
  obs::TraceCollectorOptions trace_opts;
  trace_opts.chrome_out_path = cli.trace_out;
  trace_opts.slow_query_ms = cli.slow_query_ms;
  obs::TraceCollector collector(trace_opts);
  const bool tracing = !cli.trace_out.empty() || cli.slow_query_ms > 0;
  if (tracing) service_opts.trace_collector = &collector;
  OptimizerService service(service_opts);
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (cli.telemetry_port >= 0) {
    obs::TelemetryOptions topts;
    topts.port = cli.telemetry_port;
    topts.backend = shared_backend;
    StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
        obs::TelemetryServer::Start(std::move(topts));
    if (!server.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    telemetry = std::move(server).value();
    std::printf("telemetry          http://127.0.0.1:%d/metrics\n",
                telemetry->port());
    std::fflush(stdout);
  }
  RequestContext ctx;
  ctx.priority = cli.priority;
  const BatchReport report = service.OptimizeBatch(queries, opts, ctx);

  std::printf("service backend    %s\n", service.backend().name());
  for (size_t i = 0; i < report.results.size(); ++i) {
    const StatusOr<MpqResult>& r = report.results[i];
    if (!r.ok()) {
      std::printf("query %-3zu          error: %s\n", i,
                  r.status().ToString().c_str());
      continue;
    }
    std::printf(
        "query %-3zu          cost %.6g, cluster %.2f ms, latency %.2f ms%s\n",
        i, r.value().arena.node(r.value().best[0]).cost.time(),
        r.value().simulated_seconds * 1e3, report.latency_seconds[i] * 1e3,
        r.value().from_plan_cache ? " (cached)" : "");
  }
  std::printf("batch wall         %.2f ms\n", report.wall_seconds * 1e3);
  std::printf("throughput         %.1f queries/s\n",
              report.queries_per_second);
  {
    std::vector<double> latencies_ms;
    latencies_ms.reserve(report.latency_seconds.size());
    for (const double s : report.latency_seconds) {
      latencies_ms.push_back(s * 1e3);
    }
    std::printf("latency            p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
                obs::Percentile(latencies_ms, 50),
                obs::Percentile(latencies_ms, 95),
                obs::Percentile(latencies_ms, 99));
  }
  const ServiceStats stats = service.stats();
  std::printf("completed/failed   %llu / %llu\n",
              static_cast<unsigned long long>(stats.queries_completed),
              static_cast<unsigned long long>(stats.queries_failed));
  SessionCounterSnapshot sessions;
  sessions.sessions_opened = stats.sessions_opened;
  sessions.session_rounds = stats.session_rounds;
  sessions.sessions_recovered = stats.sessions_recovered;
  sessions.sessions_failed = stats.sessions_failed;
  PrintSessionCounters(sessions);
  if (cli.admission) {
    std::printf("admission          %llu admitted (as %s), %llu over quota, "
                "%llu shed at full queue, %llu timed out\n",
                static_cast<unsigned long long>(stats.admitted),
                PriorityName(cli.priority),
                static_cast<unsigned long long>(stats.rejected_quota),
                static_cast<unsigned long long>(stats.rejected_queue),
                static_cast<unsigned long long>(stats.admission_timed_out));
  }
  if (stats.scatter_batches > 0) {
    std::printf("scatter coalescing %llu task requests rode %llu batch "
                "frames\n",
                static_cast<unsigned long long>(stats.tasks_coalesced),
                static_cast<unsigned long long>(stats.scatter_batches));
  }
  if (cli.plan_cache) {
    std::printf("plan cache         %llu hits / %llu misses / %llu evictions"
                " (capacity %llu / ttl %llu / invalidated %llu)\n",
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(stats.cache_evictions),
                static_cast<unsigned long long>(stats.cache_evictions_capacity),
                static_cast<unsigned long long>(stats.cache_evictions_ttl),
                static_cast<unsigned long long>(
                    stats.cache_evictions_invalidated));
  }
  if (!stats.workers.empty()) {
    size_t healthy = 0, suspect = 0, dead = 0;
    for (const WorkerHealthSnapshot& w : stats.workers) {
      healthy += w.health == WorkerHealth::kHealthy;
      suspect += w.health == WorkerHealth::kSuspect;
      dead += w.health == WorkerHealth::kDead;
    }
    std::printf("worker health      %zu healthy / %zu suspect / %zu dead; "
                "%llu/%llu reconnects; %llu tasks re-scattered in %llu "
                "rounds\n",
                healthy, suspect, dead,
                static_cast<unsigned long long>(stats.worker_reconnects),
                static_cast<unsigned long long>(
                    stats.worker_reconnect_attempts),
                static_cast<unsigned long long>(stats.tasks_rescattered),
                static_cast<unsigned long long>(stats.rounds_recovered));
    for (const WorkerHealthSnapshot& w : stats.workers) {
      std::printf("  %-18s %s (%llu reconnects, %llu io failures%s%s)\n",
                  w.endpoint.c_str(), WorkerHealthName(w.health),
                  static_cast<unsigned long long>(w.reconnects),
                  static_cast<unsigned long long>(w.io_failures),
                  w.last_error.empty() ? "" : "; last: ",
                  w.last_error.c_str());
    }
  }
  if (!cli.trace_out.empty()) {
    const Status written = collector.WriteChromeTrace();
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace              %zu query traces -> %s "
                "(chrome://tracing)\n",
                collector.collected(), cli.trace_out.c_str());
  }
  return stats.queries_failed == 0 ? 0 : 1;
}

/// --variant=sma: the per-level broadcast baseline. Runs through the
/// session protocol, so every backend — including rpc — hosts the
/// per-node memo replicas.
int RunSma(const Query& query, const CliOptions& cli) {
  const MpqOptions backend_opts_source = BuildMpqOptions(cli);
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      BuildBackend(cli, backend_opts_source);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  SmaOptions opts;
  opts.space = cli.space;
  opts.objective = cli.objective;
  opts.alpha = cli.alpha;
  opts.num_workers = cli.workers;
  opts.backend = std::move(backend).value();
  StatusOr<SmaResult> result = SmaOptimize(query, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const SmaResult& r = result.value();
  std::printf("workers            %llu (backend: %s, variant: sma)\n",
              static_cast<unsigned long long>(opts.num_workers),
              BackendKindName(cli.backend));
  std::printf("cluster time       %.2f ms (W-time %.2f ms)\n",
              r.simulated_seconds * 1e3, r.max_worker_seconds * 1e3);
  std::printf("memo relations     %lld per worker (full replica)\n",
              static_cast<long long>(r.max_worker_memo_sets));
  std::printf("rounds             %d (one per level)\n", r.rounds);
  std::printf("network            %llu bytes in %llu messages\n",
              static_cast<unsigned long long>(r.network_bytes),
              static_cast<unsigned long long>(r.network_messages));
  PrintSessionCounters(opts.backend->health().sessions);
  if (cli.objective == Objective::kTime) {
    std::printf("best plan          %s\n",
                PlanToString(r.arena, r.best[0]).c_str());
    std::printf("estimated cost     %.6g work units\n",
                r.arena.node(r.best[0]).cost.time());
  } else {
    std::printf("Pareto frontier    %zu plans (alpha = %g)\n", r.best.size(),
                cli.alpha);
    for (PlanId id : r.best) {
      std::printf("  time %.6g  buffer %.6g\n", r.arena.node(id).cost[0],
                  r.arena.node(id).cost[1]);
    }
  }
  return 0;
}

int RunMpq(const Query& query, const CliOptions& cli) {
  MpqOptions opts = BuildMpqOptions(cli);
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      BuildBackend(cli, opts);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  opts.backend = std::move(backend).value();
  if (opts.interesting_orders && opts.objective != Objective::kTime) {
    std::fprintf(stderr, "interesting orders require --objective=time\n");
    return 1;
  }
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(query);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const MpqResult& r = result.value();
  std::printf("workers            %llu (backend: %s)\n",
              static_cast<unsigned long long>(opts.num_workers),
              BackendKindName(cli.backend));
  std::printf("cluster time       %.2f ms (W-time %.2f ms)\n",
              r.simulated_seconds * 1e3, r.max_worker_seconds * 1e3);
  std::printf("memo relations     %lld per worker (max)\n",
              static_cast<long long>(r.max_worker_memo_sets));
  std::printf("network            %llu bytes in %llu messages\n",
              static_cast<unsigned long long>(r.network_bytes),
              static_cast<unsigned long long>(r.network_messages));
  if (opts.objective == Objective::kTime) {
    std::printf("best plan          %s\n",
                PlanToString(r.arena, r.best[0]).c_str());
    std::printf("estimated cost     %.6g work units\n",
                r.arena.node(r.best[0]).cost.time());
  } else {
    std::printf("Pareto frontier    %zu plans (alpha = %g)\n", r.best.size(),
                cli.alpha);
    for (PlanId id : r.best) {
      std::printf("  time %.6g  buffer %.6g\n", r.arena.node(id).cost[0],
                  r.arena.node(id).cost[1]);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  if (cli.help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  // Reject unusable worker counts up front instead of silently rounding:
  // MPQ requires a power of two not exceeding the maximal parallelism of
  // the query (the pqo variant rounds internally and is exempt, and SMA
  // deals its level chunks round-robin to ANY m >= 1).
  if (cli.variant != "pqo" && cli.variant != "sma") {
    const Status workers_ok =
        ValidateNumWorkers(cli.workers, cli.tables, cli.space);
    if (!workers_ok.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   workers_ok.ToString().c_str());
      return 2;
    }
  }
  // SIGUSR1 dumps the flight recorder; a fatal MPQOPT_CHECK failure
  // dumps it automatically on the way down.
  obs::InstallFlightRecorderSignalDump();
  obs::InstallFlightRecorderFatalDump();
  if (cli.stall_watchdog_ms > 0) {
    obs::StallWatchdog::Global().Configure(cli.stall_watchdog_ms);
  }
  GeneratorOptions gen_opts;
  gen_opts.shape = cli.shape;
  QueryGenerator generator(gen_opts, cli.seed);
  const bool serving_mode = cli.concurrent_queries > 0 &&
                            cli.variant != "pqo" && cli.variant != "sma";
  if (cli.serving_flags_used && !serving_mode) {
    // Reject rather than silently ignore: a user benchmarking the plan
    // cache must not believe it was active when it never existed.
    std::fprintf(stderr,
                 "error: --plan-cache/--plan-cache-mb/--plan-cache-ttl/"
                 "--unique-queries/--admission/--tenant-rate/--tenant-burst/"
                 "--priority/--queue-depth/--telemetry-port require serving "
                 "mode (--concurrent-queries>=1, not --variant=pqo)\n");
    return 2;
  }
  // --statz dumps the process-global metrics registry on the way out,
  // whatever mode ran (round-time histograms fill in every mode; the
  // service/admission ones only in serving mode).
  int rc;
  if (serving_mode) {
    rc = RunService(&generator, cli);
  } else {
    const Query query = generator.Generate(cli.tables);
    std::printf("%s", query.ToString().c_str());
    std::printf("plan space         %s\n", PlanSpaceName(cli.space));
    if (cli.variant == "pqo") {
      rc = RunPqo(query, cli);
    } else if (cli.variant == "sma") {
      rc = RunSma(query, cli);
    } else {
      rc = RunMpq(query, cli);
    }
  }
  if (cli.statz) {
    std::printf("--- statz ---\n%s",
                obs::MetricsRegistry::Global().StatzDump().c_str());
  }
  return rc;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) { return mpqopt::Main(argc, argv); }
