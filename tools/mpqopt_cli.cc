// Copyright 2026 mpqopt authors.
//
// mpqopt_cli — command-line front end to the optimizer library.
//
// Generates a Steinbrunn benchmark query (or a fixed-seed one) and runs
// the requested optimizer variant, printing the plan(s), cost(s), and
// cluster statistics. Intended for quick exploration and scripting:
//
//   mpqopt_cli --tables=16 --shape=star --workers=64 --space=linear
//   mpqopt_cli --tables=12 --objective=mo --alpha=2 --workers=16
//   mpqopt_cli --tables=10 --variant=pqo --parametric-table=0
//   mpqopt_cli --tables=10 --variant=io --space=bushy
//   mpqopt_cli --tables=12 --workers=16 --backend=async --concurrent-queries=8
//   mpqopt_cli --tables=12 --backend=rpc --workers-addr=127.0.0.1:7001
//
// Flags (all optional): --tables=N --shape=chain|star|cycle|clique
// --space=linear|bushy --workers=M --seed=S --objective=time|mo
// --alpha=A --variant=dp|io|pqo --parametric-table=T
// --backend=thread|process|async|rpc --workers-addr=H:P[,H:P...]
// --concurrent-queries=Q --processes

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "optimizer/pqo.h"
#include "plan/plan.h"
#include "service/optimizer_service.h"

namespace mpqopt {
namespace {

struct CliOptions {
  int tables = 10;
  JoinGraphShape shape = JoinGraphShape::kStar;
  PlanSpace space = PlanSpace::kLinear;
  uint64_t workers = 1;
  uint64_t seed = 42;
  Objective objective = Objective::kTime;
  double alpha = 10.0;
  std::string variant = "dp";
  int parametric_table = 0;
  BackendKind backend = BackendKind::kThread;
  std::string workers_addr;
  int concurrent_queries = 0;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--tables", &v)) {
      opts->tables = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--shape", &v)) {
      if (v == "chain") {
        opts->shape = JoinGraphShape::kChain;
      } else if (v == "star") {
        opts->shape = JoinGraphShape::kStar;
      } else if (v == "cycle") {
        opts->shape = JoinGraphShape::kCycle;
      } else if (v == "clique") {
        opts->shape = JoinGraphShape::kClique;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--space", &v)) {
      if (v == "linear") {
        opts->space = PlanSpace::kLinear;
      } else if (v == "bushy") {
        opts->space = PlanSpace::kBushy;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      char* end = nullptr;
      opts->workers = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') {
        std::fprintf(stderr, "invalid --workers value: %s\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      opts->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--objective", &v)) {
      if (v == "time") {
        opts->objective = Objective::kTime;
      } else if (v == "mo") {
        opts->objective = Objective::kTimeAndBuffer;
      } else {
        return false;
      }
    } else if (ParseFlag(argv[i], "--alpha", &v)) {
      opts->alpha = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--variant", &v)) {
      opts->variant = v;
    } else if (ParseFlag(argv[i], "--parametric-table", &v)) {
      opts->parametric_table = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--backend", &v)) {
      StatusOr<BackendKind> kind = ParseBackendKind(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return false;
      }
      opts->backend = kind.value();
    } else if (ParseFlag(argv[i], "--workers-addr", &v)) {
      opts->workers_addr = v;
    } else if (ParseFlag(argv[i], "--concurrent-queries", &v)) {
      opts->concurrent_queries = std::atoi(v.c_str());
      if (opts->concurrent_queries < 1) {
        std::fprintf(stderr, "--concurrent-queries must be >= 1\n");
        return false;
      }
    } else if (ParseFlag(argv[i], "--processes", &v)) {
      // Back-compat alias for --backend=process.
      opts->backend = BackendKind::kProcess;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int RunPqo(const Query& query, const CliOptions& cli) {
  PqoConfig config;
  config.space = cli.space;
  config.parametric_table = cli.parametric_table;
  const uint64_t m =
      UsableWorkers(query.num_tables(), cli.space, cli.workers);
  StatusOr<PqoResult> result = ParallelParametricOptimize(query, m, config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("parametric optimal set over theta in [0,1] (%llu partitions):\n",
              static_cast<unsigned long long>(m));
  for (const PqoPlan& plan : result.value().plans) {
    std::printf("  [%.3f, %.3f)  cost = %.4g + %.4g*theta\n    %s\n",
                plan.theta_begin, plan.theta_end, plan.cost.constant,
                plan.cost.slope,
                PlanToString(result.value().arena, plan.plan).c_str());
  }
  return 0;
}

MpqOptions BuildMpqOptions(const CliOptions& cli) {
  MpqOptions opts;
  opts.space = cli.space;
  opts.objective = cli.objective;
  opts.alpha = cli.alpha;
  opts.interesting_orders = cli.variant == "io";
  opts.num_workers = cli.workers;
  return opts;
}

/// Builds the selected execution backend; for --backend=rpc this connects
/// to the --workers-addr endpoints and can fail.
StatusOr<std::shared_ptr<ExecutionBackend>> BuildBackend(
    const CliOptions& cli, const MpqOptions& opts) {
  BackendOptions backend_opts;
  backend_opts.network = opts.network;
  backend_opts.max_threads = opts.max_threads;
  backend_opts.workers_addr = cli.workers_addr;
  return MakeBackend(cli.backend, backend_opts);
}

/// Serving mode: Q concurrently optimized queries multiplexed onto one
/// shared backend through the OptimizerService.
int RunService(QueryGenerator* generator, const CliOptions& cli) {
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(cli.concurrent_queries));
  for (int i = 0; i < cli.concurrent_queries; ++i) {
    queries.push_back(generator->Generate(cli.tables));
  }
  const MpqOptions opts = BuildMpqOptions(cli);
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      BuildBackend(cli, opts);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  ServiceOptions service_opts;
  service_opts.backend = std::move(backend).value();
  OptimizerService service(service_opts);
  const BatchReport report = service.OptimizeBatch(queries, opts);

  std::printf("service backend    %s\n", service.backend().name());
  for (size_t i = 0; i < report.results.size(); ++i) {
    const StatusOr<MpqResult>& r = report.results[i];
    if (!r.ok()) {
      std::printf("query %-3zu          error: %s\n", i,
                  r.status().ToString().c_str());
      continue;
    }
    std::printf(
        "query %-3zu          cost %.6g, cluster %.2f ms, latency %.2f ms\n",
        i, r.value().arena.node(r.value().best[0]).cost.time(),
        r.value().simulated_seconds * 1e3, report.latency_seconds[i] * 1e3);
  }
  std::printf("batch wall         %.2f ms\n", report.wall_seconds * 1e3);
  std::printf("throughput         %.1f queries/s\n",
              report.queries_per_second);
  const ServiceStats stats = service.stats();
  std::printf("completed/failed   %llu / %llu\n",
              static_cast<unsigned long long>(stats.queries_completed),
              static_cast<unsigned long long>(stats.queries_failed));
  return stats.queries_failed == 0 ? 0 : 1;
}

int RunMpq(const Query& query, const CliOptions& cli) {
  MpqOptions opts = BuildMpqOptions(cli);
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      BuildBackend(cli, opts);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 1;
  }
  opts.backend = std::move(backend).value();
  if (opts.interesting_orders && opts.objective != Objective::kTime) {
    std::fprintf(stderr, "interesting orders require --objective=time\n");
    return 1;
  }
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(query);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const MpqResult& r = result.value();
  std::printf("workers            %llu (backend: %s)\n",
              static_cast<unsigned long long>(opts.num_workers),
              BackendKindName(cli.backend));
  std::printf("cluster time       %.2f ms (W-time %.2f ms)\n",
              r.simulated_seconds * 1e3, r.max_worker_seconds * 1e3);
  std::printf("memo relations     %lld per worker (max)\n",
              static_cast<long long>(r.max_worker_memo_sets));
  std::printf("network            %llu bytes in %llu messages\n",
              static_cast<unsigned long long>(r.network_bytes),
              static_cast<unsigned long long>(r.network_messages));
  if (opts.objective == Objective::kTime) {
    std::printf("best plan          %s\n",
                PlanToString(r.arena, r.best[0]).c_str());
    std::printf("estimated cost     %.6g work units\n",
                r.arena.node(r.best[0]).cost.time());
  } else {
    std::printf("Pareto frontier    %zu plans (alpha = %g)\n", r.best.size(),
                cli.alpha);
    for (PlanId id : r.best) {
      std::printf("  time %.6g  buffer %.6g\n", r.arena.node(id).cost[0],
                  r.arena.node(id).cost[1]);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    std::fprintf(
        stderr,
        "usage: %s [--tables=N] [--shape=chain|star|cycle|clique]\n"
        "          [--space=linear|bushy] [--workers=M] [--seed=S]\n"
        "          [--objective=time|mo] [--alpha=A]\n"
        "          [--variant=dp|io|pqo] [--parametric-table=T]\n"
        "          [--backend=thread|process|async|rpc]\n"
        "          [--workers-addr=HOST:PORT[,HOST:PORT...]]\n"
        "          [--concurrent-queries=Q]\n"
        "--backend=rpc dispatches worker tasks to mpqopt_worker server\n"
        "processes at the --workers-addr endpoints.\n",
        argv[0]);
    return 2;
  }
  // Reject unusable worker counts up front instead of silently rounding:
  // MPQ requires a power of two not exceeding the maximal parallelism of
  // the query (the pqo variant rounds internally and is exempt).
  if (cli.variant != "pqo") {
    const Status workers_ok =
        ValidateNumWorkers(cli.workers, cli.tables, cli.space);
    if (!workers_ok.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   workers_ok.ToString().c_str());
      return 2;
    }
  }
  GeneratorOptions gen_opts;
  gen_opts.shape = cli.shape;
  QueryGenerator generator(gen_opts, cli.seed);
  if (cli.concurrent_queries > 0 && cli.variant != "pqo") {
    return RunService(&generator, cli);
  }
  const Query query = generator.Generate(cli.tables);
  std::printf("%s", query.ToString().c_str());
  std::printf("plan space         %s\n", PlanSpaceName(cli.space));
  if (cli.variant == "pqo") return RunPqo(query, cli);
  return RunMpq(query, cli);
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) { return mpqopt::Main(argc, argv); }
