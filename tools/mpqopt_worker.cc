// Copyright 2026 mpqopt authors.
//
// mpqopt_worker — the remote worker server behind --backend=rpc.
//
// Listens on a TCP endpoint and serves framed worker-task requests
// (MpqOptimizer::WorkerMain, HeteroMpqOptimizer::WorkerMain, and the
// diagnostic kinds; see cluster/task_registry.h). One serving thread per
// master connection; connections are persistent and each carries a
// sequential request/response stream.
//
//   mpqopt_worker --listen=127.0.0.1:7001
//   mpqopt_worker --listen=0.0.0.0:0        # ephemeral port, printed below
//
// On startup the worker prints "LISTENING <port>" to stdout — the RPC
// test fixtures and deployment scripts read the chosen port from there.
//
// Shutdown: SIGTERM or SIGINT triggers a clean drain — the listener
// stops accepting, every serving thread finishes its in-flight request
// (executed and answered), idle connections close, and the process exits
// 0. Anything else (SIGKILL, --chaos-kill-after) is a crash, which the
// master's supervision subsystem (cluster/supervisor/) handles by
// redialing and re-scattering.
//
// --chaos-kill-after=N is the failover-test chaos axis: the worker
// serves N task requests normally, then exits abruptly WITHOUT replying
// to request N+1 — a deterministic mid-round node death. Ping frames do
// not count against the budget.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/rpc_backend.h"
#include "net/frame_transport.h"

namespace mpqopt {
namespace {

/// Set by the SIGTERM/SIGINT handler; the accept loop and every serving
/// thread poll it in bounded slices. std::atomic<bool> is lock-free on
/// every platform this builds on, so the store is async-signal-safe.
std::atomic<bool> g_stop{false};

void HandleShutdownSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

void InstallShutdownHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

int Main(int argc, char** argv) {
  std::string listen = "0.0.0.0:0";
  int64_t chaos_kill_after = -1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--listen=", 9) == 0) {
      listen = arg + 9;
    } else if (std::strncmp(arg, "--chaos-kill-after=", 19) == 0) {
      char* end = nullptr;
      chaos_kill_after = std::strtoll(arg + 19, &end, 10);
      if (end == arg + 19 || *end != '\0' || chaos_kill_after < 0) {
        std::fprintf(stderr, "invalid --chaos-kill-after value: %s\n",
                     arg + 19);
        return 2;
      }
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--listen=HOST:PORT] [--chaos-kill-after=N]\n"
                   "  HOST:PORT   bind address (default 0.0.0.0:0; port 0\n"
                   "              picks an ephemeral port)\n"
                   "  N           chaos test axis: serve N task requests,\n"
                   "              then crash without replying\n"
                   "Prints \"LISTENING <port>\" once ready, then serves\n"
                   "mpqopt worker tasks until killed; SIGTERM/SIGINT drain\n"
                   "in-flight tasks and exit 0.\n",
                   argv[0]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  std::string host;
  int port = 0;
  Status s = ParseHostPort(listen, &host, &port);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  StatusOr<TcpListener> listener = TcpListener::Bind(host, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  InstallShutdownHandlers();
  std::printf("LISTENING %d\n", listener.value().port());
  std::fflush(stdout);
  std::fprintf(stderr, "mpqopt_worker: pid %d serving on port %d%s\n",
               static_cast<int>(::getpid()), listener.value().port(),
               chaos_kill_after >= 0 ? " (chaos kill armed)" : "");

  std::atomic<int64_t> chaos_remaining{chaos_kill_after};
  RpcServeOptions serve;
  serve.stop = &g_stop;
  if (chaos_kill_after >= 0) serve.chaos_tasks_remaining = &chaos_remaining;
  s = ServeRpcWorker(&listener.value(), serve);
  if (s.ok()) {
    // Graceful SIGTERM/SIGINT drain completed.
    std::fprintf(stderr, "mpqopt_worker: drained, shutting down cleanly\n");
    return 0;
  }
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) { return mpqopt::Main(argc, argv); }
