// Copyright 2026 mpqopt authors.
//
// mpqopt_worker — the remote worker server behind --backend=rpc.
//
// Listens on a TCP endpoint and serves framed worker-task requests
// (MpqOptimizer::WorkerMain, HeteroMpqOptimizer::WorkerMain, and the
// diagnostic kinds; see cluster/task_registry.h). One serving thread per
// master connection; connections are persistent and each carries a
// sequential request/response stream.
//
//   mpqopt_worker --listen=127.0.0.1:7001
//   mpqopt_worker --listen=0.0.0.0:0        # ephemeral port, printed below
//
// On startup the worker prints "LISTENING <port>" to stdout — the RPC
// test fixtures and deployment scripts read the chosen port from there.
// The process serves until killed.

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/rpc_backend.h"
#include "net/frame_transport.h"

namespace mpqopt {
namespace {

int Main(int argc, char** argv) {
  std::string listen = "0.0.0.0:0";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--listen=", 9) == 0) {
      listen = arg + 9;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--listen=HOST:PORT]\n"
                   "  HOST:PORT   bind address (default 0.0.0.0:0; port 0\n"
                   "              picks an ephemeral port)\n"
                   "Prints \"LISTENING <port>\" once ready, then serves\n"
                   "mpqopt worker tasks until killed.\n",
                   argv[0]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  std::string host;
  int port = 0;
  Status s = ParseHostPort(listen, &host, &port);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  StatusOr<TcpListener> listener = TcpListener::Bind(host, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %d\n", listener.value().port());
  std::fflush(stdout);

  s = ServeRpcWorker(&listener.value());
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) { return mpqopt::Main(argc, argv); }
