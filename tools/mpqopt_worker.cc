// Copyright 2026 mpqopt authors.
//
// mpqopt_worker — the remote worker server behind --backend=rpc.
//
// Listens on a TCP endpoint and serves framed worker-task requests
// (MpqOptimizer::WorkerMain, HeteroMpqOptimizer::WorkerMain, and the
// diagnostic kinds; see cluster/task_registry.h) plus stateful session
// frames (SMA memo replicas and other registered session kinds; see
// cluster/session/). One serving thread per master connection;
// connections are persistent and each carries a sequential
// request/response stream with its own session store — a replica is
// freed when its session closes, when its TTL expires, or when the
// owning connection drops.
//
//   mpqopt_worker --listen=127.0.0.1:7001
//   mpqopt_worker --listen=0.0.0.0:0        # ephemeral port, printed below
//
// On startup the worker prints "LISTENING <port>" to stdout — the RPC
// test fixtures and deployment scripts read the chosen port from there.
//
// Shutdown: SIGTERM or SIGINT triggers a clean drain — the listener
// stops accepting, every serving thread finishes its in-flight request
// (executed and answered), idle connections close, and the process exits
// 0. Anything else (SIGKILL, --chaos-kill-after) is a crash, which the
// master's supervision subsystem (cluster/supervisor/) handles by
// redialing and re-scattering — and, for sessions, re-opening and
// replaying the lost replicas.
//
// The usage text is generated from kFlagDocs below, like mpqopt_cli's:
// new flags document themselves by adding a row, so --help cannot drift
// from the real option surface.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include "cluster/rpc_backend.h"
#include "net/frame_transport.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry_server.h"
#include "obs/worker_log.h"

namespace mpqopt {
namespace {

/// Set by the SIGTERM/SIGINT handler; the accept loop and every serving
/// thread poll it in bounded slices. std::atomic<bool> is lock-free on
/// every platform this builds on, so the store is async-signal-safe.
std::atomic<bool> g_stop{false};

void HandleShutdownSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

void InstallShutdownHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

struct WorkerOptions {
  std::string listen = "0.0.0.0:0";
  int64_t chaos_kill_after = -1;
  int telemetry_port = -1;  // -1 = no telemetry server
  obs::WorkerLogLevel log_level = obs::WorkerLogLevel::kInfo;
  SessionStoreOptions sessions;
  bool help = false;
};

/// One row of the option surface: flag name, value placeholder shown in
/// --help (null for valueless flags), and help text. This table is the
/// single authority for the usage message.
struct FlagDoc {
  const char* name;
  const char* value;  // placeholder, or nullptr for boolean flags
  const char* help;
};

const FlagDoc kFlagDocs[] = {
    {"--listen", "HOST:PORT",
     "bind address (default 0.0.0.0:0; port 0 picks an ephemeral port, "
     "printed as \"LISTENING <port>\")"},
    {"--chaos-kill-after", "N",
     "chaos test axis: serve N task requests, then crash without "
     "replying (pings exempt)"},
    {"--session-ttl-ms", "MS",
     "reclaim a session replica untouched for MS milliseconds "
     "(default 900000; 0 disables TTL GC)"},
    {"--session-max-bytes", "N",
     "per-session replica byte cap; an open/step that exceeds it fails "
     "deterministically and drops the replica (default 268435456)"},
    {"--telemetry-port", "PORT",
     "serve /metrics, /healthz, /statz and /debug/flightrecorder over "
     "HTTP on 127.0.0.1:PORT (0 picks an ephemeral port, printed as "
     "\"TELEMETRY <port>\"); off by default"},
    {"--log-level", "LEVEL",
     "stderr log threshold: error, info, or debug (default info)"},
    {"--help", nullptr, "print this message"},
};

void PrintUsage(FILE* out, const char* argv0) {
  std::fprintf(out, "usage: %s [flags]\n", argv0);
  for (const FlagDoc& doc : kFlagDocs) {
    std::string flag = doc.name;
    if (doc.value != nullptr) {
      flag += "=";
      flag += doc.value;
    }
    std::fprintf(out, "  %-26s %s\n", flag.c_str(), doc.help);
  }
  std::fprintf(out,
               "Serves mpqopt worker tasks and stateful sessions until "
               "killed;\nSIGTERM/SIGINT drain in-flight tasks and exit 0.\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Parses a non-negative integer flag value; false (with a message) on
/// junk.
bool ParseNonNegative(const std::string& value, const char* flag,
                      int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || *out < 0) {
    std::fprintf(stderr, "invalid %s value: %s\n", flag, value.c_str());
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, WorkerOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    int64_t parsed = 0;
    if (ParseFlag(argv[i], "--listen", &v)) {
      opts->listen = v;
    } else if (ParseFlag(argv[i], "--chaos-kill-after", &v)) {
      if (!ParseNonNegative(v, "--chaos-kill-after", &parsed)) return false;
      opts->chaos_kill_after = parsed;
    } else if (ParseFlag(argv[i], "--session-ttl-ms", &v)) {
      if (!ParseNonNegative(v, "--session-ttl-ms", &parsed)) return false;
      if (parsed > std::numeric_limits<int>::max()) {
        // Truncating would wrap negative, which SweepExpired reads as
        // "TTL disabled" — the opposite of what was asked for.
        std::fprintf(stderr, "--session-ttl-ms value too large: %s\n",
                     v.c_str());
        return false;
      }
      opts->sessions.ttl_ms = static_cast<int>(parsed);
    } else if (ParseFlag(argv[i], "--session-max-bytes", &v)) {
      if (!ParseNonNegative(v, "--session-max-bytes", &parsed)) return false;
      opts->sessions.max_session_bytes = static_cast<uint64_t>(parsed);
    } else if (ParseFlag(argv[i], "--telemetry-port", &v)) {
      if (!ParseNonNegative(v, "--telemetry-port", &parsed) ||
          parsed > 65535) {
        std::fprintf(stderr, "invalid --telemetry-port value: %s\n",
                     v.c_str());
        return false;
      }
      opts->telemetry_port = static_cast<int>(parsed);
    } else if (ParseFlag(argv[i], "--log-level", &v)) {
      if (!obs::ParseWorkerLogLevel(v.c_str(), &opts->log_level)) {
        std::fprintf(stderr,
                     "invalid --log-level value: %s (expected "
                     "error|info|debug)\n",
                     v.c_str());
        return false;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      opts->help = true;
      return true;  // help wins over everything else on the line
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  WorkerOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  if (opts.help) {
    PrintUsage(stdout, argv[0]);
    return 0;
  }
  obs::SetWorkerLogLevel(opts.log_level);

  std::string host;
  int port = 0;
  Status s = ParseHostPort(opts.listen, &host, &port);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  StatusOr<TcpListener> listener = TcpListener::Bind(host, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  InstallShutdownHandlers();
  // SIGUSR1 dumps the flight recorder; a fatal MPQOPT_CHECK failure
  // dumps it automatically on the way down.
  obs::InstallFlightRecorderSignalDump();
  obs::InstallFlightRecorderFatalDump();
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (opts.telemetry_port >= 0) {
    obs::TelemetryOptions topts;
    topts.port = opts.telemetry_port;
    StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
        obs::TelemetryServer::Start(std::move(topts));
    if (!server.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    telemetry = std::move(server).value();
    std::printf("TELEMETRY %d\n", telemetry->port());
  }
  std::printf("LISTENING %d\n", listener.value().port());
  std::fflush(stdout);
  // Structured stderr from here on: every line carries a monotonic-ms
  // timestamp and the worker pid, so interleaved farm logs stay
  // attributable (obs/worker_log.h).
  obs::WorkerLogf("serving on port %d%s", listener.value().port(),
                  opts.chaos_kill_after >= 0 ? " (chaos kill armed)" : "");

  std::atomic<int64_t> chaos_remaining{opts.chaos_kill_after};
  RpcServeOptions serve;
  serve.stop = &g_stop;
  serve.sessions = opts.sessions;
  if (opts.chaos_kill_after >= 0) {
    serve.chaos_tasks_remaining = &chaos_remaining;
  }
  s = ServeRpcWorker(&listener.value(), serve);
  if (s.ok()) {
    // Graceful SIGTERM/SIGINT drain completed.
    obs::WorkerLogf("drained, shutting down cleanly");
    return 0;
  }
  obs::WorkerLogErrorf("error: %s", s.ToString().c_str());
  std::fprintf(stderr, "%s",
               obs::FlightRecorder::Global().DumpText().c_str());
  return 1;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) { return mpqopt::Main(argc, argv); }
