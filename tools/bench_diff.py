#!/usr/bin/env python3
"""Diff two BENCH_*.json benchmark trajectories.

Every bench binary emits records in the BenchJsonWriter schema
(bench/bench_common.h): a flat JSON array of objects with the identity
triple (bench, config, metric) plus value, units, and the build/source
labels. This tool joins two files on the triple and reports the
per-record delta — the entire trajectory-comparison contract.

Two kinds of gate, both exiting nonzero on violation:

* Drift (always on): records whose units are deterministic — "count",
  "bool", and "%" by default — must match the baseline EXACTLY, and a
  record present in the baseline must still exist in the candidate.
  These values (arrival counts, plan-identity bits, cache hit rates,
  session counters) are properties of the checked-in workloads and the
  code, not of the machine, so any change is a real behavior change:
  regenerate the committed baseline in the same PR, like a golden.

* Regression threshold (opt-in): --threshold-pct=N gates the noisy
  timing units too — "ms" may not rise and "q/s" may not fall by more
  than N percent. Off by default because shared CI runners are too
  noisy for wall-clock thresholds; use it for local A/B runs, e.g.
  `bench_diff.py before.json after.json --threshold-pct=10`.

Records only in the candidate (a newly added bench or workload) are
reported but never fail the diff. Exit codes: 0 clean, 1 drift or
regression, 2 usage/input error.
"""

import argparse
import json
import sys

# Units whose values are machine-independent: equality is the gate.
DEFAULT_DRIFT_UNITS = ("count", "bool", "%")
# Timing units gated only under --threshold-pct, with a direction:
# "ms" regresses upward, "q/s" regresses downward.
HIGHER_IS_WORSE = ("ms", "bytes")
LOWER_IS_WORSE = ("q/s",)


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(data, list):
        sys.exit(f"bench_diff: {path}: expected a JSON array of records")
    records = {}
    labels = set()
    for i, rec in enumerate(data):
        try:
            key = (rec["bench"], rec["config"], rec["metric"])
            value = float(rec["value"])
            units = rec["units"]
        except (TypeError, KeyError) as err:
            sys.exit(f"bench_diff: {path}: record {i} is malformed: {err}")
        if key in records:
            sys.exit(f"bench_diff: {path}: duplicate record {key}")
        records[key] = (value, units)
        labels.add((rec.get("build", "?"), rec.get("source", "?")))
    return records, labels


def fmt_key(key):
    bench, config, metric = key
    return f"{bench}[{config}].{metric}"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json benchmark trajectories."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=None,
        metavar="N",
        help="also gate timing units: fail when ms rises or q/s falls "
        "by more than N%% (default: timing deltas are reported only)",
    )
    parser.add_argument(
        "--drift-units",
        default=",".join(DEFAULT_DRIFT_UNITS),
        metavar="CSV",
        help="units gated on exact equality (default: %(default)s)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="downgrade baseline records absent from the candidate "
        "from a failure to a note",
    )
    args = parser.parse_args()
    drift_units = {u for u in args.drift_units.split(",") if u}

    base, base_labels = load_records(args.baseline)
    cand, cand_labels = load_records(args.candidate)
    print(
        f"baseline  {args.baseline}  "
        f"({', '.join('/'.join(l) for l in sorted(base_labels))})"
    )
    print(
        f"candidate {args.candidate}  "
        f"({', '.join('/'.join(l) for l in sorted(cand_labels))})"
    )

    failures = []
    notes = []
    compared = 0
    for key in sorted(base):
        if key not in cand:
            msg = f"MISSING  {fmt_key(key)} (in baseline only)"
            (notes if args.allow_missing else failures).append(msg)
            continue
        base_value, base_units = base[key]
        cand_value, cand_units = cand[key]
        compared += 1
        if base_units != cand_units:
            failures.append(
                f"UNITS    {fmt_key(key)}: {base_units} -> {cand_units}"
            )
            continue
        delta = cand_value - base_value
        pct = (delta / base_value * 100.0) if base_value != 0 else None
        pct_str = f" ({pct:+.1f}%)" if pct is not None else ""
        line = (
            f"{fmt_key(key)}: {base_value:g} -> {cand_value:g} "
            f"{base_units}{pct_str}"
        )
        if base_units in drift_units:
            if cand_value != base_value:
                failures.append(f"DRIFT    {line}")
            continue
        if args.threshold_pct is not None and pct is not None:
            regressed = (
                base_units in HIGHER_IS_WORSE and pct > args.threshold_pct
            ) or (
                base_units in LOWER_IS_WORSE and pct < -args.threshold_pct
            )
            if regressed:
                failures.append(f"REGRESS  {line}")
                continue
        if delta != 0:
            notes.append(f"delta    {line}")
    for key in sorted(set(cand) - set(base)):
        notes.append(f"new      {fmt_key(key)} (candidate only)")

    for line in notes:
        print(line)
    for line in failures:
        print(line)
    gate = "drift"
    if args.threshold_pct is not None:
        gate += f" + {args.threshold_pct:g}% threshold"
    print(
        f"{compared} records compared, {len(notes)} ungated deltas/notes, "
        f"{len(failures)} failures ({gate} gate)"
    )
    if failures:
        print(
            "bench_diff: FAIL — if the change is deliberate, regenerate "
            "the committed baseline in the same PR",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
