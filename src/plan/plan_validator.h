// Copyright 2026 mpqopt authors.
//
// Structural and semantic plan validation, used by integration tests and
// by the master to sanity-check plans returned from (simulated) remote
// workers before trusting their cost annotations.

#ifndef MPQOPT_PLAN_PLAN_VALIDATOR_H_
#define MPQOPT_PLAN_PLAN_VALIDATOR_H_

#include "catalog/query.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "partition/constraints.h"
#include "plan/plan.h"

namespace mpqopt {

/// Options for ValidatePlan.
struct PlanValidationOptions {
  /// Relative tolerance when re-deriving cardinalities and costs.
  double relative_tolerance = 1e-9;
  /// Recompute and compare operator costs. Disable for plans produced in
  /// interesting-orders mode, whose costs depend on order context the
  /// plain CostModel cannot reproduce.
  bool check_costs = true;
  /// When set, additionally require the plan to be left-deep.
  bool require_left_deep = false;
  /// When set, additionally require every intermediate join result of the
  /// plan to satisfy this constraint set (partition membership).
  const ConstraintSet* constraints = nullptr;
};

/// Checks that the subtree rooted at `id`:
///  * joins each table of `query` exactly once and nothing else,
///  * has disjoint operands at every join,
///  * carries cardinalities matching the estimator and cost vectors
///    matching the cost model (within relative tolerance),
///  * satisfies the requested structural restrictions.
Status ValidatePlan(const PlanArena& arena, PlanId id, const Query& query,
                    const CostModel& model,
                    const PlanValidationOptions& options = {});

}  // namespace mpqopt

#endif  // MPQOPT_PLAN_PLAN_VALIDATOR_H_
