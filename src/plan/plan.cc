// Copyright 2026 mpqopt authors.

#include "plan/plan.h"

namespace mpqopt {

bool IsLeftDeep(const PlanArena& arena, PlanId id) {
  const PlanNode& node = arena.node(id);
  if (node.IsScan()) return true;
  const PlanNode& right = arena.node(node.right);
  if (!right.IsScan()) return false;
  return IsLeftDeep(arena, node.left);
}

std::vector<int> LeftDeepJoinOrder(const PlanArena& arena, PlanId id) {
  MPQOPT_CHECK(IsLeftDeep(arena, id));
  std::vector<int> order;
  // Walk down the left spine collecting inner tables, then reverse.
  PlanId cur = id;
  while (true) {
    const PlanNode& node = arena.node(cur);
    if (node.IsScan()) {
      order.push_back(node.table);
      break;
    }
    order.push_back(arena.node(node.right).table);
    cur = node.left;
  }
  std::vector<int> reversed(order.rbegin(), order.rend());
  return reversed;
}

std::string PlanToString(const PlanArena& arena, PlanId id) {
  const PlanNode& node = arena.node(id);
  if (node.IsScan()) {
    return "R" + std::to_string(node.table);
  }
  return std::string(JoinAlgorithmName(node.algorithm)) + "(" +
         PlanToString(arena, node.left) + ", " +
         PlanToString(arena, node.right) + ")";
}

PlanId CopyPlan(const PlanArena& source, PlanId id, PlanArena* dest) {
  const PlanNode& node = source.node(id);
  if (node.IsScan()) {
    return dest->MakeScan(node.table, node.cardinality, node.cost);
  }
  const PlanId left = CopyPlan(source, node.left, dest);
  const PlanId right = CopyPlan(source, node.right, dest);
  return dest->MakeJoin(node.algorithm, left, right, node.cardinality,
                        node.cost);
}

int CountJoins(const PlanArena& arena, PlanId id) {
  const PlanNode& node = arena.node(id);
  if (node.IsScan()) return 0;
  return 1 + CountJoins(arena, node.left) + CountJoins(arena, node.right);
}

}  // namespace mpqopt
