// Copyright 2026 mpqopt authors.

#include "plan/plan_serde.h"

namespace mpqopt {

void SerializePlan(const PlanArena& arena, PlanId id, ByteWriter* writer) {
  const PlanNode& node = arena.node(id);
  writer->WriteU8(static_cast<uint8_t>(node.algorithm));
  if (node.IsScan()) {
    writer->WriteU32(static_cast<uint32_t>(node.table));
  } else {
    SerializePlan(arena, node.left, writer);
    SerializePlan(arena, node.right, writer);
  }
  writer->WriteDouble(node.cardinality);
  node.cost.Serialize(writer);
}

StatusOr<PlanId> DeserializePlan(ByteReader* reader, PlanArena* arena) {
  uint8_t tag = 0;
  Status s = reader->ReadU8(&tag);
  if (!s.ok()) return s;
  if (tag > static_cast<uint8_t>(JoinAlgorithm::kSortMergeJoin)) {
    return Status::Corruption("bad plan node tag");
  }
  const auto alg = static_cast<JoinAlgorithm>(tag);
  if (alg == JoinAlgorithm::kScan) {
    uint32_t table = 0;
    if (!(s = reader->ReadU32(&table)).ok()) return s;
    if (table >= static_cast<uint32_t>(kMaxTables)) {
      return Status::Corruption("scan table index out of range");
    }
    double card = 0;
    if (!(s = reader->ReadDouble(&card)).ok()) return s;
    StatusOr<CostVector> cost = CostVector::Deserialize(reader);
    if (!cost.ok()) return cost.status();
    return arena->MakeScan(static_cast<int>(table), card, cost.value());
  }
  StatusOr<PlanId> left = DeserializePlan(reader, arena);
  if (!left.ok()) return left.status();
  StatusOr<PlanId> right = DeserializePlan(reader, arena);
  if (!right.ok()) return right.status();
  if (arena->node(left.value())
          .tables.Intersects(arena->node(right.value()).tables)) {
    return Status::Corruption("join operands overlap");
  }
  double card = 0;
  if (!(s = reader->ReadDouble(&card)).ok()) return s;
  StatusOr<CostVector> cost = CostVector::Deserialize(reader);
  if (!cost.ok()) return cost.status();
  return arena->MakeJoin(alg, left.value(), right.value(), card,
                         cost.value());
}

void SerializePlanSet(const PlanArena& arena, const std::vector<PlanId>& ids,
                      ByteWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(ids.size()));
  for (PlanId id : ids) SerializePlan(arena, id, writer);
}

StatusOr<std::vector<PlanId>> DeserializePlanSet(ByteReader* reader,
                                                 PlanArena* arena) {
  uint32_t count = 0;
  Status s = reader->ReadU32(&count);
  if (!s.ok()) return s;
  if (count > 1u << 24) return Status::Corruption("plan set too large");
  std::vector<PlanId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StatusOr<PlanId> id = DeserializePlan(reader, arena);
    if (!id.ok()) return id.status();
    ids.push_back(id.value());
  }
  return ids;
}

}  // namespace mpqopt
