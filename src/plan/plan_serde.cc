// Copyright 2026 mpqopt authors.

#include "plan/plan_serde.h"

#include <cstring>

namespace mpqopt {
namespace {

/// Raw-cursor plan decoder — the master's Phase-3 hot loop. Bounds
/// checks are plain pointer comparisons and failure is a bool, so the
/// per-node cost carries no Status/StatusOr construction. The caller
/// reruns the Status-returning DeserializePlan on failure to produce
/// the exact legacy error; corruption is the cold path, so the double
/// decode there costs nothing in practice. Validation is identical:
/// node tag range, scan table range, join operand disjointness, cost
/// arity range, and never reading past `end`.
bool FastDecodePlan(const uint8_t** cursor, const uint8_t* end,
                    PlanArena* arena, PlanId* out) {
  const uint8_t* p = *cursor;
  if (p >= end) return false;
  const uint8_t tag = *p++;
  if (tag > static_cast<uint8_t>(JoinAlgorithm::kSortMergeJoin)) return false;
  const auto alg = static_cast<JoinAlgorithm>(tag);
  PlanId left = kInvalidPlanId;
  PlanId right = kInvalidPlanId;
  uint32_t table = 0;
  if (alg == JoinAlgorithm::kScan) {
    if (end - p < 4) return false;
    std::memcpy(&table, p, 4);
    p += 4;
    if (table >= static_cast<uint32_t>(kMaxTables)) return false;
  } else {
    *cursor = p;
    if (!FastDecodePlan(cursor, end, arena, &left)) return false;
    if (!FastDecodePlan(cursor, end, arena, &right)) return false;
    p = *cursor;
    if (arena->node(left).tables.Intersects(arena->node(right).tables)) {
      return false;
    }
  }
  if (end - p < 9) return false;  // cardinality + cost arity
  double cardinality = 0;
  std::memcpy(&cardinality, p, 8);
  p += 8;
  const uint8_t arity = *p++;
  if (arity < 1 || arity > kMaxCostMetrics) return false;
  if (end - p < 8 * static_cast<ptrdiff_t>(arity)) return false;
  CostVector cost(arity);
  for (int i = 0; i < arity; ++i) {
    std::memcpy(&cost[i], p, 8);
    p += 8;
  }
  *cursor = p;
  *out = alg == JoinAlgorithm::kScan
             ? arena->MakeScan(static_cast<int>(table), cardinality, cost)
             : arena->MakeJoin(alg, left, right, cardinality, cost);
  return true;
}

}  // namespace

void SerializePlan(const PlanArena& arena, PlanId id, ByteWriter* writer) {
  const PlanNode& node = arena.node(id);
  writer->WriteU8(static_cast<uint8_t>(node.algorithm));
  if (node.IsScan()) {
    writer->WriteU32(static_cast<uint32_t>(node.table));
  } else {
    SerializePlan(arena, node.left, writer);
    SerializePlan(arena, node.right, writer);
  }
  writer->WriteDouble(node.cardinality);
  node.cost.Serialize(writer);
}

StatusOr<PlanId> DeserializePlan(ByteReader* reader, PlanArena* arena) {
  uint8_t tag = 0;
  Status s = reader->ReadU8(&tag);
  if (!s.ok()) return s;
  if (tag > static_cast<uint8_t>(JoinAlgorithm::kSortMergeJoin)) {
    return Status::Corruption("bad plan node tag");
  }
  const auto alg = static_cast<JoinAlgorithm>(tag);
  if (alg == JoinAlgorithm::kScan) {
    uint32_t table = 0;
    if (!(s = reader->ReadU32(&table)).ok()) return s;
    if (table >= static_cast<uint32_t>(kMaxTables)) {
      return Status::Corruption("scan table index out of range");
    }
    double card = 0;
    if (!(s = reader->ReadDouble(&card)).ok()) return s;
    StatusOr<CostVector> cost = CostVector::Deserialize(reader);
    if (!cost.ok()) return cost.status();
    return arena->MakeScan(static_cast<int>(table), card, cost.value());
  }
  StatusOr<PlanId> left = DeserializePlan(reader, arena);
  if (!left.ok()) return left.status();
  StatusOr<PlanId> right = DeserializePlan(reader, arena);
  if (!right.ok()) return right.status();
  if (arena->node(left.value())
          .tables.Intersects(arena->node(right.value()).tables)) {
    return Status::Corruption("join operands overlap");
  }
  double card = 0;
  if (!(s = reader->ReadDouble(&card)).ok()) return s;
  StatusOr<CostVector> cost = CostVector::Deserialize(reader);
  if (!cost.ok()) return cost.status();
  return arena->MakeJoin(alg, left.value(), right.value(), card,
                         cost.value());
}

void SerializePlanSet(const PlanArena& arena, const std::vector<PlanId>& ids,
                      ByteWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(ids.size()));
  for (PlanId id : ids) SerializePlan(arena, id, writer);
}

StatusOr<std::vector<PlanId>> DeserializePlanSet(ByteReader* reader,
                                                 PlanArena* arena) {
  uint32_t count = 0;
  Status s = reader->ReadU32(&count);
  if (!s.ok()) return s;
  if (count > 1u << 24) return Status::Corruption("plan set too large");
  std::vector<PlanId> ids;
  ids.reserve(count);
  // Pre-size the arena from the wire: a serialized node is at least 18
  // bytes (tag + cardinality + 1-metric cost), so remaining/18 bounds
  // the node count and one Reserve replaces the incremental growth the
  // decode loop would otherwise pay. Range-checked: `remaining` is
  // bounded by the frame size limit, not attacker-declared counts.
  arena->Reserve(arena->size() + reader->remaining() / 18 + 1);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* cursor = reader->cursor();
    const uint8_t* const end = cursor + reader->remaining();
    PlanId id = kInvalidPlanId;
    if (FastDecodePlan(&cursor, end, arena, &id)) {
      reader->Advance(static_cast<size_t>(cursor - reader->cursor()));
      ids.push_back(id);
      continue;
    }
    // Cold path: rerun the Status-returning decoder from the same
    // offset for the exact error text (partial nodes appended by the
    // failed fast pass stay in the arena — callers discard it on error,
    // just as they did when the recursive decoder failed mid-plan).
    StatusOr<PlanId> slow = DeserializePlan(reader, arena);
    if (!slow.ok()) return slow.status();
    ids.push_back(slow.value());
  }
  return ids;
}

}  // namespace mpqopt
