// Copyright 2026 mpqopt authors.

#include "plan/plan_validator.h"

#include <cmath>

#include "cost/cardinality.h"

namespace mpqopt {
namespace {

bool Close(double a, double b, double rel_tol) {
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_tol * std::fmax(scale, 1.0);
}

Status ValidateNode(const PlanArena& arena, PlanId id, const Query& query,
                    const CardinalityEstimator& estimator,
                    const CostModel& model,
                    const PlanValidationOptions& options) {
  const PlanNode& node = arena.node(id);
  if (node.IsScan()) {
    if (node.table < 0 || node.table >= query.num_tables()) {
      return Status::Corruption("scan of unknown table");
    }
    if (node.tables != TableSet::Single(node.table)) {
      return Status::Corruption("scan table-set mismatch");
    }
    const double card = query.table(node.table).cardinality;
    if (!Close(node.cardinality, card, options.relative_tolerance)) {
      return Status::Corruption("scan cardinality mismatch");
    }
    if (options.check_costs) {
      const CostVector expected = model.ScanCost(card);
      for (int i = 0; i < expected.num_metrics(); ++i) {
        if (!Close(node.cost[i], expected[i], options.relative_tolerance)) {
          return Status::Corruption("scan cost mismatch");
        }
      }
    }
    return Status::OK();
  }

  const PlanNode& left = arena.node(node.left);
  const PlanNode& right = arena.node(node.right);
  if (left.tables.Intersects(right.tables)) {
    return Status::Corruption("join operands overlap");
  }
  if (node.tables != left.tables.Union(right.tables)) {
    return Status::Corruption("join table-set mismatch");
  }
  if (options.require_left_deep && !right.IsScan()) {
    return Status::Corruption("plan is not left-deep");
  }
  if (options.constraints != nullptr &&
      !options.constraints->Admits(node.tables)) {
    return Status::Corruption(
        "intermediate join result violates the partition constraints");
  }
  const double card = estimator.Cardinality(node.tables);
  if (!Close(node.cardinality, card, options.relative_tolerance)) {
    return Status::Corruption("join cardinality mismatch");
  }
  if (options.check_costs) {
    const CostVector expected = model.JoinCost(node.algorithm, left.cost,
                                               right.cost, left.cardinality,
                                               right.cardinality, card);
    for (int i = 0; i < expected.num_metrics(); ++i) {
      if (!Close(node.cost[i], expected[i], options.relative_tolerance)) {
        return Status::Corruption("join cost mismatch");
      }
    }
  }
  Status s = ValidateNode(arena, node.left, query, estimator, model, options);
  if (!s.ok()) return s;
  return ValidateNode(arena, node.right, query, estimator, model, options);
}

}  // namespace

Status ValidatePlan(const PlanArena& arena, PlanId id, const Query& query,
                    const CostModel& model,
                    const PlanValidationOptions& options) {
  const PlanNode& root = arena.node(id);
  if (root.tables != query.all_tables()) {
    return Status::Corruption("plan does not cover the full query");
  }
  if (root.tables.Count() != query.num_tables()) {
    return Status::Corruption("plan covers wrong table count");
  }
  const CardinalityEstimator estimator(query);
  return ValidateNode(arena, id, query, estimator, model, options);
}

}  // namespace mpqopt
