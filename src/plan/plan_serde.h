// Copyright 2026 mpqopt authors.
//
// Wire encoding of plan trees. The worker's answer to the master is one
// serialized plan (single-objective) or a serialized Pareto set
// (multi-objective); the master deserializes into its own arena and runs
// FinalPrune. Encoding is pre-order: tag byte, then either the scanned
// table or the two subtrees, then cardinality and cost vector.

#ifndef MPQOPT_PLAN_PLAN_SERDE_H_
#define MPQOPT_PLAN_PLAN_SERDE_H_

#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "plan/plan.h"

namespace mpqopt {

/// Appends the subtree rooted at `id` to `writer`.
void SerializePlan(const PlanArena& arena, PlanId id, ByteWriter* writer);

/// Reads one plan tree from `reader`, materializing nodes into `arena`.
StatusOr<PlanId> DeserializePlan(ByteReader* reader, PlanArena* arena);

/// Serializes a set of plans (count-prefixed); used for Pareto frontiers.
void SerializePlanSet(const PlanArena& arena, const std::vector<PlanId>& ids,
                      ByteWriter* writer);

/// Reads a count-prefixed set of plans into `arena`.
StatusOr<std::vector<PlanId>> DeserializePlanSet(ByteReader* reader,
                                                 PlanArena* arena);

}  // namespace mpqopt

#endif  // MPQOPT_PLAN_PLAN_SERDE_H_
