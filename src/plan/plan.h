// Copyright 2026 mpqopt authors.
//
// Query plan representation (paper Section 3). Plans are binary trees:
// Scan(q) leaves and Join(left, right) inner nodes where `left` is the
// outer and `right` the inner operand. Left-deep plans are the subset in
// which every right operand is a scan.
//
// Plans are arena-allocated: a PlanId is an index into a PlanArena and a
// DP plan costs O(1) memo space (two child ids + operator + cost), which is
// what makes Theorem 4's space bound hold. Arenas are per-worker — MPQ
// workers never share plan memory.

#ifndef MPQOPT_PLAN_PLAN_H_
#define MPQOPT_PLAN_PLAN_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/table_set.h"
#include "cost/cost_model.h"
#include "cost/cost_vector.h"

namespace mpqopt {

/// Index of a plan node inside a PlanArena.
using PlanId = int32_t;

/// Sentinel for "no plan".
inline constexpr PlanId kInvalidPlanId = -1;

/// One operator node of a plan tree.
struct PlanNode {
  /// Tables covered by this subtree.
  TableSet tables;
  /// Children (kInvalidPlanId for scans).
  PlanId left = kInvalidPlanId;
  PlanId right = kInvalidPlanId;
  /// kScan for leaves, a join implementation otherwise.
  JoinAlgorithm algorithm = JoinAlgorithm::kScan;
  /// For scans: the scanned table index. Unused for joins.
  int32_t table = -1;
  /// Estimated output rows.
  double cardinality = 0;
  /// Cumulative plan cost of this subtree.
  CostVector cost;

  bool IsScan() const { return algorithm == JoinAlgorithm::kScan; }
};

/// Bump allocator for plan nodes. Node ids are stable; nodes are never
/// freed individually (a worker drops the whole arena when it finishes).
///
/// Nodes live in geometrically growing chunks (8, 16, 32, ... nodes)
/// carved out of a common/arena.h bump arena, so appending never moves
/// existing nodes (references handed out by node() stay valid across
/// growth) and the slack stays within the 2x a vector's capacity policy
/// allowed. Deep copy is supported — the plan cache stores winner plans
/// by value (CachedPlan) and re-materializes them per hit.
class PlanArena {
 public:
  PlanArena() = default;

  PlanArena(const PlanArena& other) { CopyFrom(other); }
  PlanArena& operator=(const PlanArena& other) {
    if (this != &other) {
      Clear();
      CopyFrom(other);
    }
    return *this;
  }

  PlanArena(PlanArena&& other) noexcept
      : arena_(std::move(other.arena_)),
        chunks_(std::move(other.chunks_)),
        size_(other.size_) {
    other.chunks_.clear();
    other.size_ = 0;
  }
  PlanArena& operator=(PlanArena&& other) noexcept {
    if (this != &other) {
      arena_ = std::move(other.arena_);
      chunks_ = std::move(other.chunks_);
      other.chunks_.clear();
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  /// Creates a scan leaf for `table`.
  PlanId MakeScan(int table, double cardinality, const CostVector& cost) {
    PlanNode node;
    node.tables = TableSet::Single(table);
    node.algorithm = JoinAlgorithm::kScan;
    node.table = table;
    node.cardinality = cardinality;
    node.cost = cost;
    return Append(node);
  }

  /// Creates a join of two existing nodes.
  PlanId MakeJoin(JoinAlgorithm alg, PlanId left, PlanId right,
                  double cardinality, const CostVector& cost) {
    MPQOPT_DCHECK(alg != JoinAlgorithm::kScan);
    MPQOPT_DCHECK(left >= 0 && left < static_cast<PlanId>(size_));
    MPQOPT_DCHECK(right >= 0 && right < static_cast<PlanId>(size_));
    PlanNode node;
    node.tables = this->node(left).tables.Union(this->node(right).tables);
    MPQOPT_DCHECK(!this->node(left).tables.Intersects(this->node(right).tables));
    node.left = left;
    node.right = right;
    node.algorithm = alg;
    node.cardinality = cardinality;
    node.cost = cost;
    return Append(node);
  }

  const PlanNode& node(PlanId id) const {
    MPQOPT_DCHECK(id >= 0 && id < static_cast<PlanId>(size_));
    const size_t i = static_cast<size_t>(id);
    return chunks_[ChunkOf(i)][i - ChunkBase(ChunkOf(i))];
  }

  size_t size() const { return size_; }

  /// Approximate resident bytes, for memory accounting (counts arena
  /// slack, like the capacity of a vector).
  size_t MemoryBytes() const {
    return arena_.ApproxBytes() + chunks_.capacity() * sizeof(PlanNode*);
  }

  void Reserve(size_t n) {
    // Size the arena for every chunk about to be added in one shot —
    // the decode hot path calls this with the wire-derived node bound,
    // and one malloc beats the block-doubling chain.
    size_t chunk_nodes = 0;
    for (size_t c = chunks_.size(); ChunkBase(c) < n; ++c) {
      chunk_nodes += size_t{8} << c;
    }
    if (chunk_nodes > 0) {
      arena_.ReserveBytes(chunk_nodes * sizeof(PlanNode) + alignof(PlanNode));
    }
    while (ChunkBase(chunks_.size()) < n) AddChunk();
  }
  void Clear() {
    size_ = 0;
    chunks_.clear();
    arena_.Reset();
  }

 private:
  /// Chunk c holds nodes [8*(2^c - 1), 8*(2^(c+1) - 1)) — capacity 8<<c.
  static size_t ChunkOf(size_t id) {
    return static_cast<size_t>(std::bit_width((id >> 3) + 1)) - 1;
  }
  static size_t ChunkBase(size_t chunk) { return (size_t{8} << chunk) - 8; }

  void AddChunk() {
    chunks_.push_back(
        arena_.AllocateArray<PlanNode>(size_t{8} << chunks_.size()));
  }

  PlanId Append(const PlanNode& node) {
    const size_t chunk = ChunkOf(size_);
    if (chunk == chunks_.size()) AddChunk();
    // Placement-new: the arena hands out uninitialized storage.
    new (&chunks_[chunk][size_ - ChunkBase(chunk)]) PlanNode(node);
    return static_cast<PlanId>(size_++);
  }

  void CopyFrom(const PlanArena& other) {
    static_assert(std::is_trivially_copyable_v<PlanNode>);
    Reserve(other.size_);
    for (size_t chunk = 0; ChunkBase(chunk) < other.size_; ++chunk) {
      const size_t count =
          std::min(other.size_ - ChunkBase(chunk), size_t{8} << chunk);
      std::memcpy(chunks_[chunk], other.chunks_[chunk],
                  count * sizeof(PlanNode));
    }
    size_ = other.size_;
  }

  Arena arena_;
  std::vector<PlanNode*> chunks_;
  size_t size_ = 0;
};

/// True if the subtree rooted at `id` is left-deep (every right child of
/// every join is a scan).
bool IsLeftDeep(const PlanArena& arena, PlanId id);

/// For a left-deep plan, returns the join order as a table sequence
/// (outermost/first-joined table first). CHECK-fails on bushy plans.
std::vector<int> LeftDeepJoinOrder(const PlanArena& arena, PlanId id);

/// Renders e.g. "HJ(SMJ(R0, R2), R1)" using table names "R<i>".
std::string PlanToString(const PlanArena& arena, PlanId id);

/// Number of join nodes in the subtree.
int CountJoins(const PlanArena& arena, PlanId id);

/// Deep-copies the subtree rooted at `id` from `source` into `dest`
/// (used by masters re-materializing worker plans into their own arena).
PlanId CopyPlan(const PlanArena& source, PlanId id, PlanArena* dest);

}  // namespace mpqopt

#endif  // MPQOPT_PLAN_PLAN_H_
