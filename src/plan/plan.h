// Copyright 2026 mpqopt authors.
//
// Query plan representation (paper Section 3). Plans are binary trees:
// Scan(q) leaves and Join(left, right) inner nodes where `left` is the
// outer and `right` the inner operand. Left-deep plans are the subset in
// which every right operand is a scan.
//
// Plans are arena-allocated: a PlanId is an index into a PlanArena and a
// DP plan costs O(1) memo space (two child ids + operator + cost), which is
// what makes Theorem 4's space bound hold. Arenas are per-worker — MPQ
// workers never share plan memory.

#ifndef MPQOPT_PLAN_PLAN_H_
#define MPQOPT_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/table_set.h"
#include "cost/cost_model.h"
#include "cost/cost_vector.h"

namespace mpqopt {

/// Index of a plan node inside a PlanArena.
using PlanId = int32_t;

/// Sentinel for "no plan".
inline constexpr PlanId kInvalidPlanId = -1;

/// One operator node of a plan tree.
struct PlanNode {
  /// Tables covered by this subtree.
  TableSet tables;
  /// Children (kInvalidPlanId for scans).
  PlanId left = kInvalidPlanId;
  PlanId right = kInvalidPlanId;
  /// kScan for leaves, a join implementation otherwise.
  JoinAlgorithm algorithm = JoinAlgorithm::kScan;
  /// For scans: the scanned table index. Unused for joins.
  int32_t table = -1;
  /// Estimated output rows.
  double cardinality = 0;
  /// Cumulative plan cost of this subtree.
  CostVector cost;

  bool IsScan() const { return algorithm == JoinAlgorithm::kScan; }
};

/// Bump allocator for plan nodes. Node ids are stable; nodes are never
/// freed individually (a worker drops the whole arena when it finishes).
class PlanArena {
 public:
  PlanArena() = default;

  /// Creates a scan leaf for `table`.
  PlanId MakeScan(int table, double cardinality, const CostVector& cost) {
    PlanNode node;
    node.tables = TableSet::Single(table);
    node.algorithm = JoinAlgorithm::kScan;
    node.table = table;
    node.cardinality = cardinality;
    node.cost = cost;
    nodes_.push_back(node);
    return static_cast<PlanId>(nodes_.size() - 1);
  }

  /// Creates a join of two existing nodes.
  PlanId MakeJoin(JoinAlgorithm alg, PlanId left, PlanId right,
                  double cardinality, const CostVector& cost) {
    MPQOPT_DCHECK(alg != JoinAlgorithm::kScan);
    MPQOPT_DCHECK(left >= 0 && left < static_cast<PlanId>(nodes_.size()));
    MPQOPT_DCHECK(right >= 0 && right < static_cast<PlanId>(nodes_.size()));
    PlanNode node;
    node.tables = nodes_[left].tables.Union(nodes_[right].tables);
    MPQOPT_DCHECK(!nodes_[left].tables.Intersects(nodes_[right].tables));
    node.left = left;
    node.right = right;
    node.algorithm = alg;
    node.cardinality = cardinality;
    node.cost = cost;
    nodes_.push_back(node);
    return static_cast<PlanId>(nodes_.size() - 1);
  }

  const PlanNode& node(PlanId id) const {
    MPQOPT_DCHECK(id >= 0 && id < static_cast<PlanId>(nodes_.size()));
    return nodes_[static_cast<size_t>(id)];
  }

  size_t size() const { return nodes_.size(); }

  /// Approximate resident bytes, for memory accounting.
  size_t MemoryBytes() const { return nodes_.capacity() * sizeof(PlanNode); }

  void Reserve(size_t n) { nodes_.reserve(n); }
  void Clear() { nodes_.clear(); }

 private:
  std::vector<PlanNode> nodes_;
};

/// True if the subtree rooted at `id` is left-deep (every right child of
/// every join is a scan).
bool IsLeftDeep(const PlanArena& arena, PlanId id);

/// For a left-deep plan, returns the join order as a table sequence
/// (outermost/first-joined table first). CHECK-fails on bushy plans.
std::vector<int> LeftDeepJoinOrder(const PlanArena& arena, PlanId id);

/// Renders e.g. "HJ(SMJ(R0, R2), R1)" using table names "R<i>".
std::string PlanToString(const PlanArena& arena, PlanId id);

/// Number of join nodes in the subtree.
int CountJoins(const PlanArena& arena, PlanId id);

/// Deep-copies the subtree rooted at `id` from `source` into `dest`
/// (used by masters re-materializing worker plans into their own arena).
PlanId CopyPlan(const PlanArena& source, PlanId id, PlanArena* dest);

}  // namespace mpqopt

#endif  // MPQOPT_PLAN_PLAN_H_
