// Copyright 2026 mpqopt authors.
//
// Minimal Status / StatusOr error-propagation types, following the
// RocksDB/Arrow convention of returning rich status objects instead of
// throwing exceptions across library boundaries.

#ifndef MPQOPT_COMMON_STATUS_H_
#define MPQOPT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace mpqopt {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kCorruption,      ///< malformed serialized payload
  kUnimplemented,
  kInternal,
  kResourceExhausted,  ///< quota / capacity exceeded; retry later
  kDeadlineExceeded,   ///< request expired before it could run
};

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and tests.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {
    MPQOPT_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MPQOPT_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MPQOPT_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    MPQOPT_CHECK(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_STATUS_H_
