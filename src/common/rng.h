// Copyright 2026 mpqopt authors.
//
// Deterministic pseudo-random number generation for workload synthesis.
// We use xoshiro256** (public domain, Blackman & Vigna) instead of
// std::mt19937 so that generated workloads are reproducible across standard
// library implementations — benchmark queries must be identical on every
// platform for EXPERIMENTS.md numbers to be comparable.

#ifndef MPQOPT_COMMON_RNG_H_
#define MPQOPT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/macros.h"

namespace mpqopt {

/// xoshiro256** generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 to expand the seed into four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MPQOPT_DCHECK(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    // Modulo bias is negligible for the small ranges used in workload
    // generation (range << 2^64).
    return lo + static_cast<int64_t>(NextUint64() % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Log-uniform integer in [lo, hi]: exponent drawn uniformly. This is the
  /// distribution Steinbrunn et al. use for relation cardinalities so that
  /// small and large tables are equally likely per decade.
  int64_t LogUniformInt(int64_t lo, int64_t hi) {
    MPQOPT_DCHECK(lo >= 1 && lo <= hi);
    const double log_lo = std::log(static_cast<double>(lo));
    const double log_hi = std::log(static_cast<double>(hi) + 1.0);
    const double v = std::exp(log_lo + UniformDouble() * (log_hi - log_lo));
    int64_t out = static_cast<int64_t>(v);
    if (out < lo) out = lo;
    if (out > hi) out = hi;
    return out;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_RNG_H_
