// Copyright 2026 mpqopt authors.
//
// TableSet: a set of query tables represented as a 64-bit bitset. Table
// indices are dense, 0-based positions within one query (the paper's Q_x
// notation). All hot optimizer loops operate on this type, so everything is
// constexpr-friendly, branch-light, and allocation-free.

#ifndef MPQOPT_COMMON_TABLE_SET_H_
#define MPQOPT_COMMON_TABLE_SET_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace mpqopt {

/// Maximum number of tables per query supported by the bitset encoding.
inline constexpr int kMaxTables = 64;

/// A set of query-table indices backed by one uint64_t.
class TableSet {
 public:
  constexpr TableSet() : bits_(0) {}
  constexpr explicit TableSet(uint64_t bits) : bits_(bits) {}

  /// The empty set.
  static constexpr TableSet Empty() { return TableSet(0); }

  /// The singleton set {table}.
  static constexpr TableSet Single(int table) {
    return TableSet(uint64_t{1} << table);
  }

  /// The set {0, 1, ..., n - 1} of all tables of an n-table query.
  static constexpr TableSet AllTables(int n) {
    return n >= kMaxTables ? TableSet(~uint64_t{0})
                           : TableSet((uint64_t{1} << n) - 1);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool IsEmpty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }

  constexpr bool Contains(int table) const {
    return (bits_ >> table) & uint64_t{1};
  }
  constexpr bool ContainsAll(TableSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(TableSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  /// True if this set is a subset of `other` (possibly equal).
  constexpr bool IsSubsetOf(TableSet other) const {
    return (bits_ & other.bits_) == bits_;
  }

  constexpr TableSet Union(TableSet other) const {
    return TableSet(bits_ | other.bits_);
  }
  constexpr TableSet Intersect(TableSet other) const {
    return TableSet(bits_ & other.bits_);
  }
  constexpr TableSet Minus(TableSet other) const {
    return TableSet(bits_ & ~other.bits_);
  }
  constexpr TableSet With(int table) const {
    return TableSet(bits_ | (uint64_t{1} << table));
  }
  constexpr TableSet Without(int table) const {
    return TableSet(bits_ & ~(uint64_t{1} << table));
  }

  /// Index of the lowest-numbered table in the set. Undefined when empty.
  constexpr int Lowest() const { return std::countr_zero(bits_); }

  /// Index of the highest-numbered table in the set. Undefined when empty.
  constexpr int Highest() const { return 63 - std::countl_zero(bits_); }

  constexpr bool operator==(const TableSet& other) const = default;

  /// Iterates over the table indices contained in a TableSet, lowest first.
  /// Usage: for (int t : set) { ... }
  class Iterator {
   public:
    constexpr explicit Iterator(uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    constexpr bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };

  constexpr Iterator begin() const { return Iterator(bits_); }
  constexpr Iterator end() const { return Iterator(0); }

  /// Renders e.g. "{0,3,5}" for debugging and tests.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int t : *this) {
      if (!first) out += ",";
      out += std::to_string(t);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

/// Enumerates all non-empty proper subsets of `superset` in increasing
/// bit-pattern order using the standard (sub - 1) & mask trick. Calling
/// Next() repeatedly yields each subset once; returns false when exhausted.
///
/// Used by the unconstrained bushy DP baseline; the constrained bushy DP in
/// src/partition generates admissible splits directly instead.
class SubsetEnumerator {
 public:
  explicit SubsetEnumerator(TableSet superset)
      : mask_(superset.bits()), current_(0), done_(superset.IsEmpty()) {}

  /// Advances to the next non-empty proper subset. Returns false when all
  /// subsets have been produced.
  bool Next() {
    if (done_) return false;
    current_ = (current_ - mask_) & mask_;  // next subset of mask_
    if (current_ == mask_ || current_ == 0) {
      done_ = true;
      return false;
    }
    return true;
  }

  TableSet current() const { return TableSet(current_); }

 private:
  uint64_t mask_;
  uint64_t current_;
  bool done_;
};

/// Hash functor for TableSet suitable for unordered containers. Uses a
/// Fibonacci-style multiplicative mix; table-set keys are already dense
/// bit patterns so this spreads them well.
struct TableSetHash {
  size_t operator()(TableSet s) const {
    uint64_t x = s.bits();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_TABLE_SET_H_
