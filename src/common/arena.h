// Copyright 2026 mpqopt authors.
//
// Bump allocator for the per-query hot path. The master's Phase-3 decode
// and the workers' multi-objective memo both allocate many small,
// identically-shaped objects that all die together at the end of one
// optimization; a bump arena turns those node-per-allocation heap trips
// into pointer arithmetic and frees them wholesale via Reset().
//
// Only trivially-destructible types may live here: the arena never runs
// destructors. Allocations are stable — a block, once handed out, is
// never moved or reused until Reset() — so raw pointers into the arena
// stay valid for the arena's (or reset cycle's) lifetime.

#ifndef MPQOPT_COMMON_ARENA_H_
#define MPQOPT_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace mpqopt {

/// Block-chained bump allocator. Movable, not copyable.
class Arena {
 public:
  /// Blocks start small (plan-cache entries hold arenas with a handful of
  /// nodes and are charged ApproxBytes against a byte budget) and double
  /// up to the cap, so steady-state allocation is one malloc per ~1MB.
  static constexpr size_t kMinBlockBytes = 512;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 20;

  Arena() = default;

  Arena(Arena&& other) noexcept
      : blocks_(std::move(other.blocks_)),
        current_(std::exchange(other.current_, 0)),
        pos_(std::exchange(other.pos_, 0)),
        reserved_(std::exchange(other.reserved_, 0)) {
    other.blocks_.clear();
  }

  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      blocks_ = std::move(other.blocks_);
      other.blocks_.clear();
      current_ = std::exchange(other.current_, 0);
      pos_ = std::exchange(other.pos_, 0);
      reserved_ = std::exchange(other.reserved_, 0);
    }
    return *this;
  }

  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Arena);

  /// Returns `bytes` bytes aligned to `alignment` (a power of two).
  void* Allocate(size_t bytes, size_t alignment) {
    MPQOPT_DCHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
    if (bytes == 0) bytes = 1;  // distinct non-null results, like operator new
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        const size_t aligned = (pos_ + alignment - 1) & ~(alignment - 1);
        if (aligned + bytes <= block.size) {
          pos_ = aligned + bytes;
          return block.data.get() + aligned;
        }
        // This block is exhausted; fall through to the next (post-Reset
        // reuse) or grow.
        if (current_ + 1 < blocks_.size()) {
          ++current_;
          pos_ = 0;
          continue;
        }
      }
      AddBlock(bytes + alignment);
    }
  }

  /// Uninitialized storage for `count` objects of trivially-destructible
  /// type T. Returns nullptr for count == 0.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Ensures the next `bytes` bytes of allocations fit one block: when
  /// the current block's free tail is too small, one right-sized block
  /// is added up front. Callers that know a decode's total size (e.g.
  /// DeserializePlanSet's wire bound) turn the geometric growth chain
  /// into a single malloc.
  void ReserveBytes(size_t bytes) {
    const size_t free_tail = current_ < blocks_.size()
                                 ? blocks_[current_].size - pos_
                                 : 0;
    if (free_tail < bytes) AddBlock(bytes);
  }

  /// Rewinds the arena, keeping its blocks for reuse — the
  /// reset-per-query pattern reaches a steady state with zero mallocs.
  /// A fragmented arena (several growth-phase blocks) is released
  /// wholesale instead, so the next cycle re-packs into one block.
  void Reset() {
    if (blocks_.size() > 1) {
      const size_t total = reserved_;
      blocks_.clear();
      reserved_ = 0;
      // One block sized for everything the previous cycle needed.
      AddBlock(total < kMaxBlockBytes ? total : kMaxBlockBytes);
    }
    current_ = 0;
    pos_ = 0;
  }

  /// Bytes reserved across all blocks (the resident footprint, used for
  /// memory accounting — intentionally counts slack like
  /// vector::capacity()-based accounting did).
  size_t ApproxBytes() const {
    return reserved_ + blocks_.capacity() * sizeof(Block);
  }

  /// Bytes handed out since the last Reset().
  size_t used_bytes() const {
    size_t used = pos_;
    for (size_t b = 0; b < current_ && b < blocks_.size(); ++b) {
      used += blocks_[b].size;
    }
    return used;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes) {
    size_t size = reserved_ < kMinBlockBytes ? kMinBlockBytes : reserved_;
    if (size > kMaxBlockBytes) size = kMaxBlockBytes;
    if (size < min_bytes) size = min_bytes;
    Block block;
    block.data = std::make_unique<uint8_t[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    reserved_ += size;
    current_ = blocks_.size() - 1;
    pos_ = 0;
  }

  std::vector<Block> blocks_;
  size_t current_ = 0;  ///< block being bumped (== blocks_.size() when empty)
  size_t pos_ = 0;      ///< offset in the current block
  size_t reserved_ = 0;
};

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_ARENA_H_
