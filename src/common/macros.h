// Copyright 2026 mpqopt authors.
//
// Lightweight invariant-checking macros in the style used by most database
// engines (LevelDB/RocksDB/Arrow): CHECK-style assertions abort with a
// readable message; DCHECK compiles out in release builds.

#ifndef MPQOPT_COMMON_MACROS_H_
#define MPQOPT_COMMON_MACROS_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mpqopt {
namespace internal {

/// Optional last-words hook run after a failed CHECK prints but before
/// the abort — the flight recorder installs its dump here so a fatal
/// error ships the recent-event ring with the crash. The slot is cleared
/// before the hook runs, so a CHECK failing inside the hook itself
/// cannot recurse.
using FatalHook = void (*)();

inline std::atomic<FatalHook>& FatalHookSlot() {
  static std::atomic<FatalHook> slot{nullptr};
  return slot;
}

inline void SetFatalHook(FatalHook hook) {
  FatalHookSlot().store(hook, std::memory_order_relaxed);
}

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  if (FatalHook hook =
          FatalHookSlot().exchange(nullptr, std::memory_order_relaxed)) {
    hook();
  }
  std::abort();
}

}  // namespace internal
}  // namespace mpqopt

#define MPQOPT_CHECK(expr)                                     \
  do {                                                         \
    if (!(expr)) {                                             \
      ::mpqopt::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#define MPQOPT_CHECK_EQ(a, b) MPQOPT_CHECK((a) == (b))
#define MPQOPT_CHECK_NE(a, b) MPQOPT_CHECK((a) != (b))
#define MPQOPT_CHECK_LT(a, b) MPQOPT_CHECK((a) < (b))
#define MPQOPT_CHECK_LE(a, b) MPQOPT_CHECK((a) <= (b))
#define MPQOPT_CHECK_GT(a, b) MPQOPT_CHECK((a) > (b))
#define MPQOPT_CHECK_GE(a, b) MPQOPT_CHECK((a) >= (b))

#ifndef NDEBUG
#define MPQOPT_DCHECK(expr) MPQOPT_CHECK(expr)
#else
#define MPQOPT_DCHECK(expr) \
  do {                      \
  } while (0)
#endif

// Disallow copy/assign, for classes managing unique resources.
#define MPQOPT_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // MPQOPT_COMMON_MACROS_H_
