// Copyright 2026 mpqopt authors.
//
// Small integer-math helpers shared by the partitioning logic and the
// complexity-analysis helpers (paper Section 5).

#ifndef MPQOPT_COMMON_MATH_UTIL_H_
#define MPQOPT_COMMON_MATH_UTIL_H_

#include <bit>
#include <cstdint>

#include "common/macros.h"

namespace mpqopt {

/// True iff v is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)). Requires v >= 1.
constexpr int FloorLog2(uint64_t v) {
  return 63 - std::countl_zero(v);
}

/// Largest power of two that is <= v. Requires v >= 1.
constexpr uint64_t FloorPowerOfTwo(uint64_t v) {
  return uint64_t{1} << FloorLog2(v);
}

/// Integer exponentiation base^exp (no overflow checking; callers use small
/// arguments such as 3^n for n <= 20).
constexpr uint64_t IPow(uint64_t base, int exp) {
  uint64_t result = 1;
  for (int i = 0; i < exp; ++i) result *= base;
  return result;
}

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_MATH_UTIL_H_
