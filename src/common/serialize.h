// Copyright 2026 mpqopt authors.
//
// Byte-exact binary serialization used by the simulated network layer.
// Every message exchanged between the MPQ/SMA master and the workers is
// actually encoded through these writers/readers, so the "network bytes"
// reported by the benchmarks are real payload sizes, not estimates
// (mirroring the paper, which serialized Java objects over the wire).
//
// Encoding: little-endian fixed-width integers, IEEE-754 doubles, and
// varint-style unsigned counts are deliberately avoided — fixed widths keep
// the byte accounting easy to reason about in tests.
//
// Determinism contract: encoding the same value sequence always produces
// byte-identical buffers, on every platform. The plan-cache fingerprints
// (plancache/fingerprint.h) hash these bytes as the cache key, so any
// nondeterminism here would silently break memoized serving;
// tests/serialize_determinism_test.cc is the regression gate.

#ifndef MPQOPT_COMMON_SERIALIZE_H_
#define MPQOPT_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace mpqopt {

/// Append-only binary encoder.
///
/// By default the writer owns its buffer. The external-buffer constructor
/// instead appends into a caller-owned vector (after whatever it already
/// holds) — the zero-copy scatter path uses this to assemble per-partition
/// requests directly in the buffers the transport sends from, with no
/// intermediate copy. size() always reports the bytes written through
/// *this* writer, regardless of mode.
class ByteWriter {
 public:
  ByteWriter() : buffer_(&owned_) {}
  /// Appends into `*sink` (not cleared; writes land after existing bytes).
  /// `*sink` must outlive the writer.
  explicit ByteWriter(std::vector<uint8_t>* sink)
      : buffer_(sink), start_(sink->size()) {}

  // Not copyable/movable: owning mode holds a pointer into itself.
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void WriteU8(uint8_t v) { buffer_->push_back(v); }

  /// Canonical bool encoding: exactly 0 or 1, never other truthy bytes
  /// (keeps fingerprints of logically equal values byte-identical).
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  /// Appends `n` raw bytes verbatim (for splicing pre-encoded fragments).
  void WriteBytes(const uint8_t* data, size_t n) { WriteRaw(data, n); }

  const std::vector<uint8_t>& buffer() const { return *buffer_; }
  /// Only valid in owning mode.
  std::vector<uint8_t> Release() { return std::move(owned_); }
  /// Bytes written through this writer (excludes pre-existing sink bytes).
  size_t size() const { return buffer_->size() - start_; }

 private:
  void WriteRaw(const void* data, size_t n) {
    const size_t old = buffer_->size();
    buffer_->resize(old + n);
    std::memcpy(buffer_->data() + old, data, n);
  }

  std::vector<uint8_t> owned_;
  std::vector<uint8_t>* buffer_;
  size_t start_ = 0;
};

/// Encodes `v` exactly as ByteWriter::WriteU64 would, into a caller-owned
/// 8-byte slot. The session wire format prepends a u64 session id to
/// payloads workers parse with ByteReader::ReadU64; span-assembled frames
/// use this to stay byte-identical with the legacy copy-assembled path.
inline void EncodeU64(uint64_t v, uint8_t out[8]) { std::memcpy(out, &v, 8); }

/// Sequential binary decoder with bounds checking. Decoding failures
/// surface as Status::Corruption rather than undefined behaviour so that a
/// malformed message from a (simulated) remote node cannot crash the master.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadBool(bool* out) {
    uint8_t v = 0;
    Status s = ReadU8(&v);
    if (!s.ok()) return s;
    if (v > 1) return Status::Corruption("bool byte is neither 0 nor 1");
    *out = v != 0;
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  Status ReadString(std::string* out) {
    uint32_t n = 0;
    Status s = ReadU32(&n);
    if (!s.ok()) return s;
    if (pos_ + n > size_) {
      return Status::Corruption("string length exceeds buffer");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Raw view of the unread suffix, for hot-loop decoders that do their
  /// own pointer-comparison bounds checks (see plan_serde.cc). Pair with
  /// Advance() to commit however many bytes the raw decoder consumed.
  const uint8_t* cursor() const { return data_ + pos_; }
  void Advance(size_t n) {
    MPQOPT_DCHECK(n <= remaining());
    pos_ += n;
  }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::Corruption("read past end of buffer");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_SERIALIZE_H_
