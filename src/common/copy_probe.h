// Copyright 2026 mpqopt authors.
//
// Instrumentation for the zero-copy contract of the RPC hot path. The
// legacy payload builders (BuildRpcReplyPayload, BuildSessionOpenPayload,
// BuildSessionStepPayload) each assemble a frame payload by copying body
// bytes into a fresh vector; the span/gather path ships the same bytes
// through SendFrameV without touching them. Every legacy assembly copy
// reports here, so a test can assert that a full RPC round leaves the
// counter untouched — the proof that the hot path really is copy-free,
// not merely faster.
//
// The counters are process-wide relaxed atomics: cheap enough to leave on
// in release builds, and the tests only ever compare deltas.

#ifndef MPQOPT_COMMON_COPY_PROBE_H_
#define MPQOPT_COMMON_COPY_PROBE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mpqopt {

namespace internal {
inline std::atomic<uint64_t> g_payload_copies{0};
inline std::atomic<uint64_t> g_payload_copy_bytes{0};
}  // namespace internal

/// Records one payload-assembly copy of `bytes` bytes.
inline void CountPayloadCopy(size_t bytes) {
  internal::g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  internal::g_payload_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Number of payload-assembly copies since process start.
inline uint64_t PayloadCopiesSoFar() {
  return internal::g_payload_copies.load(std::memory_order_relaxed);
}

/// Total bytes those copies moved.
inline uint64_t PayloadCopyBytesSoFar() {
  return internal::g_payload_copy_bytes.load(std::memory_order_relaxed);
}

}  // namespace mpqopt

#endif  // MPQOPT_COMMON_COPY_PROBE_H_
