// Copyright 2026 mpqopt authors.
//
// Task-kind registry — names the worker entry points that can cross a
// real network.
//
// In-process backends execute arbitrary WorkerTask std::functions, but a
// remote worker cannot receive a closure: RpcBackend ships each request
// tagged with a registered TASK KIND, and the worker server maps the tag
// back to the matching entry point. Only self-contained functions from
// request bytes to response bytes can be registered — exactly the wire
// contract MpqOptimizer::WorkerMain and HeteroMpqOptimizer::WorkerMain
// already satisfy. (SMA's per-node tasks close over the node's memo
// replica and are deliberately NOT registrable here; stateful workers
// have their own registry of open/step/close triples and a session
// protocol — see cluster/session/stateful_task.h.)
//
// The registry also carries tiny diagnostic kinds (echo, fail,
// sleep-echo, ping) so the cross-backend conformance suite and the
// worker-crash tests can drive a remote worker without involving an
// optimizer; ping doubles as the health-probe frame the supervision
// subsystem (cluster/supervisor/) sends to verify a redialed worker
// actually serves before marking it healthy again.

#ifndef MPQOPT_CLUSTER_TASK_REGISTRY_H_
#define MPQOPT_CLUSTER_TASK_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "common/status.h"

namespace mpqopt {

/// Wire tag of one registered worker entry point. Values are part of the
/// RPC protocol — append new kinds, never renumber.
enum class RpcTaskKind : uint8_t {
  kUnknownTask = 0,    ///< unregistered function — not shippable
  kMpqWorker = 1,      ///< MpqOptimizer::WorkerMain
  kHeteroWorker = 2,   ///< HeteroMpqOptimizer::WorkerMain
  kEchoTask = 3,       ///< diagnostic: response = request
  kFailTask = 4,       ///< diagnostic: fails with the request as message
  kSleepEchoTask = 5,  ///< diagnostic: u32 ms sleep, then echo the rest
  kPingTask = 6,       ///< health probe: echoes the nonce payload
  kBatchTask = 7,      ///< envelope: N coalesced subtask requests
  kTracedTask = 8,     ///< envelope: trace id + one subtask request
  kStatsPollTask = 9,  ///< telemetry: worker's MetricsRegistry sample
};

/// Human-readable kind name for error messages.
const char* RpcTaskKindName(RpcTaskKind kind);

/// Diagnostic entry point: returns the request unchanged.
StatusOr<std::vector<uint8_t>> EchoTaskMain(const std::vector<uint8_t>& request);

/// Diagnostic entry point: returns Corruption with the request bytes
/// interpreted as the error message.
StatusOr<std::vector<uint8_t>> FailTaskMain(const std::vector<uint8_t>& request);

/// Diagnostic entry point: request = u32 sleep milliseconds + body;
/// sleeps, then echoes the body. Used to hold a remote worker busy while
/// crash handling is exercised.
StatusOr<std::vector<uint8_t>> SleepEchoTaskMain(
    const std::vector<uint8_t>& request);

/// Health-probe entry point: echoes the request nonce. Semantically a
/// liveness check, not a computation — the supervisor sends one after
/// every (re)dial and requires the nonce back before trusting the
/// connection with real round traffic.
StatusOr<std::vector<uint8_t>> PingTaskMain(
    const std::vector<uint8_t>& request);

/// Scatter-coalescing envelope: one frame carrying N independent subtask
/// requests, executed in order, each timed individually.
///
///   request   u32 count, then per subtask: u8 kind, u32 len, len bytes
///   response  per subtask: u8 ok, f64 measured compute seconds,
///             u32 len, then len bytes (response when ok, status text
///             when not)
///
/// A failed subtask does NOT fail the envelope — its slot reports ok=0
/// and the other subtasks still run, so the master can split one frame's
/// outcomes exactly like N separate exchanges. Nested batches and
/// unknown subtask kinds are per-slot errors. A pure function of its
/// request bytes like every other registered entry point, so a coalesced
/// scatter stays byte-identical to an uncoalesced one.
StatusOr<std::vector<uint8_t>> BatchTaskMain(
    const std::vector<uint8_t>& request);

/// Tracing envelope: wraps one subtask request together with the query's
/// u64 trace id, and returns the worker-side span timings ahead of the
/// subtask's response so the master can graft them into the query's
/// trace under the same id.
///
///   request   u64 trace_id, u8 inner kind, then the inner request bytes
///   response  u32 block_len, block { u64 trace_id, u32 span count, per
///             span: u8 name_len, name bytes, u64 start_rel_ns,
///             u64 dur_ns }, then the inner response bytes
///
/// Span times are RELATIVE nanoseconds from envelope entry (worker and
/// master clocks are unrelated; the master re-bases on receipt). A
/// failed subtask fails the envelope with the subtask's status — no
/// block, no partial reply — so error handling upstream is identical to
/// the unwrapped task's. Like every registered kind it is a pure
/// function of its request bytes: tracing observes, never perturbs.
/// Nested traced or batch envelopes are rejected (a traced request rides
/// INSIDE a batch slot, never the other way around).
StatusOr<std::vector<uint8_t>> TracedTaskMain(
    const std::vector<uint8_t>& request);

/// Telemetry poll entry point: ignores the (empty) request and returns
/// this process's global MetricsRegistry serialized with
/// obs::SerializeRegistrySample. The master's telemetry server sends one
/// per worker on a /metrics scrape (TTL-cached) and re-exports the
/// series under a worker="<addr>" label. Reading the registry is
/// relaxed-atomic sums — polling observes, never perturbs.
StatusOr<std::vector<uint8_t>> StatsPollTaskMain(
    const std::vector<uint8_t>& request);

/// One worker-side span timing carried back by a traced-task response.
struct ImportedSpan {
  std::string name;
  uint64_t start_rel_ns = 0;
  uint64_t dur_ns = 0;
};

/// Builds a kTracedTask request wrapping `inner_request` (see
/// TracedTaskMain for the layout).
std::vector<uint8_t> BuildTracedTaskRequest(
    uint64_t trace_id, RpcTaskKind inner_kind,
    const std::vector<uint8_t>& inner_request);

/// Splits a kTracedTask response into the worker-side spans and the
/// inner response body. `inner_body` gets exactly the bytes the wrapped
/// task returned.
Status ParseTracedTaskResponse(const std::vector<uint8_t>& response,
                               uint64_t* trace_id,
                               std::vector<ImportedSpan>* spans,
                               std::vector<uint8_t>* inner_body);

/// Maps a WorkerTask back to its registered kind, or kUnknownTask when
/// the task wraps anything but a registered entry-point function pointer.
RpcTaskKind ResolveTaskKind(const WorkerTask& task);

/// Maps a wire tag to the entry point it names; null for unknown tags.
WorkerTask TaskForKind(RpcTaskKind kind);

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_TASK_REGISTRY_H_
