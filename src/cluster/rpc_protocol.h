// Copyright 2026 mpqopt authors.
//
// The worker -> master reply wire format, shared by everything that
// speaks the RPC protocol: the worker serve loop (cluster/rpc_backend.cc)
// builds replies, and both the round path (RpcBackend) and the health
// probes (cluster/supervisor/) decode them.
//
// Reply frame, on top of the framed transport (net/frame_transport.h):
//
//   kind     RpcReplyKind (ok | task error)
//   payload  f64 compute-seconds (IEEE-754 bit pattern, little-endian),
//            then response bytes (ok) or status text (task error)
//
// The compute seconds are measured INSIDE the worker process, so
// FinalizeRound's modeled cluster time stays comparable with every other
// backend regardless of which worker (or which retry) produced the
// response.

#ifndef MPQOPT_CLUSTER_RPC_PROTOCOL_H_
#define MPQOPT_CLUSTER_RPC_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace mpqopt {

/// Reply-frame tags (the `kind` byte of frames flowing worker -> master).
/// kTaskError is DETERMINISTIC (the same request would fail anywhere, so
/// it is never retried); kSessionError means the referenced session
/// replica is GONE on this worker (unknown or TTL-expired id — see
/// cluster/session/) and the master may rebuild it by re-open + replay.
enum class RpcReplyKind : uint8_t {
  kOk = 0,
  kTaskError = 1,
  kSessionError = 2,
};

/// Bytes of the compute-seconds header that precedes every reply body.
constexpr size_t kRpcReplyHeaderBytes = sizeof(double);

/// Builds one reply payload: the compute-seconds header followed by
/// `size` body bytes. The f64 crosses the wire as its IEEE-754 bit
/// pattern in little-endian byte order, like the frame length prefix —
/// independent of either peer's host endianness.
inline std::vector<uint8_t> BuildRpcReplyPayload(double compute_seconds,
                                                 const uint8_t* body,
                                                 size_t size) {
  std::vector<uint8_t> payload(kRpcReplyHeaderBytes + size);
  uint64_t bits = 0;
  std::memcpy(&bits, &compute_seconds, sizeof(bits));
  for (size_t i = 0; i < sizeof(bits); ++i) {
    payload[i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  if (size > 0) {
    std::memcpy(payload.data() + kRpcReplyHeaderBytes, body, size);
  }
  return payload;
}

/// Decodes the compute-seconds header of a reply payload; the caller has
/// already checked payload.size() >= kRpcReplyHeaderBytes.
inline double DecodeRpcReplySeconds(const std::vector<uint8_t>& payload) {
  uint64_t bits = 0;
  for (size_t i = 0; i < sizeof(bits); ++i) {
    bits |= static_cast<uint64_t>(payload[i]) << (8 * i);
  }
  double seconds = 0;
  std::memcpy(&seconds, &bits, sizeof(seconds));
  return seconds;
}

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_RPC_PROTOCOL_H_
