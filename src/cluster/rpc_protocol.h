// Copyright 2026 mpqopt authors.
//
// The worker -> master reply wire format, shared by everything that
// speaks the RPC protocol: the worker serve loop (cluster/rpc_backend.cc)
// builds replies, and both the round path (RpcBackend) and the health
// probes (cluster/supervisor/) decode them.
//
// Reply frame, on top of the framed transport (net/frame_transport.h):
//
//   kind     RpcReplyKind (ok | task error)
//   payload  f64 compute-seconds (IEEE-754 bit pattern, little-endian),
//            then response bytes (ok) or status text (task error)
//
// The compute seconds are measured INSIDE the worker process, so
// FinalizeRound's modeled cluster time stays comparable with every other
// backend regardless of which worker (or which retry) produced the
// response.

#ifndef MPQOPT_CLUSTER_RPC_PROTOCOL_H_
#define MPQOPT_CLUSTER_RPC_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/copy_probe.h"
#include "common/status.h"
#include "net/frame_transport.h"

namespace mpqopt {

/// Reply-frame tags (the `kind` byte of frames flowing worker -> master).
/// kTaskError is DETERMINISTIC (the same request would fail anywhere, so
/// it is never retried); kSessionError means the referenced session
/// replica is GONE on this worker (unknown or TTL-expired id — see
/// cluster/session/) and the master may rebuild it by re-open + replay.
enum class RpcReplyKind : uint8_t {
  kOk = 0,
  kTaskError = 1,
  kSessionError = 2,
};

/// Bytes of the compute-seconds header that precedes every reply body.
constexpr size_t kRpcReplyHeaderBytes = sizeof(double);

/// Builds one reply payload: the compute-seconds header followed by
/// `size` body bytes. The f64 crosses the wire as its IEEE-754 bit
/// pattern in little-endian byte order, like the frame length prefix —
/// independent of either peer's host endianness.
/// Encodes the compute-seconds header into a caller-owned 8-byte slot.
inline void EncodeRpcReplySeconds(double compute_seconds,
                                  uint8_t out[kRpcReplyHeaderBytes]) {
  uint64_t bits = 0;
  std::memcpy(&bits, &compute_seconds, sizeof(bits));
  for (size_t i = 0; i < sizeof(bits); ++i) {
    out[i] = static_cast<uint8_t>(bits >> (8 * i));
  }
}

inline std::vector<uint8_t> BuildRpcReplyPayload(double compute_seconds,
                                                 const uint8_t* body,
                                                 size_t size) {
  CountPayloadCopy(size);  // the gather path (SendRpcReply) avoids this
  std::vector<uint8_t> payload(kRpcReplyHeaderBytes + size);
  EncodeRpcReplySeconds(compute_seconds, payload.data());
  if (size > 0) {
    std::memcpy(payload.data() + kRpcReplyHeaderBytes, body, size);
  }
  return payload;
}

/// Sends one reply frame — header and body gathered straight from the
/// caller's buffers (byte-identical to SendFrame(BuildRpcReplyPayload)
/// with zero assembly copies).
inline Status SendRpcReply(int fd, RpcReplyKind kind, double compute_seconds,
                           ConstSpan body) {
  uint8_t seconds[kRpcReplyHeaderBytes];
  EncodeRpcReplySeconds(compute_seconds, seconds);
  const ConstSpan parts[2] = {{seconds, sizeof(seconds)}, body};
  return SendFrameV(fd, static_cast<uint8_t>(kind), parts, 2);
}

/// Receives one reply frame, splitting the compute-seconds header off in
/// place: the body lands in `*body` (capacity reused across calls) with
/// no post-receive erase/copy. A reply shorter than the header is
/// kCorruption. `kind` is the raw frame kind byte — callers validate it
/// against RpcReplyKind themselves (a bad byte is a protocol error whose
/// handling is caller-specific).
inline Status RecvRpcReply(int fd, uint8_t* kind, double* compute_seconds,
                           std::vector<uint8_t>* body, int timeout_ms) {
  uint8_t header[kRpcReplyHeaderBytes];
  Status s = RecvFrameSplit(fd, kind, header, sizeof(header), body,
                            timeout_ms);
  if (!s.ok()) return s;
  uint64_t bits = 0;
  for (size_t i = 0; i < sizeof(bits); ++i) {
    bits |= static_cast<uint64_t>(header[i]) << (8 * i);
  }
  std::memcpy(compute_seconds, &bits, sizeof(*compute_seconds));
  return Status::OK();
}

/// Decodes the compute-seconds header of a reply payload; the caller has
/// already checked payload.size() >= kRpcReplyHeaderBytes.
inline double DecodeRpcReplySeconds(const std::vector<uint8_t>& payload) {
  uint64_t bits = 0;
  for (size_t i = 0; i < sizeof(bits); ++i) {
    bits |= static_cast<uint64_t>(payload[i]) << (8 * i);
  }
  double seconds = 0;
  std::memcpy(&seconds, &bits, sizeof(seconds));
  return seconds;
}

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_RPC_PROTOCOL_H_
