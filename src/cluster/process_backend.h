// Copyright 2026 mpqopt authors.
//
// Process-based shared-nothing execution: each worker task runs in its
// own forked OS process and the ONLY channel back to the master is a
// pipe carrying the serialized response. This is the strictest
// single-machine approximation of the paper's cluster — worker memory is
// genuinely private (copy-on-write after fork; nothing written by a
// worker is visible to the master or to other workers), so any hidden
// reliance on shared optimizer state would break here.
//
// ThreadBackend remains the default (cheaper, easier to debug). All
// backends produce identical results and identical byte counts — a
// property tests/backend_test.cc asserts.

#ifndef MPQOPT_CLUSTER_PROCESS_BACKEND_H_
#define MPQOPT_CLUSTER_PROCESS_BACKEND_H_

#include <mutex>

#include "cluster/backend.h"

namespace mpqopt {

/// Runs rounds of worker tasks in forked child processes.
class ProcessBackend : public ExecutionBackend {
 public:
  explicit ProcessBackend(NetworkModel model) : ExecutionBackend(model) {}

  /// Runs one round; task i is executed in its own child process with
  /// requests[i]. Children run sequentially (fork, execute, reap) so
  /// per-task compute timing stays unpolluted on oversubscribed hosts.
  /// Concurrent RunRound calls are serialized on a backend-wide mutex:
  /// interleaved pipe()/fork() from multiple threads would leak each
  /// round's pipe write-ends into the other round's children, turning a
  /// crashed worker into a parent-side hang instead of a clean error.
  StatusOr<RoundResult> RunRound(const std::vector<WorkerTask>& tasks,
                                 const std::vector<std::vector<uint8_t>>&
                                     requests) override;

  const char* name() const override { return "process"; }

 private:
  std::mutex fork_mutex_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_PROCESS_BACKEND_H_
