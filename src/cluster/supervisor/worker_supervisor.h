// Copyright 2026 mpqopt authors.
//
// WorkerSupervisor — connection lifecycle and health supervision of the
// remote worker pool behind RpcBackend.
//
// The supervisor owns the set of "host:port" worker endpoints and, per
// worker, the persistent connection plus a health state machine:
//
//            exchange failed                    redial budget exhausted
//   HEALTHY ─────────────────► SUSPECT ───────────────────────► DEAD
//      ▲                          │
//      └──────────────────────────┘
//        redial + ping succeeded
//
// A SUSPECT worker is redialed with capped exponential backoff (first
// retry immediately — a worker that just restarted accepts at once —
// then backoff_initial_ms, doubling up to backoff_max_ms) and at most
// max_redials times per failure episode; a successful redial must answer
// a ping frame (RpcTaskKind::kPingTask with a fresh nonce) before the
// worker is trusted with round traffic again. DEAD is permanent for the
// lifetime of the supervisor: a worker that burned its redial budget is
// assumed gone, and round recovery (RpcBackend) re-scatters its tasks
// across the survivors.
//
// Thread safety: every method may be called concurrently. Each worker
// carries TWO locks: `io_mutex` serializes whole request/response
// exchanges and redials (so interleaved rounds cannot mix frames on one
// stream, and two rounds never dial one endpoint twice at once), while
// the small `state_mutex` guards the health state and counters. Health
// reads (Snapshot, health, NextRedialDelayMs, the HEALTHY fast path of
// UsableWorkers) take only the state lock, so a stats probe never stalls
// behind an in-flight exchange — worker compute time is unbounded, and a
// monitoring call must not wait on it. Lock order is io_mutex before
// state_mutex, never the reverse.

#ifndef MPQOPT_CLUSTER_SUPERVISOR_WORKER_SUPERVISOR_H_
#define MPQOPT_CLUSTER_SUPERVISOR_WORKER_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "common/macros.h"
#include "common/status.h"
#include "net/frame_transport.h"

namespace mpqopt {

/// Knobs of the supervision state machine (see header comment). The
/// BackendOptions worker_* fields map onto these.
struct SupervisorOptions {
  /// TCP connect timeout per dial attempt.
  int connect_timeout_ms = 5000;
  /// Bound on each task reply wait; -1 waits indefinitely.
  int io_timeout_ms = -1;
  /// Bound on the ping reply after a (re)dial. Unlike task replies, a
  /// health probe must never wait indefinitely.
  int ping_timeout_ms = 2000;
  /// Redials allowed per failure episode before SUSPECT -> DEAD.
  int max_redials = 2;
  /// Initial redial backoff; doubles per failed redial.
  int backoff_initial_ms = 50;
  /// Cap on the exponential backoff.
  int backoff_max_ms = 2000;
};

/// Upper bound on the recovery attempts a round (or a session node) gets
/// before giving up: a pathological worker that keeps accepting and then
/// dying must not livelock a caller. The pool's total redial budget is
/// (max_redials + 1) dials per worker; two passes of slack cover the
/// initial scatter and a final all-healthy retry. Exposed as a free
/// function so the arithmetic is unit-testable without sockets.
inline size_t RecoveryPassBudget(int max_redials, size_t num_workers) {
  return 2 +
         (static_cast<size_t>(max_redials > 0 ? max_redials : 0) + 1) *
             num_workers;
}

/// Owns the worker endpoints, their connections, and their health.
class WorkerSupervisor {
 public:
  /// Dials every endpoint and verifies each with a ping; fails (naming
  /// the endpoint) if any worker is unreachable or does not answer.
  static StatusOr<std::unique_ptr<WorkerSupervisor>> Connect(
      const std::vector<std::string>& endpoints, SupervisorOptions options);

  MPQOPT_DISALLOW_COPY_AND_ASSIGN(WorkerSupervisor);

  size_t num_workers() const { return workers_.size(); }
  const SupervisorOptions& options() const { return options_; }

  /// One request/response exchange on worker `w` (serialized under the
  /// worker's mutex). On a connection-level failure the worker is marked
  /// SUSPECT (`*worker_failed` = true) and the task may be re-scattered;
  /// a clean task-error reply leaves the worker HEALTHY
  /// (`*worker_failed` = false) — the failure is the task's own and
  /// deterministic, so retrying it elsewhere would fail again. A
  /// session-error reply (the referenced replica is gone; see
  /// cluster/session/) also leaves the worker HEALTHY and surfaces as
  /// StatusCode::kNotFound, which the session layer treats as
  /// recoverable by re-open + replay.
  Status Exchange(size_t w, uint8_t task_kind,
                  const std::vector<uint8_t>& request,
                  std::vector<uint8_t>* response, double* compute_seconds,
                  bool* worker_failed);

  /// Zero-copy variant of Exchange: the request goes out as a gather of
  /// `parts` (one frame, byte-identical to the concatenation) and the
  /// reply body lands directly in `*response` with the compute-seconds
  /// header split off in place — no master-side payload copies in either
  /// direction. Exchange is a one-part wrapper around this.
  Status ExchangeV(size_t w, uint8_t task_kind, const ConstSpan* parts,
                   size_t num_parts, std::vector<uint8_t>* response,
                   double* compute_seconds, bool* worker_failed);

  /// Indices of workers a scatter pass may use right now: every HEALTHY
  /// worker, plus every SUSPECT worker whose backoff has expired and
  /// whose redial-plus-ping succeeded inline during this call.
  std::vector<size_t> UsableWorkers();

  /// Milliseconds (>= 1) until another scatter attempt makes sense:
  /// the earliest SUSPECT worker's backoff expiry, or 1 when a worker is
  /// already HEALTHY again (a concurrent round may have redialed it
  /// between this caller's UsableWorkers() and now — retry immediately,
  /// not "all dead"). Returns -1 only when every worker is DEAD and the
  /// pool can never serve again. The round-recovery loop sleeps on this
  /// when a scatter pass finds no usable worker.
  int NextRedialDelayMs() const;

  /// Health of worker `w` (point-in-time).
  WorkerHealth health(size_t w) const;

  /// Per-worker snapshots plus the aggregate reconnect counters.
  BackendHealth Snapshot() const;

  /// The backoff before redial attempt `failed_redials` + 1: 0 for the
  /// first attempt of an episode, then backoff_initial_ms doubling per
  /// failure, capped at backoff_max_ms. Exposed for tests.
  static int BackoffDelayMs(const SupervisorOptions& options,
                            int failed_redials);

 private:
  struct Worker {
    std::string endpoint;
    /// Serializes socket use: whole exchanges and redials. Held long
    /// (a task exchange spans the worker's compute time).
    mutable std::mutex io_mutex;
    /// Guards everything below. Held only for O(1) reads/writes, so
    /// health snapshots never wait on network I/O. Acquired after
    /// io_mutex when both are needed; never the other way around.
    mutable std::mutex state_mutex;
    Socket socket;  ///< touched only under io_mutex
    WorkerHealth health = WorkerHealth::kHealthy;
    /// Failed redials in the current episode; resets on success.
    int episode_redial_failures = 0;
    std::chrono::steady_clock::time_point next_redial_at;
    /// Cumulative counters for snapshots.
    uint64_t reconnects = 0;
    uint64_t redial_failures = 0;
    uint64_t io_failures = 0;
    std::string last_error;
  };

  explicit WorkerSupervisor(SupervisorOptions options)
      : options_(options) {}

  /// Dial + ping-verify one endpoint.
  StatusOr<Socket> EstablishConnection(const std::string& endpoint) const;

  /// Health of `worker` under its state lock.
  WorkerHealth HealthOf(const Worker& worker) const;

  /// Marks `worker` failed after a connection-level error (caller holds
  /// io_mutex): closes the socket, transitions to SUSPECT (or straight
  /// to DEAD when the redial budget is 0), records `error`.
  void MarkFailed(Worker* worker, const Status& error);

  /// Attempts one redial of a SUSPECT worker whose backoff expired
  /// (caller holds io_mutex). Returns true when the worker is HEALTHY
  /// again — either this call's redial succeeded, or a concurrent one
  /// already had.
  bool TryRedial(Worker* worker);

  SupervisorOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> reconnect_attempts_{0};
  std::atomic<uint64_t> reconnects_{0};
  mutable std::atomic<uint64_t> ping_nonce_{0};
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SUPERVISOR_WORKER_SUPERVISOR_H_
