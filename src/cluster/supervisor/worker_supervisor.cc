// Copyright 2026 mpqopt authors.

#include "cluster/supervisor/worker_supervisor.h"

#include <algorithm>

#include "cluster/rpc_protocol.h"
#include "cluster/task_registry.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace mpqopt {

namespace {

using Clock = std::chrono::steady_clock;

int MillisUntil(Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<int64_t>(remaining.count(), 0));
}

}  // namespace

int WorkerSupervisor::BackoffDelayMs(const SupervisorOptions& options,
                                     int failed_redials) {
  if (failed_redials <= 0) return 0;  // first redial of an episode: now
  const int initial = std::max(options.backoff_initial_ms, 0);
  const int cap = std::max(options.backoff_max_ms, initial);
  // Shift capped well below the int range so the doubling cannot wrap.
  const int doublings = std::min(failed_redials - 1, 20);
  const int64_t delay = static_cast<int64_t>(initial) << doublings;
  return static_cast<int>(std::min<int64_t>(delay, cap));
}

StatusOr<std::unique_ptr<WorkerSupervisor>> WorkerSupervisor::Connect(
    const std::vector<std::string>& endpoints, SupervisorOptions options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "rpc backend needs at least one worker endpoint");
  }
  std::unique_ptr<WorkerSupervisor> supervisor(
      new WorkerSupervisor(options));
  for (const std::string& endpoint : endpoints) {
    StatusOr<Socket> socket = supervisor->EstablishConnection(endpoint);
    if (!socket.ok()) {
      return Status::Internal("cannot connect to rpc worker " + endpoint +
                              ": " + socket.status().ToString());
    }
    auto worker = std::make_unique<Worker>();
    worker->endpoint = endpoint;
    worker->socket = std::move(socket).value();
    supervisor->workers_.push_back(std::move(worker));
  }
  return supervisor;
}

StatusOr<Socket> WorkerSupervisor::EstablishConnection(
    const std::string& endpoint) const {
  StatusOr<Socket> socket = DialTcp(endpoint, options_.connect_timeout_ms);
  if (!socket.ok()) return socket.status();
  // Ping-verify before trusting the connection: an accepting listener is
  // not yet a serving worker (the process may be wedged, or something
  // else entirely may own the port after a restart).
  const uint64_t nonce =
      ping_nonce_.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL +
      0x7f4a7c15u;
  std::vector<uint8_t> probe(sizeof(nonce));
  for (size_t i = 0; i < sizeof(nonce); ++i) {
    probe[i] = static_cast<uint8_t>(nonce >> (8 * i));
  }
  Status s = SendFrame(socket.value().fd(),
                       static_cast<uint8_t>(RpcTaskKind::kPingTask), probe);
  if (!s.ok()) return Status::Internal("ping send failed: " + s.ToString());
  uint8_t reply_kind = 0;
  double seconds = 0;
  std::vector<uint8_t> echo;
  s = RecvRpcReply(socket.value().fd(), &reply_kind, &seconds, &echo,
                   options_.ping_timeout_ms);
  if (!s.ok()) return Status::Internal("ping reply failed: " + s.ToString());
  if (reply_kind != static_cast<uint8_t>(RpcReplyKind::kOk) || echo != probe) {
    return Status::Internal("ping reply mismatch (not an mpqopt worker, or "
                            "a worker/master version mismatch)");
  }
  return socket;
}

WorkerHealth WorkerSupervisor::HealthOf(const Worker& worker) const {
  std::lock_guard<std::mutex> state(worker.state_mutex);
  return worker.health;
}

void WorkerSupervisor::MarkFailed(Worker* worker, const Status& error) {
  worker->socket.Close();  // io_mutex held by the caller
  std::lock_guard<std::mutex> state(worker->state_mutex);
  ++worker->io_failures;
  worker->last_error = error.ToString();
  if (worker->health == WorkerHealth::kDead) return;
  if (options_.max_redials <= 0) {
    // No redial budget: first connection failure is final.
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kWorkerState, "%s %s -> dead: %s",
        worker->endpoint.c_str(), WorkerHealthName(worker->health),
        error.ToString().c_str());
    worker->health = WorkerHealth::kDead;
    return;
  }
  if (worker->health == WorkerHealth::kHealthy) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kWorkerState, "%s healthy -> suspect: %s",
        worker->endpoint.c_str(), error.ToString().c_str());
    worker->health = WorkerHealth::kSuspect;
    worker->episode_redial_failures = 0;
    worker->next_redial_at = Clock::now();  // first redial: immediately
  }
}

bool WorkerSupervisor::TryRedial(Worker* worker) {
  {
    // Re-check under the state lock: a concurrent pass holding io_mutex
    // before us may have already redialed (HEALTHY), burned the budget
    // (DEAD), or pushed the backoff window out.
    std::lock_guard<std::mutex> state(worker->state_mutex);
    if (worker->health == WorkerHealth::kHealthy) return true;
    if (worker->health == WorkerHealth::kDead) return false;
    if (Clock::now() < worker->next_redial_at) return false;
  }
  reconnect_attempts_.fetch_add(1, std::memory_order_relaxed);
  StatusOr<Socket> socket = EstablishConnection(worker->endpoint);
  if (socket.ok()) {
    worker->socket = std::move(socket).value();
    std::lock_guard<std::mutex> state(worker->state_mutex);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kWorkerState, "%s %s -> healthy (redial ok)",
        worker->endpoint.c_str(), WorkerHealthName(worker->health));
    worker->health = WorkerHealth::kHealthy;
    worker->episode_redial_failures = 0;
    ++worker->reconnects;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::lock_guard<std::mutex> state(worker->state_mutex);
  ++worker->redial_failures;
  ++worker->episode_redial_failures;
  worker->last_error = socket.status().ToString();
  if (worker->episode_redial_failures >= options_.max_redials) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kWorkerState,
        "%s suspect -> dead (redial budget exhausted): %s",
        worker->endpoint.c_str(), socket.status().ToString().c_str());
    worker->health = WorkerHealth::kDead;
  } else {
    worker->next_redial_at =
        Clock::now() + std::chrono::milliseconds(BackoffDelayMs(
                           options_, worker->episode_redial_failures));
  }
  return false;
}

Status WorkerSupervisor::Exchange(size_t w, uint8_t task_kind,
                                  const std::vector<uint8_t>& request,
                                  std::vector<uint8_t>* response,
                                  double* compute_seconds,
                                  bool* worker_failed) {
  const ConstSpan part{request.data(), request.size()};
  return ExchangeV(w, task_kind, &part, 1, response, compute_seconds,
                   worker_failed);
}

Status WorkerSupervisor::ExchangeV(size_t w, uint8_t task_kind,
                                   const ConstSpan* parts, size_t num_parts,
                                   std::vector<uint8_t>* response,
                                   double* compute_seconds,
                                   bool* worker_failed) {
  MPQOPT_CHECK_LT(w, workers_.size());
  // Covers the whole exchange: the io_mutex wait (connection contention
  // is visible in the trace) plus the send and the blocking receive.
  obs::Span exchange_span("rpc.exchange");
  Worker* worker = workers_[w].get();
  std::lock_guard<std::mutex> io(worker->io_mutex);
  const WorkerHealth health = HealthOf(*worker);
  if (health != WorkerHealth::kHealthy) {
    // A concurrent round failed this worker after the scatter chose it.
    *worker_failed = true;
    return Status::Internal("rpc worker " + worker->endpoint + " is " +
                            WorkerHealthName(health));
  }
  Status s = SendFrameV(worker->socket.fd(), task_kind, parts, num_parts);
  if (!s.ok()) {
    s = Status::Internal("rpc worker " + worker->endpoint +
                         ": request send failed: " + s.ToString());
    MarkFailed(worker, s);
    *worker_failed = true;
    return s;
  }
  // The reply body lands straight in the caller's buffer (header split
  // off by the transport); on error replies it holds the status text.
  uint8_t reply_kind = 0;
  double seconds = 0;
  s = RecvRpcReply(worker->socket.fd(), &reply_kind, &seconds, response,
                   options_.io_timeout_ms);
  if (!s.ok()) {
    s = Status::Internal("rpc worker " + worker->endpoint +
                         " disconnected or timed out mid-round: " +
                         s.ToString());
    MarkFailed(worker, s);
    *worker_failed = true;
    return s;
  }
  if (reply_kind == static_cast<uint8_t>(RpcReplyKind::kTaskError)) {
    // The task itself failed on a healthy worker. Deterministic — the
    // same bytes would fail anywhere — so the round must not retry it,
    // and the connection stays usable for later rounds.
    *worker_failed = false;
    return Status::Internal(
        "rpc worker " + worker->endpoint + " task failed: " +
        std::string(response->begin(), response->end()));
  }
  if (reply_kind == static_cast<uint8_t>(RpcReplyKind::kSessionError)) {
    // The referenced session replica is gone on this worker (unknown or
    // TTL-expired id). The connection itself is healthy; the session
    // layer recovers by re-open + replay on kNotFound.
    *worker_failed = false;
    return Status::NotFound(
        "rpc worker " + worker->endpoint + " lost the session: " +
        std::string(response->begin(), response->end()));
  }
  if (reply_kind != static_cast<uint8_t>(RpcReplyKind::kOk)) {
    s = Status::Corruption("rpc worker " + worker->endpoint +
                           " sent an unknown reply kind " +
                           std::to_string(reply_kind));
    MarkFailed(worker, s);
    *worker_failed = true;
    return s;
  }
  *compute_seconds = seconds;
  return Status::OK();
}

std::vector<size_t> WorkerSupervisor::UsableWorkers() {
  std::vector<size_t> usable;
  usable.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker* worker = workers_[i].get();
    bool redial = false;
    {
      std::lock_guard<std::mutex> state(worker->state_mutex);
      switch (worker->health) {
        case WorkerHealth::kHealthy:
          usable.push_back(i);
          break;
        case WorkerHealth::kSuspect:
          redial = Clock::now() >= worker->next_redial_at;
          break;
        case WorkerHealth::kDead:
          break;
      }
    }
    if (redial) {
      // The dial itself needs the io lock (it replaces the socket);
      // TryRedial re-checks the state once inside, since another pass
      // may have won the race for this worker.
      std::lock_guard<std::mutex> io(worker->io_mutex);
      if (TryRedial(worker)) usable.push_back(i);
    }
  }
  return usable;
}

int WorkerSupervisor::NextRedialDelayMs() const {
  int earliest = -1;
  bool any_healthy = false;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::lock_guard<std::mutex> state(worker->state_mutex);
    if (worker->health == WorkerHealth::kHealthy) {
      any_healthy = true;
      continue;
    }
    if (worker->health != WorkerHealth::kSuspect) continue;
    const int delay = std::max(MillisUntil(worker->next_redial_at), 1);
    if (earliest < 0 || delay < earliest) earliest = delay;
  }
  if (earliest >= 0) return earliest;
  // No SUSPECT worker — but a HEALTHY one means "retry now", not "all
  // dead": a concurrent round may have redialed a worker between the
  // caller's empty UsableWorkers() pass and this call.
  if (any_healthy) return 1;
  return -1;
}

WorkerHealth WorkerSupervisor::health(size_t w) const {
  MPQOPT_CHECK_LT(w, workers_.size());
  return HealthOf(*workers_[w]);
}

BackendHealth WorkerSupervisor::Snapshot() const {
  BackendHealth health;
  health.workers.reserve(workers_.size());
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::lock_guard<std::mutex> state(worker->state_mutex);
    WorkerHealthSnapshot snapshot;
    snapshot.endpoint = worker->endpoint;
    snapshot.health = worker->health;
    snapshot.reconnects = worker->reconnects;
    snapshot.redial_failures = worker->redial_failures;
    snapshot.io_failures = worker->io_failures;
    snapshot.last_error = worker->last_error;
    health.workers.push_back(std::move(snapshot));
  }
  health.reconnect_attempts =
      reconnect_attempts_.load(std::memory_order_relaxed);
  health.reconnects = reconnects_.load(std::memory_order_relaxed);
  return health;
}

}  // namespace mpqopt
