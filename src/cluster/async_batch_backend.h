// Copyright 2026 mpqopt authors.
//
// Persistent-pool execution for serving workloads. ThreadBackend pays a
// thread spawn + join for every round — fine for one benchmark query,
// wasteful when a service pushes many concurrent optimizer rounds per
// second. AsyncBatchBackend keeps a fixed pool of host threads alive for
// the backend's lifetime and pipelines rounds through it:
//
//  * Rounds submitted concurrently from any number of threads share the
//    pool; their tasks are interleaved fairly (each pool thread claims at
//    most one task per active round per pass, round-robin), so one large
//    query cannot starve the small ones behind it.
//  * Task handoff is lock-free on the hot path: claiming a task is a
//    single fetch_add on the round's atomic cursor. A mutex is touched
//    only when a round arrives or retires and when an idle worker parks.
//  * The submitting thread does not just block: it helps drain its own
//    round, so a single-threaded caller still makes progress even when
//    the pool is busy with other rounds.
//
// Responses, per-task compute measurement, traffic accounting, and the
// modeled cluster time are identical to the other backends (shared
// FinalizeRound); only the host-side scheduling differs.

#ifndef MPQOPT_CLUSTER_ASYNC_BATCH_BACKEND_H_
#define MPQOPT_CLUSTER_ASYNC_BATCH_BACKEND_H_

#include <condition_variable>
#include <mutex>
#include <thread>

#include "cluster/backend.h"

namespace mpqopt {

/// Executes rounds on a persistent worker pool shared across rounds and
/// across concurrently submitting threads.
class AsyncBatchBackend : public ExecutionBackend {
 public:
  /// `pool_threads` fixes the pool size (0 = hardware concurrency).
  explicit AsyncBatchBackend(NetworkModel model, int pool_threads = 0);
  ~AsyncBatchBackend() override;

  MPQOPT_DISALLOW_COPY_AND_ASSIGN(AsyncBatchBackend);

  StatusOr<RoundResult> RunRound(const std::vector<WorkerTask>& tasks,
                                 const std::vector<std::vector<uint8_t>>&
                                     requests) override;

  const char* name() const override { return "async"; }

  int pool_size() const { return static_cast<int>(pool_.size()); }

 private:
  struct ActiveRound;

  /// Claims and executes one task of `round`; returns false if the
  /// round has no unclaimed tasks left.
  static bool RunOneTask(ActiveRound* round);

  void WorkerLoop();

  // Round registry. Guarded by registry_mutex_; generation_ bumps on
  // every arrival/retirement so workers know to refresh their snapshot.
  std::mutex registry_mutex_;
  std::condition_variable work_cv_;
  std::vector<std::shared_ptr<ActiveRound>> active_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> pool_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_ASYNC_BATCH_BACKEND_H_
