// Copyright 2026 mpqopt authors.
//
// Shared-nothing cluster runtime. Worker tasks are self-contained
// functions from request bytes to response bytes — exactly the contract a
// remote executor would have. Tasks never touch shared optimizer state;
// the only inter-node channel is the serialized messages.
//
// Execution happens on a local thread pool (one worker task at a time per
// hardware thread). Each task's compute time is measured individually, so
// the runtime can report
//  * measured wall-clock time of the whole round, and
//  * modeled cluster time: what the round would take with one physical
//    node per task, i.e. dispatch overheads + max over workers of
//    (request transfer + compute + response transfer).
// The modeled time is what the paper's "Time (ms)" axes correspond to;
// measured per-worker compute ("W-Time") is reported alongside, as in
// Figure 2.

#ifndef MPQOPT_CLUSTER_EXECUTOR_H_
#define MPQOPT_CLUSTER_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "net/network_model.h"

namespace mpqopt {

/// A worker task: consumes a request payload, returns a response payload.
using WorkerTask =
    std::function<StatusOr<std::vector<uint8_t>>(const std::vector<uint8_t>&)>;

/// Result of executing one round of tasks.
struct RoundResult {
  /// Response payload per task, in task order.
  std::vector<std::vector<uint8_t>> responses;
  /// Measured compute seconds per task (excludes transfers).
  std::vector<double> compute_seconds;
  /// Modeled cluster completion time of the round (see header comment).
  double simulated_seconds = 0;
  /// Measured wall-clock seconds for the whole round on this host.
  double wall_seconds = 0;
  /// Bytes and messages that crossed the simulated network this round.
  TrafficStats traffic;
};

/// Executes rounds of independent worker tasks.
class ClusterExecutor {
 public:
  /// `max_threads` caps host-side concurrency (0 = hardware concurrency).
  explicit ClusterExecutor(NetworkModel model, int max_threads = 0);

  /// Runs one round: task i receives requests[i]. Returns an error if any
  /// task fails (first failure wins).
  StatusOr<RoundResult> RunRound(const std::vector<WorkerTask>& tasks,
                                 const std::vector<std::vector<uint8_t>>&
                                     requests);

  const NetworkModel& network() const { return model_; }

 private:
  NetworkModel model_;
  int max_threads_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_EXECUTOR_H_
