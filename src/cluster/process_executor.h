// Copyright 2026 mpqopt authors.
//
// Process-based shared-nothing execution: each worker task runs in its
// own forked OS process and the ONLY channel back to the master is a
// pipe carrying the serialized response. This is the strictest
// single-machine approximation of the paper's cluster — worker memory is
// genuinely private (copy-on-write after fork; nothing written by a
// worker is visible to the master or to other workers), so any hidden
// reliance on shared optimizer state would break here.
//
// The thread-based ClusterExecutor remains the default (cheaper, easier
// to debug); MpqOptions::execution_mode selects between them. Both
// produce identical results and identical byte counts — a property the
// integration tests assert.

#ifndef MPQOPT_CLUSTER_PROCESS_EXECUTOR_H_
#define MPQOPT_CLUSTER_PROCESS_EXECUTOR_H_

#include "cluster/executor.h"

namespace mpqopt {

/// Runs rounds of worker tasks in forked child processes.
class ProcessExecutor {
 public:
  explicit ProcessExecutor(NetworkModel model) : model_(model) {}

  /// Runs one round; task i is executed in its own child process with
  /// requests[i]. Children run sequentially (fork, execute, reap) so
  /// per-task compute timing stays unpolluted on oversubscribed hosts.
  StatusOr<RoundResult> RunRound(const std::vector<WorkerTask>& tasks,
                                 const std::vector<std::vector<uint8_t>>&
                                     requests);

  const NetworkModel& network() const { return model_; }

 private:
  NetworkModel model_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_PROCESS_EXECUTOR_H_
