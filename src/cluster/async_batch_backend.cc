// Copyright 2026 mpqopt authors.

#include "cluster/async_batch_backend.h"

#include <atomic>
#include <chrono>

#include "obs/trace.h"

namespace mpqopt {

/// One submitted round, shared between the submitter and the pool.
///
/// Lifetime: the submitter owns the RoundResult and the task/request
/// vectors on its stack; workers reach them through the raw pointers
/// below. The protocol that makes this safe: a worker first claims a task
/// index with fetch_add on `next_task` and only dereferences the pointers
/// for indices < num_tasks; `completed` reaches num_tasks only after
/// every claimed task has finished writing its result slot, and the
/// submitter does not return (or retire the round) before that. Workers
/// holding a stale snapshot of a retired round see next_task >= num_tasks
/// and never touch the pointers; the ActiveRound object itself stays
/// alive through their shared_ptr.
struct AsyncBatchBackend::ActiveRound {
  const std::vector<WorkerTask>* tasks = nullptr;
  const std::vector<std::vector<uint8_t>>* requests = nullptr;
  RoundResult* result = nullptr;
  size_t num_tasks = 0;

  /// The submitter's trace (null = untraced round). Carried in the round
  /// itself, not thread-locally: pool threads execute tasks of whichever
  /// round has work, so the span must follow the round.
  obs::QueryTrace* trace = nullptr;
  uint32_t trace_parent = obs::kNoSpan;

  /// Lock-free task handoff: claim = one fetch_add.
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> completed{0};

  std::mutex error_mutex;
  Status first_error = Status::OK();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
};

AsyncBatchBackend::AsyncBatchBackend(NetworkModel model, int pool_threads)
    : ExecutionBackend(model) {
  int threads = pool_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  pool_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    pool_.emplace_back([this]() { WorkerLoop(); });
  }
}

AsyncBatchBackend::~AsyncBatchBackend() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    shutdown_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

bool AsyncBatchBackend::RunOneTask(ActiveRound* round) {
  const size_t i = round->next_task.fetch_add(1);
  if (i >= round->num_tasks) return false;
  const uint64_t span_start =
      round->trace != nullptr ? obs::MonotonicNanos() : 0;
  const auto start = std::chrono::steady_clock::now();
  StatusOr<std::vector<uint8_t>> response =
      (*round->tasks)[i]((*round->requests)[i]);
  const auto end = std::chrono::steady_clock::now();
  round->result->compute_seconds[i] =
      std::chrono::duration<double>(end - start).count();
  if (round->trace != nullptr) {
    round->trace->AddCompleteSpan("compute", round->trace_parent, span_start,
                                  obs::MonotonicNanos());
  }
  if (response.ok()) {
    round->result->responses[i] = std::move(response).value();
  } else {
    std::lock_guard<std::mutex> lock(round->error_mutex);
    if (round->first_error.ok()) round->first_error = response.status();
  }
  if (round->completed.fetch_add(1) + 1 == round->num_tasks) {
    std::lock_guard<std::mutex> lock(round->done_mutex);
    round->done = true;
    round->done_cv.notify_all();
  }
  return true;
}

void AsyncBatchBackend::WorkerLoop() {
  std::vector<std::shared_ptr<ActiveRound>> snapshot;
  uint64_t snapshot_generation = 0;
  size_t cursor = 0;
  while (true) {
    // Refresh the snapshot when rounds arrived or retired; park when the
    // current snapshot holds no claimable work.
    {
      std::unique_lock<std::mutex> lock(registry_mutex_);
      if (shutdown_) return;
      if (generation_ != snapshot_generation) {
        snapshot = active_;
        snapshot_generation = generation_;
      }
    }
    // One pass: claim at most one task per round, round-robin, so tasks
    // of concurrently submitted rounds interleave fairly. The cursor is
    // fixed for the whole pass (advancing it mid-pass would revisit
    // already-served rounds) and rotates afterwards so successive passes
    // start at different rounds.
    bool progressed = false;
    const size_t rounds = snapshot.size();
    for (size_t k = 0; k < rounds; ++k) {
      ActiveRound* round = snapshot[(cursor + k) % rounds].get();
      if (RunOneTask(round)) progressed = true;
    }
    if (rounds > 0) cursor = (cursor + 1) % rounds;
    if (!progressed) {
      std::unique_lock<std::mutex> lock(registry_mutex_);
      work_cv_.wait(lock, [&]() {
        return shutdown_ || generation_ != snapshot_generation;
      });
      if (shutdown_) return;
    }
  }
}

StatusOr<RoundResult> AsyncBatchBackend::RunRound(
    const std::vector<WorkerTask>& tasks,
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(tasks.size(), requests.size());
  const size_t num_tasks = tasks.size();
  RoundResult result;
  result.responses.resize(num_tasks);
  result.compute_seconds.assign(num_tasks, 0.0);

  const auto round_start = std::chrono::steady_clock::now();
  if (num_tasks > 0) {
    auto round = std::make_shared<ActiveRound>();
    round->tasks = &tasks;
    round->requests = &requests;
    round->result = &result;
    round->num_tasks = num_tasks;
    const obs::TraceContext submitter_ctx = obs::CurrentTraceContext();
    round->trace = submitter_ctx.trace;
    round->trace_parent = submitter_ctx.span;

    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      MPQOPT_CHECK(!shutdown_);
      active_.push_back(round);
      ++generation_;
    }
    work_cv_.notify_all();

    // Help drain our own round instead of blocking outright — keeps a
    // single submitter responsive even when the pool is busy elsewhere.
    while (RunOneTask(round.get())) {
    }
    {
      std::unique_lock<std::mutex> lock(round->done_mutex);
      round->done_cv.wait(lock, [&]() { return round->done; });
    }
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i] == round) {
          active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
      ++generation_;
    }
    if (!round->first_error.ok()) return round->first_error;
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();

  FinalizeRound(requests, &result);
  return result;
}

}  // namespace mpqopt
