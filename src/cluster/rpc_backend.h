// Copyright 2026 mpqopt authors.
//
// RpcBackend — ExecutionBackend over real TCP sockets.
//
// The other backends host worker tasks on this machine; RpcBackend is the
// first genuinely distributed runtime: each round's requests are
// scattered over a pool of persistent connections to mpqopt_worker server
// processes (one connection per worker endpoint, round-robin when a round
// has more tasks than workers), and the request/response byte contract on
// the wire is exactly the payload contract the in-process backends
// execute — the conformance suite in tests/backend_test.cc asserts
// byte-identical responses and identical TrafficStats across all four
// backends.
//
// Protocol, on top of the framed transport (src/net/frame_transport.h):
//
//   request frame   kind = RpcTaskKind, payload = request bytes
//   reply frame     kind = 0 (ok) | 1 (task error)
//                   payload = f64 compute-seconds (little-endian), then
//                             response bytes (ok) or status text (error)
//
// The compute seconds are measured INSIDE the worker process (shipped as
// a little-endian IEEE-754 bit pattern), so FinalizeRound's modeled
// cluster time stays comparable with every other backend. A worker that
// CRASHES mid-round surfaces as an error Status on the round, not a
// hang: the kernel delivers an EOF/RST for the dead peer, and the
// connection is marked dead so later rounds touching it fail fast too.
// A peer that silently stops answering without closing (network
// partition, SIGSTOP, half-open TCP) is a different failure mode —
// connections enable TCP keepalive, and `io_timeout_ms` bounds each
// reply wait when a deployment needs a hard deadline (the default, -1,
// waits indefinitely: worker compute time is unbounded in general).
//
// Thread safety: RunRound may be called concurrently; a per-connection
// mutex serializes whole request/response exchanges, so interleaved
// rounds cannot mix frames on one stream.

#ifndef MPQOPT_CLUSTER_RPC_BACKEND_H_
#define MPQOPT_CLUSTER_RPC_BACKEND_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "net/frame_transport.h"

namespace mpqopt {

/// Reply-frame tags (the `kind` byte of frames flowing worker -> master).
enum class RpcReplyKind : uint8_t {
  kOk = 0,
  kTaskError = 1,
};

/// Master-side backend dispatching rounds to remote worker processes.
class RpcBackend : public ExecutionBackend {
 public:
  /// Connects to every "host:port" endpoint; fails (naming the endpoint)
  /// if any worker is unreachable within the timeout. `io_timeout_ms`
  /// bounds each per-task reply wait (-1 = wait indefinitely; see the
  /// header comment).
  static StatusOr<std::shared_ptr<RpcBackend>> Connect(
      NetworkModel model, const std::vector<std::string>& endpoints,
      int connect_timeout_ms = 5000, int io_timeout_ms = -1);

  StatusOr<RoundResult> RunRound(
      const std::vector<WorkerTask>& tasks,
      const std::vector<std::vector<uint8_t>>& requests) override;

  const char* name() const override { return "rpc"; }

  /// Number of connected worker endpoints (the scatter width).
  size_t num_connections() const { return connections_.size(); }

 private:
  struct Connection {
    std::string endpoint;
    Socket socket;
    std::mutex mutex;  ///< serializes request/response pairs; guards `dead`
    bool dead = false;
  };

  RpcBackend(NetworkModel model,
             std::vector<std::unique_ptr<Connection>> connections,
             int io_timeout_ms)
      : ExecutionBackend(model),
        connections_(std::move(connections)),
        io_timeout_ms_(io_timeout_ms) {}

  /// One request/response exchange on `connection` (locked inside).
  Status CallWorker(Connection* connection, uint8_t task_kind,
                    const std::vector<uint8_t>& request,
                    std::vector<uint8_t>* response, double* compute_seconds);

  std::vector<std::unique_ptr<Connection>> connections_;
  int io_timeout_ms_ = -1;
  /// Rotates each round's first connection so concurrent small rounds
  /// spread over the whole pool.
  std::atomic<size_t> round_offset_{0};
};

/// Splits a comma-separated "--workers-addr=" value into endpoints,
/// dropping empty entries.
std::vector<std::string> SplitEndpoints(const std::string& comma_separated);

/// Worker-server side: serves framed task requests on one established
/// connection until the peer disconnects. Runs the registered entry point
/// for each request's task kind; unknown kinds get a task-error reply.
void ServeRpcConnection(Socket socket);

/// Accept loop of mpqopt_worker: spawns one detached serving thread per
/// accepted connection. Returns only when accept fails fatally.
Status ServeRpcWorker(TcpListener* listener);

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_RPC_BACKEND_H_
