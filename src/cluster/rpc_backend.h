// Copyright 2026 mpqopt authors.
//
// RpcBackend — ExecutionBackend over real TCP sockets.
//
// The other backends host worker tasks on this machine; RpcBackend is the
// first genuinely distributed runtime: each round's requests are
// scattered over a pool of persistent connections to mpqopt_worker server
// processes, and the request/response byte contract on the wire is
// exactly the payload contract the in-process backends execute — the
// conformance suite in tests/backend_test.cc asserts byte-identical
// responses and identical TrafficStats across all four backends.
//
// Protocol, on top of the framed transport (src/net/frame_transport.h):
//
//   request frame   kind = RpcTaskKind, payload = request bytes
//   reply frame     kind = RpcReplyKind, payload = compute-seconds header
//                   then response bytes or status text
//                   (see cluster/rpc_protocol.h)
//
// Frame kinds at or above kSessionFrameKindBase are session-control
// frames of the stateful-worker protocol (cluster/session/): the serve
// loop routes them into a per-connection SessionStore, and OpenSession
// returns a wire-backed SessionHandle with reconnect + replay recovery.
//
// Failure handling is SELF-HEALING, not fail-fast: connection lifecycle
// and worker health live in a WorkerSupervisor
// (cluster/supervisor/worker_supervisor.h), which redials failed workers
// with capped exponential backoff and ping-verifies them before reuse.
// RunRound layers round-level recovery on top — when an exchange fails at
// the connection level, only the tasks that did not complete are
// re-scattered across the currently usable workers (tasks are pure
// functions of their request bytes, so a retry elsewhere returns the same
// bytes, and each task's compute seconds come from its one successful
// attempt — modeled cluster time stays consistent with the in-process
// backends). A round fails only when a task itself errors (deterministic,
// never retried), when every worker is DEAD, or when the bounded number
// of re-scatter passes is exhausted (a pathological worker that keeps
// accepting and dying cannot livelock a round). Retry/backoff knobs come
// from BackendOptions: worker_retries, worker_backoff_ms,
// worker_backoff_max_ms, io_timeout_ms.
//
// Thread safety: RunRound may be called concurrently; the supervisor's
// per-worker mutex serializes whole request/response exchanges, so
// interleaved rounds cannot mix frames on one stream.

#ifndef MPQOPT_CLUSTER_RPC_BACKEND_H_
#define MPQOPT_CLUSTER_RPC_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "cluster/rpc_protocol.h"
#include "cluster/session/session_store.h"
#include "cluster/supervisor/worker_supervisor.h"
#include "net/frame_transport.h"

namespace mpqopt {

/// Master-side backend dispatching rounds to remote worker processes.
class RpcBackend : public ExecutionBackend {
 public:
  /// Connects to (and ping-verifies) every "host:port" endpoint; fails
  /// naming the endpoint if any worker is unreachable. Supervision knobs
  /// (redial budget, backoff, reply deadline) ride in `supervision`.
  /// With `coalesce_scatter`, RunRound merges each worker's share of a
  /// round into one kBatchTask envelope frame, group-committed with
  /// whatever other rounds are scattering to that worker at the same
  /// moment (BackendOptions::coalesce_scatter; responses, plan bytes,
  /// and modeled accounting are identical either way).
  static StatusOr<std::shared_ptr<RpcBackend>> Connect(
      NetworkModel model, const std::vector<std::string>& endpoints,
      SupervisorOptions supervision = {}, bool coalesce_scatter = false);

  StatusOr<RoundResult> RunRound(
      const std::vector<WorkerTask>& tasks,
      const std::vector<std::vector<uint8_t>>& requests) override;

  /// Stateful sessions over the wire: replicas live in remote
  /// mpqopt_worker processes, with reconnect + replay recovery (see
  /// cluster/session/rpc_session.h).
  StatusOr<std::unique_ptr<SessionHandle>> OpenSession(
      StatefulTaskKind kind,
      const std::vector<std::vector<uint8_t>>& open_requests) override;

  const char* name() const override { return "rpc"; }

  /// Per-worker health plus reconnect/re-scatter counters.
  BackendHealth health() const override;

  /// Polls every HEALTHY worker's metrics registry over a kStatsPollTask
  /// exchange. A failed poll marks that worker SUSPECT exactly like a
  /// failed round exchange (a scrape doubles as a passive health probe)
  /// and the worker is skipped, never the whole poll.
  std::vector<obs::WorkerStatsSample> PollWorkerStats() override;

  /// Number of supervised worker endpoints (the maximal scatter width).
  size_t num_connections() const { return supervisor_->num_workers(); }

  const WorkerSupervisor& supervisor() const { return *supervisor_; }

 private:
  RpcBackend(NetworkModel model, std::unique_ptr<WorkerSupervisor> supervisor,
             bool coalesce_scatter);

  /// One task request riding a coalesced exchange, with its per-task
  /// outputs — the batcher fills exactly what a plain Exchange would.
  struct BatchItem {
    uint8_t kind = 0;
    const std::vector<uint8_t>* request = nullptr;
    std::vector<uint8_t>* response = nullptr;
    double* compute_seconds = nullptr;
    Status status;
    bool worker_failed = false;
    bool finished = false;
  };

  /// Per-worker group-commit queue: concurrent lanes enqueue their
  /// items; one submitter at a time becomes the drainer and flushes
  /// everything queued — its own items plus whatever other rounds have
  /// queued meanwhile — as a single kBatchTask envelope.
  struct WorkerBatcher {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<BatchItem*> queue;
    bool draining = false;
  };

  /// Runs `items` on worker `w` through the batcher; returns when every
  /// item is finished (each with its own status, like N plain
  /// Exchanges).
  void ExchangeCoalesced(size_t w, const std::vector<BatchItem*>& items);
  /// Sends one drained batch (envelope, or a plain exchange for a lone
  /// item) and fills the items' outputs. Marked finished by the caller
  /// under the batcher lock.
  void DriveBatch(size_t w, const std::vector<BatchItem*>& batch);

  std::unique_ptr<WorkerSupervisor> supervisor_;
  const bool coalesce_scatter_;
  std::vector<std::unique_ptr<WorkerBatcher>> batchers_;
  std::atomic<uint64_t> tasks_rescattered_{0};
  std::atomic<uint64_t> rounds_recovered_{0};
  std::atomic<uint64_t> scatter_batches_{0};
  std::atomic<uint64_t> tasks_coalesced_{0};
  /// Rotates each round's first worker so concurrent small rounds spread
  /// over the whole pool.
  std::atomic<size_t> round_offset_{0};
};

/// Splits a comma-separated "--workers-addr=" value into endpoints,
/// dropping empty entries.
std::vector<std::string> SplitEndpoints(const std::string& comma_separated);

/// Worker-server-side knobs shared by every serving thread.
struct RpcServeOptions {
  /// Graceful-shutdown flag (mpqopt_worker sets it from SIGTERM/SIGINT).
  /// When non-null, idle serving threads poll it and exit once set; an
  /// in-flight task is drained — executed and answered — first.
  const std::atomic<bool>* stop = nullptr;
  /// Chaos test axis (mpqopt_worker --chaos-kill-after=N): when non-null,
  /// decremented once per received task request; when it drops below
  /// zero the process exits abruptly WITHOUT replying — a deterministic
  /// mid-round crash for the failover tests.
  std::atomic<int64_t>* chaos_tasks_remaining = nullptr;
  /// Session-store knobs of this worker (TTL GC, per-session byte cap);
  /// every connection gets its own store built from these.
  SessionStoreOptions sessions;
};

/// Worker-server side: serves framed task requests on one established
/// connection until the peer disconnects (or `serve.stop` is set and the
/// connection is idle). Runs the registered entry point for each
/// request's task kind; unknown kinds get a task-error reply.
void ServeRpcConnection(Socket socket, RpcServeOptions serve = {});

/// Accept loop of mpqopt_worker: spawns one serving thread per accepted
/// connection. After `serve.stop` is set, returns OK once every serving
/// thread has drained, or an error when the 10 s grace period expires
/// with tasks still in flight (so exit 0 really means "nothing was
/// cut off"). Without a stop flag it returns only on a fatal accept
/// failure.
Status ServeRpcWorker(TcpListener* listener, RpcServeOptions serve = {});

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_RPC_BACKEND_H_
