// Copyright 2026 mpqopt authors.

#include "cluster/task_registry.h"

#include <chrono>
#include <cstddef>
#include <iterator>
#include <string>
#include <thread>
#include <utility>

#include "common/serialize.h"
#include "mpq/heterogeneous.h"
#include "mpq/mpq.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"

namespace mpqopt {
namespace {

/// The exact function-pointer type a registrable entry point must have;
/// ResolveTaskKind can only see through std::functions wrapping this type.
using WorkerFn =
    StatusOr<std::vector<uint8_t>> (*)(const std::vector<uint8_t>&);

}  // namespace

const char* RpcTaskKindName(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return "unknown";
    case RpcTaskKind::kMpqWorker:
      return "mpq";
    case RpcTaskKind::kHeteroWorker:
      return "hetero";
    case RpcTaskKind::kEchoTask:
      return "echo";
    case RpcTaskKind::kFailTask:
      return "fail";
    case RpcTaskKind::kSleepEchoTask:
      return "sleep-echo";
    case RpcTaskKind::kPingTask:
      return "ping";
    case RpcTaskKind::kBatchTask:
      return "batch";
    case RpcTaskKind::kTracedTask:
      return "traced";
    case RpcTaskKind::kStatsPollTask:
      return "stats-poll";
  }
  return "unknown";
}

StatusOr<std::vector<uint8_t>> EchoTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

StatusOr<std::vector<uint8_t>> FailTaskMain(
    const std::vector<uint8_t>& request) {
  return Status::Corruption(std::string(request.begin(), request.end()));
}

StatusOr<std::vector<uint8_t>> SleepEchoTaskMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  uint32_t sleep_ms = 0;
  Status s = reader.ReadU32(&sleep_ms);
  if (!s.ok()) return s;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  return std::vector<uint8_t>(request.begin() + sizeof(sleep_ms),
                              request.end());
}

StatusOr<std::vector<uint8_t>> PingTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

StatusOr<std::vector<uint8_t>> StatsPollTaskMain(
    const std::vector<uint8_t>& request) {
  if (!request.empty()) {
    return Status::InvalidArgument("stats poll request carries no payload");
  }
  ByteWriter writer;
  obs::SerializeRegistrySample(obs::MetricsRegistry::Global().Sample(),
                               &writer);
  return writer.Release();
}

StatusOr<std::vector<uint8_t>> BatchTaskMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  uint32_t count = 0;
  Status s = reader.ReadU32(&count);
  if (!s.ok()) return s;
  ByteWriter writer;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    uint32_t len = 0;
    s = reader.ReadU8(&kind);
    if (s.ok()) s = reader.ReadU32(&len);
    if (!s.ok()) return s;
    if (len > reader.remaining()) {
      return Status::Corruption("batch subtask " + std::to_string(i) +
                                " length exceeds the envelope");
    }
    std::vector<uint8_t> sub_request(reader.cursor(), reader.cursor() + len);
    reader.Advance(len);

    // Nested batches are rejected per slot (an envelope inside an
    // envelope means a buggy master, and unbounded nesting helps nobody);
    // unknown kinds report like the serve loop's unknown-kind error.
    WorkerTask task = kind == static_cast<uint8_t>(RpcTaskKind::kBatchTask)
                          ? nullptr
                          : TaskForKind(static_cast<RpcTaskKind>(kind));
    const auto start = std::chrono::steady_clock::now();
    StatusOr<std::vector<uint8_t>> response =
        task == nullptr
            ? StatusOr<std::vector<uint8_t>>(Status::InvalidArgument(
                  "batch subtask kind " + std::to_string(kind) +
                  " is not executable"))
            : task(sub_request);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    writer.WriteU8(response.ok() ? 1 : 0);
    writer.WriteDouble(seconds);
    if (response.ok()) {
      const std::vector<uint8_t>& body = response.value();
      writer.WriteU32(static_cast<uint32_t>(body.size()));
      writer.WriteBytes(body.data(), body.size());
    } else {
      const std::string msg = response.status().ToString();
      writer.WriteU32(static_cast<uint32_t>(msg.size()));
      writer.WriteBytes(reinterpret_cast<const uint8_t*>(msg.data()),
                        msg.size());
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("batch envelope has trailing bytes");
  }
  return writer.Release();
}

StatusOr<std::vector<uint8_t>> TracedTaskMain(
    const std::vector<uint8_t>& request) {
  const auto entry = std::chrono::steady_clock::now();
  ByteReader reader(request);
  uint64_t trace_id = 0;
  uint8_t inner_kind = 0;
  Status s = reader.ReadU64(&trace_id);
  if (s.ok()) s = reader.ReadU8(&inner_kind);
  if (!s.ok()) return s;
  if (inner_kind == static_cast<uint8_t>(RpcTaskKind::kTracedTask) ||
      inner_kind == static_cast<uint8_t>(RpcTaskKind::kBatchTask)) {
    return Status::InvalidArgument(
        std::string("traced envelope cannot wrap ") +
        RpcTaskKindName(static_cast<RpcTaskKind>(inner_kind)));
  }
  WorkerTask task = TaskForKind(static_cast<RpcTaskKind>(inner_kind));
  if (task == nullptr) {
    return Status::InvalidArgument("traced subtask kind " +
                                   std::to_string(inner_kind) +
                                   " is not executable");
  }
  std::vector<uint8_t> inner_request(reader.cursor(),
                                     reader.cursor() + reader.remaining());

  const auto rel_ns = [entry](std::chrono::steady_clock::time_point t) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - entry)
            .count());
  };
  const auto compute_start = std::chrono::steady_clock::now();
  StatusOr<std::vector<uint8_t>> response = task(inner_request);
  const auto compute_end = std::chrono::steady_clock::now();
  // A failed subtask fails the whole envelope: upstream sees exactly the
  // status the unwrapped task would have produced.
  if (!response.ok()) return response.status();

  struct WireSpan {
    const char* name;
    uint64_t start_rel_ns;
    uint64_t dur_ns;
  };
  const auto now = std::chrono::steady_clock::now();
  const WireSpan spans[] = {
      {"worker.serve", 0, rel_ns(now)},
      {"worker.compute", rel_ns(compute_start),
       rel_ns(compute_end) - rel_ns(compute_start)},
  };

  ByteWriter writer;
  ByteWriter block;
  block.WriteU64(trace_id);
  block.WriteU32(static_cast<uint32_t>(std::size(spans)));
  for (const WireSpan& span : spans) {
    const size_t name_len = std::char_traits<char>::length(span.name);
    block.WriteU8(static_cast<uint8_t>(name_len));
    block.WriteBytes(reinterpret_cast<const uint8_t*>(span.name), name_len);
    block.WriteU64(span.start_rel_ns);
    block.WriteU64(span.dur_ns);
  }
  const std::vector<uint8_t> block_bytes = block.Release();
  writer.WriteU32(static_cast<uint32_t>(block_bytes.size()));
  writer.WriteBytes(block_bytes.data(), block_bytes.size());
  const std::vector<uint8_t>& body = response.value();
  writer.WriteBytes(body.data(), body.size());
  return writer.Release();
}

std::vector<uint8_t> BuildTracedTaskRequest(
    uint64_t trace_id, RpcTaskKind inner_kind,
    const std::vector<uint8_t>& inner_request) {
  ByteWriter writer;
  writer.WriteU64(trace_id);
  writer.WriteU8(static_cast<uint8_t>(inner_kind));
  writer.WriteBytes(inner_request.data(), inner_request.size());
  return writer.Release();
}

Status ParseTracedTaskResponse(const std::vector<uint8_t>& response,
                               uint64_t* trace_id,
                               std::vector<ImportedSpan>* spans,
                               std::vector<uint8_t>* inner_body) {
  ByteReader reader(response);
  uint32_t block_len = 0;
  Status s = reader.ReadU32(&block_len);
  if (!s.ok()) return s;
  if (block_len > reader.remaining()) {
    return Status::Corruption("traced response block exceeds the reply");
  }
  const size_t body_offset = response.size() - reader.remaining() + block_len;
  s = reader.ReadU64(trace_id);
  uint32_t count = 0;
  if (s.ok()) s = reader.ReadU32(&count);
  if (!s.ok()) return s;
  spans->clear();
  spans->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t name_len = 0;
    s = reader.ReadU8(&name_len);
    if (!s.ok()) return s;
    if (name_len > reader.remaining()) {
      return Status::Corruption("traced span name exceeds the block");
    }
    ImportedSpan span;
    span.name.assign(reinterpret_cast<const char*>(reader.cursor()),
                     name_len);
    reader.Advance(name_len);
    s = reader.ReadU64(&span.start_rel_ns);
    if (s.ok()) s = reader.ReadU64(&span.dur_ns);
    if (!s.ok()) return s;
    spans->push_back(std::move(span));
  }
  inner_body->assign(response.begin() + static_cast<ptrdiff_t>(body_offset),
                     response.end());
  return Status::OK();
}

RpcTaskKind ResolveTaskKind(const WorkerTask& task) {
  const WorkerFn* fn = task.target<WorkerFn>();
  if (fn == nullptr) return RpcTaskKind::kUnknownTask;
  if (*fn == &MpqOptimizer::WorkerMain) return RpcTaskKind::kMpqWorker;
  if (*fn == &HeteroMpqOptimizer::WorkerMain) {
    return RpcTaskKind::kHeteroWorker;
  }
  if (*fn == &EchoTaskMain) return RpcTaskKind::kEchoTask;
  if (*fn == &FailTaskMain) return RpcTaskKind::kFailTask;
  if (*fn == &SleepEchoTaskMain) return RpcTaskKind::kSleepEchoTask;
  if (*fn == &PingTaskMain) return RpcTaskKind::kPingTask;
  if (*fn == &BatchTaskMain) return RpcTaskKind::kBatchTask;
  if (*fn == &TracedTaskMain) return RpcTaskKind::kTracedTask;
  if (*fn == &StatsPollTaskMain) return RpcTaskKind::kStatsPollTask;
  return RpcTaskKind::kUnknownTask;
}

WorkerTask TaskForKind(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return nullptr;
    case RpcTaskKind::kMpqWorker:
      return WorkerTask(&MpqOptimizer::WorkerMain);
    case RpcTaskKind::kHeteroWorker:
      return WorkerTask(&HeteroMpqOptimizer::WorkerMain);
    case RpcTaskKind::kEchoTask:
      return WorkerTask(&EchoTaskMain);
    case RpcTaskKind::kFailTask:
      return WorkerTask(&FailTaskMain);
    case RpcTaskKind::kSleepEchoTask:
      return WorkerTask(&SleepEchoTaskMain);
    case RpcTaskKind::kPingTask:
      return WorkerTask(&PingTaskMain);
    case RpcTaskKind::kBatchTask:
      return WorkerTask(&BatchTaskMain);
    case RpcTaskKind::kTracedTask:
      return WorkerTask(&TracedTaskMain);
    case RpcTaskKind::kStatsPollTask:
      return WorkerTask(&StatsPollTaskMain);
  }
  return nullptr;
}

}  // namespace mpqopt
