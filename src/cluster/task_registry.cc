// Copyright 2026 mpqopt authors.

#include "cluster/task_registry.h"

#include <chrono>
#include <thread>

#include "common/serialize.h"
#include "mpq/heterogeneous.h"
#include "mpq/mpq.h"

namespace mpqopt {
namespace {

/// The exact function-pointer type a registrable entry point must have;
/// ResolveTaskKind can only see through std::functions wrapping this type.
using WorkerFn =
    StatusOr<std::vector<uint8_t>> (*)(const std::vector<uint8_t>&);

}  // namespace

const char* RpcTaskKindName(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return "unknown";
    case RpcTaskKind::kMpqWorker:
      return "mpq";
    case RpcTaskKind::kHeteroWorker:
      return "hetero";
    case RpcTaskKind::kEchoTask:
      return "echo";
    case RpcTaskKind::kFailTask:
      return "fail";
    case RpcTaskKind::kSleepEchoTask:
      return "sleep-echo";
    case RpcTaskKind::kPingTask:
      return "ping";
  }
  return "unknown";
}

StatusOr<std::vector<uint8_t>> EchoTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

StatusOr<std::vector<uint8_t>> FailTaskMain(
    const std::vector<uint8_t>& request) {
  return Status::Corruption(std::string(request.begin(), request.end()));
}

StatusOr<std::vector<uint8_t>> SleepEchoTaskMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  uint32_t sleep_ms = 0;
  Status s = reader.ReadU32(&sleep_ms);
  if (!s.ok()) return s;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  return std::vector<uint8_t>(request.begin() + sizeof(sleep_ms),
                              request.end());
}

StatusOr<std::vector<uint8_t>> PingTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

RpcTaskKind ResolveTaskKind(const WorkerTask& task) {
  const WorkerFn* fn = task.target<WorkerFn>();
  if (fn == nullptr) return RpcTaskKind::kUnknownTask;
  if (*fn == &MpqOptimizer::WorkerMain) return RpcTaskKind::kMpqWorker;
  if (*fn == &HeteroMpqOptimizer::WorkerMain) {
    return RpcTaskKind::kHeteroWorker;
  }
  if (*fn == &EchoTaskMain) return RpcTaskKind::kEchoTask;
  if (*fn == &FailTaskMain) return RpcTaskKind::kFailTask;
  if (*fn == &SleepEchoTaskMain) return RpcTaskKind::kSleepEchoTask;
  if (*fn == &PingTaskMain) return RpcTaskKind::kPingTask;
  return RpcTaskKind::kUnknownTask;
}

WorkerTask TaskForKind(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return nullptr;
    case RpcTaskKind::kMpqWorker:
      return WorkerTask(&MpqOptimizer::WorkerMain);
    case RpcTaskKind::kHeteroWorker:
      return WorkerTask(&HeteroMpqOptimizer::WorkerMain);
    case RpcTaskKind::kEchoTask:
      return WorkerTask(&EchoTaskMain);
    case RpcTaskKind::kFailTask:
      return WorkerTask(&FailTaskMain);
    case RpcTaskKind::kSleepEchoTask:
      return WorkerTask(&SleepEchoTaskMain);
    case RpcTaskKind::kPingTask:
      return WorkerTask(&PingTaskMain);
  }
  return nullptr;
}

}  // namespace mpqopt
