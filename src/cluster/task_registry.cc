// Copyright 2026 mpqopt authors.

#include "cluster/task_registry.h"

#include <chrono>
#include <thread>

#include "common/serialize.h"
#include "mpq/heterogeneous.h"
#include "mpq/mpq.h"

namespace mpqopt {
namespace {

/// The exact function-pointer type a registrable entry point must have;
/// ResolveTaskKind can only see through std::functions wrapping this type.
using WorkerFn =
    StatusOr<std::vector<uint8_t>> (*)(const std::vector<uint8_t>&);

}  // namespace

const char* RpcTaskKindName(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return "unknown";
    case RpcTaskKind::kMpqWorker:
      return "mpq";
    case RpcTaskKind::kHeteroWorker:
      return "hetero";
    case RpcTaskKind::kEchoTask:
      return "echo";
    case RpcTaskKind::kFailTask:
      return "fail";
    case RpcTaskKind::kSleepEchoTask:
      return "sleep-echo";
    case RpcTaskKind::kPingTask:
      return "ping";
    case RpcTaskKind::kBatchTask:
      return "batch";
  }
  return "unknown";
}

StatusOr<std::vector<uint8_t>> EchoTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

StatusOr<std::vector<uint8_t>> FailTaskMain(
    const std::vector<uint8_t>& request) {
  return Status::Corruption(std::string(request.begin(), request.end()));
}

StatusOr<std::vector<uint8_t>> SleepEchoTaskMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  uint32_t sleep_ms = 0;
  Status s = reader.ReadU32(&sleep_ms);
  if (!s.ok()) return s;
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  return std::vector<uint8_t>(request.begin() + sizeof(sleep_ms),
                              request.end());
}

StatusOr<std::vector<uint8_t>> PingTaskMain(
    const std::vector<uint8_t>& request) {
  return request;
}

StatusOr<std::vector<uint8_t>> BatchTaskMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  uint32_t count = 0;
  Status s = reader.ReadU32(&count);
  if (!s.ok()) return s;
  ByteWriter writer;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    uint32_t len = 0;
    s = reader.ReadU8(&kind);
    if (s.ok()) s = reader.ReadU32(&len);
    if (!s.ok()) return s;
    if (len > reader.remaining()) {
      return Status::Corruption("batch subtask " + std::to_string(i) +
                                " length exceeds the envelope");
    }
    std::vector<uint8_t> sub_request(reader.cursor(), reader.cursor() + len);
    reader.Advance(len);

    // Nested batches are rejected per slot (an envelope inside an
    // envelope means a buggy master, and unbounded nesting helps nobody);
    // unknown kinds report like the serve loop's unknown-kind error.
    WorkerTask task = kind == static_cast<uint8_t>(RpcTaskKind::kBatchTask)
                          ? nullptr
                          : TaskForKind(static_cast<RpcTaskKind>(kind));
    const auto start = std::chrono::steady_clock::now();
    StatusOr<std::vector<uint8_t>> response =
        task == nullptr
            ? StatusOr<std::vector<uint8_t>>(Status::InvalidArgument(
                  "batch subtask kind " + std::to_string(kind) +
                  " is not executable"))
            : task(sub_request);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    writer.WriteU8(response.ok() ? 1 : 0);
    writer.WriteDouble(seconds);
    if (response.ok()) {
      const std::vector<uint8_t>& body = response.value();
      writer.WriteU32(static_cast<uint32_t>(body.size()));
      writer.WriteBytes(body.data(), body.size());
    } else {
      const std::string msg = response.status().ToString();
      writer.WriteU32(static_cast<uint32_t>(msg.size()));
      writer.WriteBytes(reinterpret_cast<const uint8_t*>(msg.data()),
                        msg.size());
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("batch envelope has trailing bytes");
  }
  return writer.Release();
}

RpcTaskKind ResolveTaskKind(const WorkerTask& task) {
  const WorkerFn* fn = task.target<WorkerFn>();
  if (fn == nullptr) return RpcTaskKind::kUnknownTask;
  if (*fn == &MpqOptimizer::WorkerMain) return RpcTaskKind::kMpqWorker;
  if (*fn == &HeteroMpqOptimizer::WorkerMain) {
    return RpcTaskKind::kHeteroWorker;
  }
  if (*fn == &EchoTaskMain) return RpcTaskKind::kEchoTask;
  if (*fn == &FailTaskMain) return RpcTaskKind::kFailTask;
  if (*fn == &SleepEchoTaskMain) return RpcTaskKind::kSleepEchoTask;
  if (*fn == &PingTaskMain) return RpcTaskKind::kPingTask;
  if (*fn == &BatchTaskMain) return RpcTaskKind::kBatchTask;
  return RpcTaskKind::kUnknownTask;
}

WorkerTask TaskForKind(RpcTaskKind kind) {
  switch (kind) {
    case RpcTaskKind::kUnknownTask:
      return nullptr;
    case RpcTaskKind::kMpqWorker:
      return WorkerTask(&MpqOptimizer::WorkerMain);
    case RpcTaskKind::kHeteroWorker:
      return WorkerTask(&HeteroMpqOptimizer::WorkerMain);
    case RpcTaskKind::kEchoTask:
      return WorkerTask(&EchoTaskMain);
    case RpcTaskKind::kFailTask:
      return WorkerTask(&FailTaskMain);
    case RpcTaskKind::kSleepEchoTask:
      return WorkerTask(&SleepEchoTaskMain);
    case RpcTaskKind::kPingTask:
      return WorkerTask(&PingTaskMain);
    case RpcTaskKind::kBatchTask:
      return WorkerTask(&BatchTaskMain);
  }
  return nullptr;
}

}  // namespace mpqopt
