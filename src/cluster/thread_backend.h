// Copyright 2026 mpqopt authors.
//
// Thread-hosted execution: each round spawns a pool of up to
// `max_threads` host threads that pull tasks off a shared atomic counter
// and joins them before returning. Cheap and easy to debug, but pays the
// thread spawn/join cost on every round — AsyncBatchBackend keeps a
// persistent pool alive instead (see async_batch_backend.h).

#ifndef MPQOPT_CLUSTER_THREAD_BACKEND_H_
#define MPQOPT_CLUSTER_THREAD_BACKEND_H_

#include "cluster/backend.h"

namespace mpqopt {

/// Executes rounds on a per-round thread pool.
class ThreadBackend : public ExecutionBackend {
 public:
  /// `max_threads` caps host-side concurrency (0 = hardware concurrency).
  explicit ThreadBackend(NetworkModel model, int max_threads = 0);

  StatusOr<RoundResult> RunRound(const std::vector<WorkerTask>& tasks,
                                 const std::vector<std::vector<uint8_t>>&
                                     requests) override;

  const char* name() const override { return "thread"; }

 private:
  int max_threads_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_THREAD_BACKEND_H_
