// Copyright 2026 mpqopt authors.
//
// ExecutionBackend — the pluggable worker-execution runtime.
//
// Worker tasks are self-contained functions from request bytes to response
// bytes — exactly the contract a remote executor would have. Tasks never
// touch shared optimizer state; the only inter-node channel is the
// serialized messages. A backend decides how those tasks are hosted on
// this machine:
//
//  * ThreadBackend     — a thread pool spawned per round (default; cheap,
//                        easy to debug).
//  * ProcessBackend    — one forked OS process per task; the strictest
//                        single-machine approximation of a shared-nothing
//                        cluster (worker memory is genuinely private).
//  * AsyncBatchBackend — a persistent worker pool that stays alive across
//                        rounds and interleaves tasks from concurrently
//                        submitted rounds; the serving-shaped runtime that
//                        OptimizerService multiplexes many queries onto.
//  * RpcBackend        — tasks run in separate mpqopt_worker processes
//                        reached over TCP (see cluster/rpc_backend.h); the
//                        same byte contract, now on a real wire.
//
// All backends produce identical responses and identical byte counts for
// the same tasks (asserted by tests/backend_test.cc); the modeled cluster
// time and traffic accounting is shared (FinalizeRound), so the numbers
// reported by the benchmarks do not depend on the hosting choice. Every
// backend's RunRound is safe to call from multiple threads concurrently.
//
// Each task's compute time is measured individually, so the runtime can
// report both measured wall-clock time of the whole round and modeled
// cluster time: what the round would take with one physical node per
// task, i.e. dispatch overheads + max over workers of (request transfer +
// compute + response transfer). The modeled time is what the paper's
// "Time (ms)" axes correspond to; measured per-worker compute ("W-Time")
// is reported alongside, as in Figure 2.

#ifndef MPQOPT_CLUSTER_BACKEND_H_
#define MPQOPT_CLUSTER_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/network_model.h"
#include "obs/metrics_export.h"

namespace mpqopt {

class SessionHandle;                     // cluster/session/session.h
enum class StatefulTaskKind : uint8_t;   // cluster/session/stateful_task.h

/// A worker task: consumes a request payload, returns a response payload.
using WorkerTask =
    std::function<StatusOr<std::vector<uint8_t>>(const std::vector<uint8_t>&)>;

/// Result of executing one round of tasks.
struct RoundResult {
  /// Response payload per task, in task order.
  std::vector<std::vector<uint8_t>> responses;
  /// Measured compute seconds per task (excludes transfers).
  std::vector<double> compute_seconds;
  /// Modeled cluster completion time of the round (see header comment).
  double simulated_seconds = 0;
  /// Measured wall-clock seconds for the whole round on this host.
  double wall_seconds = 0;
  /// Bytes and messages that crossed the simulated network this round.
  TrafficStats traffic;
};

/// Shared round accounting, usable by both stateless rounds and session
/// rounds: records request/response traffic and computes the modeled
/// cluster time — the master dispatches all tasks (setup cost per task,
/// serially on the master), every worker runs in parallel on its own
/// node, and the round completes when the slowest worker's response has
/// arrived back at the master. Requires result->responses and
/// result->compute_seconds to be filled in; request_sizes[i] is the
/// payload size task/node i received.
void AccountRound(const NetworkModel& model,
                  const std::vector<size_t>& request_sizes,
                  RoundResult* result);

/// Session activity of a backend, aggregated across every SessionHandle
/// it opened (cluster/session/). Plain-value mirror of the internal
/// atomic counters, reported through BackendHealth.
struct SessionCounterSnapshot {
  /// OpenSession calls that succeeded (one per session group).
  uint64_t sessions_opened = 0;
  /// Stateful rounds executed (Step + Broadcast calls).
  uint64_t session_rounds = 0;
  /// Node replicas rebuilt by re-open + replay after a worker failure.
  uint64_t sessions_recovered = 0;
  /// Session groups that ended in an unrecoverable error.
  uint64_t sessions_failed = 0;
};

/// Health of one supervised remote worker (cluster/supervisor/). The
/// state machine is driven by I/O outcomes: an exchange failure moves a
/// worker HEALTHY -> SUSPECT, a successful redial (verified by a ping
/// frame) moves it back, and exhausting the redial budget of one failure
/// episode moves it SUSPECT -> DEAD permanently.
enum class WorkerHealth : uint8_t {
  kHealthy = 0,  ///< serving; exchanges go to it
  kSuspect = 1,  ///< last exchange failed; redial pending (with backoff)
  kDead = 2,     ///< redial budget exhausted; never dialed again
};

/// "healthy" / "suspect" / "dead".
const char* WorkerHealthName(WorkerHealth health);

/// Point-in-time view of one supervised worker.
struct WorkerHealthSnapshot {
  std::string endpoint;
  WorkerHealth health = WorkerHealth::kHealthy;
  /// Successful redials (connection re-established and ping-verified).
  uint64_t reconnects = 0;
  /// Redial attempts that failed (dial or ping).
  uint64_t redial_failures = 0;
  /// Request/response exchanges that failed at the connection level.
  uint64_t io_failures = 0;
  /// Most recent connection-level failure, empty if none.
  std::string last_error;
};

/// Supervision counters of a backend. In-process backends have no remote
/// workers and report the default (all-empty) value; RpcBackend reports
/// its supervisor's live state.
struct BackendHealth {
  /// One entry per remote worker endpoint; empty for in-process kinds.
  std::vector<WorkerHealthSnapshot> workers;
  /// Redials attempted / succeeded across all workers.
  uint64_t reconnect_attempts = 0;
  uint64_t reconnects = 0;
  /// Tasks that failed on one worker and were re-scattered to another
  /// attempt (possibly the same worker after a reconnect).
  uint64_t tasks_rescattered = 0;
  /// Rounds that needed at least one re-scatter pass to complete.
  uint64_t rounds_recovered = 0;
  /// Scatter coalescing (rpc, BackendOptions::coalesce_scatter): batch
  /// envelopes sent (each one frame carrying >= 2 task requests), and
  /// task requests that rode in them.
  uint64_t scatter_batches = 0;
  uint64_t tasks_coalesced = 0;
  /// Stateful-session activity (cluster/session/); all-zero on a backend
  /// that never opened a session.
  SessionCounterSnapshot sessions;

  size_t CountWorkers(WorkerHealth health) const {
    size_t n = 0;
    for (const WorkerHealthSnapshot& w : workers) {
      if (w.health == health) ++n;
    }
    return n;
  }
};

/// Executes rounds of independent worker tasks.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one round: task i receives requests[i]. Returns an error if any
  /// task fails (first failure wins). Thread-safe: rounds submitted from
  /// different threads run concurrently on the same backend.
  virtual StatusOr<RoundResult> RunRound(
      const std::vector<WorkerTask>& tasks,
      const std::vector<std::vector<uint8_t>>& requests) = 0;

  /// Opens a stateful session: one replica per entry of `open_requests`,
  /// built by the registered kind's open function (see
  /// cluster/session/stateful_task.h). The default implementation hosts
  /// the replicas in this process and runs scatter steps through
  /// RunRound (cluster/session/local_session.h) — correct for every
  /// in-process backend; RpcBackend overrides it with the wire protocol.
  /// The handle must not outlive this backend.
  virtual StatusOr<std::unique_ptr<SessionHandle>> OpenSession(
      StatefulTaskKind kind,
      const std::vector<std::vector<uint8_t>>& open_requests);

  /// Short human-readable backend name ("thread", "process", "async",
  /// "rpc").
  virtual const char* name() const = 0;

  /// Internal (atomic) session counters, shared by pointer with the
  /// SessionHandles this backend opens; health() snapshots them. The
  /// type is public so the handle implementations can name it; the
  /// member itself stays protected.
  struct SessionCounters {
    std::atomic<uint64_t> opened{0};
    std::atomic<uint64_t> rounds{0};
    std::atomic<uint64_t> recovered{0};
    std::atomic<uint64_t> failed{0};
  };

  /// Supervision snapshot: per-worker health and reconnect/re-scatter
  /// counters, plus session activity. In-process backends have nothing
  /// to supervise and report only the session counters.
  virtual BackendHealth health() const;

  /// Fleet stats poll for the telemetry plane: one MetricsRegistry
  /// sample per currently-HEALTHY remote worker, fetched through the
  /// kStatsPollTask envelope (RpcBackend). In-process backends share the
  /// master's registry — their stats are already in the master sample —
  /// and report the default empty list.
  virtual std::vector<obs::WorkerStatsSample> PollWorkerStats();

  const NetworkModel& network() const { return model_; }

 protected:
  explicit ExecutionBackend(NetworkModel model) : model_(model) {}

  /// Shared post-round accounting; delegates to AccountRound (see the
  /// free function above for the model).
  void FinalizeRound(const std::vector<std::vector<uint8_t>>& requests,
                     RoundResult* result) const;

  /// Copies the session counters into `health->sessions`.
  void FillSessionCounters(BackendHealth* health) const;

  NetworkModel model_;
  SessionCounters session_counters_;
};

/// Selects a backend implementation by name.
enum class BackendKind : uint8_t {
  kThread = 0,     ///< per-round thread pool (default; cheap)
  kProcess = 1,    ///< forked processes — strict shared-nothing isolation
  kAsyncBatch = 2, ///< persistent pool, pipelined multi-round dispatch
  kRpc = 3,        ///< remote mpqopt_worker processes over TCP
};

/// Name of a backend kind ("thread" / "process" / "async" / "rpc").
const char* BackendKindName(BackendKind kind);

/// Parses a backend name as accepted by the CLI's --backend= flag.
/// The error message enumerates every accepted kind.
StatusOr<BackendKind> ParseBackendKind(const std::string& name);

/// "thread|process|async|rpc" — the canonical names of every backend
/// kind, for --help text and error messages. Generated from the same
/// table as BackendKindName/ParseBackendKind, so it can never go stale.
std::string BackendKindList();

/// Everything MakeBackend can need; kinds ignore the fields that do not
/// apply to them.
struct BackendOptions {
  /// Simulated-cluster parameters (all kinds).
  NetworkModel network;
  /// Host-side concurrency cap for the thread and async backends
  /// (0 = hardware concurrency).
  int max_threads = 0;
  /// Comma-separated "host:port" worker endpoints (numeric IPv4 or
  /// "localhost") — required by kRpc, ignored by the in-process kinds.
  std::string workers_addr;
  /// TCP connect timeout per rpc worker endpoint.
  int connect_timeout_ms = 5000;
  /// Bound on each rpc reply wait; -1 waits indefinitely (worker compute
  /// time is unbounded in general — see cluster/rpc_backend.h).
  int io_timeout_ms = -1;
  /// Redial budget per worker failure episode (rpc): how many reconnect
  /// attempts a SUSPECT worker gets before it is marked DEAD. 0 marks a
  /// failed worker DEAD on first failure (its tasks still re-scatter to
  /// survivors). CLI: --worker-retries.
  int worker_retries = 2;
  /// Initial redial backoff (rpc); doubles per failed redial up to
  /// `worker_backoff_max_ms`. CLI: --worker-backoff-ms.
  int worker_backoff_ms = 50;
  /// Cap on the exponential redial backoff (rpc).
  int worker_backoff_max_ms = 2000;
  /// Scatter coalescing (rpc): merge one round's per-partition requests
  /// into a single batch frame per physical worker, and let requests of
  /// concurrently submitted rounds share that frame (group commit).
  /// Plan choice and modeled accounting are byte-identical either way —
  /// this trades per-frame overhead for admission throughput. CLI:
  /// --coalesce.
  bool coalesce_scatter = false;
};

/// Creates a backend of `kind`. Fails with a descriptive Status when the
/// options are unusable for the kind (e.g. kRpc without workers_addr) or
/// a remote worker cannot be reached; the in-process kinds always
/// succeed.
StatusOr<std::shared_ptr<ExecutionBackend>> MakeBackend(
    BackendKind kind, const BackendOptions& options);

/// Convenience factory for the in-process kinds (thread/process/async),
/// whose construction cannot fail. `max_threads` caps host-side
/// concurrency for the thread and async backends (0 = hardware
/// concurrency). CHECK-fails on kRpc — remote backends need endpoints and
/// a real error path; use the BackendOptions overload.
std::shared_ptr<ExecutionBackend> MakeBackend(BackendKind kind,
                                              NetworkModel model,
                                              int max_threads = 0);

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_BACKEND_H_
