// Copyright 2026 mpqopt authors.

#include "cluster/thread_backend.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/trace.h"

namespace mpqopt {

ThreadBackend::ThreadBackend(NetworkModel model, int max_threads)
    : ExecutionBackend(model), max_threads_(max_threads) {
  if (max_threads_ <= 0) {
    max_threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (max_threads_ <= 0) max_threads_ = 1;
  }
}

StatusOr<RoundResult> ThreadBackend::RunRound(
    const std::vector<WorkerTask>& tasks,
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(tasks.size(), requests.size());
  const size_t num_tasks = tasks.size();
  RoundResult result;
  result.responses.resize(num_tasks);
  result.compute_seconds.assign(num_tasks, 0.0);

  std::mutex error_mutex;
  Status first_error = Status::OK();
  std::atomic<size_t> next_task{0};

  const auto round_start = std::chrono::steady_clock::now();
  // Pool threads adopt the submitter's trace context so per-task compute
  // spans land under the round's span.
  const obs::TraceContext submitter_ctx = obs::CurrentTraceContext();
  const auto run_tasks = [&]() {
    obs::TraceContextScope trace_scope(submitter_ctx);
    while (true) {
      const size_t i = next_task.fetch_add(1);
      if (i >= num_tasks) return;
      obs::Span compute_span("compute");
      const auto start = std::chrono::steady_clock::now();
      StatusOr<std::vector<uint8_t>> response = tasks[i](requests[i]);
      const auto end = std::chrono::steady_clock::now();
      result.compute_seconds[i] =
          std::chrono::duration<double>(end - start).count();
      if (!response.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = response.status();
        return;
      }
      result.responses[i] = std::move(response).value();
    }
  };

  const int threads =
      static_cast<int>(num_tasks < static_cast<size_t>(max_threads_)
                           ? num_tasks
                           : static_cast<size_t>(max_threads_));
  if (threads <= 1) {
    run_tasks();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(run_tasks);
    for (std::thread& t : pool) t.join();
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();
  if (!first_error.ok()) return first_error;

  FinalizeRound(requests, &result);
  return result;
}

}  // namespace mpqopt
