// Copyright 2026 mpqopt authors.

#include "cluster/backend.h"

#include "cluster/async_batch_backend.h"
#include "cluster/process_backend.h"
#include "cluster/rpc_backend.h"
#include "cluster/thread_backend.h"

namespace mpqopt {

void ExecutionBackend::FinalizeRound(
    const std::vector<std::vector<uint8_t>>& requests,
    RoundResult* result) const {
  const size_t num_tasks = requests.size();
  MPQOPT_CHECK_EQ(result->responses.size(), num_tasks);
  MPQOPT_CHECK_EQ(result->compute_seconds.size(), num_tasks);
  double slowest = 0;
  for (size_t i = 0; i < num_tasks; ++i) {
    result->traffic.Record(requests[i].size());
    result->traffic.Record(result->responses[i].size());
    const double worker_total = model_.TransferTime(requests[i].size()) +
                                result->compute_seconds[i] +
                                model_.TransferTime(result->responses[i].size());
    if (worker_total > slowest) slowest = worker_total;
  }
  result->simulated_seconds =
      static_cast<double>(num_tasks) * model_.task_setup_s + slowest;
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThread:
      return "thread";
    case BackendKind::kProcess:
      return "process";
    case BackendKind::kAsyncBatch:
      return "async";
    case BackendKind::kRpc:
      return "rpc";
  }
  return "unknown";
}

StatusOr<BackendKind> ParseBackendKind(const std::string& name) {
  if (name == "thread" || name == "threads") return BackendKind::kThread;
  if (name == "process" || name == "processes") return BackendKind::kProcess;
  if (name == "async" || name == "async-batch") return BackendKind::kAsyncBatch;
  if (name == "rpc" || name == "remote") return BackendKind::kRpc;
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (expected thread|process|async|rpc)");
}

StatusOr<std::shared_ptr<ExecutionBackend>> MakeBackend(
    BackendKind kind, const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kThread:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<ThreadBackend>(options.network,
                                          options.max_threads));
    case BackendKind::kProcess:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<ProcessBackend>(options.network));
    case BackendKind::kAsyncBatch:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<AsyncBatchBackend>(options.network,
                                              options.max_threads));
    case BackendKind::kRpc: {
      const std::vector<std::string> endpoints =
          SplitEndpoints(options.workers_addr);
      if (endpoints.empty()) {
        return Status::InvalidArgument(
            "rpc backend requires worker endpoints "
            "(--workers-addr=host:port[,host:port...])");
      }
      StatusOr<std::shared_ptr<RpcBackend>> backend = RpcBackend::Connect(
          options.network, endpoints, options.connect_timeout_ms,
          options.io_timeout_ms);
      if (!backend.ok()) return backend.status();
      return std::shared_ptr<ExecutionBackend>(std::move(backend).value());
    }
  }
  return Status::InvalidArgument("unhandled backend kind " +
                                 std::to_string(static_cast<int>(kind)));
}

std::shared_ptr<ExecutionBackend> MakeBackend(BackendKind kind,
                                              NetworkModel model,
                                              int max_threads) {
  BackendOptions options;
  options.network = model;
  options.max_threads = max_threads;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(kind, options);
  // Only the in-process kinds may take this path (see header); their
  // construction cannot fail.
  MPQOPT_CHECK(backend.ok());
  return std::move(backend).value();
}

}  // namespace mpqopt
