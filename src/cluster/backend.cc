// Copyright 2026 mpqopt authors.

#include "cluster/backend.h"

#include "cluster/async_batch_backend.h"
#include "cluster/process_backend.h"
#include "cluster/thread_backend.h"

namespace mpqopt {

void ExecutionBackend::FinalizeRound(
    const std::vector<std::vector<uint8_t>>& requests,
    RoundResult* result) const {
  const size_t num_tasks = requests.size();
  MPQOPT_CHECK_EQ(result->responses.size(), num_tasks);
  MPQOPT_CHECK_EQ(result->compute_seconds.size(), num_tasks);
  double slowest = 0;
  for (size_t i = 0; i < num_tasks; ++i) {
    result->traffic.Record(requests[i].size());
    result->traffic.Record(result->responses[i].size());
    const double worker_total = model_.TransferTime(requests[i].size()) +
                                result->compute_seconds[i] +
                                model_.TransferTime(result->responses[i].size());
    if (worker_total > slowest) slowest = worker_total;
  }
  result->simulated_seconds =
      static_cast<double>(num_tasks) * model_.task_setup_s + slowest;
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kThread:
      return "thread";
    case BackendKind::kProcess:
      return "process";
    case BackendKind::kAsyncBatch:
      return "async";
  }
  return "unknown";
}

StatusOr<BackendKind> ParseBackendKind(const std::string& name) {
  if (name == "thread" || name == "threads") return BackendKind::kThread;
  if (name == "process" || name == "processes") return BackendKind::kProcess;
  if (name == "async" || name == "async-batch") return BackendKind::kAsyncBatch;
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (expected thread|process|async)");
}

std::shared_ptr<ExecutionBackend> MakeBackend(BackendKind kind,
                                              NetworkModel model,
                                              int max_threads) {
  switch (kind) {
    case BackendKind::kThread:
      return std::make_shared<ThreadBackend>(model, max_threads);
    case BackendKind::kProcess:
      return std::make_shared<ProcessBackend>(model);
    case BackendKind::kAsyncBatch:
      return std::make_shared<AsyncBatchBackend>(model, max_threads);
  }
  return nullptr;
}

}  // namespace mpqopt
