// Copyright 2026 mpqopt authors.

#include "cluster/backend.h"

#include "cluster/async_batch_backend.h"
#include "cluster/process_backend.h"
#include "cluster/rpc_backend.h"
#include "cluster/thread_backend.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mpqopt {

void AccountRound(const NetworkModel& model,
                  const std::vector<size_t>& request_sizes,
                  RoundResult* result) {
  const size_t num_tasks = request_sizes.size();
  MPQOPT_CHECK_EQ(result->responses.size(), num_tasks);
  MPQOPT_CHECK_EQ(result->compute_seconds.size(), num_tasks);
  double slowest = 0;
  for (size_t i = 0; i < num_tasks; ++i) {
    result->traffic.Record(request_sizes[i]);
    result->traffic.Record(result->responses[i].size());
    const double worker_total = model.TransferTime(request_sizes[i]) +
                                result->compute_seconds[i] +
                                model.TransferTime(result->responses[i].size());
    if (worker_total > slowest) slowest = worker_total;
  }
  result->simulated_seconds =
      static_cast<double>(num_tasks) * model.task_setup_s + slowest;
  // Every backend (and session round) finishes through here with the
  // measured wall time already set, so this one histogram covers them all.
  static obs::Histogram* const round_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kRoundTimeHistogram, obs::Histogram::LatencyBoundariesMs());
  round_ms->Record(result->wall_seconds * 1e3);
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kRoundFinish, "%zu tasks, %.3f ms wall",
      num_tasks, result->wall_seconds * 1e3);
}

void ExecutionBackend::FinalizeRound(
    const std::vector<std::vector<uint8_t>>& requests,
    RoundResult* result) const {
  std::vector<size_t> sizes;
  sizes.reserve(requests.size());
  for (const std::vector<uint8_t>& request : requests) {
    sizes.push_back(request.size());
  }
  AccountRound(model_, sizes, result);
}

BackendHealth ExecutionBackend::health() const {
  BackendHealth health;
  FillSessionCounters(&health);
  return health;
}

std::vector<obs::WorkerStatsSample> ExecutionBackend::PollWorkerStats() {
  return {};
}

void ExecutionBackend::FillSessionCounters(BackendHealth* health) const {
  health->sessions.sessions_opened =
      session_counters_.opened.load(std::memory_order_relaxed);
  health->sessions.session_rounds =
      session_counters_.rounds.load(std::memory_order_relaxed);
  health->sessions.sessions_recovered =
      session_counters_.recovered.load(std::memory_order_relaxed);
  health->sessions.sessions_failed =
      session_counters_.failed.load(std::memory_order_relaxed);
}

namespace {

// The single source of truth for backend naming: BackendKindName,
// ParseBackendKind (canonical name or alias), and BackendKindList are all
// generated from this table, so adding a kind here updates the CLI
// surface, help text, and error messages together.
struct BackendNameEntry {
  BackendKind kind;
  const char* canonical;
  const char* alias;  // accepted on parse, never printed
};

constexpr BackendNameEntry kBackendNames[] = {
    {BackendKind::kThread, "thread", "threads"},
    {BackendKind::kProcess, "process", "processes"},
    {BackendKind::kAsyncBatch, "async", "async-batch"},
    {BackendKind::kRpc, "rpc", "remote"},
};

}  // namespace

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kHealthy:
      return "healthy";
    case WorkerHealth::kSuspect:
      return "suspect";
    case WorkerHealth::kDead:
      return "dead";
  }
  return "unknown";
}

const char* BackendKindName(BackendKind kind) {
  for (const BackendNameEntry& entry : kBackendNames) {
    if (entry.kind == kind) return entry.canonical;
  }
  return "unknown";
}

StatusOr<BackendKind> ParseBackendKind(const std::string& name) {
  for (const BackendNameEntry& entry : kBackendNames) {
    if (name == entry.canonical || name == entry.alias) return entry.kind;
  }
  return Status::InvalidArgument("unknown backend '" + name + "' (expected " +
                                 BackendKindList() + ")");
}

std::string BackendKindList() {
  std::string joined;
  for (const BackendNameEntry& entry : kBackendNames) {
    if (!joined.empty()) joined += "|";
    joined += entry.canonical;
  }
  return joined;
}

StatusOr<std::shared_ptr<ExecutionBackend>> MakeBackend(
    BackendKind kind, const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kThread:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<ThreadBackend>(options.network,
                                          options.max_threads));
    case BackendKind::kProcess:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<ProcessBackend>(options.network));
    case BackendKind::kAsyncBatch:
      return std::shared_ptr<ExecutionBackend>(
          std::make_shared<AsyncBatchBackend>(options.network,
                                              options.max_threads));
    case BackendKind::kRpc: {
      const std::vector<std::string> endpoints =
          SplitEndpoints(options.workers_addr);
      if (endpoints.empty()) {
        return Status::InvalidArgument(
            "rpc backend requires worker endpoints "
            "(--workers-addr=host:port[,host:port...])");
      }
      SupervisorOptions supervision;
      supervision.connect_timeout_ms = options.connect_timeout_ms;
      supervision.io_timeout_ms = options.io_timeout_ms;
      supervision.max_redials = options.worker_retries;
      supervision.backoff_initial_ms = options.worker_backoff_ms;
      supervision.backoff_max_ms = options.worker_backoff_max_ms;
      StatusOr<std::shared_ptr<RpcBackend>> backend =
          RpcBackend::Connect(options.network, endpoints, supervision,
                              options.coalesce_scatter);
      if (!backend.ok()) return backend.status();
      return std::shared_ptr<ExecutionBackend>(std::move(backend).value());
    }
  }
  return Status::InvalidArgument("unhandled backend kind " +
                                 std::to_string(static_cast<int>(kind)));
}

std::shared_ptr<ExecutionBackend> MakeBackend(BackendKind kind,
                                              NetworkModel model,
                                              int max_threads) {
  BackendOptions options;
  options.network = model;
  options.max_threads = max_threads;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(kind, options);
  // Only the in-process kinds may take this path (see header); their
  // construction cannot fail.
  MPQOPT_CHECK(backend.ok());
  return std::move(backend).value();
}

}  // namespace mpqopt
