// Copyright 2026 mpqopt authors.

#include "cluster/rpc_backend.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <thread>

#include "cluster/session/rpc_session.h"
#include "cluster/session/session_wire.h"
#include "cluster/task_registry.h"
#include "common/serialize.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/trace.h"
#include "obs/worker_log.h"

namespace mpqopt {

namespace {

/// Bytes a traced envelope adds in front of the inner request
/// (u64 trace id + u8 inner kind).
constexpr size_t kTracedEnvelopeBytes = sizeof(uint64_t) + sizeof(uint8_t);

/// Grafts worker-side span timings into `trace` under `parent`. The
/// worker reports RELATIVE nanoseconds from envelope entry; re-base so
/// the envelope ENDS now (the reply was just parsed — network transfer
/// shows up as the gap between rpc.exchange start and worker.serve
/// start). spans[0] covers the whole envelope and parents the rest.
void GraftWorkerSpans(obs::QueryTrace* trace, uint32_t parent,
                      const std::vector<ImportedSpan>& spans) {
  if (trace == nullptr || spans.empty()) return;
  const uint64_t now = obs::MonotonicNanos();
  const uint64_t total = spans[0].start_rel_ns + spans[0].dur_ns;
  const uint64_t base = now >= total ? now - total : 0;
  uint32_t worker_root = parent;
  for (size_t k = 0; k < spans.size(); ++k) {
    const uint64_t start = base + spans[k].start_rel_ns;
    const uint32_t id = trace->AddCompleteSpan(
        spans[k].name, k == 0 ? parent : worker_root, start,
        start + spans[k].dur_ns);
    if (k == 0) worker_root = id;
  }
}

/// Splits a traced-task reply in place: grafts the worker spans into the
/// calling thread's active trace and leaves exactly the inner response
/// bytes in `response` — downstream parsing sees the untraced protocol.
Status StripTraceBlock(std::vector<uint8_t>* response) {
  uint64_t trace_id = 0;
  std::vector<ImportedSpan> spans;
  std::vector<uint8_t> inner;
  Status s = ParseTracedTaskResponse(*response, &trace_id, &spans, &inner);
  if (!s.ok()) {
    return Status::Corruption("traced rpc reply is malformed: " +
                              s.ToString());
  }
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace != nullptr && ctx.trace->trace_id() == trace_id) {
    GraftWorkerSpans(ctx.trace, ctx.span, spans);
  }
  *response = std::move(inner);
  return Status::OK();
}

}  // namespace

StatusOr<std::shared_ptr<RpcBackend>> RpcBackend::Connect(
    NetworkModel model, const std::vector<std::string>& endpoints,
    SupervisorOptions supervision, bool coalesce_scatter) {
  StatusOr<std::unique_ptr<WorkerSupervisor>> supervisor =
      WorkerSupervisor::Connect(endpoints, supervision);
  if (!supervisor.ok()) return supervisor.status();
  return std::shared_ptr<RpcBackend>(new RpcBackend(
      model, std::move(supervisor).value(), coalesce_scatter));
}

RpcBackend::RpcBackend(NetworkModel model,
                       std::unique_ptr<WorkerSupervisor> supervisor,
                       bool coalesce_scatter)
    : ExecutionBackend(model),
      supervisor_(std::move(supervisor)),
      coalesce_scatter_(coalesce_scatter) {
  batchers_.reserve(supervisor_->num_workers());
  for (size_t w = 0; w < supervisor_->num_workers(); ++w) {
    batchers_.push_back(std::make_unique<WorkerBatcher>());
  }
}

BackendHealth RpcBackend::health() const {
  BackendHealth health = supervisor_->Snapshot();
  health.tasks_rescattered =
      tasks_rescattered_.load(std::memory_order_relaxed);
  health.rounds_recovered = rounds_recovered_.load(std::memory_order_relaxed);
  health.scatter_batches = scatter_batches_.load(std::memory_order_relaxed);
  health.tasks_coalesced = tasks_coalesced_.load(std::memory_order_relaxed);
  FillSessionCounters(&health);
  return health;
}

void RpcBackend::DriveBatch(size_t w, const std::vector<BatchItem*>& batch) {
  if (batch.size() == 1) {
    // A lone item gains nothing from the envelope (and a near-limit
    // request might not fit inside one) — exchange it plainly.
    BatchItem* item = batch[0];
    item->status = supervisor_->Exchange(
        w, item->kind, *item->request, item->response,
        item->compute_seconds, &item->worker_failed);
    return;
  }

  std::vector<uint8_t> payload;
  ByteWriter writer(&payload);
  writer.WriteU32(static_cast<uint32_t>(batch.size()));
  for (const BatchItem* item : batch) {
    writer.WriteU8(item->kind);
    writer.WriteU32(static_cast<uint32_t>(item->request->size()));
    writer.WriteBytes(item->request->data(), item->request->size());
  }
  scatter_batches_.fetch_add(1, std::memory_order_relaxed);
  tasks_coalesced_.fetch_add(batch.size(), std::memory_order_relaxed);

  std::vector<uint8_t> response;
  double envelope_seconds = 0;
  bool worker_failed = false;
  Status s = supervisor_->Exchange(
      w, static_cast<uint8_t>(RpcTaskKind::kBatchTask), payload, &response,
      &envelope_seconds, &worker_failed);
  if (!s.ok()) {
    // The whole frame failed — every rider shares the outcome, exactly
    // as if each had met the broken connection itself; the owners'
    // recovery loops re-scatter them.
    for (BatchItem* item : batch) {
      item->status = s;
      item->worker_failed = worker_failed;
    }
    return;
  }

  ByteReader reader(response);
  for (BatchItem* item : batch) {
    uint8_t ok = 0;
    double seconds = 0;
    uint32_t len = 0;
    Status parse = reader.ReadU8(&ok);
    if (parse.ok()) parse = reader.ReadDouble(&seconds);
    if (parse.ok()) parse = reader.ReadU32(&len);
    if (parse.ok() && len > reader.remaining()) {
      parse = Status::Corruption("batch reply slot exceeds the payload");
    }
    if (!parse.ok()) {
      // A malformed envelope reply poisons every remaining slot — fail
      // them deterministically rather than guessing at boundaries.
      item->status = Status::Corruption(
          "rpc batch reply is malformed: " + parse.ToString());
      continue;
    }
    if (ok == 1) {
      item->response->assign(reader.cursor(), reader.cursor() + len);
      *item->compute_seconds = seconds;
      item->status = Status::OK();
    } else {
      item->status = Status::Internal(
          "rpc batch subtask failed: " +
          std::string(reader.cursor(), reader.cursor() + len));
    }
    reader.Advance(len);
  }
}

void RpcBackend::ExchangeCoalesced(size_t w,
                                   const std::vector<BatchItem*>& items) {
  WorkerBatcher& batcher = *batchers_[w];
  std::unique_lock<std::mutex> lock(batcher.mutex);
  for (BatchItem* item : items) batcher.queue.push_back(item);

  const auto all_finished = [&items] {
    for (const BatchItem* item : items) {
      if (!item->finished) return false;
    }
    return true;
  };
  while (!all_finished()) {
    if (batcher.draining || batcher.queue.empty()) {
      // Another submitter is flushing; our items either ride its batch
      // or a later one.
      batcher.cv.wait(lock);
      continue;
    }
    // Become the drainer: flush EVERYTHING queued right now — our items
    // plus whatever concurrent rounds queued while the previous drain
    // was on the wire (group commit) — in as few envelopes as fit.
    batcher.draining = true;
    std::vector<BatchItem*> batch;
    size_t payload_bytes = sizeof(uint32_t);
    while (!batcher.queue.empty()) {
      BatchItem* item = batcher.queue.front();
      const size_t need =
          sizeof(uint8_t) + sizeof(uint32_t) + item->request->size();
      if (!batch.empty() && payload_bytes + need > kMaxFramePayloadBytes) {
        break;
      }
      batch.push_back(item);
      batcher.queue.pop_front();
      payload_bytes += need;
    }
    lock.unlock();
    DriveBatch(w, batch);
    lock.lock();
    for (BatchItem* item : batch) item->finished = true;
    batcher.draining = false;
    batcher.cv.notify_all();
  }
}

StatusOr<RoundResult> RpcBackend::RunRound(
    const std::vector<WorkerTask>& tasks,
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(tasks.size(), requests.size());
  const size_t num_tasks = tasks.size();
  RoundResult result;
  result.responses.resize(num_tasks);
  result.compute_seconds.assign(num_tasks, 0.0);

  // Every task must name a registered entry point and fit in a frame
  // before anything is sent — a half-scattered round with an unshippable
  // task helps nobody, and a purely local validation failure must not
  // poison a healthy connection.
  std::vector<uint8_t> kinds(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    const RpcTaskKind kind = ResolveTaskKind(tasks[i]);
    if (kind == RpcTaskKind::kUnknownTask) {
      return Status::InvalidArgument(
          "rpc backend can only ship registered worker entry points "
          "(task " +
          std::to_string(i) +
          " wraps an unregistered function; see cluster/task_registry.h)");
    }
    if (requests[i].size() > kMaxFramePayloadBytes) {
      return Status::InvalidArgument(
          "request for task " + std::to_string(i) + " (" +
          std::to_string(requests[i].size()) +
          " bytes) exceeds the frame size limit");
    }
    kinds[i] = static_cast<uint8_t>(kind);
  }

  // With an active trace on the calling thread, each request ships inside
  // a kTracedTask envelope carrying the query's trace id; the worker
  // returns its serve-loop timings ahead of the real response, which
  // StripTraceBlock grafts into the trace and removes — every byte the
  // round's consumers see is identical to the untraced protocol. A
  // request too close to the frame limit for the 9-byte envelope ships
  // plain (it merely loses its worker-side spans).
  const obs::TraceContext round_ctx = obs::CurrentTraceContext();
  const uint64_t trace_id =
      round_ctx.trace != nullptr ? round_ctx.trace->trace_id() : 0;
  const uint8_t traced_kind = static_cast<uint8_t>(RpcTaskKind::kTracedTask);
  const auto wrap_task = [&](size_t i) {
    return round_ctx.trace != nullptr &&
           requests[i].size() + kTracedEnvelopeBytes <= kMaxFramePayloadBytes;
  };

  // Round-level recovery loop: scatter the pending tasks over the usable
  // workers; connection-level failures leave their tasks pending and the
  // next pass re-scatters them over whoever is usable then (the
  // supervisor redials SUSPECT workers under its backoff). A clean
  // task-error reply is deterministic and fails the round immediately. A
  // pathological worker that keeps accepting and dying cannot livelock
  // the round: the number of scatter passes is bounded by the pool's
  // total redial budget plus slack.
  const size_t num_workers = supervisor_->num_workers();
  const size_t max_passes =
      RecoveryPassBudget(supervisor_->options().max_redials, num_workers);
  std::vector<char> done(num_tasks, 0);
  std::vector<size_t> pending(num_tasks);
  std::iota(pending.begin(), pending.end(), size_t{0});
  std::mutex error_mutex;
  Status task_error = Status::OK();
  Status last_worker_error = Status::OK();
  size_t passes = 0;
  bool recovered = false;

  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kRoundStart,
                                       "rpc round: %zu tasks over %zu workers",
                                       num_tasks, num_workers);
  // The watchdog flags this round into the recorder (and
  // obs.stalls_total) if it is still in flight past the configured
  // threshold — a no-op when no threshold is armed.
  obs::StallWatchdog::Guard stall_guard("rpc.round");
  const auto round_start = std::chrono::steady_clock::now();
  while (!pending.empty()) {
    const std::vector<size_t> usable = supervisor_->UsableWorkers();
    if (usable.empty()) {
      const int delay = supervisor_->NextRedialDelayMs();
      if (delay < 0) {
        return Status::Internal(
            "rpc round failed: all " + std::to_string(num_workers) +
            " workers are dead" +
            (last_worker_error.ok()
                 ? std::string()
                 : "; last failure: " + last_worker_error.ToString()));
      }
      // Every worker is SUSPECT and inside its backoff window; wait for
      // the earliest redial slot. Bounded: redial budgets are finite, so
      // workers either come back or go DEAD.
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      continue;
    }
    if (++passes > max_passes) {
      return Status::Internal(
          "rpc round did not complete after " + std::to_string(max_passes) +
          " re-scatter passes" +
          (last_worker_error.ok()
               ? std::string()
               : "; last failure: " + last_worker_error.ToString()));
    }
    if (passes > 1) {
      recovered = true;
      tasks_rescattered_.fetch_add(pending.size(), std::memory_order_relaxed);
    }

    // Lane j walks pending tasks j, j+lanes, ... in order on one worker,
    // so a connection never sees interleaved frames from the same round.
    // The per-round rotating base spreads concurrent small rounds across
    // the whole pool instead of serializing them all behind worker 0.
    obs::Span pass_span("rpc.scatter_pass");
    const obs::TraceContext lane_ctx = obs::CurrentTraceContext();
    const size_t lanes = std::min(usable.size(), pending.size());
    const size_t base =
        round_offset_.fetch_add(1, std::memory_order_relaxed) %
        usable.size();
    const auto run_lane = [&](size_t lane) {
      // Lane threads adopt the submitting thread's trace context (the
      // scatter-pass span) so their exchange spans land in the tree.
      obs::TraceContextScope lane_scope(lane_ctx);
      obs::Span lane_span("rpc.lane");
      const size_t w = usable[(base + lane) % usable.size()];
      if (coalesce_scatter_) {
        // Coalesced scatter: this lane's whole share goes to worker `w`
        // as one batch envelope (group-committed with concurrent
        // rounds), and each item comes back with its own per-task
        // outcome — identical bytes, one frame.
        std::vector<BatchItem> items(
            (pending.size() - lane + lanes - 1) / lanes);
        std::vector<BatchItem*> item_ptrs(items.size());
        std::vector<std::vector<uint8_t>> wrapped;
        if (round_ctx.trace != nullptr) wrapped.resize(items.size());
        for (size_t n = 0, p = lane; p < pending.size(); ++n, p += lanes) {
          const size_t i = pending[p];
          if (wrap_task(i)) {
            wrapped[n] = BuildTracedTaskRequest(
                trace_id, static_cast<RpcTaskKind>(kinds[i]), requests[i]);
            items[n].kind = traced_kind;
            items[n].request = &wrapped[n];
          } else {
            items[n].kind = kinds[i];
            items[n].request = &requests[i];
          }
          items[n].response = &result.responses[i];
          items[n].compute_seconds = &result.compute_seconds[i];
          item_ptrs[n] = &items[n];
        }
        ExchangeCoalesced(w, item_ptrs);
        for (size_t n = 0, p = lane; p < pending.size(); ++n, p += lanes) {
          const size_t i = pending[p];
          if (items[n].status.ok() && items[n].kind == traced_kind) {
            items[n].status = StripTraceBlock(&result.responses[i]);
          }
          if (items[n].status.ok()) {
            done[i] = 1;
            continue;
          }
          std::lock_guard<std::mutex> error_lock(error_mutex);
          if (items[n].worker_failed) {
            last_worker_error = items[n].status;
          } else if (task_error.ok()) {
            task_error = items[n].status;
          }
        }
        return;
      }
      for (size_t p = lane; p < pending.size(); p += lanes) {
        const size_t i = pending[p];
        bool worker_failed = false;
        Status s;
        if (wrap_task(i)) {
          const std::vector<uint8_t> wrapped_request = BuildTracedTaskRequest(
              trace_id, static_cast<RpcTaskKind>(kinds[i]), requests[i]);
          s = supervisor_->Exchange(w, traced_kind, wrapped_request,
                                    &result.responses[i],
                                    &result.compute_seconds[i],
                                    &worker_failed);
          if (s.ok()) s = StripTraceBlock(&result.responses[i]);
        } else {
          s = supervisor_->Exchange(w, kinds[i], requests[i],
                                    &result.responses[i],
                                    &result.compute_seconds[i],
                                    &worker_failed);
        }
        if (s.ok()) {
          done[i] = 1;
          continue;
        }
        std::lock_guard<std::mutex> error_lock(error_mutex);
        if (worker_failed) {
          last_worker_error = s;
        } else if (task_error.ok()) {
          task_error = s;
        }
        return;  // this lane's worker failed, or the round is doomed
      }
    };

    if (lanes <= 1) {
      run_lane(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(lanes);
      for (size_t lane = 0; lane < lanes; ++lane) {
        pool.emplace_back(run_lane, lane);
      }
      for (std::thread& t : pool) t.join();
    }
    if (!task_error.ok()) return task_error;

    std::vector<size_t> still_pending;
    for (size_t i : pending) {
      if (!done[i]) still_pending.push_back(i);
    }
    pending = std::move(still_pending);
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();
  if (recovered) rounds_recovered_.fetch_add(1, std::memory_order_relaxed);

  FinalizeRound(requests, &result);
  return result;
}

std::vector<obs::WorkerStatsSample> RpcBackend::PollWorkerStats() {
  // Poll only currently-HEALTHY workers: Exchange refuses non-HEALTHY
  // targets anyway, and a scrape must not shortcut the supervisor's
  // redial backoff. A poll failure marks the worker SUSPECT exactly like
  // a round exchange would — scrapes double as passive health probes.
  std::vector<obs::WorkerStatsSample> samples;
  const BackendHealth snapshot = supervisor_->Snapshot();
  const std::vector<uint8_t> empty_request;
  for (size_t w = 0; w < snapshot.workers.size(); ++w) {
    if (snapshot.workers[w].health != WorkerHealth::kHealthy) continue;
    std::vector<uint8_t> response;
    double seconds = 0;
    bool worker_failed = false;
    const Status s = supervisor_->Exchange(
        w, static_cast<uint8_t>(RpcTaskKind::kStatsPollTask), empty_request,
        &response, &seconds, &worker_failed);
    if (!s.ok()) continue;
    obs::WorkerStatsSample sample;
    sample.endpoint = snapshot.workers[w].endpoint;
    if (!obs::ParseRegistrySample(response, &sample.sample).ok()) continue;
    samples.push_back(std::move(sample));
  }
  return samples;
}

StatusOr<std::unique_ptr<SessionHandle>> RpcBackend::OpenSession(
    StatefulTaskKind kind,
    const std::vector<std::vector<uint8_t>>& open_requests) {
  return RpcSessionHandle::Open(
      supervisor_.get(), &session_counters_, model_, kind, open_requests,
      round_offset_.fetch_add(1, std::memory_order_relaxed));
}

std::vector<std::string> SplitEndpoints(const std::string& comma_separated) {
  std::vector<std::string> endpoints;
  size_t begin = 0;
  while (begin <= comma_separated.size()) {
    size_t end = comma_separated.find(',', begin);
    if (end == std::string::npos) end = comma_separated.size();
    if (end > begin) {
      endpoints.push_back(comma_separated.substr(begin, end - begin));
    }
    begin = end + 1;
  }
  return endpoints;
}

void ServeRpcConnection(Socket socket, RpcServeOptions serve) {
  // Worker-side serve instruments, in this process's global registry —
  // the sample a kStatsPollTask scrape ships home. Fetched once.
  static obs::Counter* const requests_total =
      obs::MetricsRegistry::Global().GetCounter(obs::kWorkerRequestsCounter);
  static obs::Counter* const task_errors =
      obs::MetricsRegistry::Global().GetCounter(
          obs::kWorkerTaskErrorsCounter);
  static obs::Histogram* const serve_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kWorkerServeHistogram, obs::Histogram::LatencyBoundariesMs());
  // Session replicas opened over this connection; dies with it, so a
  // master crash or reconnect frees every replica it owned.
  SessionStore sessions(serve.sessions);
  // One Frame for the connection's lifetime: RecvFrame reuses its payload
  // capacity, so steady-state serving allocates nothing per request.
  Frame request;
  for (;;) {
    if (serve.stop != nullptr) {
      // Idle-wait in short slices so a shutdown request is noticed
      // between frames; once bytes are pending the request is drained —
      // received, executed, and answered — before the check repeats.
      // The slices double as the TTL GC heartbeat for abandoned
      // sessions on an otherwise idle connection.
      for (;;) {
        StatusOr<bool> readable = WaitReadable(socket.fd(), 200);
        if (!readable.ok()) return;
        if (readable.value()) break;
        if (serve.stop->load(std::memory_order_relaxed)) return;
        sessions.SweepExpired();
      }
    }
    if (!RecvFrame(socket.fd(), &request).ok()) {
      return;  // clean close between frames, or a broken peer — either way
               // this connection is done
    }
    if (serve.chaos_tasks_remaining != nullptr &&
        request.kind != static_cast<uint8_t>(RpcTaskKind::kPingTask) &&
        serve.chaos_tasks_remaining->fetch_sub(
            1, std::memory_order_relaxed) <= 0) {
      // Chaos axis: crash WITHOUT replying, so the master sees exactly
      // what a mid-round node death looks like. Pings are exempt — the
      // budget counts task work (session frames included), and reconnect
      // probes must not skew it.
      obs::WorkerLogf(
          "--chaos-kill-after budget exhausted, crashing without reply");
      std::_Exit(42);
    }
    requests_total->Add();
    if (request.kind >= kSessionFrameKindBase) {
      // Session-control frame: open/step/close a stateful replica.
      SessionReply session_reply =
          sessions.Handle(request.kind, request.payload);
      if (session_reply.body.size() >
          kMaxFramePayloadBytes - kRpcReplyHeaderBytes) {
        session_reply.kind = RpcReplyKind::kTaskError;
        const std::string msg =
            "session response of " +
            std::to_string(session_reply.body.size()) +
            " bytes exceeds the frame size limit";
        session_reply.body.assign(msg.begin(), msg.end());
      }
      // Gather-send: seconds header + body straight from the reply's
      // buffer, no assembled payload copy.
      if (!SendRpcReply(socket.fd(), session_reply.kind,
                        session_reply.compute_seconds,
                        {session_reply.body.data(), session_reply.body.size()})
               .ok()) {
        return;
      }
      continue;
    }
    const WorkerTask task =
        TaskForKind(static_cast<RpcTaskKind>(request.kind));
    RpcReplyKind reply_kind = RpcReplyKind::kOk;
    std::vector<uint8_t> body;
    const auto start = std::chrono::steady_clock::now();
    if (task == nullptr) {
      reply_kind = RpcReplyKind::kTaskError;
      const std::string msg = "unknown task kind " +
                              std::to_string(request.kind) +
                              " (worker/master version mismatch?)";
      body.assign(msg.begin(), msg.end());
    } else {
      StatusOr<std::vector<uint8_t>> response = task(request.payload);
      if (response.ok()) {
        body = std::move(response).value();
        if (body.size() > kMaxFramePayloadBytes - kRpcReplyHeaderBytes) {
          // Report the oversize as a task error instead of failing the
          // send and tearing down a healthy connection.
          reply_kind = RpcReplyKind::kTaskError;
          const std::string msg = "response of " +
                                  std::to_string(body.size()) +
                                  " bytes exceeds the frame size limit";
          body.assign(msg.begin(), msg.end());
        }
      } else {
        reply_kind = RpcReplyKind::kTaskError;
        const std::string msg = response.status().ToString();
        body.assign(msg.begin(), msg.end());
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(end - start).count();
    serve_ms->Record(seconds * 1e3);
    if (reply_kind != RpcReplyKind::kOk) task_errors->Add();
    obs::WorkerLogDebugf("served %s task: %zu -> %zu bytes in %.3f ms",
                         RpcTaskKindName(static_cast<RpcTaskKind>(request.kind)),
                         request.payload.size(), body.size(), seconds * 1e3);
    if (!SendRpcReply(socket.fd(), reply_kind, seconds,
                      {body.data(), body.size()})
             .ok()) {
      return;
    }
  }
}

Status ServeRpcWorker(TcpListener* listener, RpcServeOptions serve) {
  // Serving threads are detached but counted, so a graceful stop can
  // drain them: stop accepting, then wait (bounded) until every thread
  // finished its in-flight request and noticed the flag.
  struct ServeState {
    std::mutex mutex;
    std::condition_variable cv;
    int active = 0;
  };
  auto state = std::make_shared<ServeState>();
  for (;;) {
    if (serve.stop != nullptr) {
      if (serve.stop->load(std::memory_order_relaxed)) break;
      StatusOr<bool> readable = WaitReadable(listener->fd(), 200);
      if (!readable.ok()) return readable.status();
      if (!readable.value()) continue;  // timeout slice: re-check stop
    }
    StatusOr<Socket> accepted = listener->Accept(/*timeout_ms=*/-1);
    if (!accepted.ok()) return accepted.status();
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->active;
    }
    std::thread(
        [state, serve](Socket connection) {
          ServeRpcConnection(std::move(connection), serve);
          std::lock_guard<std::mutex> lock(state->mutex);
          --state->active;
          state->cv.notify_all();
        },
        std::move(accepted).value())
        .detach();
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  const bool drained =
      state->cv.wait_for(lock, std::chrono::seconds(10),
                         [&state] { return state->active == 0; });
  if (!drained) {
    // Exiting now would kill detached threads mid-task; the caller must
    // not report a clean drain (mpqopt_worker exits non-zero on this).
    return Status::Internal(
        "shutdown grace period expired with " +
        std::to_string(state->active) +
        " connection(s) still serving an in-flight task");
  }
  return Status::OK();
}

}  // namespace mpqopt
