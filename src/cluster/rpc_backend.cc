// Copyright 2026 mpqopt authors.

#include "cluster/rpc_backend.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "cluster/task_registry.h"

namespace mpqopt {
namespace {

constexpr size_t kReplyHeaderBytes = sizeof(double);  // compute seconds

// The f64 compute-seconds header crosses the wire as its IEEE-754 bit
// pattern in little-endian byte order, like the frame length prefix —
// independent of either peer's host endianness.
std::vector<uint8_t> BuildReplyPayload(double compute_seconds,
                                       const uint8_t* body, size_t size) {
  std::vector<uint8_t> payload(kReplyHeaderBytes + size);
  uint64_t bits = 0;
  std::memcpy(&bits, &compute_seconds, sizeof(bits));
  for (size_t i = 0; i < sizeof(bits); ++i) {
    payload[i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  if (size > 0) std::memcpy(payload.data() + kReplyHeaderBytes, body, size);
  return payload;
}

double DecodeReplySeconds(const std::vector<uint8_t>& payload) {
  uint64_t bits = 0;
  for (size_t i = 0; i < sizeof(bits); ++i) {
    bits |= static_cast<uint64_t>(payload[i]) << (8 * i);
  }
  double seconds = 0;
  std::memcpy(&seconds, &bits, sizeof(seconds));
  return seconds;
}

}  // namespace

StatusOr<std::shared_ptr<RpcBackend>> RpcBackend::Connect(
    NetworkModel model, const std::vector<std::string>& endpoints,
    int connect_timeout_ms, int io_timeout_ms) {
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "rpc backend needs at least one worker endpoint");
  }
  std::vector<std::unique_ptr<Connection>> connections;
  connections.reserve(endpoints.size());
  for (const std::string& endpoint : endpoints) {
    StatusOr<Socket> socket = DialTcp(endpoint, connect_timeout_ms);
    if (!socket.ok()) {
      return Status::Internal("cannot connect to rpc worker " + endpoint +
                              ": " + socket.status().ToString());
    }
    auto connection = std::make_unique<Connection>();
    connection->endpoint = endpoint;
    connection->socket = std::move(socket).value();
    connections.push_back(std::move(connection));
  }
  return std::shared_ptr<RpcBackend>(
      new RpcBackend(model, std::move(connections), io_timeout_ms));
}

Status RpcBackend::CallWorker(Connection* connection, uint8_t task_kind,
                              const std::vector<uint8_t>& request,
                              std::vector<uint8_t>* response,
                              double* compute_seconds) {
  std::lock_guard<std::mutex> lock(connection->mutex);
  if (connection->dead) {
    return Status::Internal("rpc worker " + connection->endpoint +
                            " is disconnected");
  }
  Status s = SendFrame(connection->socket.fd(), task_kind, request);
  if (!s.ok()) {
    connection->dead = true;
    return Status::Internal("rpc worker " + connection->endpoint +
                            ": request send failed: " + s.ToString());
  }
  Frame reply;
  s = RecvFrame(connection->socket.fd(), &reply, io_timeout_ms_);
  if (!s.ok()) {
    connection->dead = true;
    return Status::Internal("rpc worker " + connection->endpoint +
                            " disconnected or timed out mid-round: " +
                            s.ToString());
  }
  if (reply.payload.size() < kReplyHeaderBytes) {
    connection->dead = true;
    return Status::Corruption("rpc worker " + connection->endpoint +
                              " sent a truncated reply header");
  }
  const double seconds = DecodeReplySeconds(reply.payload);
  if (reply.kind == static_cast<uint8_t>(RpcReplyKind::kTaskError)) {
    // The task itself failed on a healthy worker; the connection stays
    // usable for later rounds, matching the in-process backends.
    return Status::Internal(
        "rpc worker " + connection->endpoint + " task failed: " +
        std::string(reply.payload.begin() + kReplyHeaderBytes,
                    reply.payload.end()));
  }
  if (reply.kind != static_cast<uint8_t>(RpcReplyKind::kOk)) {
    connection->dead = true;
    return Status::Corruption("rpc worker " + connection->endpoint +
                              " sent an unknown reply kind " +
                              std::to_string(reply.kind));
  }
  *compute_seconds = seconds;
  response->assign(reply.payload.begin() + kReplyHeaderBytes,
                   reply.payload.end());
  return Status::OK();
}

StatusOr<RoundResult> RpcBackend::RunRound(
    const std::vector<WorkerTask>& tasks,
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(tasks.size(), requests.size());
  const size_t num_tasks = tasks.size();
  RoundResult result;
  result.responses.resize(num_tasks);
  result.compute_seconds.assign(num_tasks, 0.0);

  // Every task must name a registered entry point and fit in a frame
  // before anything is sent — a half-scattered round with an unshippable
  // task helps nobody, and a purely local validation failure must not
  // poison a healthy connection.
  std::vector<uint8_t> kinds(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    const RpcTaskKind kind = ResolveTaskKind(tasks[i]);
    if (kind == RpcTaskKind::kUnknownTask) {
      return Status::InvalidArgument(
          "rpc backend can only ship registered worker entry points "
          "(task " +
          std::to_string(i) +
          " wraps an unregistered function; see cluster/task_registry.h)");
    }
    if (requests[i].size() > kMaxFramePayloadBytes) {
      return Status::InvalidArgument(
          "request for task " + std::to_string(i) + " (" +
          std::to_string(requests[i].size()) +
          " bytes) exceeds the frame size limit");
    }
    kinds[i] = static_cast<uint8_t>(kind);
  }

  std::mutex error_mutex;
  Status first_error = Status::OK();
  const size_t num_connections = connections_.size();
  // Task i goes to connection (base + i) % C; lane j walks its tasks in
  // order, so one connection never sees interleaved frames from the same
  // round. The per-round rotating base spreads concurrent small rounds
  // (tasks < connections) across the whole pool instead of serializing
  // them all behind connection 0.
  const size_t base =
      round_offset_.fetch_add(1, std::memory_order_relaxed) %
      num_connections;
  const auto run_lane = [&](size_t lane) {
    Connection* connection =
        connections_[(base + lane) % num_connections].get();
    for (size_t i = lane; i < num_tasks; i += num_connections) {
      Status s = CallWorker(connection, kinds[i], requests[i],
                            &result.responses[i], &result.compute_seconds[i]);
      if (!s.ok()) {
        std::lock_guard<std::mutex> error_lock(error_mutex);
        if (first_error.ok()) first_error = s;
        return;
      }
    }
  };

  const auto round_start = std::chrono::steady_clock::now();
  const size_t lanes = std::min(num_connections, num_tasks);
  if (lanes <= 1) {
    if (lanes == 1) run_lane(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
      pool.emplace_back(run_lane, lane);
    }
    for (std::thread& t : pool) t.join();
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();
  if (!first_error.ok()) return first_error;

  FinalizeRound(requests, &result);
  return result;
}

std::vector<std::string> SplitEndpoints(const std::string& comma_separated) {
  std::vector<std::string> endpoints;
  size_t begin = 0;
  while (begin <= comma_separated.size()) {
    size_t end = comma_separated.find(',', begin);
    if (end == std::string::npos) end = comma_separated.size();
    if (end > begin) {
      endpoints.push_back(comma_separated.substr(begin, end - begin));
    }
    begin = end + 1;
  }
  return endpoints;
}

void ServeRpcConnection(Socket socket) {
  for (;;) {
    Frame request;
    if (!RecvFrame(socket.fd(), &request).ok()) {
      return;  // clean close between frames, or a broken peer — either way
               // this connection is done
    }
    const WorkerTask task =
        TaskForKind(static_cast<RpcTaskKind>(request.kind));
    RpcReplyKind reply_kind = RpcReplyKind::kOk;
    std::vector<uint8_t> body;
    const auto start = std::chrono::steady_clock::now();
    if (task == nullptr) {
      reply_kind = RpcReplyKind::kTaskError;
      const std::string msg = "unknown task kind " +
                              std::to_string(request.kind) +
                              " (worker/master version mismatch?)";
      body.assign(msg.begin(), msg.end());
    } else {
      StatusOr<std::vector<uint8_t>> response = task(request.payload);
      if (response.ok()) {
        body = std::move(response).value();
        if (body.size() > kMaxFramePayloadBytes - kReplyHeaderBytes) {
          // Report the oversize as a task error instead of failing the
          // send and tearing down a healthy connection.
          reply_kind = RpcReplyKind::kTaskError;
          const std::string msg = "response of " +
                                  std::to_string(body.size()) +
                                  " bytes exceeds the frame size limit";
          body.assign(msg.begin(), msg.end());
        }
      } else {
        reply_kind = RpcReplyKind::kTaskError;
        const std::string msg = response.status().ToString();
        body.assign(msg.begin(), msg.end());
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(end - start).count();
    const std::vector<uint8_t> payload =
        BuildReplyPayload(seconds, body.data(), body.size());
    if (!SendFrame(socket.fd(), static_cast<uint8_t>(reply_kind), payload)
             .ok()) {
      return;
    }
  }
}

Status ServeRpcWorker(TcpListener* listener) {
  for (;;) {
    StatusOr<Socket> accepted = listener->Accept(/*timeout_ms=*/-1);
    if (!accepted.ok()) return accepted.status();
    std::thread(ServeRpcConnection, std::move(accepted).value()).detach();
  }
}

}  // namespace mpqopt
