// Copyright 2026 mpqopt authors.
//
// SessionHandle — the master side of the stateful-worker session
// protocol.
//
// A round of stateless tasks (ExecutionBackend::RunRound) is a pure
// scatter/gather: no worker remembers anything between rounds. SMA-style
// algorithms need the opposite — each worker node holds a REPLICA
// (SessionState, cluster/session/stateful_task.h) that persists across
// the rounds of one query. A SessionHandle manages a group of such
// replicas ("nodes"):
//
//   OpenSession   one replica per open request, built by the registered
//                 kind's open function (ExecutionBackend::OpenSession)
//   Step          scatter: node i consumes requests[i] against its
//                 replica and replies bytes. Steps must only READ the
//                 replica.
//   Broadcast     every node applies the SAME payload as a deterministic
//                 state transition. The handle records broadcasts in a
//                 replay log: replica state is always
//                 fold(step, open(open_request), broadcasts), which is
//                 what makes a lost remote replica recoverable — after a
//                 worker reconnect the session is re-opened and the log
//                 replayed (rpc_session.h).
//   Close         ends the session on every node (idempotent; also run
//                 by the destructor).
//
// Hosting follows the backend: in-process backends keep the replicas in
// the master process and run steps through their own RunRound
// (local_session.h) — state cannot be lost, so no replay is ever needed.
// RpcBackend keeps the replicas in remote mpqopt_worker processes
// (rpc_session.h) and recovers them by reconnect + replay.
//
// Accounting is shared with the stateless rounds (AccountRound): a
// Step/Broadcast round reports request+response payload bytes, two
// messages per node, and modeled time = per-node dispatch + the slowest
// transfer/compute/transfer path — so SMA's reported bytes and rounds
// are identical on every backend (asserted by tests/sma_test.cc).
//
// Thread safety: one handle is driven by one master thread; concurrent
// calls on the SAME handle are not supported. Different handles on one
// backend may run concurrently.

#ifndef MPQOPT_CLUSTER_SESSION_SESSION_H_
#define MPQOPT_CLUSTER_SESSION_SESSION_H_

#include <cstdint>
#include <vector>

#include "cluster/backend.h"
#include "common/status.h"

namespace mpqopt {

class SessionHandle {
 public:
  virtual ~SessionHandle() = default;

  /// Number of replicas in the session group.
  virtual size_t num_nodes() const = 0;

  /// One scatter round: node i consumes requests[i] (a pure read of its
  /// replica) and replies bytes. requests.size() must equal num_nodes().
  virtual StatusOr<RoundResult> Step(
      const std::vector<std::vector<uint8_t>>& requests) = 0;

  /// One broadcast round: every node applies `payload` as a
  /// deterministic state transition (responses are typically empty).
  /// Recorded in the replay log on recovery-capable implementations.
  virtual StatusOr<RoundResult> Broadcast(
      const std::vector<uint8_t>& payload) = 0;

  /// Ends the session on every node. Idempotent; errors after a node is
  /// already gone are swallowed (closing is advisory — worker-side TTL
  /// GC reclaims abandoned replicas regardless).
  virtual Status Close() = 0;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_SESSION_H_
