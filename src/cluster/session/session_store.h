// Copyright 2026 mpqopt authors.
//
// SessionStore — the worker side of the session protocol: the replicas
// one connection's master has opened, keyed by session id.
//
// Scoping: one store per CONNECTION, not per process. A session id is
// chosen by the master, so two masters sharing a worker could collide on
// ids; per-connection scoping makes that impossible, and it gives leak
// handling the right default — when the connection drops (master crash,
// supervisor reconnect, network cut) every replica it owned is freed
// with the serving thread. Two further guards bound the memory of a
// LIVE connection:
//
//  * TTL GC: a replica untouched for ttl_ms is reclaimed (swept lazily
//    on every session frame and from the serving loop's idle slices).
//    A master stepping an expired session gets kSessionError and may
//    rebuild it by re-open + replay.
//  * Per-session byte cap: after open and after every step the replica's
//    ApproxBytes() is checked against max_session_bytes; exceeding it
//    drops the replica and fails the step DETERMINISTICALLY
//    (kTaskError — a replay would exceed the cap again).
//
// Thread safety: none needed — a store belongs to exactly one serving
// thread (frames on one connection are handled strictly in order).

#ifndef MPQOPT_CLUSTER_SESSION_SESSION_STORE_H_
#define MPQOPT_CLUSTER_SESSION_SESSION_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/rpc_protocol.h"
#include "cluster/session/stateful_task.h"
#include "common/macros.h"

namespace mpqopt {

/// Worker-side session knobs (mpqopt_worker: --session-ttl-ms,
/// --session-max-bytes).
struct SessionStoreOptions {
  /// Reclaim a replica untouched for this long. <= 0 disables TTL GC
  /// (connection teardown still frees everything).
  int ttl_ms = 15 * 60 * 1000;
  /// Hard cap on one replica's ApproxBytes(); exceeding it drops the
  /// replica and fails the offending open/step deterministically.
  uint64_t max_session_bytes = uint64_t{256} << 20;
};

/// Outcome of handling one session frame; the serving loop turns this
/// into a standard reply frame (compute-seconds header + body).
struct SessionReply {
  RpcReplyKind kind = RpcReplyKind::kOk;
  std::vector<uint8_t> body;  ///< response bytes (kOk) or status text
  double compute_seconds = 0;
};

class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions options) : options_(options) {}
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(SessionStore);

  /// Handles one session frame (frame_kind is one of the
  /// kSession*Frame kinds of session_wire.h; payload is the raw frame
  /// payload). Never throws or aborts on malformed input — a corrupt
  /// frame yields a kTaskError reply.
  SessionReply Handle(uint8_t frame_kind,
                      const std::vector<uint8_t>& payload);

  /// Reclaims every replica whose TTL expired; called lazily from
  /// Handle and from the serving loop's idle slices.
  void SweepExpired();

  size_t size() const { return sessions_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::unique_ptr<SessionState> state;
    const StatefulTaskVtable* vtable = nullptr;
    Clock::time_point last_used;
  };

  SessionReply HandleOpen(const std::vector<uint8_t>& payload);
  SessionReply HandleStep(const std::vector<uint8_t>& payload);
  SessionReply HandleClose(const std::vector<uint8_t>& payload);

  SessionStoreOptions options_;
  std::unordered_map<uint64_t, Entry> sessions_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_SESSION_STORE_H_
