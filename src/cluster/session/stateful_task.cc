// Copyright 2026 mpqopt authors.

#include "cluster/session/stateful_task.h"

#include "sma/sma_node.h"

namespace mpqopt {
namespace {

// ---------------------------------------------------------------- SMA

/// The registered wrapper around sma/sma_node.h's replica.
class SmaSessionState : public SessionState {
 public:
  explicit SmaSessionState(std::unique_ptr<SmaNode> node)
      : node_(std::move(node)) {}
  size_t ApproxBytes() const override { return node_->ApproxBytes(); }
  SmaNode* node() const { return node_.get(); }

 private:
  std::unique_ptr<SmaNode> node_;
};

StatusOr<std::unique_ptr<SessionState>> SmaOpen(
    const std::vector<uint8_t>& request) {
  StatusOr<std::unique_ptr<SmaNode>> node = SmaNode::FromOpenRequest(request);
  if (!node.ok()) return node.status();
  return std::unique_ptr<SessionState>(
      std::make_unique<SmaSessionState>(std::move(node).value()));
}

StatusOr<std::vector<uint8_t>> SmaStep(SessionState* state,
                                       const std::vector<uint8_t>& request) {
  return static_cast<SmaSessionState*>(state)->node()->HandleStep(request);
}

Status NoOpClose(SessionState* /*state*/) { return Status::OK(); }

// -------------------------------------------------------- accumulator

/// Diagnostic replica: a byte buffer. Lets the session tests (and the
/// byte-cap / TTL edge cases) drive real state across rounds without
/// involving an optimizer, the way echo/fail serve the stateless suite.
class AccumulatorState : public SessionState {
 public:
  explicit AccumulatorState(std::vector<uint8_t> initial)
      : buffer_(std::move(initial)) {}
  size_t ApproxBytes() const override {
    return sizeof(AccumulatorState) + buffer_.capacity();
  }
  std::vector<uint8_t>& buffer() { return buffer_; }

 private:
  std::vector<uint8_t> buffer_;
};

StatusOr<std::unique_ptr<SessionState>> AccumulatorOpen(
    const std::vector<uint8_t>& request) {
  return std::unique_ptr<SessionState>(
      std::make_unique<AccumulatorState>(request));
}

StatusOr<std::vector<uint8_t>> AccumulatorStep(
    SessionState* state, const std::vector<uint8_t>& request) {
  if (request.empty()) {
    return Status::Corruption("empty accumulator step request");
  }
  std::vector<uint8_t>& buffer =
      static_cast<AccumulatorState*>(state)->buffer();
  switch (request[0]) {
    case kAccumulatorPeekOp:
      return buffer;
    case kAccumulatorAppendOp:
      buffer.insert(buffer.end(), request.begin() + 1, request.end());
      return std::vector<uint8_t>();
    default:
      return Status::Corruption("unknown accumulator op " +
                                std::to_string(request[0]));
  }
}

// ------------------------------------------------------------ registry

constexpr StatefulTaskVtable kSmaVtable = {&SmaOpen, &SmaStep, &NoOpClose};
constexpr StatefulTaskVtable kAccumulatorVtable = {&AccumulatorOpen,
                                                   &AccumulatorStep,
                                                   &NoOpClose};

}  // namespace

const char* StatefulTaskKindName(StatefulTaskKind kind) {
  switch (kind) {
    case StatefulTaskKind::kUnknownStateful:
      return "unknown";
    case StatefulTaskKind::kSmaNode:
      return "sma-node";
    case StatefulTaskKind::kAccumulator:
      return "accumulator";
  }
  return "unknown";
}

const StatefulTaskVtable* StatefulTaskForKind(StatefulTaskKind kind) {
  switch (kind) {
    case StatefulTaskKind::kUnknownStateful:
      return nullptr;
    case StatefulTaskKind::kSmaNode:
      return &kSmaVtable;
    case StatefulTaskKind::kAccumulator:
      return &kAccumulatorVtable;
  }
  return nullptr;
}

}  // namespace mpqopt
