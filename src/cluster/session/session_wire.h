// Copyright 2026 mpqopt authors.
//
// Wire format of the session protocol, layered on the framed transport
// (net/frame_transport.h) next to the stateless task frames.
//
// The frame kind byte is split into two namespaces (see
// kSessionFrameKindBase in net/frame_transport.h): kinds below the base
// are stateless task tags (cluster/task_registry.h), kinds at or above
// it are session control frames. All three session frames reference a
// master-chosen u64 session id; the worker keys its SessionStore by that
// id, scoped to the connection the frames arrive on — a master crash or
// reconnect drops the connection and with it every replica it owned.
//
//   kSessionOpenFrame    u64 session id, u8 StatefulTaskKind, then the
//                        open request bytes. Re-opening an existing id
//                        replaces the replica (recovery replays onto a
//                        fresh connection, so this only matters for a
//                        misbehaving master).
//   kSessionStepFrame    u64 session id, then the step request bytes.
//   kSessionCloseFrame   u64 session id. Always acknowledged kOk, even
//                        for unknown ids (closing is idempotent).
//
// Replies reuse the task reply format (cluster/rpc_protocol.h): a
// compute-seconds header, then response bytes (kOk), status text
// (kTaskError — deterministic step/open failures, including the
// per-session byte cap), or status text (kSessionError — the replica is
// GONE: unknown or TTL-expired id; the master may rebuild it by
// re-open + replay).

#ifndef MPQOPT_CLUSTER_SESSION_SESSION_WIRE_H_
#define MPQOPT_CLUSTER_SESSION_SESSION_WIRE_H_

#include <cstdint>
#include <vector>

#include "cluster/session/stateful_task.h"
#include "common/copy_probe.h"
#include "common/serialize.h"
#include "common/status.h"
#include "net/frame_transport.h"

namespace mpqopt {

constexpr uint8_t kSessionOpenFrame = kSessionFrameKindBase + 0;
constexpr uint8_t kSessionStepFrame = kSessionFrameKindBase + 1;
constexpr uint8_t kSessionCloseFrame = kSessionFrameKindBase + 2;

/// Legacy copy-assembling builders. The RPC session layer now gathers
/// the id header and request bytes through SendFrameV instead (see
/// cluster/session/rpc_session.cc); these remain for tests and for
/// callers that genuinely want a contiguous payload. Byte-identity
/// between the two paths is pinned by tests/session_test.cc.
inline std::vector<uint8_t> BuildSessionOpenPayload(
    uint64_t session_id, StatefulTaskKind kind,
    const std::vector<uint8_t>& open_request) {
  CountPayloadCopy(open_request.size());
  ByteWriter writer;
  writer.WriteU64(session_id);
  writer.WriteU8(static_cast<uint8_t>(kind));
  std::vector<uint8_t> payload = writer.Release();
  payload.insert(payload.end(), open_request.begin(), open_request.end());
  return payload;
}

inline std::vector<uint8_t> BuildSessionStepPayload(
    uint64_t session_id, const std::vector<uint8_t>& request) {
  CountPayloadCopy(request.size());
  ByteWriter writer;
  writer.WriteU64(session_id);
  std::vector<uint8_t> payload = writer.Release();
  payload.insert(payload.end(), request.begin(), request.end());
  return payload;
}

/// Encoded size of the session-id prefix on open/step/close payloads.
constexpr size_t kSessionIdBytes = sizeof(uint64_t);

/// Encodes the open-frame prefix (u64 id + kind byte) into a caller-owned
/// slot, byte-identical to BuildSessionOpenPayload's first 9 bytes.
inline void EncodeSessionOpenPrefix(uint64_t session_id,
                                    StatefulTaskKind kind,
                                    uint8_t out[kSessionIdBytes + 1]) {
  EncodeU64(session_id, out);
  out[kSessionIdBytes] = static_cast<uint8_t>(kind);
}

inline std::vector<uint8_t> BuildSessionClosePayload(uint64_t session_id) {
  ByteWriter writer;
  writer.WriteU64(session_id);
  return writer.Release();
}

/// Splits a session frame payload into the leading session id and the
/// remainder (open: kind byte + open request; step: step request).
inline Status ParseSessionId(const std::vector<uint8_t>& payload,
                             uint64_t* session_id, size_t* body_offset) {
  ByteReader reader(payload);
  Status s = reader.ReadU64(session_id);
  if (!s.ok()) {
    return Status::Corruption("truncated session frame header");
  }
  *body_offset = sizeof(uint64_t);
  return Status::OK();
}

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_SESSION_WIRE_H_
