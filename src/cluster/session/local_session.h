// Copyright 2026 mpqopt authors.
//
// LocalSessionHandle — session hosting for the in-process backends.
//
// The replicas live in the master process, exactly where SMA's per-node
// state lived before the session protocol existed. Scatter steps route
// through the owning backend's RunRound as closures over the replica
// pointers, so the hosting choice (per-round threads, forked processes,
// persistent async pool) still applies to the read-only per-round
// computation; broadcasts — the mutating state transitions — execute
// directly on the master-side replicas, which is what keeps
// ProcessBackend correct (a mutation inside a forked child would die
// with the child). State held in-process cannot be lost, so no replay
// log is kept.

#ifndef MPQOPT_CLUSTER_SESSION_LOCAL_SESSION_H_
#define MPQOPT_CLUSTER_SESSION_LOCAL_SESSION_H_

#include <memory>
#include <vector>

#include "cluster/session/session.h"
#include "cluster/session/stateful_task.h"

namespace mpqopt {

class LocalSessionHandle : public SessionHandle {
 public:
  /// Opens one replica per open request via the kind's registered open
  /// function. `backend` hosts the scatter steps and outlives the
  /// handle; `counters` aggregates into the backend's health().
  static StatusOr<std::unique_ptr<SessionHandle>> Open(
      ExecutionBackend* backend, ExecutionBackend::SessionCounters* counters,
      StatefulTaskKind kind,
      const std::vector<std::vector<uint8_t>>& open_requests);

  ~LocalSessionHandle() override;

  size_t num_nodes() const override { return states_.size(); }
  StatusOr<RoundResult> Step(
      const std::vector<std::vector<uint8_t>>& requests) override;
  StatusOr<RoundResult> Broadcast(
      const std::vector<uint8_t>& payload) override;
  Status Close() override;

 private:
  LocalSessionHandle(ExecutionBackend* backend,
                     ExecutionBackend::SessionCounters* counters,
                     const StatefulTaskVtable* vtable)
      : backend_(backend), counters_(counters), vtable_(vtable) {}

  /// Records the first round error and counts the session failed once;
  /// later calls fail fast. A broadcast that errors mid-group leaves the
  /// replicas partially mutated, so the group can no longer be trusted —
  /// the same sticky contract RpcSessionHandle has.
  Status Fail(const Status& error);

  ExecutionBackend* backend_;
  ExecutionBackend::SessionCounters* counters_;
  const StatefulTaskVtable* vtable_;
  std::vector<std::unique_ptr<SessionState>> states_;
  Status failed_ = Status::OK();  ///< first unrecoverable error, sticky
  bool closed_ = false;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_LOCAL_SESSION_H_
