// Copyright 2026 mpqopt authors.
//
// Stateful-task registry — the session-protocol sibling of
// cluster/task_registry.h.
//
// The stateless registry names pure functions from request bytes to
// response bytes; those can be shipped to any worker because they carry
// no state. Some worker code is inherently STATEFUL: SMA's per-node memo
// replica must persist across the rounds of one query. Such code
// registers here as an (open / step / close) function triple over an
// opaque SessionState:
//
//   open   bytes -> state       builds a fresh replica from the session
//                               open request (deterministic)
//   step   (state, bytes) -> bytes
//                               one round's work on the replica. A step
//                               either only READS the state (a scatter
//                               computation) or applies a DETERMINISTIC
//                               state transition (a broadcast) — the
//                               distinction is drawn by the master-side
//                               SessionHandle (Step vs Broadcast), which
//                               records broadcasts in a replay log so a
//                               lost replica can be rebuilt as
//                               fold(step, open(bytes), broadcasts).
//   close  state -> Status      final teardown hook before destruction
//
// As with the stateless registry, kind values are wire tags: append new
// kinds, never renumber.

#ifndef MPQOPT_CLUSTER_SESSION_STATEFUL_TASK_H_
#define MPQOPT_CLUSTER_SESSION_STATEFUL_TASK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace mpqopt {

/// Wire tag of one registered stateful entry point.
enum class StatefulTaskKind : uint8_t {
  kUnknownStateful = 0,  ///< unregistered — not shippable
  kSmaNode = 1,          ///< SMA per-node memo replica (sma/sma_node.h)
  kAccumulator = 2,      ///< diagnostic: byte buffer grown by broadcasts
};

/// Human-readable kind name for error messages.
const char* StatefulTaskKindName(StatefulTaskKind kind);

/// Opaque per-session replica state held by a worker across rounds.
class SessionState {
 public:
  virtual ~SessionState() = default;

  /// Approximate heap footprint of the replica. The worker-side byte cap
  /// (SessionStoreOptions::max_session_bytes) compares against this
  /// after open and after every step, so a runaway replica cannot pin
  /// worker memory.
  virtual size_t ApproxBytes() const = 0;
};

/// The (open / step / close) triple of one registered stateful kind.
struct StatefulTaskVtable {
  using OpenFn =
      StatusOr<std::unique_ptr<SessionState>> (*)(const std::vector<uint8_t>&);
  using StepFn = StatusOr<std::vector<uint8_t>> (*)(SessionState*,
                                                    const std::vector<uint8_t>&);
  using CloseFn = Status (*)(SessionState*);

  OpenFn open = nullptr;
  StepFn step = nullptr;
  CloseFn close = nullptr;
};

/// Maps a wire tag to its registered triple; null for unknown tags.
const StatefulTaskVtable* StatefulTaskForKind(StatefulTaskKind kind);

/// Step-request op tags of the kAccumulator diagnostic kind (first byte
/// of each step request): peek returns the accumulated buffer (pure
/// read), append extends it with the request body and returns empty (the
/// broadcast-style deterministic transition). Open seeds the buffer with
/// the open request's bytes.
constexpr uint8_t kAccumulatorPeekOp = 0;
constexpr uint8_t kAccumulatorAppendOp = 1;

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_STATEFUL_TASK_H_
