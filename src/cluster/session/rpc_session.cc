// Copyright 2026 mpqopt authors.

#include "cluster/session/rpc_session.h"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "cluster/session/session_wire.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace mpqopt {
namespace {

/// Master-process-unique session ids. Collisions between masters are
/// impossible regardless: worker-side stores are scoped per connection.
std::atomic<uint64_t> g_next_session_id{1};

/// A failure that would recur on any worker: a clean task error (the
/// step/open itself failed, e.g. the worker-side byte cap) — as opposed
/// to a connection failure (`worker_failed`) or a lost replica
/// (kNotFound), both of which re-open + replay can heal.
bool IsDeterministicFailure(const Status& status, bool worker_failed) {
  return !worker_failed && status.code() != StatusCode::kNotFound;
}

}  // namespace

StatusOr<std::unique_ptr<SessionHandle>> RpcSessionHandle::Open(
    WorkerSupervisor* supervisor, ExecutionBackend::SessionCounters* counters,
    NetworkModel model, StatefulTaskKind kind,
    const std::vector<std::vector<uint8_t>>& open_requests,
    size_t rotate_base) {
  // Fail fast on a kind this binary does not know; the worker would
  // reject it too, but without a round trip and per node.
  if (StatefulTaskForKind(kind) == nullptr) {
    return Status::InvalidArgument(
        "unregistered stateful task kind " +
        std::to_string(static_cast<int>(kind)) +
        " (see cluster/session/stateful_task.h)");
  }
  if (open_requests.empty()) {
    return Status::InvalidArgument("a session needs at least one node");
  }
  std::unique_ptr<RpcSessionHandle> handle(
      new RpcSessionHandle(supervisor, counters, model, kind));
  handle->nodes_.resize(open_requests.size());
  for (size_t i = 0; i < open_requests.size(); ++i) {
    Node& node = handle->nodes_[i];
    node.id = g_next_session_id.fetch_add(1, std::memory_order_relaxed);
    node.open_request = open_requests[i];
    // Deal node i onto the pool round-robin from the backend's rotating
    // base (so concurrent sessions spread); a pool smaller than the node
    // count hosts several replicas per worker under distinct ids.
    node.worker = (rotate_base + i) % supervisor->num_workers();
    // The initial open reuses the recovery machinery with an empty
    // replay log: open on the dealt worker when it is usable, handle
    // redials/backoff/migration otherwise.
    const size_t budget = RecoveryPassBudget(
        supervisor->options().max_redials, supervisor->num_workers());
    Status last = Status::OK();
    bool opened = false;
    for (size_t attempt = 0; attempt < budget; ++attempt) {
      bool final_failure = false;
      Status s = handle->RecoverNode(&node, /*prefer_current=*/attempt == 0,
                                     &final_failure);
      if (s.ok()) {
        opened = true;
        break;
      }
      last = s;
      if (final_failure) break;
    }
    if (!opened) {
      counters->failed.fetch_add(1, std::memory_order_relaxed);
      return Status::Internal("session open failed: " + last.ToString());
    }
  }
  counters->opened.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<SessionHandle>(std::move(handle));
}

RpcSessionHandle::~RpcSessionHandle() { Close(); }

StatusOr<RoundResult> RpcSessionHandle::Step(
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(requests.size(), nodes_.size());
  std::vector<const std::vector<uint8_t>*> pointers;
  pointers.reserve(requests.size());
  for (const std::vector<uint8_t>& request : requests) {
    pointers.push_back(&request);
  }
  return RunSessionRound(pointers, /*record=*/nullptr);
}

StatusOr<RoundResult> RpcSessionHandle::Broadcast(
    const std::vector<uint8_t>& payload) {
  const std::vector<const std::vector<uint8_t>*> pointers(nodes_.size(),
                                                          &payload);
  return RunSessionRound(pointers, &payload);
}

StatusOr<RoundResult> RpcSessionHandle::RunSessionRound(
    const std::vector<const std::vector<uint8_t>*>& requests,
    const std::vector<uint8_t>* record) {
  if (!failed_.ok()) return failed_;
  MPQOPT_CHECK(!closed_);
  counters_->rounds.fetch_add(1, std::memory_order_relaxed);
  const size_t m = nodes_.size();
  RoundResult result;
  result.responses.resize(m);
  result.compute_seconds.assign(m, 0.0);

  // One lane per hosting worker: a worker's nodes are stepped in order
  // on its one connection, distinct workers proceed in parallel. A node
  // may migrate to another worker mid-lane during recovery; the
  // supervisor's per-worker exchange lock keeps that safe.
  std::map<size_t, std::vector<size_t>> lanes;
  for (size_t i = 0; i < m; ++i) lanes[nodes_[i].worker].push_back(i);
  std::mutex error_mutex;
  Status round_error = Status::OK();
  obs::Span round_span("session.round");
  const obs::TraceContext lane_ctx = obs::CurrentTraceContext();
  const auto run_lane = [&](const std::vector<size_t>& node_indices) {
    obs::TraceContextScope lane_scope(lane_ctx);
    for (size_t i : node_indices) {
      Status s = StepNode(&nodes_[i], *requests[i], &result.responses[i],
                          &result.compute_seconds[i]);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (round_error.ok()) round_error = s;
        return;
      }
    }
  };

  const auto round_start = std::chrono::steady_clock::now();
  if (lanes.size() <= 1) {
    for (const auto& [worker, node_indices] : lanes) run_lane(node_indices);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(lanes.size());
    for (const auto& [worker, node_indices] : lanes) {
      pool.emplace_back(run_lane, node_indices);
    }
    for (std::thread& t : pool) t.join();
  }
  const auto round_end = std::chrono::steady_clock::now();

  if (!round_error.ok()) {
    // Unrecoverable: the session's replicas can no longer be trusted to
    // be consistent as a group. Sticky — every later call fails fast.
    failed_ = round_error;
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    return round_error;
  }
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();
  std::vector<size_t> sizes;
  sizes.reserve(m);
  for (const std::vector<uint8_t>* request : requests) {
    sizes.push_back(request->size());
  }
  AccountRound(model_, sizes, &result);
  if (record != nullptr) replay_log_.push_back(*record);
  return result;
}

Status RpcSessionHandle::StepNode(Node* node,
                                  const std::vector<uint8_t>& request,
                                  std::vector<uint8_t>* response,
                                  double* compute_seconds) {
  const size_t budget = RecoveryPassBudget(
      supervisor_->options().max_redials, supervisor_->num_workers());
  Status last = Status::OK();
  for (size_t attempt = 0; attempt <= budget; ++attempt) {
    if (attempt > 0) {
      bool final_failure = false;
      Status recovered =
          RecoverNode(node, /*prefer_current=*/attempt == 1, &final_failure);
      if (!recovered.ok()) {
        if (final_failure) return recovered;
        last = recovered;
        continue;  // this candidate worker failed; try another
      }
      counters_->recovered.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kSessionRecovery,
          "node %llu recovered onto worker %zu (attempt %zu)",
          static_cast<unsigned long long>(node->id), node->worker, attempt);
    }
    bool worker_failed = false;
    // Gather the id header and the request bytes into one frame — the
    // request buffer is never copied on the master side.
    uint8_t id_header[kSessionIdBytes];
    EncodeU64(node->id, id_header);
    const ConstSpan parts[2] = {{id_header, sizeof(id_header)},
                                {request.data(), request.size()}};
    Status s =
        supervisor_->ExchangeV(node->worker, kSessionStepFrame, parts, 2,
                               response, compute_seconds, &worker_failed);
    if (s.ok()) return Status::OK();
    if (IsDeterministicFailure(s, worker_failed)) return s;
    last = s;
  }
  return Status::Internal(
      "session node " + std::to_string(node->id) + " did not recover after " +
      std::to_string(budget) + " attempts; last failure: " + last.ToString());
}

Status RpcSessionHandle::RecoverNode(Node* node, bool prefer_current,
                                     bool* final_failure) {
  obs::Span recover_span("session.recover");
  *final_failure = false;
  for (;;) {
    const std::vector<size_t> usable = supervisor_->UsableWorkers();
    if (usable.empty()) {
      const int delay = supervisor_->NextRedialDelayMs();
      if (delay < 0) {
        *final_failure = true;
        return Status::Internal(
            "session lost: all workers are dead (session node " +
            std::to_string(node->id) + ")");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      continue;
    }
    size_t w = 0;
    bool chosen = false;
    if (prefer_current) {
      for (size_t candidate : usable) {
        if (candidate == node->worker) {
          w = candidate;
          chosen = true;
          break;
        }
      }
    }
    if (!chosen) {
      // Rotate over the survivors — the node migrates.
      const size_t shift =
          recover_rotor_.fetch_add(1, std::memory_order_relaxed);
      w = usable[shift % usable.size()];
    }
    return OpenNodeOn(w, node, final_failure);
  }
}

Status RpcSessionHandle::OpenNodeOn(size_t w, Node* node,
                                    bool* final_failure) {
  *final_failure = false;
  std::vector<uint8_t> response;
  double seconds = 0;
  bool worker_failed = false;
  uint8_t open_prefix[kSessionIdBytes + 1];
  EncodeSessionOpenPrefix(node->id, kind_, open_prefix);
  const ConstSpan open_parts[2] = {
      {open_prefix, sizeof(open_prefix)},
      {node->open_request.data(), node->open_request.size()}};
  Status s = supervisor_->ExchangeV(w, kSessionOpenFrame, open_parts, 2,
                                    &response, &seconds, &worker_failed);
  if (!s.ok()) {
    *final_failure = IsDeterministicFailure(s, worker_failed);
    return s;
  }
  // Replay the recorded broadcasts in order: the replica is a pure fold
  // over them, so after this the node is byte-equivalent to one that
  // never failed.
  uint8_t id_header[kSessionIdBytes];
  EncodeU64(node->id, id_header);
  for (const std::vector<uint8_t>& payload : replay_log_) {
    const ConstSpan parts[2] = {{id_header, sizeof(id_header)},
                                {payload.data(), payload.size()}};
    s = supervisor_->ExchangeV(w, kSessionStepFrame, parts, 2, &response,
                               &seconds, &worker_failed);
    if (!s.ok()) {
      *final_failure = IsDeterministicFailure(s, worker_failed);
      return s;
    }
  }
  node->worker = w;
  return Status::OK();
}

Status RpcSessionHandle::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  for (Node& node : nodes_) {
    // Best effort: a worker that is not currently healthy gets no close
    // call (no redial storms on teardown) — its store reclaims the
    // replica on disconnect or TTL anyway.
    if (supervisor_->health(node.worker) != WorkerHealth::kHealthy) continue;
    std::vector<uint8_t> response;
    double seconds = 0;
    bool worker_failed = false;
    supervisor_->Exchange(node.worker, kSessionCloseFrame,
                          BuildSessionClosePayload(node.id), &response,
                          &seconds, &worker_failed);
  }
  return Status::OK();
}

}  // namespace mpqopt
