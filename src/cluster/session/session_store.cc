// Copyright 2026 mpqopt authors.

#include "cluster/session/session_store.h"

#include <string>
#include <utility>

#include "cluster/session/session_wire.h"

namespace mpqopt {
namespace {

SessionReply ErrorReply(RpcReplyKind kind, const std::string& message) {
  SessionReply reply;
  reply.kind = kind;
  reply.body.assign(message.begin(), message.end());
  return reply;
}

}  // namespace

SessionReply SessionStore::Handle(uint8_t frame_kind,
                                  const std::vector<uint8_t>& payload) {
  SweepExpired();
  switch (frame_kind) {
    case kSessionOpenFrame:
      return HandleOpen(payload);
    case kSessionStepFrame:
      return HandleStep(payload);
    case kSessionCloseFrame:
      return HandleClose(payload);
    default:
      return ErrorReply(RpcReplyKind::kTaskError,
                        "unknown session frame kind " +
                            std::to_string(frame_kind) +
                            " (worker/master version mismatch?)");
  }
}

void SessionStore::SweepExpired() {
  if (options_.ttl_ms <= 0 || sessions_.empty()) return;
  const Clock::time_point cutoff =
      Clock::now() - std::chrono::milliseconds(options_.ttl_ms);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_used < cutoff) {
      it->second.vtable->close(it->second.state.get());
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

SessionReply SessionStore::HandleOpen(const std::vector<uint8_t>& payload) {
  uint64_t session_id = 0;
  size_t offset = 0;
  Status s = ParseSessionId(payload, &session_id, &offset);
  if (!s.ok()) return ErrorReply(RpcReplyKind::kTaskError, s.ToString());
  if (payload.size() < offset + 1) {
    return ErrorReply(RpcReplyKind::kTaskError,
                      "truncated session open payload");
  }
  const StatefulTaskKind kind =
      static_cast<StatefulTaskKind>(payload[offset]);
  const StatefulTaskVtable* vtable = StatefulTaskForKind(kind);
  if (vtable == nullptr) {
    return ErrorReply(RpcReplyKind::kTaskError,
                      "unregistered stateful task kind " +
                          std::to_string(payload[offset]) +
                          " (worker/master version mismatch?)");
  }
  const std::vector<uint8_t> open_request(payload.begin() + offset + 1,
                                          payload.end());
  // Re-opening an id replaces the replica: recovery normally lands on a
  // fresh connection, so a same-connection duplicate is a master bug —
  // but replacing keeps open idempotent, which replay relies on.
  auto existing = sessions_.find(session_id);
  if (existing != sessions_.end()) {
    existing->second.vtable->close(existing->second.state.get());
    sessions_.erase(existing);
  }
  const auto start = Clock::now();
  StatusOr<std::unique_ptr<SessionState>> state = vtable->open(open_request);
  const auto end = Clock::now();
  SessionReply reply;
  reply.compute_seconds =
      std::chrono::duration<double>(end - start).count();
  if (!state.ok()) {
    return ErrorReply(RpcReplyKind::kTaskError,
                      "session open failed: " + state.status().ToString());
  }
  const size_t bytes = state.value()->ApproxBytes();
  if (bytes > options_.max_session_bytes) {
    vtable->close(state.value().get());
    return ErrorReply(
        RpcReplyKind::kTaskError,
        "session state of " + std::to_string(bytes) +
            " bytes exceeds the worker's per-session byte cap (" +
            std::to_string(options_.max_session_bytes) + ")");
  }
  Entry entry;
  entry.state = std::move(state).value();
  entry.vtable = vtable;
  entry.last_used = Clock::now();
  sessions_.emplace(session_id, std::move(entry));
  return reply;
}

SessionReply SessionStore::HandleStep(const std::vector<uint8_t>& payload) {
  uint64_t session_id = 0;
  size_t offset = 0;
  Status s = ParseSessionId(payload, &session_id, &offset);
  if (!s.ok()) return ErrorReply(RpcReplyKind::kTaskError, s.ToString());
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // The replica is gone — never opened on this connection, or TTL-
    // reclaimed. Recoverable for the master (re-open + replay), hence
    // kSessionError, not a task error.
    return ErrorReply(RpcReplyKind::kSessionError,
                      "unknown or expired session id " +
                          std::to_string(session_id));
  }
  const std::vector<uint8_t> request(payload.begin() + offset,
                                     payload.end());
  const auto start = Clock::now();
  StatusOr<std::vector<uint8_t>> response =
      it->second.vtable->step(it->second.state.get(), request);
  const auto end = Clock::now();
  SessionReply reply;
  reply.compute_seconds =
      std::chrono::duration<double>(end - start).count();
  if (!response.ok()) {
    return ErrorReply(RpcReplyKind::kTaskError,
                      response.status().ToString());
  }
  const size_t bytes = it->second.state->ApproxBytes();
  if (bytes > options_.max_session_bytes) {
    // Drop the runaway replica NOW — the cap exists to protect worker
    // memory, not to advise. Deterministic: a replay of the same
    // transitions would exceed the cap again, so this is a task error.
    it->second.vtable->close(it->second.state.get());
    sessions_.erase(it);
    return ErrorReply(
        RpcReplyKind::kTaskError,
        "session state grew to " + std::to_string(bytes) +
            " bytes, exceeding the worker's per-session byte cap (" +
            std::to_string(options_.max_session_bytes) + ")");
  }
  it->second.last_used = Clock::now();
  reply.body = std::move(response).value();
  return reply;
}

SessionReply SessionStore::HandleClose(const std::vector<uint8_t>& payload) {
  uint64_t session_id = 0;
  size_t offset = 0;
  Status s = ParseSessionId(payload, &session_id, &offset);
  if (!s.ok()) return ErrorReply(RpcReplyKind::kTaskError, s.ToString());
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) {
    it->second.vtable->close(it->second.state.get());
    sessions_.erase(it);
  }
  return SessionReply();  // closing an unknown id is fine (idempotent)
}

}  // namespace mpqopt
