// Copyright 2026 mpqopt authors.

#include "cluster/session/local_session.h"

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "obs/trace.h"

namespace mpqopt {

// Defined here rather than in backend.cc so the core backend translation
// unit does not depend on the stateful-task registry (which pulls in the
// optimizer entry points it registers).
StatusOr<std::unique_ptr<SessionHandle>> ExecutionBackend::OpenSession(
    StatefulTaskKind kind,
    const std::vector<std::vector<uint8_t>>& open_requests) {
  return LocalSessionHandle::Open(this, &session_counters_, kind,
                                  open_requests);
}

StatusOr<std::unique_ptr<SessionHandle>> LocalSessionHandle::Open(
    ExecutionBackend* backend, ExecutionBackend::SessionCounters* counters,
    StatefulTaskKind kind,
    const std::vector<std::vector<uint8_t>>& open_requests) {
  const StatefulTaskVtable* vtable = StatefulTaskForKind(kind);
  if (vtable == nullptr) {
    return Status::InvalidArgument(
        "unregistered stateful task kind " +
        std::to_string(static_cast<int>(kind)) +
        " (see cluster/session/stateful_task.h)");
  }
  if (open_requests.empty()) {
    return Status::InvalidArgument("a session needs at least one node");
  }
  std::unique_ptr<LocalSessionHandle> handle(
      new LocalSessionHandle(backend, counters, vtable));
  handle->states_.reserve(open_requests.size());
  for (const std::vector<uint8_t>& request : open_requests) {
    StatusOr<std::unique_ptr<SessionState>> state = vtable->open(request);
    if (!state.ok()) {
      counters->failed.fetch_add(1, std::memory_order_relaxed);
      return state.status();
    }
    handle->states_.push_back(std::move(state).value());
  }
  counters->opened.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<SessionHandle>(std::move(handle));
}

LocalSessionHandle::~LocalSessionHandle() { Close(); }

Status LocalSessionHandle::Fail(const Status& error) {
  if (failed_.ok()) {
    failed_ = error;
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
  }
  return failed_;
}

StatusOr<RoundResult> LocalSessionHandle::Step(
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(requests.size(), states_.size());
  MPQOPT_CHECK(!closed_);
  if (!failed_.ok()) return failed_;
  counters_->rounds.fetch_add(1, std::memory_order_relaxed);
  // Scatter steps are pure reads of the replicas, so they can ride the
  // backend's own round machinery — including fork-per-task isolation.
  std::vector<WorkerTask> tasks;
  tasks.reserve(states_.size());
  for (std::unique_ptr<SessionState>& state : states_) {
    SessionState* raw = state.get();
    const StatefulTaskVtable* vtable = vtable_;
    tasks.push_back(
        [raw, vtable](const std::vector<uint8_t>& request) {
          return vtable->step(raw, request);
        });
  }
  StatusOr<RoundResult> round = backend_->RunRound(tasks, requests);
  if (!round.ok()) return Fail(round.status());
  return round;
}

StatusOr<RoundResult> LocalSessionHandle::Broadcast(
    const std::vector<uint8_t>& payload) {
  MPQOPT_CHECK(!closed_);
  if (!failed_.ok()) return failed_;
  counters_->rounds.fetch_add(1, std::memory_order_relaxed);
  // Broadcasts mutate the replicas, so they run on the master-side state
  // directly — never through a backend that might host the step in a
  // forked child whose memory dies with it.
  const size_t m = states_.size();
  RoundResult result;
  result.responses.resize(m);
  result.compute_seconds.assign(m, 0.0);
  obs::Span round_span("session.round");
  const auto round_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < m; ++i) {
    const auto start = std::chrono::steady_clock::now();
    StatusOr<std::vector<uint8_t>> response =
        vtable_->step(states_[i].get(), payload);
    const auto end = std::chrono::steady_clock::now();
    if (!response.ok()) return Fail(response.status());
    result.responses[i] = std::move(response).value();
    result.compute_seconds[i] =
        std::chrono::duration<double>(end - start).count();
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();
  AccountRound(backend_->network(),
               std::vector<size_t>(m, payload.size()), &result);
  return result;
}

Status LocalSessionHandle::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  for (std::unique_ptr<SessionState>& state : states_) {
    vtable_->close(state.get());  // advisory; errors are not actionable
  }
  states_.clear();
  return Status::OK();
}

}  // namespace mpqopt
