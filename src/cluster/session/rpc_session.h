// Copyright 2026 mpqopt authors.
//
// RpcSessionHandle — session hosting over real sockets.
//
// Each replica ("node") lives in a remote mpqopt_worker process, keyed
// by a master-chosen session id inside the worker connection's
// SessionStore. Nodes are dealt over the supervised worker pool
// round-robin (a pool smaller than the node count hosts several replicas
// per worker under distinct ids); every open/step/close crosses the wire
// through WorkerSupervisor::Exchange, so session traffic shares the
// supervision machinery of the stateless rounds — per-worker exchange
// serialization, SUSPECT/DEAD health transitions, redial with backoff.
//
// Failure handling: replica state is deterministic —
// fold(step, open(open_request), broadcast log) — so a lost replica is
// REBUILDABLE. When an exchange fails at the connection level (worker
// died; supervisor redials it) or returns kSessionError (the replica is
// gone: the connection was redialed, or the worker restarted, or the TTL
// expired), the handle re-opens the node's session on a currently usable
// worker — the same endpoint after a reconnect, or a survivor (the node
// MIGRATES) — replays the recorded broadcasts, and retries the failed
// round step. Attempts are bounded by RecoveryPassBudget; a
// deterministic task error (including the worker-side byte cap) or an
// all-workers-DEAD pool fails the session immediately and permanently.
// Recovery replays are real traffic but are NOT added to the round's
// TrafficStats: the modeled numbers describe the failure-free algorithm,
// exactly as RunRound's re-scatter accounting does.

#ifndef MPQOPT_CLUSTER_SESSION_RPC_SESSION_H_
#define MPQOPT_CLUSTER_SESSION_RPC_SESSION_H_

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/session/session.h"
#include "cluster/session/stateful_task.h"
#include "cluster/supervisor/worker_supervisor.h"

namespace mpqopt {

class RpcSessionHandle : public SessionHandle {
 public:
  /// Opens one remote replica per open request, dealt over the usable
  /// workers starting at `rotate_base` (so concurrent sessions spread
  /// over the pool). `supervisor` and `counters` belong to the owning
  /// RpcBackend and outlive the handle.
  static StatusOr<std::unique_ptr<SessionHandle>> Open(
      WorkerSupervisor* supervisor,
      ExecutionBackend::SessionCounters* counters, NetworkModel model,
      StatefulTaskKind kind,
      const std::vector<std::vector<uint8_t>>& open_requests,
      size_t rotate_base);

  ~RpcSessionHandle() override;

  size_t num_nodes() const override { return nodes_.size(); }
  StatusOr<RoundResult> Step(
      const std::vector<std::vector<uint8_t>>& requests) override;
  StatusOr<RoundResult> Broadcast(
      const std::vector<uint8_t>& payload) override;
  Status Close() override;

 private:
  struct Node {
    size_t worker = 0;  ///< current hosting worker (changes on migration)
    uint64_t id = 0;    ///< wire session id (stable across re-opens)
    std::vector<uint8_t> open_request;  ///< kept for recovery re-opens
  };

  RpcSessionHandle(WorkerSupervisor* supervisor,
                   ExecutionBackend::SessionCounters* counters,
                   NetworkModel model, StatefulTaskKind kind)
      : supervisor_(supervisor),
        counters_(counters),
        model_(model),
        kind_(kind) {}

  /// Shared Step/Broadcast machinery: requests[i] goes to node i; when
  /// `record` is non-null the payload is appended to the replay log
  /// after the round succeeds.
  StatusOr<RoundResult> RunSessionRound(
      const std::vector<const std::vector<uint8_t>*>& requests,
      const std::vector<uint8_t>* record);

  /// One step exchange on the node's current worker, with bounded
  /// re-open + replay recovery on connection or session loss.
  Status StepNode(Node* node, const std::vector<uint8_t>& request,
                  std::vector<uint8_t>* response, double* compute_seconds);

  /// (Re-)opens the node on one usable worker and replays the broadcast
  /// log (waits out redial backoff when no worker is usable yet). With
  /// `prefer_current`, the node's current worker is chosen when usable
  /// (initial placement; reconnect locality on the first recovery try);
  /// otherwise the choice rotates over the survivors — the node
  /// migrates. On failure `*final_failure` says whether retrying on
  /// another worker could help (false) or the failure is final (true: a
  /// deterministic open/replay error, or every worker is DEAD).
  Status RecoverNode(Node* node, bool prefer_current, bool* final_failure);

  /// Sends open + replay to worker `w`; on success the node is hosted
  /// there. `*final_failure` as for RecoverNode.
  Status OpenNodeOn(size_t w, Node* node, bool* final_failure);

  WorkerSupervisor* supervisor_;
  ExecutionBackend::SessionCounters* counters_;
  const NetworkModel model_;
  const StatefulTaskKind kind_;
  std::vector<Node> nodes_;
  /// Broadcast payloads in application order; replica state is always
  /// fold(step, open, this log), which recovery relies on.
  std::vector<std::vector<uint8_t>> replay_log_;
  /// Spreads recovery re-opens over the usable pool.
  std::atomic<size_t> recover_rotor_{0};
  Status failed_ = Status::OK();  ///< first unrecoverable error, sticky
  bool closed_ = false;
};

}  // namespace mpqopt

#endif  // MPQOPT_CLUSTER_SESSION_RPC_SESSION_H_
