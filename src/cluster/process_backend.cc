// Copyright 2026 mpqopt authors.

#include "cluster/process_backend.h"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "obs/trace.h"

namespace mpqopt {
namespace {

/// Child -> parent wire format on the pipe:
///   u8  ok flag (1 = success)
///   f64 compute seconds measured inside the child
///   u64 payload length, then the payload (response or error message).
struct ReplyHeader {
  uint8_t ok;
  double seconds;
  uint64_t length;
};

bool WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadAll(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

StatusOr<RoundResult> ProcessBackend::RunRound(
    const std::vector<WorkerTask>& tasks,
    const std::vector<std::vector<uint8_t>>& requests) {
  MPQOPT_CHECK_EQ(tasks.size(), requests.size());
  const size_t num_tasks = tasks.size();
  RoundResult result;
  result.responses.resize(num_tasks);
  result.compute_seconds.assign(num_tasks, 0.0);

  // See the header: concurrent rounds must not interleave pipe()/fork().
  std::lock_guard<std::mutex> fork_lock(fork_mutex_);
  const auto round_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_tasks; ++i) {
    // Spans the task's whole fork/compute/reap on the master thread; the
    // child's trace writes die with its copy-on-write address space.
    obs::Span compute_span("compute");
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::Internal("pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return Status::Internal("fork() failed");
    }
    if (pid == 0) {
      // Child: private copy-on-write address space. Run the task, ship
      // the reply through the pipe, and exit without running any parent
      // cleanup (_exit, not exit).
      ::close(pipe_fds[0]);
      const auto start = std::chrono::steady_clock::now();
      StatusOr<std::vector<uint8_t>> response = tasks[i](requests[i]);
      const auto end = std::chrono::steady_clock::now();
      ReplyHeader header;
      header.ok = response.ok() ? 1 : 0;
      header.seconds = std::chrono::duration<double>(end - start).count();
      std::vector<uint8_t> payload;
      if (response.ok()) {
        payload = std::move(response).value();
      } else {
        const std::string msg = response.status().ToString();
        payload.assign(msg.begin(), msg.end());
      }
      header.length = payload.size();
      bool ok = WriteAll(pipe_fds[1], &header, sizeof(header));
      if (ok && !payload.empty()) {
        ok = WriteAll(pipe_fds[1], payload.data(), payload.size());
      }
      ::close(pipe_fds[1]);
      ::_exit(ok ? 0 : 1);
    }
    // Parent: read the reply, reap the child.
    ::close(pipe_fds[1]);
    ReplyHeader header;
    const bool header_ok = ReadAll(pipe_fds[0], &header, sizeof(header));
    std::vector<uint8_t> payload;
    bool payload_ok = header_ok;
    if (header_ok && header.length > 0) {
      if (header.length > (uint64_t{1} << 32)) {
        payload_ok = false;
      } else {
        payload.resize(header.length);
        payload_ok = ReadAll(pipe_fds[0], payload.data(), payload.size());
      }
    }
    ::close(pipe_fds[0]);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    if (!header_ok || !payload_ok) {
      return Status::Internal("worker process died before replying");
    }
    if (header.ok == 0) {
      return Status::Internal(
          "worker process failed: " +
          std::string(payload.begin(), payload.end()));
    }
    result.compute_seconds[i] = header.seconds;
    result.responses[i] = std::move(payload);
  }
  const auto round_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(round_end - round_start).count();

  FinalizeRound(requests, &result);
  return result;
}

}  // namespace mpqopt
