// Copyright 2026 mpqopt authors.

#include "workload/workload_spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/serialize.h"
#include "partition/constraints.h"
#include "plancache/fingerprint.h"

namespace mpqopt {
namespace {

/// Splits one line into whitespace-separated tokens, dropping everything
/// from the first '#' on.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status SpecError(const std::string& source, int line, const std::string& msg) {
  return Status::InvalidArgument(source + ":" + std::to_string(line) + ": " +
                                 msg);
}

/// Strict non-negative integer parse; rejects trailing garbage so a typo
/// like "10x" cannot silently become 10.
bool ParseInt(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || v < 0) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

/// One relation of the spec's catalog.
struct RelationDef {
  std::string name;
  TableInfo info;
};

/// Query under construction: table list as relation indices, plus the
/// option deltas seen so far.
struct QueryDraft {
  std::string name;
  int line = 0;  // the `query` directive's line, for end-of-block errors
  std::vector<int> relation_indices;
  std::vector<JoinPredicate> predicates;
  WorkloadVariant variant = WorkloadVariant::kMpq;
  MpqOptions options;
};

/// Resolves "<table>.<attr>" against the draft's table list. The table
/// part is a relation NAME (position in the query's `tables` directive);
/// the attribute part is an index into that relation's domain list.
Status ResolveEndpoint(const std::string& token, const QueryDraft& draft,
                       const std::vector<RelationDef>& relations,
                       int* table_index, int* attr_index) {
  const size_t dot = token.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= token.size()) {
    return Status::InvalidArgument("edge endpoint '" + token +
                                   "' is not <table>.<attribute>");
  }
  const std::string table_name = token.substr(0, dot);
  int64_t attr = 0;
  if (!ParseInt(token.substr(dot + 1), &attr)) {
    return Status::InvalidArgument("edge endpoint '" + token +
                                   "' has a non-numeric attribute");
  }
  for (size_t i = 0; i < draft.relation_indices.size(); ++i) {
    const RelationDef& rel = relations[draft.relation_indices[i]];
    if (rel.name != table_name) continue;
    if (attr >= static_cast<int64_t>(rel.info.attribute_domains.size())) {
      return Status::InvalidArgument(
          "edge endpoint '" + token + "' exceeds the " +
          std::to_string(rel.info.attribute_domains.size()) +
          " attribute(s) of relation '" + table_name + "'");
    }
    *table_index = static_cast<int>(i);
    *attr_index = static_cast<int>(attr);
    return Status::OK();
  }
  return Status::InvalidArgument("edge references relation '" + table_name +
                                 "' which is not in this query's tables");
}

/// Finishes a query block: materializes the Query, validates it, and
/// checks the worker count against the chosen plan space.
Status FinishQuery(const QueryDraft& draft,
                   const std::vector<RelationDef>& relations,
                   const std::string& source, WorkloadQuery* out) {
  if (draft.relation_indices.empty()) {
    return SpecError(source, draft.line,
                     "query '" + draft.name + "' has no tables directive");
  }
  std::vector<TableInfo> tables;
  tables.reserve(draft.relation_indices.size());
  for (const int rel : draft.relation_indices) {
    tables.push_back(relations[rel].info);
  }
  Query query(std::move(tables), draft.predicates);
  Status valid = query.Validate();
  if (!valid.ok()) {
    return SpecError(source, draft.line,
                     "query '" + draft.name + "': " + valid.message());
  }
  if (draft.variant == WorkloadVariant::kMpq) {
    valid = ValidateNumWorkers(draft.options.num_workers, query.num_tables(),
                               draft.options.space);
    if (!valid.ok()) {
      return SpecError(source, draft.line,
                       "query '" + draft.name + "': " + valid.message());
    }
  } else if (draft.options.num_workers < 1) {
    return SpecError(source, draft.line,
                     "query '" + draft.name + "': workers must be >= 1");
  }
  out->name = draft.name;
  out->query = std::move(query);
  out->variant = draft.variant;
  out->options = draft.options;
  return Status::OK();
}

}  // namespace

const char* WorkloadVariantName(WorkloadVariant variant) {
  switch (variant) {
    case WorkloadVariant::kMpq:
      return "mpq";
    case WorkloadVariant::kSma:
      return "sma";
  }
  return "unknown";
}

std::vector<int> Workload::Arrivals(int repeat_cap) const {
  std::vector<int> arrivals;
  for (const ScheduleEntry& entry : schedule) {
    int reps = entry.repetitions;
    if (repeat_cap > 0 && reps > repeat_cap) reps = repeat_cap;
    for (int i = 0; i < reps; ++i) arrivals.push_back(entry.query_index);
  }
  return arrivals;
}

std::vector<Workload::TimedArrival> Workload::TimedArrivals(
    int repeat_cap) const {
  std::vector<TimedArrival> arrivals;
  for (const ScheduleEntry& entry : schedule) {
    int reps = entry.repetitions;
    if (repeat_cap > 0 && reps > repeat_cap) reps = repeat_cap;
    const int64_t start = entry.start_ms < 0 ? 0 : entry.start_ms;
    for (int i = 0; i < reps; ++i) {
      arrivals.push_back({entry.query_index, start + i * entry.spacing_ms});
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const TimedArrival& a, const TimedArrival& b) {
                     return a.at_ms < b.at_ms;
                   });
  return arrivals;
}

StatusOr<Workload> ParseWorkloadSpec(const std::string& text,
                                     const std::string& source) {
  Workload workload;
  workload.source = source;

  std::vector<RelationDef> relations;
  bool saw_version = false;
  bool in_query = false;
  QueryDraft draft;

  auto find_relation = [&relations](const std::string& name) {
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };
  auto find_query = [&workload](const std::string& name) {
    for (size_t i = 0; i < workload.queries.size(); ++i) {
      if (workload.queries[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };

  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    // The version header must precede every other directive, so an old
    // loader meeting a future format fails on the first word.
    if (!saw_version) {
      if (directive != "mbw") {
        return SpecError(source, line_no,
                         "expected 'mbw <version>' header, got '" +
                             directive + "'");
      }
      int64_t version = -1;
      if (tokens.size() != 2 || !ParseInt(tokens[1], &version)) {
        return SpecError(source, line_no, "malformed 'mbw <version>' header");
      }
      if (version != kWorkloadSpecVersion) {
        return SpecError(source, line_no,
                         "unsupported mbw version " + tokens[1] +
                             " (this loader reads version " +
                             std::to_string(kWorkloadSpecVersion) + ")");
      }
      saw_version = true;
      continue;
    }

    if (in_query) {
      if (directive == "tables") {
        if (tokens.size() < 2) {
          return SpecError(source, line_no, "tables directive names nothing");
        }
        if (!draft.relation_indices.empty()) {
          return SpecError(source, line_no,
                           "duplicate tables directive in query '" +
                               draft.name + "'");
        }
        for (size_t i = 1; i < tokens.size(); ++i) {
          const int rel = find_relation(tokens[i]);
          if (rel < 0) {
            return SpecError(source, line_no,
                             "unknown relation '" + tokens[i] + "'");
          }
          // The plan cache invalidates by table NAME, so one relation
          // cannot appear twice in a query (it would also be a
          // self-join, which the cost model does not support).
          if (std::find(draft.relation_indices.begin(),
                        draft.relation_indices.end(), rel) !=
              draft.relation_indices.end()) {
            return SpecError(source, line_no,
                             "relation '" + tokens[i] +
                                 "' listed twice in one query");
          }
          draft.relation_indices.push_back(rel);
        }
      } else if (directive == "edge") {
        if (tokens.size() != 3 && tokens.size() != 4) {
          return SpecError(
              source, line_no,
              "edge wants: edge <t>.<a> <t>.<a> [<selectivity>]");
        }
        JoinPredicate pred;
        Status s = ResolveEndpoint(tokens[1], draft, relations,
                                   &pred.left_table, &pred.left_attribute);
        if (!s.ok()) return SpecError(source, line_no, s.message());
        s = ResolveEndpoint(tokens[2], draft, relations, &pred.right_table,
                            &pred.right_attribute);
        if (!s.ok()) return SpecError(source, line_no, s.message());
        if (pred.left_table == pred.right_table) {
          return SpecError(source, line_no,
                           "edge joins a relation with itself");
        }
        if (tokens.size() == 4) {
          if (!ParseDouble(tokens[3], &pred.selectivity) ||
              !(pred.selectivity > 0.0 && pred.selectivity <= 1.0)) {
            return SpecError(source, line_no,
                             "explicit selectivity must be in (0, 1]");
          }
        } else {
          // Steinbrunn et al. equality-predicate default.
          const RelationDef& lt =
              relations[draft.relation_indices[pred.left_table]];
          const RelationDef& rt =
              relations[draft.relation_indices[pred.right_table]];
          pred.selectivity =
              1.0 / std::max(lt.info.attribute_domains[pred.left_attribute],
                             rt.info.attribute_domains[pred.right_attribute]);
        }
        draft.predicates.push_back(pred);
      } else if (directive == "space") {
        if (tokens.size() != 2 ||
            (tokens[1] != "linear" && tokens[1] != "bushy")) {
          return SpecError(source, line_no, "space wants linear|bushy");
        }
        draft.options.space =
            tokens[1] == "linear" ? PlanSpace::kLinear : PlanSpace::kBushy;
      } else if (directive == "objective") {
        if (tokens.size() != 2 || (tokens[1] != "time" && tokens[1] != "mo")) {
          return SpecError(source, line_no, "objective wants time|mo");
        }
        draft.options.objective = tokens[1] == "time"
                                      ? Objective::kTime
                                      : Objective::kTimeAndBuffer;
      } else if (directive == "alpha") {
        double alpha = 0;
        if (tokens.size() != 2 || !ParseDouble(tokens[1], &alpha) ||
            !(alpha >= 1.0)) {
          return SpecError(source, line_no, "alpha wants a value >= 1");
        }
        draft.options.alpha = alpha;
      } else if (directive == "workers") {
        int64_t workers = 0;
        if (tokens.size() != 2 || !ParseInt(tokens[1], &workers) ||
            workers < 1) {
          return SpecError(source, line_no, "workers wants an integer >= 1");
        }
        draft.options.num_workers = static_cast<uint64_t>(workers);
      } else if (directive == "interesting_orders") {
        if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
          return SpecError(source, line_no, "interesting_orders wants on|off");
        }
        draft.options.interesting_orders = tokens[1] == "on";
      } else if (directive == "variant") {
        if (tokens.size() != 2 || (tokens[1] != "mpq" && tokens[1] != "sma")) {
          return SpecError(source, line_no, "variant wants mpq|sma");
        }
        draft.variant = tokens[1] == "mpq" ? WorkloadVariant::kMpq
                                           : WorkloadVariant::kSma;
      } else if (directive == "end") {
        if (tokens.size() != 1) {
          return SpecError(source, line_no, "end takes no arguments");
        }
        WorkloadQuery finished;
        const Status s = FinishQuery(draft, relations, source, &finished);
        if (!s.ok()) return s;
        workload.queries.push_back(std::move(finished));
        in_query = false;
      } else {
        return SpecError(source, line_no,
                         "unknown query directive '" + directive + "'");
      }
      continue;
    }

    if (directive == "workload") {
      if (tokens.size() != 2) {
        return SpecError(source, line_no, "workload wants exactly one name");
      }
      workload.name = tokens[1];
    } else if (directive == "relation") {
      if (tokens.size() < 4) {
        return SpecError(
            source, line_no,
            "relation wants: relation <name> <cardinality> <domain>...");
      }
      RelationDef rel;
      rel.name = tokens[1];
      if (find_relation(rel.name) >= 0) {
        return SpecError(source, line_no,
                         "duplicate relation '" + rel.name + "'");
      }
      int64_t cardinality = 0;
      if (!ParseInt(tokens[2], &cardinality) || cardinality < 1) {
        return SpecError(source, line_no,
                         "relation '" + rel.name +
                             "' cardinality must be a positive integer");
      }
      rel.info.cardinality = static_cast<double>(cardinality);
      rel.info.name = rel.name;
      for (size_t i = 3; i < tokens.size(); ++i) {
        int64_t domain = 0;
        if (!ParseInt(tokens[i], &domain) || domain < 1) {
          return SpecError(source, line_no,
                           "relation '" + rel.name +
                               "' domain must be a positive integer");
        }
        if (domain > cardinality) {
          // A join attribute cannot have more distinct values than the
          // table has rows (the generator enforces the same bound).
          return SpecError(source, line_no,
                           "relation '" + rel.name + "' domain " + tokens[i] +
                               " exceeds its cardinality");
        }
        rel.info.attribute_domains.push_back(static_cast<double>(domain));
      }
      relations.push_back(std::move(rel));
    } else if (directive == "query") {
      if (tokens.size() != 2) {
        return SpecError(source, line_no, "query wants exactly one name");
      }
      if (find_query(tokens[1]) >= 0) {
        return SpecError(source, line_no,
                         "duplicate query '" + tokens[1] + "'");
      }
      draft = QueryDraft();
      draft.name = tokens[1];
      draft.line = line_no;
      in_query = true;
    } else if (directive == "schedule") {
      int64_t reps = 0;
      if ((tokens.size() != 3 && tokens.size() != 4) ||
          !ParseInt(tokens[2], &reps) || reps < 1) {
        return SpecError(source, line_no,
                         "schedule wants: schedule <query> <count >= 1> "
                         "[@<start_ms>[+<spacing_ms>]]");
      }
      ScheduleEntry entry;
      if (tokens.size() == 4) {
        const std::string& at = tokens[3];
        int64_t start = 0;
        int64_t spacing = 0;
        bool ok = at.size() > 1 && at[0] == '@';
        if (ok) {
          const size_t plus = at.find('+');
          if (plus == std::string::npos) {
            ok = ParseInt(at.substr(1), &start);
          } else {
            ok = plus > 1 && plus + 1 < at.size() &&
                 ParseInt(at.substr(1, plus - 1), &start) &&
                 ParseInt(at.substr(plus + 1), &spacing);
          }
        }
        if (!ok) {
          return SpecError(source, line_no,
                           "arrival time '" + at +
                               "' is not @<start_ms> or "
                               "@<start_ms>+<spacing_ms>");
        }
        entry.start_ms = start;
        entry.spacing_ms = spacing;
      }
      if (!workload.schedule.empty() &&
          (workload.schedule.front().start_ms >= 0) !=
              (entry.start_ms >= 0)) {
        return SpecError(source, line_no,
                         "schedule mixes timed (@...) and serial entries; "
                         "use one style throughout");
      }
      const int index = find_query(tokens[1]);
      if (index < 0) {
        return SpecError(source, line_no,
                         "schedule references unknown query '" + tokens[1] +
                             "' (queries must be defined first)");
      }
      entry.query_index = index;
      entry.repetitions = static_cast<int>(std::min<int64_t>(reps, 1 << 20));
      workload.schedule.push_back(entry);
    } else if (directive == "end") {
      return SpecError(source, line_no, "end outside a query block");
    } else {
      return SpecError(source, line_no,
                       "unknown directive '" + directive + "'");
    }
  }

  if (!saw_version) {
    return Status::InvalidArgument(source +
                                   ": empty spec (missing 'mbw' header)");
  }
  if (in_query) {
    return SpecError(source, draft.line,
                     "query '" + draft.name + "' is missing its end");
  }
  if (workload.name.empty()) {
    return Status::InvalidArgument(source + ": missing workload name");
  }
  if (workload.queries.empty()) {
    return Status::InvalidArgument(source + ": workload defines no queries");
  }
  if (workload.schedule.empty()) {
    // Friendly default: every query arrives once, in definition order.
    for (size_t i = 0; i < workload.queries.size(); ++i) {
      workload.schedule.push_back({static_cast<int>(i), 1});
    }
  }
  return workload;
}

StatusOr<Workload> LoadWorkloadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open workload spec " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::NotFound("error reading workload spec " + path);
  }
  // Error messages and reports use the file name, not the full path, so
  // they are stable across checkouts.
  const size_t slash = path.find_last_of('/');
  return ParseWorkloadSpec(
      text, slash == std::string::npos ? path : path.substr(slash + 1));
}

std::string WorkloadFingerprint(const Workload& workload) {
  ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(kWorkloadSpecVersion));
  writer.WriteString(workload.name);
  writer.WriteU32(static_cast<uint32_t>(workload.queries.size()));
  for (const WorkloadQuery& wq : workload.queries) {
    writer.WriteString(wq.name);
    writer.WriteU8(static_cast<uint8_t>(wq.variant));
    // The exact deterministic wire bytes workers receive...
    wq.query.Serialize(&writer);
    // ...plus the plan-affecting option fields, encoded exactly as the
    // plan-cache fingerprint encodes them (execution knobs excluded).
    writer.WriteU8(static_cast<uint8_t>(wq.options.space));
    writer.WriteU8(static_cast<uint8_t>(wq.options.objective));
    writer.WriteBool(wq.options.interesting_orders);
    writer.WriteDouble(wq.options.alpha);
    writer.WriteU64(wq.options.num_workers);
    writer.WriteDouble(wq.options.cost_options.block_size);
    writer.WriteDouble(wq.options.cost_options.hash_constant);
    writer.WriteDouble(wq.options.cost_options.output_cost_factor);
    writer.WriteDouble(wq.options.cost_options.sorted_scan_factor);
    writer.WriteU64(static_cast<uint64_t>(wq.options.max_memo_entries));
  }
  writer.WriteU32(static_cast<uint32_t>(workload.schedule.size()));
  for (const ScheduleEntry& entry : workload.schedule) {
    if (entry.start_ms < 0) {
      // Serial entries keep the original two-word encoding, so every
      // fingerprint pinned before timed schedules existed is unchanged.
      writer.WriteU32(static_cast<uint32_t>(entry.query_index));
      writer.WriteU32(static_cast<uint32_t>(entry.repetitions));
    } else {
      // Timed entries flag the index word (indices are tiny, the high
      // bit is always free) and append both offsets, so a timed entry
      // can never alias a serial one.
      writer.WriteU32(static_cast<uint32_t>(entry.query_index) | 0x80000000u);
      writer.WriteU32(static_cast<uint32_t>(entry.repetitions));
      writer.WriteU64(static_cast<uint64_t>(entry.start_ms));
      writer.WriteU64(static_cast<uint64_t>(entry.spacing_ms));
    }
  }
  const std::vector<uint8_t>& bytes = writer.buffer();
  const uint64_t hi =
      HashBytes64(bytes.data(), bytes.size(), /*seed=*/0x6d62772d6869ULL);
  const uint64_t lo =
      HashBytes64(bytes.data(), bytes.size(), /*seed=*/0x6d62772d6c6fULL);
  char out[64];
  std::snprintf(out, sizeof(out), "mbw%d-%016llx%016llx",
                kWorkloadSpecVersion, static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return out;
}

}  // namespace mpqopt
