// Copyright 2026 mpqopt authors.
//
// Deterministic macro-workload specifications (the `.mbw` format).
//
// Every figure bench synthesizes queries on the fly from the Steinbrunn
// generator; that is the right tool for sweeping one axis, but it cannot
// regress a *workload*: a fixed catalog of named relations, a fixed set
// of named queries over them, and a fixed arrival schedule whose
// repetition pattern exercises the plan cache and the session layer the
// way production traffic would. A WorkloadSpec is exactly that, checked
// into bench/workloads/*.mbw and version-tagged like the plan-cache
// fingerprint, so the whole CI can regress against byte-stable inputs
// (the ClickBench deterministic-query-file idiom).
//
// Format (line-oriented, '#' comments, whitespace-separated tokens):
//
//   mbw 1                      # required version header, first directive
//   workload <name>
//
//   # catalog: named relations with (skewed) cardinalities and the
//   # domain sizes of their join attributes
//   relation <name> <cardinality> <domain> [<domain>...]
//
//   # named queries; tables reference relations, edges reference
//   # <table>.<attribute> pairs. Multiple edges between the same table
//   # pair form a multi-condition join. Selectivity defaults to
//   # 1 / max(domain_l, domain_r) (Steinbrunn et al.); an explicit
//   # trailing value overrides it. The option directives are per-query
//   # MpqOptions deltas over the defaults.
//   query <name>
//     tables <relation> [<relation>...]
//     edge <table>.<attr> <table>.<attr> [<selectivity>]
//     space linear|bushy
//     objective time|mo
//     alpha <a>
//     workers <m>
//     interesting_orders on|off
//     variant mpq|sma
//   end
//
//   # arrival schedule: <count> back-to-back arrivals of <query>.
//   # Entries repeat freely; their order is the arrival order, so
//   # interleaving repeats with first sights is what drives plan-cache
//   # hit rates. Omitting the schedule runs each query once.
//   schedule <query> <count>
//
//   # timed variant: the first arrival happens <start_ms> milliseconds
//   # after replay begins, subsequent repetitions every <spacing_ms>
//   # (default 0 = simultaneous). A timed schedule is replayed
//   # OPEN-LOOP: arrivals fire at their offsets whether or not earlier
//   # queries have finished, which is what makes overload reproducible.
//   # A schedule is either all timed or all serial — mixing the two
//   # styles in one spec is an error.
//   schedule <query> <count> @<start_ms>[+<spacing_ms>]
//
// The loader turns a spec into real catalog/query.h Query objects plus
// per-query options, validates everything (unknown names, zero
// cardinalities, bad worker counts, ... are Status errors, never
// crashes), and fingerprints the loaded workload with the same canonical
// byte serialization the plan cache keys on — the golden-fingerprint
// test (tests/workload_spec_test.cc) pins each shipped .mbw file
// byte-stable across PRs.

#ifndef MPQOPT_WORKLOAD_WORKLOAD_SPEC_H_
#define MPQOPT_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "catalog/query.h"
#include "common/status.h"
#include "mpq/mpq.h"

namespace mpqopt {

/// Version tag of the .mbw format. A spec whose `mbw <version>` header
/// names any other version is rejected (InvalidArgument), and the
/// version byte leads the workload fingerprint — like the plan-cache
/// fingerprint, older layouts can never alias newer ones.
inline constexpr int kWorkloadSpecVersion = 1;

/// Which optimizer a workload query runs through. kMpq goes through
/// OptimizerService (and its plan cache); kSma runs the per-level
/// broadcast baseline through the session layer on the same shared
/// backend, exercising replica reuse.
enum class WorkloadVariant : uint8_t {
  kMpq = 0,
  kSma = 1,
};

/// "mpq" / "sma".
const char* WorkloadVariantName(WorkloadVariant variant);

/// One named query of a workload: the materialized Query (tables carry
/// the referenced relations' names, cardinalities, and domains) plus the
/// per-query option delta already applied over defaults.
struct WorkloadQuery {
  std::string name;
  Query query;
  WorkloadVariant variant = WorkloadVariant::kMpq;
  /// Plan-affecting fields only; execution knobs (backend, network,
  /// thread caps) stay at their defaults and are the runner's business.
  MpqOptions options;
};

/// One arrival-schedule entry: `repetitions` arrivals of
/// queries[query_index] — back-to-back when serial, or starting at
/// `start_ms` with one arrival every `spacing_ms` when timed.
struct ScheduleEntry {
  int query_index = 0;
  int repetitions = 1;
  /// Milliseconds after replay start of the first arrival; -1 marks a
  /// serial (untimed) entry. A parsed schedule is homogeneous: either
  /// every entry is timed or none is (Workload::timed()).
  int64_t start_ms = -1;
  /// Milliseconds between successive repetitions of a timed entry.
  int64_t spacing_ms = 0;
};

/// A loaded, validated macro workload.
struct Workload {
  std::string name;
  /// Source label used in error messages and reports (file name or the
  /// caller-provided tag for in-memory specs).
  std::string source;
  std::vector<WorkloadQuery> queries;
  std::vector<ScheduleEntry> schedule;

  /// The flattened arrival order: one queries[] index per arrival, in
  /// schedule order. `repeat_cap > 0` caps every entry's repetitions
  /// (macrobench --smoke runs the full query mix with a shortened
  /// schedule); 0 means uncapped.
  std::vector<int> Arrivals(int repeat_cap = 0) const;

  /// True when the schedule carries @<offset> arrival times (the parser
  /// guarantees all-or-nothing, so checking one entry suffices).
  bool timed() const {
    return !schedule.empty() && schedule.front().start_ms >= 0;
  }

  /// One arrival with its offset from replay start.
  struct TimedArrival {
    int query_index = 0;
    int64_t at_ms = 0;
  };

  /// The flattened arrivals of a timed schedule sorted by offset
  /// (stable: simultaneous arrivals keep schedule order), for open-loop
  /// replay. Serial entries are treated as @0. Same `repeat_cap`
  /// contract as Arrivals().
  std::vector<TimedArrival> TimedArrivals(int repeat_cap = 0) const;
};

/// Parses and validates one spec. `source` labels error messages
/// ("<source>:<line>: ..."). Every malformed input — bad version tag,
/// unknown relation in a table list or an edge, zero cardinality,
/// out-of-range attribute, invalid worker count, unknown directive —
/// returns an InvalidArgument Status; this function never crashes on
/// untrusted text.
StatusOr<Workload> ParseWorkloadSpec(const std::string& text,
                                     const std::string& source);

/// Reads `path` and parses it. NotFound when the file cannot be read.
StatusOr<Workload> LoadWorkloadFile(const std::string& path);

/// Canonical fingerprint of a loaded workload: the version tag, every
/// query's deterministic wire serialization (the exact bytes workers
/// receive), each query's plan-affecting options encoded exactly as the
/// plan-cache fingerprint encodes them, and the schedule — under the
/// same 128-bit hash construction as plancache/fingerprint.h, rendered
/// "mbw<version>-<32 hex digits>". Byte-stable across platforms and
/// PRs; tests/workload_spec_test.cc pins the shipped files' values.
std::string WorkloadFingerprint(const Workload& workload);

}  // namespace mpqopt

#endif  // MPQOPT_WORKLOAD_WORKLOAD_SPEC_H_
