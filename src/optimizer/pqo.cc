// Copyright 2026 mpqopt authors.

#include "optimizer/pqo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "cost/cardinality.h"
#include "partition/partition_index.h"

namespace mpqopt {
namespace {

/// Product of two affine costs where at most one side actually depends on
/// theta (join operands are disjoint table sets, so this always holds).
AffineCost AffineMul(const AffineCost& x, const AffineCost& y) {
  MPQOPT_DCHECK(x.slope == 0 || y.slope == 0);
  if (x.slope == 0) return {x.constant * y.constant, x.constant * y.slope};
  return {x.constant * y.constant, x.slope * y.constant};
}

/// Candidate evaluation points: 0, 1, and midpoints between consecutive
/// pairwise crossings inside (0, 1). Within each resulting region the
/// argmin line is constant, so evaluating the regions' midpoints finds
/// every line that is minimal somewhere.
std::vector<double> RegionProbes(const std::vector<AffineCost>& lines) {
  std::vector<double> cuts = {0.0, 1.0};
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      const double denom = lines[i].slope - lines[j].slope;
      if (denom == 0) continue;
      const double theta = (lines[j].constant - lines[i].constant) / denom;
      if (theta > 0 && theta < 1) cuts.push_back(theta);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  std::vector<double> probes;
  probes.push_back(0.0);
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    probes.push_back(0.5 * (cuts[i] + cuts[i + 1]));
  }
  probes.push_back(1.0);
  return probes;
}

size_t ArgMinAt(const std::vector<AffineCost>& lines, double theta) {
  size_t best = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].At(theta) < lines[best].At(theta)) best = i;
  }
  return best;
}

/// One kept plan of a parametric memo slot.
struct PqoRef {
  AffineCost cost;
  uint64_t left_bits = 0;
  uint32_t left_idx = 0;
  uint32_t right_idx = 0;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
};

struct PqoEntry {
  AffineCost card;
  std::vector<PqoRef> plans;
};

/// Drops plans that are nowhere minimal over [0, 1].
void EnvelopePrune(std::vector<PqoRef>* plans) {
  if (plans->size() <= 1) return;
  std::vector<AffineCost> lines;
  lines.reserve(plans->size());
  for (const PqoRef& p : *plans) lines.push_back(p.cost);
  std::vector<size_t> keep = LowerEnvelope(lines);
  std::vector<PqoRef> pruned;
  pruned.reserve(keep.size());
  for (size_t idx : keep) pruned.push_back((*plans)[idx]);
  plans->swap(pruned);
}

class ParametricDp {
 public:
  ParametricDp(const Query& query, const PartitionIndex& index,
               const PqoConfig& config)
      : query_(query),
        index_(index),
        config_(config),
        model_(Objective::kTime, config.cost_options),
        estimator_(query) {}

  void Run(PqoResult* result) {
    const int n = query_.num_tables();
    memo_.assign(static_cast<size_t>(index_.size()), PqoEntry());
    scan_entries_.resize(n);
    for (int t = 0; t < n; ++t) {
      PqoEntry& e = scan_entries_[t];
      e.card = TableCard(t);
      e.plans.push_back({e.card, 0, 0, 0, JoinAlgorithm::kScan});
      const int64_t rank = index_.Rank(TableSet::Single(t));
      if (rank >= 0) memo_[static_cast<size_t>(rank)] = e;
    }
    const bool linear = index_.space() == PlanSpace::kLinear;
    for (int k = 2; k <= n; ++k) {
      index_.ForEachSetOfCard(k, [&](TableSet u, int64_t rank) {
        PqoEntry entry;
        entry.card = SetCard(u);
        if (linear) {
          for (int t : u) {
            if (!index_.InnerAllowed(t, u)) continue;
            const int64_t lrank = index_.RankWithout(u, rank, t);
            TrySplit(memo_[static_cast<size_t>(lrank)], scan_entries_[t],
                     u.Without(t), &entry, result);
          }
        } else {
          index_.ForEachSplit(
              u, [&](TableSet left, int64_t lrank, int64_t rrank) {
                TrySplit(memo_[static_cast<size_t>(lrank)],
                         memo_[static_cast<size_t>(rrank)], left, &entry,
                         result);
              });
        }
        EnvelopePrune(&entry.plans);
        MPQOPT_CHECK(!entry.plans.empty());
        memo_[static_cast<size_t>(rank)] = std::move(entry);
      });
    }
  }

  const std::vector<PqoRef>& PlansOf(TableSet s) const {
    return EntryOf(s).plans;
  }

  PlanId Build(TableSet s, uint32_t idx, PlanArena* arena) const {
    const PqoEntry& e = EntryOf(s);
    const PqoRef& p = e.plans[idx];
    // PlanNode cost convention in PQO results: metric 0 = the affine
    // constant, metric 1 = the slope; cardinality is taken at theta = 0.5.
    const CostVector cost = CostVector::TimeBuffer(p.cost.constant,
                                                   p.cost.slope);
    if (s.Count() == 1) {
      return arena->MakeScan(s.Lowest(), e.card.At(0.5), cost);
    }
    const TableSet left(p.left_bits);
    const PlanId lid = Build(left, p.left_idx, arena);
    const PlanId rid = Build(s.Minus(left), p.right_idx, arena);
    return arena->MakeJoin(p.alg, lid, rid, e.card.At(0.5), cost);
  }

 private:
  const PqoEntry& EntryOf(TableSet s) const {
    if (s.Count() == 1) return scan_entries_[s.Lowest()];
    const int64_t rank = index_.Rank(s);
    MPQOPT_CHECK_GE(rank, 0);
    return memo_[static_cast<size_t>(rank)];
  }

  AffineCost TableCard(int t) const {
    const double base = query_.table(t).cardinality;
    if (t == config_.parametric_table) {
      return {base, base * config_.variability};
    }
    return AffineCost::Constant(base);
  }

  /// Affine cardinality of a table set (no one-row clamping — clamping
  /// would break affinity; parametric costs may therefore dip below one
  /// row for extremely selective queries, which only shifts envelopes).
  AffineCost SetCard(TableSet s) const {
    // Selectivity-scaled product of base cardinalities via the regular
    // estimator, with the parametric factor applied on top.
    double base = 1.0;
    for (int t : s) base *= query_.table(t).cardinality;
    double sel = estimator_.Cardinality(s) / base;  // combined selectivity
    // Recompute without the estimator's clamp where possible.
    const double unclamped = base * sel;
    AffineCost card = AffineCost::Constant(unclamped);
    if (s.Contains(config_.parametric_table)) {
      card.slope = unclamped * config_.variability;
    }
    return card;
  }

  void TrySplit(const PqoEntry& le, const PqoEntry& re, TableSet left,
                PqoEntry* entry, PqoResult* result) {
    ++result->splits_tried;
    const CostModelOptions& opts = config_.cost_options;
    for (uint32_t li = 0; li < le.plans.size(); ++li) {
      for (uint32_t ri = 0; ri < re.plans.size(); ++ri) {
        const AffineCost base = le.plans[li].cost.Plus(re.plans[ri].cost);
        const AffineCost out = entry->card.Scaled(opts.output_cost_factor);
        // Block nested loop (smooth block model: |L| + |L||R|/B + out).
        {
          PqoRef cand;
          cand.cost = base.Plus(le.card)
                          .Plus(AffineMul(le.card.Scaled(1.0 / opts.block_size),
                                          re.card))
                          .Plus(out);
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.alg = JoinAlgorithm::kBlockNestedLoop;
          entry->plans.push_back(cand);
        }
        // Hash join: c_h * (|L| + |R|) + out.
        {
          PqoRef cand;
          cand.cost =
              base.Plus(le.card.Plus(re.card).Scaled(opts.hash_constant))
                  .Plus(out);
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.alg = JoinAlgorithm::kHashJoin;
          entry->plans.push_back(cand);
        }
        if (entry->plans.size() > 64) EnvelopePrune(&entry->plans);
      }
    }
  }

  const Query& query_;
  const PartitionIndex& index_;
  const PqoConfig& config_;
  CostModel model_;
  CardinalityEstimator estimator_;
  std::vector<PqoEntry> memo_;
  std::vector<PqoEntry> scan_entries_;
};

/// Converts an envelope of (plan, line) pairs into interval-annotated
/// PqoPlans ordered by theta.
std::vector<PqoPlan> IntervalsFromEnvelope(
    const std::vector<PlanId>& plans, const std::vector<AffineCost>& lines) {
  MPQOPT_CHECK_EQ(plans.size(), lines.size());
  std::vector<double> probes = RegionProbes(lines);
  std::vector<PqoPlan> out;
  // Region boundaries: reconstruct cut points from the probes (probes are
  // 0, midpoints, 1; the winning line changes only at cuts).
  std::vector<std::pair<double, size_t>> winners;  // (probe, argmin)
  for (double theta : probes) {
    winners.push_back({theta, ArgMinAt(lines, theta)});
  }
  size_t i = 0;
  while (i < winners.size()) {
    size_t j = i;
    while (j + 1 < winners.size() &&
           winners[j + 1].second == winners[i].second) {
      ++j;
    }
    PqoPlan plan;
    const size_t idx = winners[i].second;
    plan.plan = plans[idx];
    plan.cost = lines[idx];
    // Interval endpoints: exact crossings with the neighbouring winners.
    plan.theta_begin = out.empty() ? 0.0 : out.back().theta_end;
    if (j + 1 < winners.size()) {
      const AffineCost& a = lines[idx];
      const AffineCost& b = lines[winners[j + 1].second];
      const double denom = a.slope - b.slope;
      plan.theta_end =
          denom == 0 ? winners[j + 1].first
                     : (b.constant - a.constant) / denom;
    } else {
      plan.theta_end = 1.0;
    }
    out.push_back(plan);
    i = j + 1;
  }
  return out;
}

}  // namespace

std::vector<size_t> LowerEnvelope(const std::vector<AffineCost>& lines) {
  std::vector<size_t> keep;
  if (lines.empty()) return keep;
  const std::vector<double> probes = RegionProbes(lines);
  std::vector<bool> marked(lines.size(), false);
  for (double theta : probes) {
    marked[ArgMinAt(lines, theta)] = true;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    if (marked[i]) keep.push_back(i);
  }
  return keep;
}

StatusOr<PqoResult> RunParametricDp(const Query& query,
                                    const ConstraintSet& constraints,
                                    const PqoConfig& config) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  if (constraints.space() != config.space) {
    return Status::InvalidArgument("constraint set is for the other space");
  }
  if (config.parametric_table < 0 ||
      config.parametric_table >= query.num_tables()) {
    return Status::InvalidArgument("parametric table out of range");
  }
  if (config.variability < 0) {
    return Status::InvalidArgument("variability must be non-negative");
  }
  const PartitionIndex index(query.num_tables(), constraints);
  if (index.size() > config.max_memo_entries) {
    return Status::OutOfRange("plan space partition too large");
  }

  PqoResult result;
  result.admissible_sets = index.size();
  const auto start = std::chrono::steady_clock::now();
  ParametricDp dp(query, index, config);
  if (query.num_tables() == 1) {
    const double card = query.table(0).cardinality;
    PqoPlan plan;
    plan.plan = result.arena.MakeScan(
        0, card, CostVector::TimeBuffer(card, 0));
    plan.cost = {card, config.parametric_table == 0
                           ? card * config.variability
                           : 0};
    plan.theta_begin = 0;
    plan.theta_end = 1;
    result.plans.push_back(plan);
  } else {
    dp.Run(&result);
    const TableSet all = query.all_tables();
    std::vector<PlanId> plans;
    std::vector<AffineCost> lines;
    for (uint32_t i = 0; i < dp.PlansOf(all).size(); ++i) {
      plans.push_back(dp.Build(all, i, &result.arena));
      lines.push_back(dp.PlansOf(all)[i].cost);
    }
    result.plans = IntervalsFromEnvelope(plans, lines);
  }
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

StatusOr<PqoResult> ParallelParametricOptimize(const Query& query,
                                               uint64_t num_partitions,
                                               const PqoConfig& config) {
  if (!IsPowerOfTwo(num_partitions)) {
    return Status::InvalidArgument("partition count must be a power of two");
  }
  PqoResult merged;
  std::vector<PlanId> plans;
  std::vector<AffineCost> lines;
  for (uint64_t part = 0; part < num_partitions; ++part) {
    StatusOr<ConstraintSet> constraints = ConstraintSet::FromPartitionId(
        query.num_tables(), config.space, part, num_partitions);
    if (!constraints.ok()) return constraints.status();
    StatusOr<PqoResult> result =
        RunParametricDp(query, constraints.value(), config);
    if (!result.ok()) return result.status();
    merged.admissible_sets =
        std::max(merged.admissible_sets, result.value().admissible_sets);
    merged.splits_tried += result.value().splits_tried;
    merged.seconds += result.value().seconds;
    // Re-materialize the partition's envelope plans into the master arena
    // (mirrors the master-side deserialization of worker responses).
    for (const PqoPlan& plan : result.value().plans) {
      plans.push_back(CopyPlan(result.value().arena, plan.plan,
                               &merged.arena));
      lines.push_back(plan.cost);
    }
  }
  // Master final prune: global lower envelope over partition envelopes.
  const std::vector<size_t> keep = LowerEnvelope(lines);
  std::vector<PlanId> kept_plans;
  std::vector<AffineCost> kept_lines;
  for (size_t idx : keep) {
    kept_plans.push_back(plans[idx]);
    kept_lines.push_back(lines[idx]);
  }
  merged.plans = IntervalsFromEnvelope(kept_plans, kept_lines);
  return merged;
}

}  // namespace mpqopt
