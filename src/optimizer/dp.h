// Copyright 2026 mpqopt authors.
//
// The dynamic-programming plan search executed by each worker on its plan
// space partition (paper Algorithm 2, with the split generation of
// Algorithm 5). Running it with an empty constraint set on the full index
// IS the classical serial optimizer (Selinger-style for linear spaces,
// Vance/Maier-style for bushy spaces with Cartesian products), which is
// exactly the paper's m = 1 baseline.
//
// Two objective modes share the enumeration skeleton and differ only in
// the pruning function and memo entry layout:
//  * kTime: one best plan per admissible table set (32-byte memo entry).
//  * kTimeAndBuffer: an alpha-approximate Pareto set per table set.

#ifndef MPQOPT_OPTIMIZER_DP_H_
#define MPQOPT_OPTIMIZER_DP_H_

#include <cstdint>
#include <vector>

#include "catalog/query.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "partition/constraints.h"
#include "plan/plan.h"

namespace mpqopt {

/// Configuration of one DP run.
struct DpConfig {
  PlanSpace space = PlanSpace::kLinear;
  Objective objective = Objective::kTime;
  /// Approximation factor of the Pareto pruning function; only used in
  /// kTimeAndBuffer mode. Must be >= 1.
  double alpha = 10.0;
  /// Track interesting orders: keep the best plan per (table set, order
  /// class), let sort-merge joins consume/produce orders (paper §5.4
  /// extension). Single-objective only.
  bool interesting_orders = false;
  /// Cost model tuning constants.
  CostModelOptions cost_options;
  /// Safety valve: refuse runs whose memo would exceed this many entries
  /// (the caller should add workers instead).
  int64_t max_memo_entries = int64_t{1} << 28;
};

/// Counters describing one DP run; the benchmark harness aggregates these
/// into the paper's figures.
struct DpStats {
  /// Admissible join results (memo slots) — the paper's
  /// "Memory (relations)" metric and the quantity of Theorems 2/3.
  int64_t admissible_sets = 0;
  /// Operand pairs generated (the quantity of Theorems 6/7).
  int64_t splits_tried = 0;
  /// Cost evaluations (splits x join algorithms x plan pairs).
  int64_t plans_costed = 0;
  /// Pure optimization time in seconds (excludes (de)serialization).
  double seconds = 0;
};

/// Output of one DP run: the partition-optimal plan(s) materialized in a
/// private arena. `best` has exactly one element in kTime mode and the
/// partition's Pareto frontier in kTimeAndBuffer mode.
struct DpResult {
  PlanArena arena;
  std::vector<PlanId> best;
  DpStats stats;
};

/// Finds the optimal plan(s) for `query` within the plan-space partition
/// defined by `constraints` (paper Algorithm 2). Use
/// ConstraintSet::None(space) for the full, unpartitioned plan space.
StatusOr<DpResult> RunPartitionDp(const Query& query,
                                  const ConstraintSet& constraints,
                                  const DpConfig& config);

/// Convenience wrapper: classical serial optimization over the whole plan
/// space (m = 1).
StatusOr<DpResult> OptimizeSerial(const Query& query, const DpConfig& config);

}  // namespace mpqopt

#endif  // MPQOPT_OPTIMIZER_DP_H_
