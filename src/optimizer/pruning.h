// Copyright 2026 mpqopt authors.
//
// Pruning functions. The paper's key observation (Section 4) is that the
// whole family of DP-based optimizers — classical single-objective,
// multi-objective, parametric — differ only in the pruning function, so
// MPQ parallelizes all of them at once. We provide the two the evaluation
// uses:
//
//  * Scalar pruning: keep the single cheapest plan per table set.
//  * Approximate Pareto pruning with factor alpha (Trummer & Koch,
//    SIGMOD 2014): a candidate is discarded iff an incumbent
//    alpha-dominates it (incumbent_i <= alpha * candidate_i in every
//    metric); on insertion, incumbents weakly dominated by the candidate
//    are evicted. alpha = 1 maintains the exact Pareto frontier; larger
//    alpha trades precision for smaller frontier sets and is the knob of
//    the paper's Table 1.

#ifndef MPQOPT_OPTIMIZER_PRUNING_H_
#define MPQOPT_OPTIMIZER_PRUNING_H_

#include <vector>

#include "cost/cost_vector.h"

namespace mpqopt {

/// Inserts `item` into the frontier `set` under approximate Pareto
/// pruning. `cost_of` maps an item to its CostVector. Returns true if the
/// item was inserted (and dominated incumbents evicted), false if an
/// incumbent alpha-dominates it.
template <typename T, typename CostFn>
bool ParetoInsert(std::vector<T>* set, const T& item, const CostFn& cost_of,
                  double alpha) {
  const CostVector& cost = cost_of(item);
  for (const T& incumbent : *set) {
    if (cost_of(incumbent).AlphaDominates(cost, alpha)) return false;
  }
  // Evict incumbents the new plan weakly dominates (exact dominance, so
  // the frontier's alpha-coverage guarantee is preserved).
  size_t w = 0;
  for (size_t r = 0; r < set->size(); ++r) {
    if (!cost.WeaklyDominates(cost_of((*set)[r]))) {
      if (w != r) (*set)[w] = (*set)[r];
      ++w;
    }
  }
  set->resize(w);
  set->push_back(item);
  return true;
}

/// True if every vector in `reference` is alpha-covered by some vector in
/// `frontier` (used by tests to validate the formal guarantee: if a plan
/// with cost c exists, a plan with cost <= alpha * c is returned).
inline bool AlphaCovers(const std::vector<CostVector>& frontier,
                        const std::vector<CostVector>& reference,
                        double alpha) {
  for (const CostVector& ref : reference) {
    bool covered = false;
    for (const CostVector& f : frontier) {
      if (f.AlphaDominates(ref, alpha)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace mpqopt

#endif  // MPQOPT_OPTIMIZER_PRUNING_H_
