// Copyright 2026 mpqopt authors.

#include "optimizer/orders.h"

#include <algorithm>
#include <numeric>

namespace mpqopt {
namespace {

int Find(std::vector<int>* parent, int x) {
  while ((*parent)[x] != x) {
    (*parent)[x] = (*parent)[(*parent)[x]];  // path halving
    x = (*parent)[x];
  }
  return x;
}

void Union(std::vector<int>* parent, int a, int b) {
  (*parent)[Find(parent, a)] = Find(parent, b);
}

}  // namespace

OrderClasses::OrderClasses(const Query& query) {
  const int n = query.num_tables();
  table_attr_offset_.resize(n);
  int total_attrs = 0;
  for (int t = 0; t < n; ++t) {
    table_attr_offset_[t] = total_attrs;
    total_attrs += static_cast<int>(query.table(t).attribute_domains.size());
  }
  std::vector<int> parent(total_attrs);
  std::iota(parent.begin(), parent.end(), 0);
  for (const JoinPredicate& p : query.predicates()) {
    Union(&parent, IndexOf(p.left_table, p.left_attribute),
          IndexOf(p.right_table, p.right_attribute));
  }
  // Dense class ids in first-occurrence order.
  class_of_index_.assign(total_attrs, kNoOrder);
  std::vector<int> root_class(total_attrs, kNoOrder);
  for (int i = 0; i < total_attrs; ++i) {
    const int root = Find(&parent, i);
    if (root_class[root] == kNoOrder) root_class[root] = num_classes_++;
    class_of_index_[i] = root_class[root];
  }
  // Per-table adjacency of crossing predicates, for MergeClassesForCut.
  adjacency_.resize(n);
  for (const JoinPredicate& p : query.predicates()) {
    const int cls = ClassOfPredicate(p);
    adjacency_[p.left_table].push_back({p.right_table, cls});
    adjacency_[p.right_table].push_back({p.left_table, cls});
  }
}

int OrderClasses::ClassOf(int table, int attr) const {
  return class_of_index_[IndexOf(table, attr)];
}

int OrderClasses::ClassOfPredicate(const JoinPredicate& p) const {
  return ClassOf(p.left_table, p.left_attribute);
}

std::vector<int> OrderClasses::MergeClassesForCut(TableSet left,
                                                  TableSet right) const {
  std::vector<int> classes;
  const TableSet probe = left.Count() <= right.Count() ? left : right;
  const TableSet other = left.Count() <= right.Count() ? right : left;
  for (int t : probe) {
    for (const Edge& e : adjacency_[t]) {
      if (other.Contains(e.other_table) &&
          std::find(classes.begin(), classes.end(), e.cls) == classes.end()) {
        classes.push_back(e.cls);
      }
    }
  }
  return classes;
}

bool OrderClasses::TableHasClass(int table, int cls) const {
  const int begin = table_attr_offset_[table];
  const int end = table + 1 < static_cast<int>(table_attr_offset_.size())
                      ? table_attr_offset_[table + 1]
                      : static_cast<int>(class_of_index_.size());
  for (int i = begin; i < end; ++i) {
    if (class_of_index_[i] == cls) return true;
  }
  return false;
}

}  // namespace mpqopt
