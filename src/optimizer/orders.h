// Copyright 2026 mpqopt authors.
//
// Interesting-order support (the extension sketched in paper Section 5.4;
// the concept goes back to Selinger et al. [17]).
//
// After an equality join on T_a.x = T_b.y, a result sorted on T_a.x is
// also sorted on T_b.y — orders are interesting per EQUIVALENCE CLASS of
// join attributes, not per attribute. OrderClasses computes those classes
// with a union-find over the query's equality predicates and assigns each
// class a dense id. The order-aware DP (dp.cc, interesting_orders mode)
// then keeps one best plan per (table set, order class) instead of one
// per table set, lets sort-merge joins consume and produce orders, and
// charges explicit sorts only when an input lacks the required order.

#ifndef MPQOPT_OPTIMIZER_ORDERS_H_
#define MPQOPT_OPTIMIZER_ORDERS_H_

#include <cstdint>
#include <vector>

#include "catalog/query.h"
#include "common/table_set.h"

namespace mpqopt {

/// Sentinel order id: no usable ordering.
inline constexpr int kNoOrder = -1;

/// Equivalence classes of join attributes under the query's equality
/// predicates, each identified by a dense id in [0, num_classes()).
class OrderClasses {
 public:
  explicit OrderClasses(const Query& query);

  /// Number of distinct order classes (attributes not referenced by any
  /// predicate still get their own class — sorting on them is never
  /// useful downstream but harmless to represent).
  int num_classes() const { return num_classes_; }

  /// Class id of attribute `attr` of table `table`.
  int ClassOf(int table, int attr) const;

  /// Class id shared by both sides of predicate `p` (they are merged by
  /// construction).
  int ClassOfPredicate(const JoinPredicate& p) const;

  /// All distinct classes of predicates connecting `left` and `right` —
  /// the candidate sort-merge keys for that cut. Deduplicated; empty for
  /// a pure cross product.
  std::vector<int> MergeClassesForCut(TableSet left, TableSet right) const;

  /// True if some attribute of `table` belongs to class `cls` (i.e. a
  /// scan of that table can be produced sorted in that class).
  bool TableHasClass(int table, int cls) const;

 private:
  struct Edge {
    int other_table;
    int cls;
  };

  int IndexOf(int table, int attr) const {
    return table_attr_offset_[table] + attr;
  }

  std::vector<int> table_attr_offset_;
  std::vector<int> class_of_index_;
  std::vector<std::vector<Edge>> adjacency_;  // per table: crossing classes
  int num_classes_ = 0;
};

}  // namespace mpqopt

#endif  // MPQOPT_OPTIMIZER_ORDERS_H_
