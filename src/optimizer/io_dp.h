// Copyright 2026 mpqopt authors.
//
// Order-aware partition DP (interesting-orders mode of RunPartitionDp).
// Keeps the best plan per (admissible table set, order class) so that
// sort-merge joins can exploit orders produced upstream: an SMJ whose
// input is already sorted in the join's attribute class skips that
// input's sort term, and its output is sorted in that class; block
// nested loop preserves the outer order; hash joins destroy order;
// scans come in heap (unordered) and sorted variants.
//
// The plan-space partitioning is completely orthogonal to the order
// dimension — the same constraints restrict the same table sets — which
// demonstrates the paper's claim that the decomposition carries over to
// DP variants with richer plan properties (Section 5.4).

#ifndef MPQOPT_OPTIMIZER_IO_DP_H_
#define MPQOPT_OPTIMIZER_IO_DP_H_

#include "optimizer/dp.h"

namespace mpqopt {

/// Order-aware variant of RunPartitionDp; single-objective (kTime) only.
/// Returned plans carry their true charged costs in the node cost fields,
/// but those costs are not reproducible by the order-blind CostModel
/// recomputation — validate structures with
/// PlanValidationOptions::check_costs = false.
StatusOr<DpResult> RunPartitionDpInterestingOrders(
    const Query& query, const ConstraintSet& constraints,
    const DpConfig& config);

}  // namespace mpqopt

#endif  // MPQOPT_OPTIMIZER_IO_DP_H_
