// Copyright 2026 mpqopt authors.
//
// Parametric query optimization (PQO) — the third member of the DP family
// the paper's partitioning parallelizes "for free" (Sections 2 and 4:
// Ganguly VLDB'98, Ioannidis et al. VLDBJ'97, Hulgeri & Sudarshan
// VLDB'03 all share the classical DP scheme; only the pruning function
// differs).
//
// Model: one designated table's cardinality is unknown at optimization
// time and modeled as affine in a parameter theta in [0, 1]:
//
//     card_t(theta) = base * (1 + variability * theta).
//
// Because join operands are disjoint table sets, at most one operand of
// any join depends on theta, so with the BNL and hash-join formulas every
// plan's total cost is exactly affine: cost(theta) = a + b * theta.
// (Sort-merge join's n log n term is not affine and is excluded in PQO
// mode.) The pruning function keeps, per table set, the LOWER ENVELOPE of
// the plans' cost lines over [0, 1] — exactly the plans that are optimal
// for at least one parameter value. The optimizer returns the envelope of
// the full query: the parametric optimal set of plans plus the theta
// ranges where each wins.

#ifndef MPQOPT_OPTIMIZER_PQO_H_
#define MPQOPT_OPTIMIZER_PQO_H_

#include <vector>

#include "catalog/query.h"
#include "common/status.h"
#include "partition/constraints.h"
#include "plan/plan.h"

namespace mpqopt {

/// A cost that depends affinely on the unknown parameter theta in [0,1]:
/// value(theta) = constant + slope * theta.
struct AffineCost {
  double constant = 0;
  double slope = 0;

  double At(double theta) const { return constant + slope * theta; }

  AffineCost Plus(const AffineCost& other) const {
    return {constant + other.constant, slope + other.slope};
  }
  AffineCost Scaled(double factor) const {
    return {constant * factor, slope * factor};
  }
  /// Product with a plain number (cards of theta-free operands).
  static AffineCost Constant(double v) { return {v, 0}; }
};

/// Computes the subset of `lines` forming the lower envelope over
/// [0, 1], i.e. the indices of lines that are strictly minimal for some
/// theta. Ties are resolved toward the earlier index.
std::vector<size_t> LowerEnvelope(const std::vector<AffineCost>& lines);

/// Configuration of a PQO run.
struct PqoConfig {
  PlanSpace space = PlanSpace::kLinear;
  /// Table whose cardinality is parameter-dependent.
  int parametric_table = 0;
  /// card(theta) = base * (1 + variability * theta).
  double variability = 9.0;  // 10x swing across the parameter range
  CostModelOptions cost_options;
  int64_t max_memo_entries = int64_t{1} << 28;
};

/// One plan of the parametric optimal set.
struct PqoPlan {
  PlanId plan = kInvalidPlanId;
  AffineCost cost;
  /// Theta interval [theta_begin, theta_end) where this plan is optimal.
  double theta_begin = 0;
  double theta_end = 0;
};

/// Result: the parametric optimal plans with their winning intervals,
/// ordered by theta.
struct PqoResult {
  PlanArena arena;
  std::vector<PqoPlan> plans;
  int64_t admissible_sets = 0;
  int64_t splits_tried = 0;
  double seconds = 0;
};

/// Finds the parametric optimal plan set within one plan-space partition
/// (use ConstraintSet::None for the serial optimizer). The partitioning
/// machinery is shared with the other optimizer variants — the paper's
/// genericity claim, instantiated a third time.
StatusOr<PqoResult> RunParametricDp(const Query& query,
                                    const ConstraintSet& constraints,
                                    const PqoConfig& config);

/// Parallel PQO over `num_partitions` partitions: runs each partition's
/// DP and merges the returned envelopes (master-side final prune).
StatusOr<PqoResult> ParallelParametricOptimize(const Query& query,
                                               uint64_t num_partitions,
                                               const PqoConfig& config);

}  // namespace mpqopt

#endif  // MPQOPT_OPTIMIZER_PQO_H_
