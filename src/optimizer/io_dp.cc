// Copyright 2026 mpqopt authors.

#include "optimizer/io_dp.h"

#include <chrono>
#include <limits>
#include <vector>

#include "cost/cardinality.h"
#include "optimizer/orders.h"
#include "partition/partition_index.h"

namespace mpqopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One kept plan of a (table set, order) memo slot.
struct IoPlan {
  double cost = kInf;
  uint64_t left_bits = 0;
  uint32_t left_idx = 0;
  uint32_t right_idx = 0;
  /// Order class of the output (kNoOrder if unordered).
  int16_t order = kNoOrder;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
  /// Leaf only: true for the order-producing scan variant.
  bool sorted_scan = false;
};

/// Memo entry: the order-pruned plan set of one admissible table set.
struct IoEntry {
  double card = 0;
  std::vector<IoPlan> plans;
};

/// Order-aware pruning: `candidate` is useless iff some incumbent is at
/// most as expensive AND provides at least the candidate's order (any
/// order subsumes "no order"). Inserting evicts incumbents that became
/// useless by the same rule.
void OrderPrune(std::vector<IoPlan>* plans, const IoPlan& candidate) {
  for (const IoPlan& p : *plans) {
    if (p.cost <= candidate.cost &&
        (candidate.order == kNoOrder || p.order == candidate.order)) {
      return;
    }
  }
  size_t w = 0;
  for (size_t r = 0; r < plans->size(); ++r) {
    const IoPlan& p = (*plans)[r];
    const bool evict = candidate.cost <= p.cost &&
                       (p.order == kNoOrder || p.order == candidate.order);
    if (!evict) {
      if (w != r) (*plans)[w] = p;
      ++w;
    }
  }
  plans->resize(w);
  plans->push_back(candidate);
}

class InterestingOrderDp {
 public:
  InterestingOrderDp(const Query& query, const PartitionIndex& index,
                     const CostModel& model)
      : query_(query),
        index_(index),
        model_(model),
        estimator_(query),
        orders_(query) {}

  void Run(DpStats* stats) {
    const int n = query_.num_tables();
    memo_.assign(static_cast<size_t>(index_.size()), IoEntry());
    scan_entries_.resize(n);
    for (int t = 0; t < n; ++t) {
      const double card = query_.table(t).cardinality;
      IoEntry& scans = scan_entries_[t];
      scans.card = card;
      // Heap scan: unordered.
      scans.plans.push_back(
          {model_.ScanCost(card).time(), 0, 0, 0, kNoOrder,
           JoinAlgorithm::kScan, false});
      // One order-producing scan per distinct attribute class.
      const int num_attrs =
          static_cast<int>(query_.table(t).attribute_domains.size());
      for (int a = 0; a < num_attrs; ++a) {
        IoPlan sorted;
        sorted.cost = model_.SortedScanTime(card);
        sorted.order = static_cast<int16_t>(orders_.ClassOf(t, a));
        sorted.alg = JoinAlgorithm::kScan;
        sorted.sorted_scan = true;
        OrderPrune(&scans.plans, sorted);
      }
      const int64_t rank = index_.Rank(TableSet::Single(t));
      if (rank >= 0) memo_[static_cast<size_t>(rank)] = scans;
    }

    const bool linear = index_.space() == PlanSpace::kLinear;
    for (int k = 2; k <= n; ++k) {
      index_.ForEachSetOfCard(k, [&](TableSet u, int64_t rank) {
        IoEntry entry;
        entry.card = estimator_.Cardinality(u);
        if (linear) {
          for (int t : u) {
            if (!index_.InnerAllowed(t, u)) continue;
            const int64_t lrank = index_.RankWithout(u, rank, t);
            TrySplit(u.Without(t), TableSet::Single(t),
                     memo_[static_cast<size_t>(lrank)], scan_entries_[t],
                     &entry, stats);
          }
        } else {
          index_.ForEachSplit(
              u, [&](TableSet left, int64_t lrank, int64_t rrank) {
                TrySplit(left, u.Minus(left),
                         memo_[static_cast<size_t>(lrank)],
                         memo_[static_cast<size_t>(rrank)], &entry, stats);
              });
        }
        MPQOPT_CHECK(!entry.plans.empty());
        memo_[static_cast<size_t>(rank)] = std::move(entry);
      });
    }
  }

  /// Index of the cheapest plan (any order) for the full query.
  uint32_t BestIndex(TableSet s) const {
    const IoEntry& e = EntryOf(s);
    uint32_t best = 0;
    for (uint32_t i = 1; i < e.plans.size(); ++i) {
      if (e.plans[i].cost < e.plans[best].cost) best = i;
    }
    return best;
  }

  int OrderOf(TableSet s, uint32_t idx) const {
    return EntryOf(s).plans[idx].order;
  }

  PlanId Build(TableSet s, uint32_t idx, PlanArena* arena) const {
    const IoEntry& e = EntryOf(s);
    const IoPlan& p = e.plans[idx];
    if (s.Count() == 1) {
      return arena->MakeScan(s.Lowest(), e.card, CostVector::Scalar(p.cost));
    }
    const TableSet left(p.left_bits);
    const TableSet right = s.Minus(left);
    const PlanId lid = Build(left, p.left_idx, arena);
    const PlanId rid = Build(right, p.right_idx, arena);
    return arena->MakeJoin(p.alg, lid, rid, e.card,
                           CostVector::Scalar(p.cost));
  }

 private:
  const IoEntry& EntryOf(TableSet s) const {
    if (s.Count() == 1) return scan_entries_[s.Lowest()];
    const int64_t rank = index_.Rank(s);
    MPQOPT_CHECK_GE(rank, 0);
    return memo_[static_cast<size_t>(rank)];
  }

  void TrySplit(TableSet left, TableSet right, const IoEntry& le,
                const IoEntry& re, IoEntry* entry, DpStats* stats) {
    ++stats->splits_tried;
    const std::vector<int> merge_classes =
        orders_.MergeClassesForCut(left, right);
    for (uint32_t li = 0; li < le.plans.size(); ++li) {
      for (uint32_t ri = 0; ri < re.plans.size(); ++ri) {
        const double base = le.plans[li].cost + re.plans[ri].cost;
        // Block nested loop: preserves the outer (left) order.
        {
          ++stats->plans_costed;
          IoPlan cand;
          cand.cost = base + model_.LocalJoinTime(
                                 JoinAlgorithm::kBlockNestedLoop, le.card,
                                 re.card, entry->card);
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.order = le.plans[li].order;
          cand.alg = JoinAlgorithm::kBlockNestedLoop;
          OrderPrune(&entry->plans, cand);
        }
        // Hash join: destroys order.
        {
          ++stats->plans_costed;
          IoPlan cand;
          cand.cost = base + model_.LocalJoinTime(JoinAlgorithm::kHashJoin,
                                                  le.card, re.card,
                                                  entry->card);
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.order = kNoOrder;
          cand.alg = JoinAlgorithm::kHashJoin;
          OrderPrune(&entry->plans, cand);
        }
        // Sort-merge join: one variant per equality class crossing the
        // cut; inputs already sorted in that class skip their sort.
        for (int cls : merge_classes) {
          ++stats->plans_costed;
          double cost = base + model_.MergePhaseTime(le.card, re.card,
                                                     entry->card);
          if (le.plans[li].order != cls) cost += model_.SortTime(le.card);
          if (re.plans[ri].order != cls) cost += model_.SortTime(re.card);
          IoPlan cand;
          cand.cost = cost;
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.order = static_cast<int16_t>(cls);
          cand.alg = JoinAlgorithm::kSortMergeJoin;
          OrderPrune(&entry->plans, cand);
        }
      }
    }
  }

  const Query& query_;
  const PartitionIndex& index_;
  const CostModel& model_;
  CardinalityEstimator estimator_;
  OrderClasses orders_;
  std::vector<IoEntry> memo_;
  std::vector<IoEntry> scan_entries_;
};

}  // namespace

StatusOr<DpResult> RunPartitionDpInterestingOrders(
    const Query& query, const ConstraintSet& constraints,
    const DpConfig& config) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  if (config.objective != Objective::kTime) {
    return Status::Unimplemented(
        "interesting orders are supported for single-objective "
        "optimization only");
  }
  if (constraints.space() != config.space) {
    return Status::InvalidArgument("constraint set is for the other space");
  }
  const PartitionIndex index(query.num_tables(), constraints);
  if (index.size() > config.max_memo_entries) {
    return Status::OutOfRange(
        "plan space partition too large; increase the number of workers");
  }
  const CostModel model(config.objective, config.cost_options);

  DpResult result;
  result.stats.admissible_sets = index.size();
  const auto start = std::chrono::steady_clock::now();
  if (query.num_tables() == 1) {
    const double card = query.table(0).cardinality;
    result.best.push_back(
        result.arena.MakeScan(0, card, model.ScanCost(card)));
  } else {
    InterestingOrderDp dp(query, index, model);
    dp.Run(&result.stats);
    const TableSet all = query.all_tables();
    result.best.push_back(
        dp.Build(all, dp.BestIndex(all), &result.arena));
  }
  const auto end = std::chrono::steady_clock::now();
  result.stats.seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace mpqopt
