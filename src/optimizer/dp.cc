// Copyright 2026 mpqopt authors.

#include "optimizer/dp.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <type_traits>

#include "common/arena.h"
#include "cost/cardinality.h"
#include "optimizer/io_dp.h"
#include "optimizer/pruning.h"
#include "partition/partition_index.h"

namespace mpqopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Memo entry of the single-objective DP: the best plan for one admissible
/// table set, O(1) space (Theorem 4) — children are recovered through
/// left_bits at reconstruction time.
struct ScalarEntry {
  double cost = kInf;
  double card = 0;
  uint64_t left_bits = 0;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
};

/// One plan of a Pareto frontier in the multi-objective DP. left_idx and
/// right_idx select the operand plans within the children's frontiers.
struct ParetoPlanRef {
  CostVector cost;
  uint64_t left_bits = 0;
  uint32_t left_idx = 0;
  uint32_t right_idx = 0;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
};

/// Memo entry of the multi-objective DP: the alpha-approximate Pareto set
/// of plans for one admissible table set. The frontier is a finished,
/// immutable arena-allocated array — frontiers are built once in a shared
/// scratch vector and flushed here, so the memo does one bump allocation
/// per admissible set instead of one heap vector per set (the hottest
/// allocation of the multi-objective DP).
struct ParetoEntry {
  double card = 0;
  const ParetoPlanRef* plans = nullptr;
  uint32_t num_plans = 0;
};

class ScalarDp {
 public:
  ScalarDp(const Query& query, const PartitionIndex& index,
           const CostModel& model)
      : query_(query), index_(index), model_(model), estimator_(query) {}

  void Run(DpStats* stats) {
    const int n = query_.num_tables();
    memo_.assign(static_cast<size_t>(index_.size()), ScalarEntry());
    // Initialize admissible singletons with scan plans (inadmissible
    // singletons are provably never used as operands).
    for (int t = 0; t < n; ++t) {
      scan_card_[t] = query_.table(t).cardinality;
      scan_cost_[t] = model_.ScanCost(scan_card_[t]).time();
      const int64_t r = index_.Rank(TableSet::Single(t));
      if (r >= 0) {
        memo_[static_cast<size_t>(r)] = {scan_cost_[t], scan_card_[t], 0,
                                         JoinAlgorithm::kScan};
      }
    }
    const bool linear = index_.space() == PlanSpace::kLinear;
    for (int k = 2; k <= n; ++k) {
      index_.ForEachSetOfCard(k, [&](TableSet u, int64_t rank) {
        const double out_card = estimator_.Cardinality(u);
        ScalarEntry best;
        best.card = out_card;
        if (linear) {
          for (int t : u) {
            if (!index_.InnerAllowed(t, u)) continue;
            const int64_t lrank = index_.RankWithout(u, rank, t);
            const ScalarEntry& le = memo_[static_cast<size_t>(lrank)];
            MPQOPT_DCHECK(le.cost < kInf);
            ++stats->splits_tried;
            const double base = le.cost + scan_cost_[t];
            for (JoinAlgorithm alg : kJoinAlgorithms) {
              const double cost =
                  base +
                  model_.LocalJoinTime(alg, le.card, scan_card_[t], out_card);
              ++stats->plans_costed;
              if (cost < best.cost) {
                best.cost = cost;
                best.left_bits = u.Without(t).bits();
                best.alg = alg;
              }
            }
          }
        } else {
          index_.ForEachSplit(u, [&](TableSet left, int64_t lrank,
                                     int64_t rrank) {
            const ScalarEntry& le = memo_[static_cast<size_t>(lrank)];
            const ScalarEntry& re = memo_[static_cast<size_t>(rrank)];
            MPQOPT_DCHECK(le.cost < kInf && re.cost < kInf);
            ++stats->splits_tried;
            const double base = le.cost + re.cost;
            for (JoinAlgorithm alg : kJoinAlgorithms) {
              const double cost =
                  base + model_.LocalJoinTime(alg, le.card, re.card, out_card);
              ++stats->plans_costed;
              if (cost < best.cost) {
                best.cost = cost;
                best.left_bits = left.bits();
                best.alg = alg;
              }
            }
          });
        }
        MPQOPT_CHECK(best.cost < kInf);  // every admissible set has a split
        memo_[static_cast<size_t>(rank)] = best;
      });
    }
  }

  /// Materializes the best plan for `s` into `arena`.
  PlanId Build(TableSet s, PlanArena* arena) const {
    if (s.Count() == 1) {
      const int t = s.Lowest();
      return arena->MakeScan(t, scan_card_[t],
                             model_.ScanCost(scan_card_[t]));
    }
    const int64_t rank = index_.Rank(s);
    MPQOPT_CHECK_GE(rank, 0);
    const ScalarEntry& e = memo_[static_cast<size_t>(rank)];
    const TableSet left(e.left_bits);
    const TableSet right = s.Minus(left);
    const PlanId lid = Build(left, arena);
    const PlanId rid = Build(right, arena);
    return arena->MakeJoin(e.alg, lid, rid, e.card,
                           CostVector::Scalar(e.cost));
  }

 private:
  const Query& query_;
  const PartitionIndex& index_;
  const CostModel& model_;
  CardinalityEstimator estimator_;
  std::vector<ScalarEntry> memo_;
  double scan_card_[kMaxTables] = {};
  double scan_cost_[kMaxTables] = {};
};

class ParetoDp {
 public:
  ParetoDp(const Query& query, const PartitionIndex& index,
           const CostModel& model, double alpha)
      : query_(query),
        index_(index),
        model_(model),
        alpha_(alpha),
        estimator_(query) {}

  void Run(DpStats* stats) {
    const int n = query_.num_tables();
    memo_.assign(static_cast<size_t>(index_.size()), ParetoEntry());
    for (int t = 0; t < n; ++t) {
      scan_card_[t] = query_.table(t).cardinality;
      scan_cost_[t] = model_.ScanCost(scan_card_[t]);
      const int64_t r = index_.Rank(TableSet::Single(t));
      if (r >= 0) {
        ParetoEntry& e = memo_[static_cast<size_t>(r)];
        e.card = scan_card_[t];
        scratch_.assign(1, {scan_cost_[t], 0, 0, 0, JoinAlgorithm::kScan});
        FlushScratch(&e);
      }
    }
    const auto cost_of = [](const ParetoPlanRef& p) -> const CostVector& {
      return p.cost;
    };
    const bool linear = index_.space() == PlanSpace::kLinear;
    for (int k = 2; k <= n; ++k) {
      index_.ForEachSetOfCard(k, [&](TableSet u, int64_t rank) {
        ParetoEntry entry;
        entry.card = estimator_.Cardinality(u);
        scratch_.clear();
        const auto try_split = [&](TableSet left, const ParetoEntry& le,
                                   const ParetoEntry& re) {
          ++stats->splits_tried;
          for (uint32_t li = 0; li < le.num_plans; ++li) {
            for (uint32_t ri = 0; ri < re.num_plans; ++ri) {
              for (JoinAlgorithm alg : kJoinAlgorithms) {
                ++stats->plans_costed;
                ParetoPlanRef cand;
                cand.cost = model_.JoinCost(alg, le.plans[li].cost,
                                            re.plans[ri].cost, le.card,
                                            re.card, entry.card);
                cand.left_bits = left.bits();
                cand.left_idx = li;
                cand.right_idx = ri;
                cand.alg = alg;
                ParetoInsert(&scratch_, cand, cost_of, alpha_);
              }
            }
          }
        };
        if (linear) {
          for (int t : u) {
            if (!index_.InnerAllowed(t, u)) continue;
            const int64_t lrank = index_.RankWithout(u, rank, t);
            const ParetoPlanRef scan_plan = {scan_cost_[t], 0, 0, 0,
                                             JoinAlgorithm::kScan};
            ParetoEntry scan;
            scan.card = scan_card_[t];
            scan.plans = &scan_plan;
            scan.num_plans = 1;
            try_split(u.Without(t), memo_[static_cast<size_t>(lrank)], scan);
          }
        } else {
          index_.ForEachSplit(
              u, [&](TableSet left, int64_t lrank, int64_t rrank) {
                try_split(left, memo_[static_cast<size_t>(lrank)],
                          memo_[static_cast<size_t>(rrank)]);
              });
        }
        MPQOPT_CHECK(!scratch_.empty());
        FlushScratch(&entry);
        memo_[static_cast<size_t>(rank)] = entry;
      });
    }
  }

  /// Number of Pareto plans stored for table set `s`.
  size_t FrontierSize(TableSet s) const {
    const int64_t rank = index_.Rank(s);
    MPQOPT_CHECK_GE(rank, 0);
    return memo_[static_cast<size_t>(rank)].num_plans;
  }

  /// Materializes plan `idx` of the frontier of `s` into `arena`.
  PlanId Build(TableSet s, uint32_t idx, PlanArena* arena) const {
    if (s.Count() == 1) {
      const int t = s.Lowest();
      return arena->MakeScan(t, scan_card_[t], scan_cost_[t]);
    }
    const int64_t rank = index_.Rank(s);
    MPQOPT_CHECK_GE(rank, 0);
    const ParetoEntry& e = memo_[static_cast<size_t>(rank)];
    const ParetoPlanRef& p = e.plans[idx];
    const TableSet left(p.left_bits);
    const TableSet right = s.Minus(left);
    const PlanId lid = Build(left, p.left_idx, arena);
    const PlanId rid = Build(right, p.right_idx, arena);
    return arena->MakeJoin(p.alg, lid, rid, e.card, p.cost);
  }

 private:
  /// Moves the scratch frontier into an immutable arena array in `entry`.
  void FlushScratch(ParetoEntry* entry) {
    static_assert(std::is_trivially_copyable_v<ParetoPlanRef>);
    ParetoPlanRef* plans =
        frontier_arena_.AllocateArray<ParetoPlanRef>(scratch_.size());
    if (!scratch_.empty()) {
      std::memcpy(plans, scratch_.data(),
                  scratch_.size() * sizeof(ParetoPlanRef));
    }
    entry->plans = plans;
    entry->num_plans = static_cast<uint32_t>(scratch_.size());
  }

  const Query& query_;
  const PartitionIndex& index_;
  const CostModel& model_;
  double alpha_;
  CardinalityEstimator estimator_;
  std::vector<ParetoEntry> memo_;
  /// Bump storage for finished frontiers; scratch_ is the one mutable
  /// frontier under construction, reused across admissible sets.
  Arena frontier_arena_;
  std::vector<ParetoPlanRef> scratch_;
  double scan_card_[kMaxTables] = {};
  CostVector scan_cost_[kMaxTables];
};

}  // namespace

StatusOr<DpResult> RunPartitionDp(const Query& query,
                                  const ConstraintSet& constraints,
                                  const DpConfig& config) {
  if (config.interesting_orders) {
    return RunPartitionDpInterestingOrders(query, constraints, config);
  }
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  if (constraints.space() != config.space) {
    return Status::InvalidArgument("constraint set is for the other space");
  }
  if (config.objective == Objective::kTimeAndBuffer && config.alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1");
  }

  const PartitionIndex index(query.num_tables(), constraints);
  if (index.size() > config.max_memo_entries) {
    return Status::OutOfRange(
        "plan space partition too large; increase the number of workers");
  }

  const CostModel model(config.objective, config.cost_options);
  DpResult result;
  result.stats.admissible_sets = index.size();

  const TableSet all = query.all_tables();
  const auto start = std::chrono::steady_clock::now();
  if (query.num_tables() == 1) {
    const double card = query.table(0).cardinality;
    result.best.push_back(result.arena.MakeScan(0, card, model.ScanCost(card)));
  } else if (config.objective == Objective::kTime) {
    ScalarDp dp(query, index, model);
    dp.Run(&result.stats);
    result.best.push_back(dp.Build(all, &result.arena));
  } else {
    ParetoDp dp(query, index, model, config.alpha);
    dp.Run(&result.stats);
    const size_t frontier = dp.FrontierSize(all);
    for (uint32_t i = 0; i < frontier; ++i) {
      result.best.push_back(dp.Build(all, i, &result.arena));
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.stats.seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

StatusOr<DpResult> OptimizeSerial(const Query& query, const DpConfig& config) {
  return RunPartitionDp(query, ConstraintSet::None(config.space), config);
}

}  // namespace mpqopt
