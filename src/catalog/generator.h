// Copyright 2026 mpqopt authors.
//
// Random query generation following the method of Steinbrunn, Moerkotte,
// and Kemper (VLDBJ 6(3), 1997), which the paper uses for all experiments:
// relation cardinalities and attribute domain sizes are drawn from fixed
// ranges, join predicates are equalities whose selectivity is
// 1 / max(domain(a), domain(b)), and the join graph is chain-, star-,
// cycle-, or clique-shaped. Cross products are permitted during
// optimization regardless of the shape (paper Section 6.1).

#ifndef MPQOPT_CATALOG_GENERATOR_H_
#define MPQOPT_CATALOG_GENERATOR_H_

#include <cstdint>

#include "catalog/query.h"
#include "common/rng.h"

namespace mpqopt {

/// Parameters of the Steinbrunn et al. workload distribution.
struct GeneratorOptions {
  /// Relation cardinality range; drawn log-uniformly (each decade equally
  /// likely), matching common usage of the benchmark.
  int64_t min_cardinality = 10;
  int64_t max_cardinality = 100000;
  /// Attribute domain sizes are drawn log-uniformly from
  /// [min_domain, cardinality] — a domain cannot exceed the table size.
  int64_t min_domain = 2;
  /// Number of join attributes per table.
  int attributes_per_table = 2;
  /// Join graph shape.
  JoinGraphShape shape = JoinGraphShape::kStar;
};

/// Deterministic generator of benchmark queries. The same (options, seed,
/// num_tables, query_index) always produces the same query on every
/// platform, which the benchmark harness relies on.
class QueryGenerator {
 public:
  explicit QueryGenerator(GeneratorOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Generates the next random query with `num_tables` tables.
  Query Generate(int num_tables);

 private:
  GeneratorOptions options_;
  Rng rng_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CATALOG_GENERATOR_H_
