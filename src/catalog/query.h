// Copyright 2026 mpqopt authors.
//
// Query and statistics model (paper Section 3).
//
// A query is a set of tables to be joined, identified by dense indices
// 0..n-1 (the paper's Q_x numbering; all workers must agree on it, which we
// guarantee by embedding the numbering in the serialized query). Following
// the paper's experimental setup, queries carry equality join predicates
// with precomputed selectivities, and every statistic a worker needs for
// cost estimation travels with the query — the master "sends query-specific
// statistics (e.g. predicate selectivity values) to each worker".

#ifndef MPQOPT_CATALOG_QUERY_H_
#define MPQOPT_CATALOG_QUERY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/table_set.h"

namespace mpqopt {

/// Shape of the join graph used by the workload generator. With Cartesian
/// products allowed, the DP examines the same table sets regardless of
/// shape (paper Figure 3 shows the negligible impact).
enum class JoinGraphShape : uint8_t {
  kChain = 0,
  kStar = 1,
  kCycle = 2,
  kClique = 3,
};

/// Returns a lowercase name ("chain", "star", ...) for display.
const char* JoinGraphShapeName(JoinGraphShape shape);

/// Statistics of one base table referenced by a query.
struct TableInfo {
  /// Number of rows.
  double cardinality = 0;
  /// Domain sizes (number of distinct values) of the join attributes.
  std::vector<double> attribute_domains;
  /// Table name, e.g. "R3". Not used by the optimizer's cost math, but it
  /// is the catalog identity that the plan cache's statistics-sensitive
  /// invalidation keys on (see PlanCache::InvalidateWhere), so two
  /// different catalog tables must not share a name.
  std::string name;
};

/// An equality join predicate t_l.a_l = t_r.a_r with its selectivity.
struct JoinPredicate {
  int left_table = 0;
  int left_attribute = 0;
  int right_table = 0;
  int right_attribute = 0;
  /// Estimated fraction of the cross product that satisfies the predicate;
  /// for equality predicates this is 1 / max(domain_l, domain_r)
  /// (Steinbrunn et al.).
  double selectivity = 1.0;
};

/// A join query: tables with statistics plus join predicates.
class Query {
 public:
  Query() = default;
  Query(std::vector<TableInfo> tables, std::vector<JoinPredicate> predicates)
      : tables_(std::move(tables)), predicates_(std::move(predicates)) {}

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const std::vector<TableInfo>& tables() const { return tables_; }
  const TableInfo& table(int i) const { return tables_[i]; }
  const std::vector<JoinPredicate>& predicates() const { return predicates_; }

  /// The set {0, ..., n-1} of all table indices.
  TableSet all_tables() const { return TableSet::AllTables(num_tables()); }

  /// Per-table (name, cardinality) pairs in table-index order — the
  /// statistics identity a cached plan for this query depends on. The
  /// plan cache records this per entry so that a changed cardinality can
  /// evict exactly the dependent plans.
  std::vector<std::pair<std::string, double>> TableStatistics() const;

  /// Validates internal consistency (indices in range, selectivities in
  /// (0, 1], cardinalities positive). Called after deserialization.
  Status Validate() const;

  /// Byte-exact wire encoding: this is the payload the master ships to each
  /// worker (together with the partition id and the partition count).
  void Serialize(ByteWriter* writer) const;
  static StatusOr<Query> Deserialize(ByteReader* reader);

  /// Multi-line human-readable description for examples and debugging.
  std::string ToString() const;

 private:
  std::vector<TableInfo> tables_;
  std::vector<JoinPredicate> predicates_;
};

}  // namespace mpqopt

#endif  // MPQOPT_CATALOG_QUERY_H_
