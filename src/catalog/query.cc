// Copyright 2026 mpqopt authors.

#include "catalog/query.h"

#include <cstdio>

namespace mpqopt {

const char* JoinGraphShapeName(JoinGraphShape shape) {
  switch (shape) {
    case JoinGraphShape::kChain:
      return "chain";
    case JoinGraphShape::kStar:
      return "star";
    case JoinGraphShape::kCycle:
      return "cycle";
    case JoinGraphShape::kClique:
      return "clique";
  }
  return "unknown";
}

Status Query::Validate() const {
  if (tables_.empty()) {
    return Status::InvalidArgument("query has no tables");
  }
  if (num_tables() > kMaxTables) {
    return Status::InvalidArgument("query exceeds kMaxTables tables");
  }
  for (const TableInfo& t : tables_) {
    if (!(t.cardinality > 0)) {
      return Status::InvalidArgument("table cardinality must be positive");
    }
    for (double d : t.attribute_domains) {
      if (!(d >= 1)) {
        return Status::InvalidArgument("attribute domain must be >= 1");
      }
    }
  }
  for (const JoinPredicate& p : predicates_) {
    if (p.left_table < 0 || p.left_table >= num_tables() ||
        p.right_table < 0 || p.right_table >= num_tables()) {
      return Status::InvalidArgument("predicate table index out of range");
    }
    if (p.left_table == p.right_table) {
      return Status::InvalidArgument("self-join predicate not supported");
    }
    const auto& lt = tables_[p.left_table];
    const auto& rt = tables_[p.right_table];
    if (p.left_attribute < 0 ||
        p.left_attribute >= static_cast<int>(lt.attribute_domains.size()) ||
        p.right_attribute < 0 ||
        p.right_attribute >= static_cast<int>(rt.attribute_domains.size())) {
      return Status::InvalidArgument("predicate attribute index out of range");
    }
    if (!(p.selectivity > 0.0 && p.selectivity <= 1.0)) {
      return Status::InvalidArgument("selectivity must be in (0, 1]");
    }
  }
  return Status::OK();
}

void Query::Serialize(ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const TableInfo& t : tables_) {
    writer->WriteDouble(t.cardinality);
    writer->WriteU32(static_cast<uint32_t>(t.attribute_domains.size()));
    for (double d : t.attribute_domains) writer->WriteDouble(d);
    writer->WriteString(t.name);
  }
  writer->WriteU32(static_cast<uint32_t>(predicates_.size()));
  for (const JoinPredicate& p : predicates_) {
    writer->WriteU32(static_cast<uint32_t>(p.left_table));
    writer->WriteU32(static_cast<uint32_t>(p.left_attribute));
    writer->WriteU32(static_cast<uint32_t>(p.right_table));
    writer->WriteU32(static_cast<uint32_t>(p.right_attribute));
    writer->WriteDouble(p.selectivity);
  }
}

StatusOr<Query> Query::Deserialize(ByteReader* reader) {
  uint32_t num_tables = 0;
  Status s = reader->ReadU32(&num_tables);
  if (!s.ok()) return s;
  if (num_tables > static_cast<uint32_t>(kMaxTables)) {
    return Status::Corruption("table count exceeds kMaxTables");
  }
  std::vector<TableInfo> tables(num_tables);
  for (TableInfo& t : tables) {
    if (!(s = reader->ReadDouble(&t.cardinality)).ok()) return s;
    uint32_t num_attrs = 0;
    if (!(s = reader->ReadU32(&num_attrs)).ok()) return s;
    if (num_attrs > 1u << 20) return Status::Corruption("attr count");
    t.attribute_domains.resize(num_attrs);
    for (double& d : t.attribute_domains) {
      if (!(s = reader->ReadDouble(&d)).ok()) return s;
    }
    if (!(s = reader->ReadString(&t.name)).ok()) return s;
  }
  uint32_t num_preds = 0;
  if (!(s = reader->ReadU32(&num_preds)).ok()) return s;
  if (num_preds > 1u << 20) return Status::Corruption("predicate count");
  std::vector<JoinPredicate> preds(num_preds);
  for (JoinPredicate& p : preds) {
    uint32_t lt = 0, la = 0, rt = 0, ra = 0;
    if (!(s = reader->ReadU32(&lt)).ok()) return s;
    if (!(s = reader->ReadU32(&la)).ok()) return s;
    if (!(s = reader->ReadU32(&rt)).ok()) return s;
    if (!(s = reader->ReadU32(&ra)).ok()) return s;
    if (!(s = reader->ReadDouble(&p.selectivity)).ok()) return s;
    p.left_table = static_cast<int>(lt);
    p.left_attribute = static_cast<int>(la);
    p.right_table = static_cast<int>(rt);
    p.right_attribute = static_cast<int>(ra);
  }
  Query query(std::move(tables), std::move(preds));
  s = query.Validate();
  if (!s.ok()) return Status::Corruption("invalid query: " + s.message());
  return query;
}

std::vector<std::pair<std::string, double>> Query::TableStatistics() const {
  std::vector<std::pair<std::string, double>> stats;
  stats.reserve(tables_.size());
  for (const TableInfo& t : tables_) stats.emplace_back(t.name, t.cardinality);
  return stats;
}

std::string Query::ToString() const {
  std::string out = "Query with " + std::to_string(num_tables()) + " tables\n";
  char buf[128];
  for (int i = 0; i < num_tables(); ++i) {
    const TableInfo& t = tables_[i];
    std::snprintf(buf, sizeof(buf), "  [%d] %s card=%.0f attrs=%zu\n", i,
                  t.name.empty() ? "?" : t.name.c_str(), t.cardinality,
                  t.attribute_domains.size());
    out += buf;
  }
  for (const JoinPredicate& p : predicates_) {
    std::snprintf(buf, sizeof(buf), "  T%d.a%d = T%d.a%d (sel=%.3g)\n",
                  p.left_table, p.left_attribute, p.right_table,
                  p.right_attribute, p.selectivity);
    out += buf;
  }
  return out;
}

}  // namespace mpqopt
