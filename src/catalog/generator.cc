// Copyright 2026 mpqopt authors.

#include "catalog/generator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace mpqopt {
namespace {

/// Edges of the join graph for the requested shape over n tables.
std::vector<std::pair<int, int>> GraphEdges(JoinGraphShape shape, int n) {
  std::vector<std::pair<int, int>> edges;
  switch (shape) {
    case JoinGraphShape::kChain:
      for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
      break;
    case JoinGraphShape::kStar:
      // Table 0 is the fact table; all others are dimensions.
      for (int i = 1; i < n; ++i) edges.emplace_back(0, i);
      break;
    case JoinGraphShape::kCycle:
      for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
      if (n > 2) edges.emplace_back(n - 1, 0);
      break;
    case JoinGraphShape::kClique:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
      }
      break;
  }
  return edges;
}

}  // namespace

Query QueryGenerator::Generate(int num_tables) {
  MPQOPT_CHECK_GE(num_tables, 1);
  MPQOPT_CHECK_LE(num_tables, kMaxTables);

  std::vector<TableInfo> tables(num_tables);
  for (int i = 0; i < num_tables; ++i) {
    TableInfo& t = tables[i];
    t.cardinality = static_cast<double>(
        rng_.LogUniformInt(options_.min_cardinality, options_.max_cardinality));
    t.name = "R" + std::to_string(i);
    t.attribute_domains.resize(options_.attributes_per_table);
    for (double& d : t.attribute_domains) {
      const int64_t max_domain =
          std::max<int64_t>(options_.min_domain,
                            static_cast<int64_t>(t.cardinality));
      d = static_cast<double>(
          rng_.LogUniformInt(options_.min_domain, max_domain));
    }
  }

  std::vector<JoinPredicate> predicates;
  for (const auto& [a, b] : GraphEdges(options_.shape, num_tables)) {
    JoinPredicate p;
    p.left_table = a;
    p.right_table = b;
    p.left_attribute = static_cast<int>(
        rng_.UniformInt(0, options_.attributes_per_table - 1));
    p.right_attribute = static_cast<int>(
        rng_.UniformInt(0, options_.attributes_per_table - 1));
    const double dl = tables[a].attribute_domains[p.left_attribute];
    const double dr = tables[b].attribute_domains[p.right_attribute];
    p.selectivity = 1.0 / std::max(dl, dr);
    predicates.push_back(p);
  }

  Query query(std::move(tables), std::move(predicates));
  MPQOPT_CHECK(query.Validate().ok());
  return query;
}

}  // namespace mpqopt
