// Copyright 2026 mpqopt authors.
//
// Query fingerprinting for the plan cache (see plancache/plan_cache.h).
//
// A fingerprint is the canonical byte encoding of everything that can
// change which plan the optimizer returns: the query itself (tables,
// statistics, predicates, selectivities — reusing the deterministic
// wire serialization of catalog/query.h) plus the plan-affecting fields
// of MpqOptions. Execution-only knobs (backend handle, thread caps, the
// network model) are deliberately excluded — they change how fast a plan
// is found, never which plan is found.
//
// The 128-bit hash is only an index accelerator: the cache keeps the
// full key bytes and compares them on every probe, so even a forced
// hash collision can never serve the wrong plan (asserted by
// tests/plan_cache_test.cc).

#ifndef MPQOPT_PLANCACHE_FINGERPRINT_H_
#define MPQOPT_PLANCACHE_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "catalog/query.h"
#include "mpq/mpq.h"

namespace mpqopt {

/// Cache key: canonical bytes plus a 128-bit hash of them.
struct PlanCacheKey {
  /// Canonical encoding of (query, plan-affecting options). Retained in
  /// full so that cache probes can reject hash collisions exactly.
  std::vector<uint8_t> bytes;
  uint64_t hash_hi = 0;
  uint64_t hash_lo = 0;

  /// Full-key equality: hashes first (cheap reject), then the bytes.
  bool operator==(const PlanCacheKey& other) const {
    return hash_hi == other.hash_hi && hash_lo == other.hash_lo &&
           bytes == other.bytes;
  }
  bool operator!=(const PlanCacheKey& other) const {
    return !(*this == other);
  }
};

/// Strong 64-bit mixing hash over a byte span (xxHash64-style avalanche;
/// public-domain construction). Different seeds give independent streams,
/// which is how the 128-bit fingerprint hash is assembled.
uint64_t HashBytes64(const uint8_t* data, size_t size, uint64_t seed);

/// Builds the canonical fingerprint of one (query, options) pair.
/// Deterministic: the same inputs produce byte-identical keys on every
/// platform (the serialization layer guarantees this; see
/// tests/serialize_determinism_test.cc).
PlanCacheKey FingerprintQuery(const Query& query, const MpqOptions& options);

}  // namespace mpqopt

#endif  // MPQOPT_PLANCACHE_FINGERPRINT_H_
