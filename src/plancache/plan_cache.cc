// Copyright 2026 mpqopt authors.

#include "plancache/plan_cache.h"

#include <algorithm>

#include "obs/trace.h"

namespace mpqopt {
namespace {

/// Smallest power of two >= n (n >= 1).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bytes an entry is charged for beyond its structs: key bytes (stored
/// once, in the index), plan arena, best ids, and table metadata.
size_t ChargeBytes(const PlanCacheKey& key, const CachedPlan& plan,
                   const std::vector<std::pair<std::string, double>>& stats) {
  size_t charge = sizeof(PlanCacheKey) + key.bytes.capacity();
  charge += plan.arena.MemoryBytes();
  charge += plan.best.capacity() * sizeof(PlanId);
  for (const auto& [name, cardinality] : stats) {
    (void)cardinality;
    charge += sizeof(std::pair<std::string, double>) + name.capacity();
  }
  // List node + index slot overhead (approximate; exact malloc accounting
  // is not worth chasing — the budget is a throttle, not a ledger).
  charge += 128;
  return charge;
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(std::move(options)),
      shard_mask_(RoundUpPow2(static_cast<size_t>(
                      std::max(options_.num_shards, 1))) -
                  1),
      per_shard_capacity_(options_.capacity_bytes / (shard_mask_ + 1)),
      shards_(shard_mask_ + 1) {}

std::chrono::steady_clock::time_point PlanCache::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

PlanCache::Index::iterator PlanCache::EraseLocked(Shard* shard,
                                                  Index::iterator it) {
  shard->bytes -= it->second->second.charge;
  shard->lru.erase(it->second);
  return shard->index.erase(it);
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const PlanCacheKey& key,
                                                    bool count_miss) {
  obs::Span lookup_span("cache.lookup");
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Index::iterator it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count_miss) ++shard.stats.misses;
    return nullptr;
  }
  Entry& entry = it->second->second;
  if (entry.statistics_epoch != epoch_.load(std::memory_order_acquire)) {
    ++shard.stats.evictions_invalidated;
    EraseLocked(&shard, it);
    if (count_miss) ++shard.stats.misses;
    return nullptr;
  }
  if (entry.expires && Now() >= entry.expires_at) {
    ++shard.stats.evictions_ttl;
    EraseLocked(&shard, it);
    if (count_miss) ++shard.stats.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  return entry.plan;  // ref-count bump only — no plan copy under the lock
}

std::shared_ptr<const CachedPlan> PlanCache::Insert(
    const PlanCacheKey& key,
    std::vector<std::pair<std::string, double>> table_statistics,
    const PlanArena& arena, const std::vector<PlanId>& best,
    uint64_t computed_at_epoch) {
  obs::Span insert_span("cache.insert");
  // Re-materialize only the winning subtrees into a compact private
  // arena: the source arena holds every plan all m workers returned.
  auto plan = std::make_shared<CachedPlan>();
  plan->best.reserve(best.size());
  for (PlanId id : best) {
    plan->best.push_back(CopyPlan(arena, id, &plan->arena));
  }
  Entry entry;
  entry.plan = plan;
  entry.table_statistics = std::move(table_statistics);
  // An entry stamped with a pre-bump epoch is born stale: the next probe
  // evicts it, so an epoch bump fences even in-flight computations.
  entry.statistics_epoch = computed_at_epoch == kCurrentEpoch
                               ? epoch_.load(std::memory_order_acquire)
                               : computed_at_epoch;
  if (options_.ttl_seconds > 0) {
    entry.expires = true;
    entry.expires_at =
        Now() + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options_.ttl_seconds));
  }
  entry.charge = ChargeBytes(key, *plan, entry.table_statistics);
  if (entry.charge > per_shard_capacity_) {
    return plan;  // caching it would evict a whole shard — hand back only
  }

  Shard& shard = ShardFor(key);
  const auto now = Now();
  std::lock_guard<std::mutex> lock(shard.mutex);
  Index::iterator existing = shard.index.find(key);
  if (existing != shard.index.end()) {
    // Replace in place (not an eviction): same fingerprint, fresh plan.
    EraseLocked(&shard, existing);
  }
  while (shard.bytes + entry.charge > per_shard_capacity_ &&
         !shard.lru.empty()) {
    const Entry& victim = shard.lru.back().second;
    if (victim.expires && now >= victim.expires_at) {
      ++shard.stats.evictions_ttl;
    } else {
      ++shard.stats.evictions_capacity;
    }
    EraseLocked(&shard, shard.index.find(*shard.lru.back().first));
  }
  auto [slot, inserted] =
      shard.index.emplace(key, shard.lru.end());
  MPQOPT_CHECK(inserted);
  shard.lru.emplace_front(&slot->first, std::move(entry));
  slot->second = shard.lru.begin();
  shard.bytes += shard.lru.front().second.charge;
  ++shard.stats.inserts;
  return plan;
}

void PlanCache::BumpStatisticsEpoch() {
  const uint64_t new_epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (Index::iterator it = shard.index.begin();
         it != shard.index.end();) {
      // Strictly-older only: when two bumps race, the slower sweep must
      // not evict entries already inserted under the newer epoch.
      if (it->second->second.statistics_epoch < new_epoch) {
        ++shard.stats.evictions_invalidated;
        it = EraseLocked(&shard, it);
      } else {
        ++it;
      }
    }
  }
}

size_t PlanCache::InvalidateWhere(
    const std::function<bool(const PlanCacheEntryView&)>& predicate) {
  size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (Index::iterator it = shard.index.begin();
         it != shard.index.end();) {
      const Entry& entry = it->second->second;
      const PlanCacheEntryView view{entry.table_statistics,
                                    entry.statistics_epoch, entry.charge};
      if (predicate(view)) {
        ++shard.stats.evictions_invalidated;
        it = EraseLocked(&shard, it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

size_t PlanCache::InvalidateTable(const std::string& name) {
  return InvalidateWhere([&name](const PlanCacheEntryView& view) {
    for (const auto& [table, cardinality] : view.table_statistics) {
      (void)cardinality;
      if (table == name) return true;
    }
    return false;
  });
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats.evictions_invalidated += shard.index.size();
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.inserts += shard.stats.inserts;
    total.evictions_capacity += shard.stats.evictions_capacity;
    total.evictions_ttl += shard.stats.evictions_ttl;
    total.evictions_invalidated += shard.stats.evictions_invalidated;
    total.bytes_in_use += shard.bytes;
    total.entries += shard.index.size();
  }
  return total;
}

bool SingleFlight::BeginOrWait(const std::string& key,
                               std::shared_ptr<const CachedPlan>* result) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    flights_.emplace(key, std::make_shared<Flight>());
    return true;
  }
  std::shared_ptr<Flight> flight = it->second;
  flight->cv.wait(lock, [&flight] { return flight->done; });
  *result = flight->result;
  return false;
}

void SingleFlight::Done(const std::string& key,
                        std::shared_ptr<const CachedPlan> result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  MPQOPT_CHECK(it != flights_.end());
  it->second->done = true;
  it->second->result = std::move(result);
  it->second->cv.notify_all();
  flights_.erase(it);
}

}  // namespace mpqopt
