// Copyright 2026 mpqopt authors.

#include "plancache/fingerprint.h"

#include "common/serialize.h"

namespace mpqopt {
namespace {

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

// xxHash64 primes.
constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline uint64_t ReadU64LE(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  return acc * kPrime1 + kPrime4;
}

/// Version tag of the fingerprint encoding. Bump whenever the canonical
/// byte layout below (or Query::Serialize) changes so that persisted or
/// cross-process fingerprints from older layouts can never alias.
constexpr uint8_t kFingerprintVersion = 1;

}  // namespace

uint64_t HashBytes64(const uint8_t* data, size_t size, uint64_t seed) {
  const uint8_t* p = data;
  const uint8_t* const end = data + size;
  uint64_t h;
  if (size >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = Round(v1, ReadU64LE(p));
      v2 = Round(v2, ReadU64LE(p + 8));
      v3 = Round(v3, ReadU64LE(p + 16));
      v4 = Round(v4, ReadU64LE(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(size);
  while (p + 8 <= end) {
    h ^= Round(0, ReadU64LE(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(ReadU32LE(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

PlanCacheKey FingerprintQuery(const Query& query, const MpqOptions& options) {
  ByteWriter writer;
  writer.WriteU8(kFingerprintVersion);
  // The query: tables, statistics, predicates, selectivities — the exact
  // deterministic wire encoding the workers receive.
  query.Serialize(&writer);
  // Plan-affecting options. num_workers is included because the merged
  // multi-objective frontier depends on how the plan space was
  // partitioned; max_memo_entries because it decides success vs. failure
  // (only successes are cached, but a run that would fail fresh must not
  // be served from a larger-budget entry).
  writer.WriteU8(static_cast<uint8_t>(options.space));
  writer.WriteU8(static_cast<uint8_t>(options.objective));
  writer.WriteBool(options.interesting_orders);
  writer.WriteDouble(options.alpha);
  writer.WriteU64(options.num_workers);
  writer.WriteDouble(options.cost_options.block_size);
  writer.WriteDouble(options.cost_options.hash_constant);
  writer.WriteDouble(options.cost_options.output_cost_factor);
  writer.WriteDouble(options.cost_options.sorted_scan_factor);
  writer.WriteU64(static_cast<uint64_t>(options.max_memo_entries));

  PlanCacheKey key;
  key.bytes = writer.Release();
  key.hash_hi = HashBytes64(key.bytes.data(), key.bytes.size(),
                            /*seed=*/0x6d70716f70743031ULL);
  key.hash_lo = HashBytes64(key.bytes.data(), key.bytes.size(),
                            /*seed=*/0x706c616e63616368ULL);
  return key;
}

}  // namespace mpqopt
