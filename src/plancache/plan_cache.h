// Copyright 2026 mpqopt authors.
//
// PlanCache — memoized serving for the optimizer (ROADMAP "Plan cache").
//
// Maps a query fingerprint (plancache/fingerprint.h) to the optimized
// plan(s), so that a repeated query shape skips the whole scatter/gather
// round on every backend. Design:
//
//  * Sharded LRU. Entries live in 2^k shards selected by the fingerprint
//    hash; each shard has its own mutex, LRU list, and byte budget
//    (capacity_bytes / num_shards), so concurrent servers on different
//    fingerprints never contend on one lock.
//  * Byte-budget capacity. An entry is charged for its key bytes, its
//    plan arena, and its invalidation metadata; inserting past the shard
//    budget evicts from the LRU tail.
//  * TTL. Entries expire ttl_seconds after insertion (0 = never); expiry
//    is detected on probe and on insert-time eviction scans.
//  * Statistics-sensitive invalidation. Every entry records the
//    statistics epoch at insert and the (table name, cardinality) pairs
//    its plan was costed with. BumpStatisticsEpoch() invalidates
//    everything from older epochs (coarse: "the catalog changed");
//    InvalidateWhere(predicate) evicts exactly the entries whose
//    metadata matches (targeted: "table R3's cardinality changed").
//  * Collision safety. The index hashes the 128-bit fingerprint but
//    compares the full key bytes on every probe; a forced hash collision
//    is a miss, never a wrong plan.
//
// All methods are thread-safe. The cache never blocks on optimization —
// single-flighting of concurrent misses is layered on top (SingleFlight
// below, used by OptimizerService).

#ifndef MPQOPT_PLANCACHE_PLAN_CACHE_H_
#define MPQOPT_PLANCACHE_PLAN_CACHE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/query.h"
#include "common/macros.h"
#include "plan/plan.h"
#include "plancache/fingerprint.h"

namespace mpqopt {

/// Configuration of one PlanCache instance.
struct PlanCacheOptions {
  /// Total byte budget across all shards.
  size_t capacity_bytes = size_t{64} << 20;
  /// Entry lifetime in seconds; <= 0 means entries never expire.
  double ttl_seconds = 0;
  /// Number of shards; rounded up to a power of two, minimum 1.
  int num_shards = 16;
  /// Injectable clock for deterministic TTL tests; null uses
  /// steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// The cached value: the optimal plan (kTime) or merged Pareto frontier
/// (kTimeAndBuffer), materialized in a compact private arena.
struct CachedPlan {
  PlanArena arena;
  std::vector<PlanId> best;
};

/// Aggregate counters across all shards (monotonic since construction,
/// except bytes_in_use / entries which are gauges).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions_capacity = 0;
  uint64_t evictions_ttl = 0;
  uint64_t evictions_invalidated = 0;
  uint64_t bytes_in_use = 0;
  uint64_t entries = 0;

  uint64_t evictions() const {
    return evictions_capacity + evictions_ttl + evictions_invalidated;
  }
};

/// Read-only view of one entry's invalidation metadata, passed to
/// InvalidateWhere predicates.
struct PlanCacheEntryView {
  /// (table name, cardinality) pairs the cached plan was costed with.
  const std::vector<std::pair<std::string, double>>& table_statistics;
  /// Statistics epoch the entry was inserted under.
  uint64_t statistics_epoch;
  /// Bytes charged against the shard budget.
  size_t charge_bytes;
};

/// Sharded, thread-safe, byte-budgeted LRU of fingerprint -> plan.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(PlanCache);

  /// Sentinel for Insert's `computed_at_epoch`: stamp the entry with the
  /// epoch current at insert time.
  static constexpr uint64_t kCurrentEpoch = ~uint64_t{0};

  /// Returns the cached plan, or null on miss (absent, expired,
  /// hash-collided, or from a stale statistics epoch). Entries are
  /// immutable once inserted, so the returned pointer stays valid after
  /// eviction and the shard lock is only held for the O(1) probe — never
  /// for a plan copy. `count_miss` = false suppresses the miss counter
  /// for confirmation probes whose miss was already counted (the
  /// single-flight leader's double-check).
  std::shared_ptr<const CachedPlan> Lookup(const PlanCacheKey& key,
                                           bool count_miss = true);

  /// Inserts (or replaces) the plan for `key`, re-materializing only the
  /// winning `best` subtrees of `arena` into a compact private copy,
  /// which is returned (so a single-flight leader can hand it to waiters
  /// even when it was too large to cache). `table_statistics` is the
  /// invalidation metadata, normally query.TableStatistics(). Entries
  /// larger than a whole shard's budget are not cached.
  ///
  /// `computed_at_epoch` is the statistics epoch the plan's inputs were
  /// read under (capture statistics_epoch() before optimizing). If the
  /// epoch advanced during the computation, the entry is inserted
  /// already-stale and the next probe evicts it — a plan computed from
  /// pre-invalidation statistics cannot outlive the invalidation.
  std::shared_ptr<const CachedPlan> Insert(
      const PlanCacheKey& key,
      std::vector<std::pair<std::string, double>> table_statistics,
      const PlanArena& arena, const std::vector<PlanId>& best,
      uint64_t computed_at_epoch = kCurrentEpoch);

  /// Current statistics epoch (starts at 0).
  uint64_t statistics_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Declares "catalog statistics changed somewhere": advances the epoch
  /// and evicts every entry inserted under an older one.
  void BumpStatisticsEpoch();

  /// Evicts every entry whose metadata matches `predicate`; returns the
  /// number evicted. The predicate runs under the shard lock — keep it
  /// cheap and non-reentrant (it must not call back into this cache).
  /// Point-in-time sweep: an optimization in flight during the call can
  /// still insert a matching entry afterwards; use BumpStatisticsEpoch()
  /// when fence semantics across in-flight computations are needed.
  size_t InvalidateWhere(
      const std::function<bool(const PlanCacheEntryView&)>& predicate);

  /// Targeted invalidation: evicts entries whose plan depends on table
  /// `name` (convenience wrapper over InvalidateWhere).
  size_t InvalidateTable(const std::string& name);

  /// Drops everything (counted as invalidation evictions).
  void Clear();

  /// Thread-safe aggregate snapshot.
  PlanCacheStats stats() const;

  const PlanCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::vector<std::pair<std::string, double>> table_statistics;
    std::chrono::steady_clock::time_point expires_at;
    bool expires = false;
    uint64_t statistics_epoch = 0;
    size_t charge = 0;
  };

  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      return static_cast<size_t>(key.hash_lo);
    }
  };

  // The LRU list owns entry payloads (front = most recent) next to a
  // pointer at the index's stable copy of the key; the index maps the
  // full key to its list position. Key equality in the index is
  // PlanCacheKey::operator== — the full-byte comparison that makes hash
  // collisions harmless.
  using LruList = std::list<std::pair<const PlanCacheKey*, Entry>>;
  using Index = std::unordered_map<PlanCacheKey, LruList::iterator, KeyHash>;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;
    Index index;
    size_t bytes = 0;
    PlanCacheStats stats;
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return shards_[key.hash_hi & shard_mask_];
  }
  std::chrono::steady_clock::time_point Now() const;
  /// Erases the entry at `it`; caller holds the shard lock and has
  /// already attributed the eviction to a counter. Returns the next
  /// index iterator (for erase-while-iterating).
  Index::iterator EraseLocked(Shard* shard, Index::iterator it);

  PlanCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> epoch_{0};
};

/// Collapses concurrent computations of the same key into one: the first
/// caller becomes the leader and computes; the rest block until the
/// leader calls Done and receive the leader's plan directly — so waiters
/// are served even when the plan was uncacheable (oversized for the byte
/// budget, or already expired/evicted). Used by OptimizerService so that
/// N concurrent misses on one fingerprint optimize exactly once.
class SingleFlight {
 public:
  SingleFlight() = default;
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(SingleFlight);

  /// Returns true if the caller is now the leader for `key` and MUST call
  /// Done(key, ...) when finished (success or failure). Returns false
  /// after an existing leader for `key` finished, with `*result` set to
  /// the plan that leader handed over — null if it failed, in which case
  /// the caller should call BeginOrWait again (becoming the next leader).
  bool BeginOrWait(const std::string& key,
                   std::shared_ptr<const CachedPlan>* result);

  /// Leader-only: hands `result` (null on failure) to every waiter,
  /// wakes them, and retires the flight.
  void Done(const std::string& key, std::shared_ptr<const CachedPlan> result);

 private:
  struct Flight {
    bool done = false;
    std::shared_ptr<const CachedPlan> result;
    std::condition_variable cv;
  };

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace mpqopt

#endif  // MPQOPT_PLANCACHE_PLAN_CACHE_H_
