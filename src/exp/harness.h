// Copyright 2026 mpqopt authors.
//
// Shared utilities of the benchmark binaries in bench/: environment-based
// scaling knobs, robust aggregation (the paper reports medians over
// randomly generated queries), and fixed-width table output so each bench
// binary prints the rows of its figure/table.

#ifndef MPQOPT_EXP_HARNESS_H_
#define MPQOPT_EXP_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mpqopt {

/// Reads an integer knob from the environment, e.g.
/// MPQOPT_QUERIES_PER_POINT; returns `fallback` when unset/invalid.
int64_t EnvInt(const char* name, int64_t fallback);

/// Reads a floating-point knob from the environment.
double EnvDouble(const char* name, double fallback);

/// Median of a sample (by copy; the input order is preserved).
double Median(std::vector<double> values);

/// Arithmetic mean.
double Mean(const std::vector<double>& values);

/// Half-width of the normal-approximation 95% confidence interval
/// (used by the Figure 3 bench, which reports mean +/- CI as the paper).
double ConfidenceInterval95(const std::vector<double>& values);

/// Fixed-width plain-text table writer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are preformatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  /// Formats helpers for cells.
  static std::string FormatMillis(double seconds);
  static std::string FormatBytes(double bytes);
  static std::string FormatCount(double count);
  static std::string FormatDouble(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpqopt

#endif  // MPQOPT_EXP_HARNESS_H_
