// Copyright 2026 mpqopt authors.

#include "exp/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/percentile.h"

namespace mpqopt {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

double Median(std::vector<double> values) {
  // The repo-wide rank estimator (obs/percentile.h) at p=50 reduces to
  // the textbook median for both odd and even sample counts.
  return obs::Percentile(std::move(values), 50);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double ConfidenceInterval95(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  const double mean = Mean(values);
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double stddev =
      std::sqrt(ss / static_cast<double>(values.size() - 1));
  return 1.96 * stddev / std::sqrt(static_cast<double>(values.size()));
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  append_row(headers_);
  std::vector<std::string> rule;
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  append_row(rule);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::FormatMillis(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

std::string TablePrinter::FormatBytes(double bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", bytes);
  return buf;
}

std::string TablePrinter::FormatCount(double count) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", count);
  return buf;
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mpqopt
