// Copyright 2026 mpqopt authors.

#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

namespace mpqopt {
namespace obs {

size_t ThisThreadShard() {
  // Hash the thread id once; the shard stays fixed for the thread's
  // lifetime, so repeat recorders keep hitting their own cache line.
  thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) &
      (kMetricShards - 1);
  return shard;
}

namespace {

/// f64 accumulation into an atomic<uint64_t> bit store: CAS loop, no
/// lock. (std::atomic<double>::fetch_add is C++20 but not yet reliably
/// lock-free everywhere this builds.)
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  for (;;) {
    double current = 0;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + delta;
    uint64_t next_bits = 0;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (bits->compare_exchange_weak(observed, next_bits,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double LoadDouble(const std::atomic<uint64_t>& bits) {
  const uint64_t raw = bits.load(std::memory_order_relaxed);
  double value = 0;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MPQOPT_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MPQOPT_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  const size_t buckets = bounds_.size() + 1;  // + overflow
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum_bits, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < snapshot.counts.size(); ++b) {
      snapshot.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum += LoadDouble(shard.sum_bits);
  }
  return snapshot;
}

std::vector<double> Histogram::LatencyBoundariesMs() {
  std::vector<double> bounds;
  bounds.reserve(36);
  double edge = 0.01;  // 10 microseconds
  for (int i = 0; i < 36; ++i) {
    bounds.push_back(edge);
    edge *= 1.9;
  }
  return bounds;
}

double HistogramSnapshot::ValueAtQuantile(double q) const {
  // A never-recorded instrument (count == 0) — e.g. one scraped at
  // process startup — and a default-constructed snapshot (empty bounds)
  // both report 0 explicitly instead of interpolating against nothing.
  if (count == 0 || bounds.empty()) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b >= bounds.size()) return bounds.back();  // overflow bucket
    const double lower = b == 0 ? 0 : bounds[b - 1];
    const double upper = bounds[b];
    const double within =
        (target - static_cast<double>(before)) /
        static_cast<double>(counts[b]);
    return lower + (upper - lower) * std::min(std::max(within, 0.0), 1.0);
  }
  return bounds.back();
}

HistogramSnapshot HistogramSnapshot::Since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.bounds = bounds;
  delta.counts.assign(counts.size(), 0);
  MPQOPT_CHECK_EQ(counts.size(), earlier.counts.size());
  for (size_t b = 0; b < counts.size(); ++b) {
    delta.counts[b] = counts[b] - earlier.counts[b];
  }
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  return delta;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::StatzDump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->Value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(gauge->Value()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->Snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu mean=%.3f p50=%.3f p95=%.3f "
                  "p99=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.Mean(), s.Percentile(50), s.Percentile(95),
                  s.Percentile(99));
    out += line;
  }
  return out;
}

RegistrySample MetricsRegistry::Sample() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySample sample;
  sample.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    sample.counters.emplace_back(name, counter->Value());
  }
  sample.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    sample.gauges.emplace_back(name, gauge->Value());
  }
  sample.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    sample.histograms.emplace_back(name, histogram->Snapshot());
  }
  return sample;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace mpqopt
