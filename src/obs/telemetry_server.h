// Copyright 2026 mpqopt authors.
//
// TelemetryServer — the live telemetry plane: a minimal embedded
// HTTP/1.1 server (GET-only, no dependencies; built on the same
// Socket/TcpListener helpers RpcBackend uses) that serves:
//
//   /metrics               Prometheus text exposition 0.0.4 of the
//                          registry, PLUS — when a backend is attached —
//                          every rpc worker's own registry re-exported
//                          with a worker="<addr>" label, so one scrape
//                          shows master and whole pool. Worker polls go
//                          through the kStatsPollTask envelope and are
//                          cached for worker_poll_ttl_ms so scrapes
//                          cannot stampede the fleet.
//   /healthz               JSON roll-up of backend health(): state
//                          READY / DEGRADED / UNREADY with per-worker
//                          detail. Always HTTP 200 (liveness).
//   /readyz                Same JSON; HTTP 200 only when the process can
//                          serve (init ok and, with remote workers, at
//                          least one HEALTHY) — 503 otherwise.
//   /statz                 The existing MetricsRegistry::StatzDump().
//   /debug/flightrecorder  FlightRecorder::Global().DumpText().
//
// The accept loop runs on one background thread and handles one
// connection at a time — scrapes are rare and tiny; a telemetry plane
// must never compete with the serving path for resources. Every
// response closes the connection (Connection: close).

#ifndef MPQOPT_OBS_TELEMETRY_SERVER_H_
#define MPQOPT_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.h"
#include "common/status.h"
#include "net/frame_transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"

namespace mpqopt {
namespace obs {

struct TelemetryOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; TelemetryServer::port() reports it.
  int port = 0;
  /// Registry to scrape; null = MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Recorder behind /debug/flightrecorder; null = Global().
  FlightRecorder* recorder = nullptr;
  /// Backend whose health() and PollWorkerStats() feed /healthz and the
  /// worker-labeled /metrics series. Null = standalone mode (a worker
  /// process serving only its own registry; /healthz is READY iff
  /// init_status is ok).
  std::shared_ptr<ExecutionBackend> backend;
  /// Process init status for the readiness roll-up; null = always OK.
  std::function<Status()> init_status;
  /// Minimum milliseconds between fleet stats polls; scrapes inside the
  /// window serve the cached worker samples. 0 polls on every scrape.
  int worker_poll_ttl_ms = 1000;
};

class TelemetryServer {
 public:
  /// Binds and starts the accept thread. On success the server is
  /// already scrapeable.
  static StatusOr<std::unique_ptr<TelemetryServer>> Start(
      TelemetryOptions options);

  ~TelemetryServer();
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(TelemetryServer);

  /// Stops the accept loop and joins the thread (idempotent).
  void Stop();

  /// The bound port (the ephemeral one when options.port was 0).
  int port() const { return port_; }

  /// Endpoint payload builders, exposed for tests and for the in-process
  /// self-scrape macrobench performs:
  std::string RenderMetrics();
  /// `*http_status` (may be null) gets the /readyz code: 200 unless the
  /// roll-up is UNREADY (503).
  std::string RenderHealthJson(int* http_status);

 private:
  explicit TelemetryServer(TelemetryOptions options);

  void AcceptLoop();
  void ServeConnection(Socket conn);
  std::vector<WorkerStatsSample> PolledWorkerStats();

  TelemetryOptions options_;
  TcpListener listener_;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;

  std::mutex poll_mutex_;
  bool poll_valid_ = false;              ///< guarded by poll_mutex_
  uint64_t last_poll_ns_ = 0;            ///< guarded by poll_mutex_
  std::vector<WorkerStatsSample> poll_cache_;  ///< guarded by poll_mutex_
};

/// Tiny HTTP/1.1 GET client for scraping a telemetry endpoint (tests,
/// macrobench's self-scrape, and CI's live-scrape gate).
struct HttpResponse {
  int status = 0;
  std::string body;
};
StatusOr<HttpResponse> HttpGet(const std::string& endpoint,
                               const std::string& path,
                               int timeout_ms = 5000);

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_TELEMETRY_SERVER_H_
