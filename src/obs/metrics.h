// Copyright 2026 mpqopt authors.
//
// MetricsRegistry — lock-light named counters, gauges, and fixed-boundary
// latency histograms.
//
// Recording is the hot path and takes no lock: counters and histogram
// buckets are sharded cache-line-aligned atomics (a recording thread
// picks its shard once, via a thread-local hash), so concurrent recorders
// on different cores do not bounce one line. The registry mutex guards
// only name -> instrument registration and the statz dump; callers fetch
// the instrument pointer once (instruments live as long as the registry)
// and record through it forever after.
//
// Histograms have FIXED bucket boundaries chosen at registration — no
// resizing, no per-record allocation — and report percentiles by linear
// interpolation inside the covering bucket (HistogramSnapshot::
// ValueAtQuantile). Snapshots are plain values and subtract
// (snapshot.Since(earlier)), so a benchmark can report the percentiles of
// exactly one run against the process-global registry.
//
// The process-global registry (MetricsRegistry::Global()) is the single
// source for the service/admission/round instruments; `statz` text dumps
// and the BENCH_macro.json tail-latency records both read from it.

#ifndef MPQOPT_OBS_METRICS_H_
#define MPQOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace mpqopt {
namespace obs {

/// Shards per instrument. Plenty for the dispatcher/lane thread counts in
/// this repo; a power of two so the shard pick is a mask.
constexpr size_t kMetricShards = 8;

/// This thread's shard index (stable for the thread's lifetime).
size_t ThisThreadShard();

/// Monotonically increasing counter, sharded to keep concurrent
/// increments off one cache line.
class Counter {
 public:
  Counter() = default;
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-writer-wins instantaneous value (queue depth, pool size, ...).
class Gauge {
 public:
  Gauge() = default;
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Plain-value copy of a histogram's state; Since() subtracts an earlier
/// snapshot to isolate one measurement window.
struct HistogramSnapshot {
  /// Bucket upper bounds (shared with the histogram; bucket i covers
  /// (bounds[i-1], bounds[i]], bucket 0 covers (-inf, bounds[0]], and a
  /// final overflow bucket covers (bounds.back(), +inf)).
  std::vector<double> bounds;
  /// Per-bucket counts; size bounds.size() + 1 (the overflow bucket).
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0;

  /// Value at quantile `q` in [0, 1]: linear interpolation inside the
  /// covering bucket (the overflow bucket reports its lower bound — a
  /// fixed-boundary histogram cannot see past its last boundary).
  double ValueAtQuantile(double q) const;
  double Percentile(double p) const { return ValueAtQuantile(p / 100.0); }
  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0;
  }
  /// This snapshot minus `earlier` (same histogram, taken before).
  HistogramSnapshot Since(const HistogramSnapshot& earlier) const;
};

/// Fixed-boundary histogram; Record is a bucket search plus two relaxed
/// atomics on this thread's shard — no locks, no allocation.
class Histogram {
 public:
  /// `bounds` are the bucket upper bounds, strictly increasing.
  explicit Histogram(std::vector<double> bounds);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// 36 exponential boundaries from 0.01 ms to ~340 s (x1.9 steps) —
  /// wide enough for every latency this repo measures, tight enough
  /// (<2x bucket ratio) that interpolated percentiles stay meaningful.
  static std::vector<double> LatencyBoundariesMs();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  ///< f64 sum, CAS-accumulated
  };

  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// One coherent read of every instrument in a registry — the scrape
/// surface. Plain values only, so a sample can be serialized and shipped
/// across the kStatsPollTask wire (obs/metrics_export.h) and rendered as
/// Prometheus text by the telemetry server. Each vector is sorted by
/// instrument name (registry map order).
struct RegistrySample {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name -> instrument registry. Get* registers on first use and returns
/// the same instrument forever after (histogram boundaries are fixed by
/// the first registration). Instruments are never removed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);
  /// The histogram named `name`, or null if none was registered.
  Histogram* FindHistogram(const std::string& name) const;

  /// Plain-text dump, one instrument per line, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=N mean=M p50=... p95=... p99=... (ms scale
  ///   is the instrument's own unit; the registry does not convert).
  std::string StatzDump() const;

  /// Snapshots every registered instrument into plain values (see
  /// RegistrySample). The registry lock is held only for the map walk;
  /// instrument reads are the usual relaxed-atomic sums.
  RegistrySample Sample() const;

  /// The process-global registry every built-in instrument lives in.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Canonical instrument names recorded by the serving stack (registered
/// in the global registry on first use; all histograms use
/// Histogram::LatencyBoundariesMs):
///   service.latency_ms        per-query service latency (OptimizerService)
///   admission.queue_wait_ms   Admit() slot wait (AdmissionController)
///   backend.round_ms          measured wall time per round (AccountRound)
inline constexpr const char* kServiceLatencyHistogram = "service.latency_ms";
inline constexpr const char* kQueueWaitHistogram = "admission.queue_wait_ms";
inline constexpr const char* kRoundTimeHistogram = "backend.round_ms";
/// Counter names (plain counters, registered on first use):
///   obs.stalls_total          RPC rounds flagged by the stall watchdog
///   worker.requests_total     frames served by a worker's RPC serve loop
///   worker.task_errors_total  stateless tasks that returned an error
/// plus worker.serve_ms, the worker-side per-task serve histogram.
inline constexpr const char* kStallsCounter = "obs.stalls_total";
inline constexpr const char* kWorkerRequestsCounter = "worker.requests_total";
inline constexpr const char* kWorkerTaskErrorsCounter =
    "worker.task_errors_total";
inline constexpr const char* kWorkerServeHistogram = "worker.serve_ms";

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_METRICS_H_
