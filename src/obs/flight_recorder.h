// Copyright 2026 mpqopt authors.
//
// Flight recorder — an always-on, fixed-size ring of recent structured
// events (admissions and rejections, round start/finish, worker state
// transitions, slow queries, session recoveries, stalls), appended from
// the existing instrumentation call sites. Appends are allocation-free:
// the detail line is snprintf-formatted into a stack buffer, then copied
// into a preallocated slot under a mutex held for the memcpy only — on
// the per-round / per-transition cadence these events fire at, that is
// indistinguishable from free, and it keeps the ring TSan-clean. The
// ring overwrites oldest-first; the global sequence number makes loss
// visible (a dump whose first seq is nonzero dropped earlier events).
//
// Dumps are reachable three ways: the telemetry server's
// /debug/flightrecorder endpoint, SIGUSR1 (InstallSignalDump arms an
// async-signal-safe flag the housekeeping thread polls), and fatal
// errors (InstallFatalDump hooks MPQOPT_CHECK's last-words slot).
//
// The stall watchdog rides the same housekeeping thread: RpcBackend
// wraps every scatter round in a StallWatchdog::Guard, and any round
// still in flight past the configured threshold is flagged once into
// the recorder and the obs.stalls_total counter — the cheap tripwire
// for wedged-worker forensics.

#ifndef MPQOPT_OBS_FLIGHT_RECORDER_H_
#define MPQOPT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mpqopt {
namespace obs {

/// What happened. Values appear in dumps by name, never by number, so
/// appending new kinds is free.
enum class FlightEventKind : uint8_t {
  kAdmit = 0,         ///< admission control admitted a query
  kReject = 1,        ///< admission control rejected / shed a query
  kRoundStart = 2,    ///< an RPC scatter round began
  kRoundFinish = 3,   ///< a backend round completed (any backend)
  kWorkerState = 4,   ///< supervisor worker health transition
  kSlowQuery = 5,     ///< a query crossed the slow-query threshold
  kSessionRecovery = 6,  ///< a session replica was rebuilt on a new worker
  kStall = 7,         ///< watchdog: a round exceeded the stall threshold
  kFatal = 8,         ///< fatal-error dump marker
};

const char* FlightEventKindName(FlightEventKind kind);

/// One recorded event. `detail` is the formatted (possibly truncated)
/// human-readable payload; `t_ns` is MonotonicNanos at append, the same
/// clock the worker-log prefix and span traces use.
struct FlightEvent {
  uint64_t seq = 0;
  uint64_t t_ns = 0;
  FlightEventKind kind = FlightEventKind::kFatal;
  char detail[104] = {0};
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(FlightRecorder);

  /// Appends one event; the formatted detail is truncated to the slot
  /// size. Safe from any thread.
  void Record(FlightEventKind kind, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// The retained events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  /// Text dump: a header (total recorded / retained), then one line per
  /// event: `[<monotonic ms>] <seq> <kind> <detail>`.
  std::string DumpText() const;

  /// Events ever recorded (>= retained count once the ring wrapped).
  uint64_t total_recorded() const;

  size_t capacity() const { return ring_.size(); }

  /// The process-global recorder every built-in call site appends to.
  static FlightRecorder& Global();

 private:
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;  ///< slot = seq % capacity
  uint64_t next_seq_ = 0;          ///< guarded by mutex_
};

/// Arms SIGUSR1: the handler only sets an atomic flag (async-signal
/// safe); the housekeeping thread notices within one tick and writes
/// FlightRecorder::Global().DumpText() to stderr.
void InstallFlightRecorderSignalDump();

/// Installs the MPQOPT_CHECK last-words hook: a failed CHECK dumps the
/// global recorder to stderr before aborting.
void InstallFlightRecorderFatalDump();

/// Watches registered in-flight operations (RPC rounds) and flags any
/// that outlive the configured threshold — once per operation — into the
/// global flight recorder and the obs.stalls_total counter. Disabled
/// (threshold <= 0) guards are no-ops, so the default cost is zero.
class StallWatchdog {
 public:
  StallWatchdog() = default;
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(StallWatchdog);

  /// Sets the stall threshold; the first positive threshold starts the
  /// housekeeping thread and registers obs.stalls_total (so scrapes show
  /// the instrument at zero before any stall). Thread-safe.
  void Configure(int threshold_ms);

  int threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }

  /// Operations flagged so far.
  uint64_t flagged_total() const {
    return flagged_total_.load(std::memory_order_relaxed);
  }

  /// RAII registration of one in-flight operation on the GLOBAL
  /// watchdog. `what` must be a string literal (stored by pointer).
  class Guard {
   public:
    explicit Guard(const char* what);
    ~Guard();
    MPQOPT_DISALLOW_COPY_AND_ASSIGN(Guard);

   private:
    uint64_t id_;  ///< 0 = watchdog disabled at construction, no-op
  };

  static StallWatchdog& Global();

 private:
  friend class Guard;
  friend void InstallFlightRecorderSignalDump();

  struct InFlight {
    const char* what = nullptr;
    uint64_t start_ns = 0;
    bool flagged = false;
  };

  uint64_t Register(const char* what);
  void Unregister(uint64_t id);
  /// Starts the housekeeping thread once (idempotent).
  void EnsureThread();
  void ThreadMain();
  void ScanForStalls();

  std::atomic<int> threshold_ms_{0};
  std::atomic<uint64_t> flagged_total_{0};
  mutable std::mutex mutex_;
  std::map<uint64_t, InFlight> inflight_;  ///< guarded by mutex_
  uint64_t next_id_ = 0;                   ///< guarded by mutex_
  std::mutex thread_mutex_;
  bool thread_started_ = false;  ///< guarded by thread_mutex_
};

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_FLIGHT_RECORDER_H_
