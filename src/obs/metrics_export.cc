// Copyright 2026 mpqopt authors.

#include "obs/metrics_export.h"

#include <cstdio>
#include <map>
#include <utility>

namespace mpqopt {
namespace obs {
namespace {

/// Formats a double the way the exposition examples do: shortest-ish
/// decimal, exponent form only for extreme magnitudes.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// `{worker="<w>"}`-style label block, or "" when unlabeled; `extra` is
/// an optional pre-rendered additional label ('le' for bucket rows).
std::string LabelBlock(const std::string& worker, const std::string& extra) {
  if (worker.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!worker.empty()) {
    out += "worker=\"" + EscapeLabelValue(worker) + "\"";
    if (!extra.empty()) out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

void AppendHeader(const std::string& prom_name, const std::string& raw_name,
                  const char* type, std::string* out) {
  *out += "# HELP " + prom_name + " mpqopt instrument " + raw_name + "\n";
  *out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheus(const std::vector<LabeledSample>& samples) {
  // Regroup per metric family first so each family renders under exactly
  // one header, no matter how many labeled samples carry it. The map key
  // is the RAW instrument name (two raw names could sanitize to the same
  // exposition name; last header wins, series still parse).
  std::map<std::string, std::vector<std::pair<const std::string*, uint64_t>>>
      counters;
  std::map<std::string, std::vector<std::pair<const std::string*, int64_t>>>
      gauges;
  std::map<std::string,
           std::vector<std::pair<const std::string*, const HistogramSnapshot*>>>
      histograms;
  for (const LabeledSample& labeled : samples) {
    for (const auto& [name, value] : labeled.sample.counters) {
      counters[name].emplace_back(&labeled.worker, value);
    }
    for (const auto& [name, value] : labeled.sample.gauges) {
      gauges[name].emplace_back(&labeled.worker, value);
    }
    for (const auto& [name, snapshot] : labeled.sample.histograms) {
      histograms[name].emplace_back(&labeled.worker, &snapshot);
    }
  }

  std::string out;
  char line[192];
  for (const auto& [name, series] : counters) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "counter", &out);
    for (const auto& [worker, value] : series) {
      std::snprintf(line, sizeof(line), " %llu\n",
                    static_cast<unsigned long long>(value));
      out += prom + LabelBlock(*worker, "") + line;
    }
  }
  for (const auto& [name, series] : gauges) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "gauge", &out);
    for (const auto& [worker, value] : series) {
      std::snprintf(line, sizeof(line), " %lld\n",
                    static_cast<long long>(value));
      out += prom + LabelBlock(*worker, "") + line;
    }
  }
  for (const auto& [name, series] : histograms) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "histogram", &out);
    for (const auto& [worker, snapshot] : series) {
      // Cumulative bucket rows; le="+Inf" is the running total itself,
      // so bucket monotonicity holds by construction even if the
      // lock-free shards were mid-record during the snapshot.
      uint64_t cumulative = 0;
      for (size_t b = 0; b < snapshot->counts.size(); ++b) {
        cumulative += snapshot->counts[b];
        const std::string le =
            b < snapshot->bounds.size() ? FormatDouble(snapshot->bounds[b])
                                        : "+Inf";
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(cumulative));
        out += prom + "_bucket" +
               LabelBlock(*worker, "le=\"" + le + "\"") + line;
      }
      out += prom + "_sum" + LabelBlock(*worker, "") + " " +
             FormatDouble(snapshot->sum) + "\n";
      std::snprintf(line, sizeof(line), " %llu\n",
                    static_cast<unsigned long long>(cumulative));
      out += prom + "_count" + LabelBlock(*worker, "") + line;
    }
  }
  return out;
}

void SerializeRegistrySample(const RegistrySample& sample,
                             ByteWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(sample.counters.size()));
  for (const auto& [name, value] : sample.counters) {
    writer->WriteString(name);
    writer->WriteU64(value);
  }
  writer->WriteU32(static_cast<uint32_t>(sample.gauges.size()));
  for (const auto& [name, value] : sample.gauges) {
    writer->WriteString(name);
    writer->WriteI64(value);
  }
  writer->WriteU32(static_cast<uint32_t>(sample.histograms.size()));
  for (const auto& [name, snapshot] : sample.histograms) {
    writer->WriteString(name);
    writer->WriteU32(static_cast<uint32_t>(snapshot.bounds.size()));
    for (const double bound : snapshot.bounds) writer->WriteDouble(bound);
    writer->WriteU32(static_cast<uint32_t>(snapshot.counts.size()));
    for (const uint64_t c : snapshot.counts) writer->WriteU64(c);
    writer->WriteU64(snapshot.count);
    writer->WriteDouble(snapshot.sum);
  }
}

Status ParseRegistrySample(const std::vector<uint8_t>& bytes,
                           RegistrySample* out) {
  *out = RegistrySample();
  ByteReader reader(bytes);
  uint32_t n = 0;
  Status s = reader.ReadU32(&n);
  if (!s.ok()) return s;
  out->counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value = 0;
    s = reader.ReadString(&name);
    if (s.ok()) s = reader.ReadU64(&value);
    if (!s.ok()) return s;
    out->counters.emplace_back(std::move(name), value);
  }
  s = reader.ReadU32(&n);
  if (!s.ok()) return s;
  out->gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    int64_t value = 0;
    s = reader.ReadString(&name);
    if (s.ok()) s = reader.ReadI64(&value);
    if (!s.ok()) return s;
    out->gauges.emplace_back(std::move(name), value);
  }
  s = reader.ReadU32(&n);
  if (!s.ok()) return s;
  out->histograms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    s = reader.ReadString(&name);
    if (!s.ok()) return s;
    HistogramSnapshot snapshot;
    uint32_t bounds_n = 0;
    s = reader.ReadU32(&bounds_n);
    if (!s.ok()) return s;
    if (bounds_n * sizeof(double) > reader.remaining()) {
      return Status::Corruption("histogram bounds exceed the sample frame");
    }
    snapshot.bounds.resize(bounds_n);
    for (double& bound : snapshot.bounds) {
      s = reader.ReadDouble(&bound);
      if (!s.ok()) return s;
    }
    uint32_t counts_n = 0;
    s = reader.ReadU32(&counts_n);
    if (!s.ok()) return s;
    if (counts_n != bounds_n + 1) {
      return Status::Corruption("histogram bucket count mismatches bounds");
    }
    snapshot.counts.resize(counts_n);
    for (uint64_t& c : snapshot.counts) {
      s = reader.ReadU64(&c);
      if (!s.ok()) return s;
    }
    s = reader.ReadU64(&snapshot.count);
    if (s.ok()) s = reader.ReadDouble(&snapshot.sum);
    if (!s.ok()) return s;
    out->histograms.emplace_back(std::move(name), std::move(snapshot));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("registry sample has trailing bytes");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace mpqopt
