// Copyright 2026 mpqopt authors.
//
// The one shared percentile: sort-and-interpolate over a sample vector.
// Every consumer of tail latency in the repo — the CLI batch report,
// fig6/fig10, macrobench, and the bench JSON records — goes through this
// function, so "p99" means exactly the same rank statistic everywhere:
// linear interpolation at rank q/100 * (n-1) over the sorted samples
// (the same estimator NumPy calls "linear", its default).
//
// For streams too large (or too hot) to buffer, obs::Histogram offers
// the fixed-boundary counterpart; HistogramSnapshot::ValueAtQuantile
// interpolates inside the covering bucket instead of between samples.

#ifndef MPQOPT_OBS_PERCENTILE_H_
#define MPQOPT_OBS_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace mpqopt {
namespace obs {

/// Percentile `q` (0..100) of `values` by sorted linear interpolation;
/// 0 for an empty sample. Takes the vector by value: callers keep their
/// samples in arrival order, the copy is sorted here.
inline double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (q <= 0) return values.front();
  if (q >= 100) return values.back();
  const double rank =
      q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_PERCENTILE_H_
