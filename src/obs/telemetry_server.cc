// Copyright 2026 mpqopt authors.

#include "obs/telemetry_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/trace.h"

namespace mpqopt {
namespace obs {
namespace {

/// Accept-loop slice: the thread re-checks the stop flag at least this
/// often (mirrors ServeRpcWorker's cadence).
constexpr int kAcceptSliceMs = 200;

/// A scrape request head must fit here — GET lines are tiny; anything
/// larger is a client this server does not serve.
constexpr size_t kMaxRequestBytes = 8192;

/// Whole-request deadline for reading one HTTP head.
constexpr int kRequestTimeoutMs = 5000;

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Writes all of `data` to `fd`, looping over partial sends. Best-effort:
/// a scrape client that hangs up mid-response is its own problem.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void SendHttpResponse(int fd, int status, const std::string& content_type,
                      const std::string& body) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, HttpStatusText(status), content_type.c_str(),
                body.size());
  SendAll(fd, head + body);
}

/// Reads one request head (through the blank line) with a whole-request
/// deadline. Returns false on timeout, oversize, or disconnect.
bool RecvRequestHead(int fd, std::string* head) {
  head->clear();
  const uint64_t deadline_ns =
      MonotonicNanos() + uint64_t{kRequestTimeoutMs} * 1000000ull;
  char buf[1024];
  while (head->find("\r\n\r\n") == std::string::npos) {
    const uint64_t now = MonotonicNanos();
    if (now >= deadline_ns || head->size() > kMaxRequestBytes) return false;
    const int remaining_ms =
        static_cast<int>((deadline_ns - now) / 1000000ull) + 1;
    StatusOr<bool> readable = WaitReadable(fd, remaining_ms);
    if (!readable.ok() || !readable.value()) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
  }
  return true;
}

/// "GET /metrics HTTP/1.1" -> method + path (query string stripped).
bool ParseRequestLine(const std::string& head, std::string* method,
                      std::string* path) {
  const size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path->find('?');
  if (query != std::string::npos) path->resize(query);
  return true;
}

void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
  if (options_.recorder == nullptr) {
    options_.recorder = &FlightRecorder::Global();
  }
}

StatusOr<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    TelemetryOptions options) {
  std::unique_ptr<TelemetryServer> server(
      new TelemetryServer(std::move(options)));
  StatusOr<TcpListener> listener =
      TcpListener::Bind(server->options_.host, server->options_.port);
  if (!listener.ok()) return listener.status();
  server->listener_ = std::move(listener).value();
  server->port_ = server->listener_.port();
  server->thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
}

void TelemetryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<bool> ready = WaitReadable(listener_.fd(), kAcceptSliceMs);
    if (!ready.ok()) return;  // listener fd is gone; nothing to serve
    if (!ready.value()) continue;
    StatusOr<Socket> conn = listener_.Accept(kAcceptSliceMs);
    if (!conn.ok()) continue;
    ServeConnection(std::move(conn).value());
  }
}

void TelemetryServer::ServeConnection(Socket conn) {
  std::string head;
  if (!RecvRequestHead(conn.fd(), &head)) return;
  std::string method, path;
  if (!ParseRequestLine(head, &method, &path)) return;
  if (method != "GET") {
    SendHttpResponse(conn.fd(), 405, "text/plain", "GET only\n");
    return;
  }
  if (path == "/metrics") {
    SendHttpResponse(conn.fd(), 200,
                     "text/plain; version=0.0.4; charset=utf-8",
                     RenderMetrics());
  } else if (path == "/healthz") {
    SendHttpResponse(conn.fd(), 200, "application/json",
                     RenderHealthJson(nullptr));
  } else if (path == "/readyz") {
    int status = 200;
    const std::string body = RenderHealthJson(&status);
    SendHttpResponse(conn.fd(), status, "application/json", body);
  } else if (path == "/statz") {
    SendHttpResponse(conn.fd(), 200, "text/plain",
                     options_.registry->StatzDump());
  } else if (path == "/debug/flightrecorder") {
    SendHttpResponse(conn.fd(), 200, "text/plain",
                     options_.recorder->DumpText());
  } else {
    SendHttpResponse(conn.fd(), 404, "text/plain", "not found\n");
  }
}

std::vector<WorkerStatsSample> TelemetryServer::PolledWorkerStats() {
  if (options_.backend == nullptr) return {};
  const uint64_t ttl_ns =
      static_cast<uint64_t>(options_.worker_poll_ttl_ms) * 1000000ull;
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    if (poll_valid_ && MonotonicNanos() - last_poll_ns_ < ttl_ns) {
      return poll_cache_;
    }
  }
  // Poll outside the lock: a slow worker must not serialize /healthz
  // behind /metrics. Concurrent scrapes may both poll; the TTL exists to
  // protect the workers from scrape *storms*, not from one overlap.
  std::vector<WorkerStatsSample> fresh = options_.backend->PollWorkerStats();
  std::lock_guard<std::mutex> lock(poll_mutex_);
  poll_cache_ = std::move(fresh);
  poll_valid_ = true;
  last_poll_ns_ = MonotonicNanos();
  return poll_cache_;
}

std::string TelemetryServer::RenderMetrics() {
  std::vector<LabeledSample> samples;
  samples.push_back(LabeledSample{"", options_.registry->Sample()});
  for (WorkerStatsSample& worker : PolledWorkerStats()) {
    samples.push_back(
        LabeledSample{worker.endpoint, std::move(worker.sample)});
  }
  return RenderPrometheus(samples);
}

std::string TelemetryServer::RenderHealthJson(int* http_status) {
  const Status init =
      options_.init_status ? options_.init_status() : Status::OK();
  BackendHealth health;
  if (options_.backend != nullptr) health = options_.backend->health();
  const size_t healthy = health.CountWorkers(WorkerHealth::kHealthy);

  // READY: init ok and every remote worker serving (trivially true for
  // in-process backends and standalone workers). DEGRADED: serving, but
  // at least one worker is not HEALTHY. UNREADY: init failed, or remote
  // workers exist and none is HEALTHY — /readyz turns 503 only here.
  const char* state = "READY";
  if (!init.ok() || (!health.workers.empty() && healthy == 0)) {
    state = "UNREADY";
  } else if (healthy < health.workers.size()) {
    state = "DEGRADED";
  }
  if (http_status != nullptr) {
    *http_status = std::strcmp(state, "UNREADY") == 0 ? 503 : 200;
  }

  std::string out = "{\"state\":";
  AppendJsonString(state, &out);
  out += ",\"init\":";
  AppendJsonString(init.ok() ? "ok" : init.ToString(), &out);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"workers_healthy\":%zu,\"workers_total\":%zu,"
                "\"workers\":[",
                healthy, health.workers.size());
  out += buf;
  for (size_t i = 0; i < health.workers.size(); ++i) {
    const WorkerHealthSnapshot& w = health.workers[i];
    if (i > 0) out += ",";
    out += "{\"endpoint\":";
    AppendJsonString(w.endpoint, &out);
    out += ",\"health\":";
    AppendJsonString(WorkerHealthName(w.health), &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"reconnects\":%llu,\"redial_failures\":%llu,"
                  "\"io_failures\":%llu,\"last_error\":",
                  static_cast<unsigned long long>(w.reconnects),
                  static_cast<unsigned long long>(w.redial_failures),
                  static_cast<unsigned long long>(w.io_failures));
    out += buf;
    AppendJsonString(w.last_error, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

StatusOr<HttpResponse> HttpGet(const std::string& endpoint,
                               const std::string& path, int timeout_ms) {
  StatusOr<Socket> conn = DialTcp(endpoint, timeout_ms);
  if (!conn.ok()) return conn.status();
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\n"
                              "Host: " +
                              endpoint +
                              "\r\n"
                              "Connection: close\r\n"
                              "\r\n";
  SendAll(conn.value().fd(), request);

  // The server closes after the response (Connection: close), so read to
  // EOF under one whole-response deadline.
  std::string raw;
  const uint64_t deadline_ns =
      MonotonicNanos() + static_cast<uint64_t>(timeout_ms) * 1000000ull;
  char buf[4096];
  for (;;) {
    const uint64_t now = MonotonicNanos();
    if (now >= deadline_ns) {
      return Status::Internal("http get " + path + " timed out");
    }
    const int remaining_ms =
        static_cast<int>((deadline_ns - now) / 1000000ull) + 1;
    StatusOr<bool> readable =
        WaitReadable(conn.value().fd(), remaining_ms);
    if (!readable.ok()) return readable.status();
    if (!readable.value()) {
      return Status::Internal("http get " + path + " timed out");
    }
    const ssize_t n = ::recv(conn.value().fd(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("http get recv failed: " +
                              std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }

  HttpResponse response;
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("not an http response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) {
    return Status::Corruption("malformed http status line");
  }
  response.status = std::atoi(raw.c_str() + sp + 1);
  const size_t body_at = raw.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status::Corruption("http response has no header terminator");
  }
  response.body = raw.substr(body_at + 4);
  return response;
}

}  // namespace obs
}  // namespace mpqopt
