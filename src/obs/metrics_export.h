// Copyright 2026 mpqopt authors.
//
// Registry-sample export: the wire format the kStatsPollTask envelope
// ships a worker's MetricsRegistry home in, and the Prometheus text
// exposition (format 0.0.4) the telemetry server renders scrapes from.
//
// Rendering merges any number of labeled samples (the master's own plus
// one per polled worker) into ONE exposition: each metric family gets a
// single # HELP/# TYPE header followed by every sample's series, so a
// fleet scrape is still a valid exposition — Prometheus rejects repeated
// TYPE lines for one family. Instrument names use dots ("service.
// latency_ms"); exposition names sanitize them to underscores
// ("service_latency_ms"). Histograms render as the conventional
// cumulative series: `name_bucket{le="..."}` rows ending in the
// mandatory `le="+Inf"`, plus `name_sum` and `name_count`.

#ifndef MPQOPT_OBS_METRICS_EXPORT_H_
#define MPQOPT_OBS_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace mpqopt {
namespace obs {

/// One worker's registry sample tagged with the endpoint it came from;
/// the telemetry server re-exports it with worker="<endpoint>" on every
/// series.
struct WorkerStatsSample {
  std::string endpoint;
  RegistrySample sample;
};

/// One sample with the worker-label value its series carry; an empty
/// `worker` means unlabeled (the master's own series).
struct LabeledSample {
  std::string worker;
  RegistrySample sample;
};

/// Exposition metric name for a registry instrument name: every
/// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets
/// a '_' prefix ("service.latency_ms" -> "service_latency_ms").
std::string PrometheusName(const std::string& name);

/// Escapes a label value for exposition quoting: backslash, double
/// quote, and newline (the three characters the format escapes).
std::string EscapeLabelValue(const std::string& value);

/// Renders the merged exposition for `samples` (see file comment). The
/// result always ends with a newline when any series was emitted.
std::string RenderPrometheus(const std::vector<LabeledSample>& samples);

/// kStatsPollTask response payload — a whole registry sample:
///   u32 counter count,   per counter:   string name, u64 value
///   u32 gauge count,     per gauge:     string name, i64 value
///   u32 histogram count, per histogram: string name,
///     u32 bounds count, f64 each, u32 bucket count, u64 each,
///     u64 total count, f64 sum
/// Deterministic for a fixed sample (names are registry-sorted), like
/// every other ByteWriter format in the repo.
void SerializeRegistrySample(const RegistrySample& sample, ByteWriter* writer);

/// Parses SerializeRegistrySample's output; Corruption on any malformed
/// frame (a broken worker must not crash the scraping master).
Status ParseRegistrySample(const std::vector<uint8_t>& bytes,
                           RegistrySample* out);

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_METRICS_EXPORT_H_
