// Copyright 2026 mpqopt authors.
//
// Query-lifecycle tracing: per-query span trees recorded through RAII
// handles, exported as Chrome trace-event JSON and slow-query dumps.
//
// Model. Each traced query owns one QueryTrace — a flat vector of spans,
// each with a name, a parent index, and start/end timestamps on the
// process-wide monotonic clock. The ACTIVE trace and the innermost open
// span travel in a thread-local TraceContext: `Span s("cache.lookup")`
// reads the context, opens a child of the current span, and restores the
// context on scope exit. Worker threads that pick up a traced query's
// work (backend lanes, pool threads) adopt the submitting thread's
// context for the scope of that work via TraceContextScope.
//
// Disabled cost. When no trace is installed (the default everywhere),
// constructing a Span is one thread-local load and one branch — no
// allocation, no atomics, no clock read. Instrumented hot paths stay
// byte- and plan-identical with tracing on or off: spans only observe.
//
// Wire propagation. RpcBackend wraps each task request in a
// kTracedTask envelope carrying the u64 trace id (cluster/
// task_registry.h); the worker returns its serve-loop timings in a reply
// prefix which the master re-bases and grafts under the exchange span —
// so one trace id joins master-side and worker-side spans. With tracing
// off, nothing is wrapped and the wire bytes are exactly the untraced
// protocol.
//
// Collection. TraceCollector hands out trace ids, gathers finished
// traces, prints the span breakdown of queries slower than
// `slow_query_ms` to stderr as they finish, and writes everything as one
// chrome://tracing-loadable JSON array (--trace-out=).

#ifndef MPQOPT_OBS_TRACE_H_
#define MPQOPT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace mpqopt {
namespace obs {

/// "no span": the root spans of a trace have this parent.
constexpr uint32_t kNoSpan = ~uint32_t{0};

/// Nanoseconds on the process-wide monotonic clock (steady_clock,
/// re-based to the first call so values stay small).
uint64_t MonotonicNanos();

/// One recorded span. `end_ns` == 0 means still open.
struct SpanRecord {
  std::string name;
  uint32_t parent = kNoSpan;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// The span tree of one traced query. Thread-safe: backend lanes and
/// pool threads record concurrently with the master thread.
class QueryTrace {
 public:
  QueryTrace(uint64_t trace_id, std::string label);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(QueryTrace);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& label() const { return label_; }

  /// Opens a span (start = now) and returns its index.
  uint32_t BeginSpan(const char* name, uint32_t parent);
  void EndSpan(uint32_t span);
  /// Records an already-measured span (imported worker timings, pool
  /// thread compute). Returns its index.
  uint32_t AddCompleteSpan(const std::string& name, uint32_t parent,
                           uint64_t start_ns, uint64_t end_ns);

  /// Point-in-time copy of every span recorded so far.
  std::vector<SpanRecord> Snapshot() const;
  /// Wall time of span 0 (the root), in milliseconds; 0 if unfinished.
  double RootMillis() const;

 private:
  const uint64_t trace_id_;
  const std::string label_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// What a thread is currently tracing: the active trace (null = tracing
/// off) and the innermost open span (the parent of the next Span).
struct TraceContext {
  QueryTrace* trace = nullptr;
  uint32_t span = kNoSpan;
};

/// This thread's context (value copy; cheap).
TraceContext CurrentTraceContext();

/// Installs `ctx` as this thread's context for the scope's lifetime and
/// restores the previous context on exit. Used at the two context
/// boundaries: OptimizerService installing a fresh trace on the serving
/// thread, and worker/lane threads adopting the submitter's context.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  /// Convenience: adopt `trace` with `parent` as the current span. A
  /// null trace installs the empty context (tracing off in this scope).
  TraceContextScope(QueryTrace* trace, uint32_t parent);
  ~TraceContextScope();
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(TraceContextScope);

 private:
  TraceContext saved_;
};

/// RAII span handle. Inert (no-op) when the thread has no active trace.
/// `name` must outlive the span (string literals only — by design, so
/// the disabled path never allocates).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Span);

  /// The recorded span index, or kNoSpan when inert.
  uint32_t id() const { return span_; }
  QueryTrace* trace() const { return trace_; }

 private:
  QueryTrace* trace_ = nullptr;
  uint32_t span_ = kNoSpan;
  uint32_t saved_parent_ = kNoSpan;
};

/// TraceCollector configuration (CLI: --trace-out, --slow-query-ms).
struct TraceCollectorOptions {
  /// Chrome trace-event JSON output path; empty = no file (traces are
  /// still collected and slow queries still logged).
  std::string chrome_out_path;
  /// Print the full span breakdown of any query whose root span is at
  /// least this many milliseconds to stderr; <= 0 disables.
  double slow_query_ms = 0;
};

/// Collects finished traces; thread-safe.
class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorOptions options);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(TraceCollector);

  /// Allocates a trace id and starts an (unfinished) trace.
  std::unique_ptr<QueryTrace> StartTrace(std::string label);
  /// Takes ownership of a finished trace; prints the slow-query
  /// breakdown when it crossed the threshold.
  void Collect(std::unique_ptr<QueryTrace> trace);

  size_t collected() const;

  /// Writes every collected trace as one Chrome trace-event JSON array
  /// to options.chrome_out_path (no-op OK status when the path is
  /// empty).
  Status WriteChromeTrace() const;
  Status WriteChromeTraceTo(const std::string& path) const;

  const TraceCollectorOptions& options() const { return options_; }

 private:
  TraceCollectorOptions options_;
  std::atomic<uint64_t> next_trace_id_{1};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<QueryTrace>> traces_;
};

/// Human-readable span breakdown of one trace — indented tree with
/// per-span wall milliseconds. The slow-query log prints this.
std::string FormatSpanBreakdown(const QueryTrace& trace);

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_TRACE_H_
