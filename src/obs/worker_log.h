// Copyright 2026 mpqopt authors.
//
// Structured stderr logging for worker processes. Every line is prefixed
// with a monotonic millisecond timestamp (process-relative, matching the
// trace clock) and the process id, so interleaved logs from a farm of
// workers — or the $MPQOPT_WORKER_LOG_DIR per-worker files — can be
// ordered and attributed:
//
//   [   1234.567 w:41872] accepted connection
//
// stderr is written with one fprintf per line (the prefix and message are
// formatted into one buffer first), so lines from concurrent threads do
// not interleave mid-line on POSIX stdio.

#ifndef MPQOPT_OBS_WORKER_LOG_H_
#define MPQOPT_OBS_WORKER_LOG_H_

#include <unistd.h>

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

namespace mpqopt {
namespace obs {

/// Log verbosity: a line is emitted only when its level is at or below
/// the process-wide threshold. The threshold only gates emission — the
/// line format is identical at every level, so log consumers never need
/// to know how verbose the producer was.
enum class WorkerLogLevel : int {
  kError = 0,  ///< serve-loop and startup failures
  kInfo = 1,   ///< connection lifecycle, shutdown, chaos (the default)
  kDebug = 2,  ///< per-task serve lines
};

/// Process-wide threshold slot (relaxed atomic: a racing --log-level=
/// parse at startup at worst gates one line under the old threshold).
inline std::atomic<int>& WorkerLogLevelSlot() {
  static std::atomic<int> level{static_cast<int>(WorkerLogLevel::kInfo)};
  return level;
}

inline void SetWorkerLogLevel(WorkerLogLevel level) {
  WorkerLogLevelSlot().store(static_cast<int>(level),
                             std::memory_order_relaxed);
}

/// Parses an "--log-level=" value; false on anything but the three names.
inline bool ParseWorkerLogLevel(const char* name, WorkerLogLevel* level) {
  if (std::strcmp(name, "error") == 0) {
    *level = WorkerLogLevel::kError;
  } else if (std::strcmp(name, "info") == 0) {
    *level = WorkerLogLevel::kInfo;
  } else if (std::strcmp(name, "debug") == 0) {
    *level = WorkerLogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

/// printf-style structured log line to stderr:
///   [<monotonic ms> w:<pid>] <message>\n
/// The caller's format string must not end in '\n' (added here).
inline void WorkerLogv(WorkerLogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) >
      WorkerLogLevelSlot().load(std::memory_order_relaxed)) {
    return;
  }
  char message[512];
  std::vsnprintf(message, sizeof(message), fmt, args);
  std::fprintf(stderr, "[%11.3f w:%ld] %s\n",
               static_cast<double>(MonotonicNanos()) / 1e6,
               static_cast<long>(::getpid()), message);
}

/// Info-level log line — the historical default, so every existing call
/// site keeps its behavior.
inline void WorkerLogf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  WorkerLogv(WorkerLogLevel::kInfo, fmt, args);
  va_end(args);
}

/// Error-level log line: emitted even under --log-level=error.
inline void WorkerLogErrorf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  WorkerLogv(WorkerLogLevel::kError, fmt, args);
  va_end(args);
}

/// Debug-level log line: emitted only under --log-level=debug.
inline void WorkerLogDebugf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  WorkerLogv(WorkerLogLevel::kDebug, fmt, args);
  va_end(args);
}

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_WORKER_LOG_H_
