// Copyright 2026 mpqopt authors.
//
// Structured stderr logging for worker processes. Every line is prefixed
// with a monotonic millisecond timestamp (process-relative, matching the
// trace clock) and the process id, so interleaved logs from a farm of
// workers — or the $MPQOPT_WORKER_LOG_DIR per-worker files — can be
// ordered and attributed:
//
//   [   1234.567 w:41872] accepted connection
//
// stderr is written with one fprintf per line (the prefix and message are
// formatted into one buffer first), so lines from concurrent threads do
// not interleave mid-line on POSIX stdio.

#ifndef MPQOPT_OBS_WORKER_LOG_H_
#define MPQOPT_OBS_WORKER_LOG_H_

#include <unistd.h>

#include <cstdarg>
#include <cstdio>

#include "obs/trace.h"

namespace mpqopt {
namespace obs {

/// printf-style structured log line to stderr:
///   [<monotonic ms> w:<pid>] <message>\n
/// The caller's format string must not end in '\n' (added here).
inline void WorkerLogf(const char* fmt, ...) {
  char message[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%11.3f w:%ld] %s\n",
               static_cast<double>(MonotonicNanos()) / 1e6,
               static_cast<long>(::getpid()), message);
}

}  // namespace obs
}  // namespace mpqopt

#endif  // MPQOPT_OBS_WORKER_LOG_H_
