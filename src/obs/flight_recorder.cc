// Copyright 2026 mpqopt authors.

#include "obs/flight_recorder.h"

#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpqopt {
namespace obs {
namespace {

/// Set from the SIGUSR1 handler (async-signal safe: one relaxed store),
/// drained by the housekeeping thread.
std::atomic<bool> g_dump_requested{false};

void SignalDumpHandler(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

void DumpGlobalRecorderToStderr(const char* why) {
  const std::string dump = FlightRecorder::Global().DumpText();
  std::fprintf(stderr, "--- flight recorder (%s) ---\n%s", why, dump.c_str());
  std::fflush(stderr);
}

void FatalDumpHook() { DumpGlobalRecorderToStderr("fatal"); }

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmit:
      return "admit";
    case FlightEventKind::kReject:
      return "reject";
    case FlightEventKind::kRoundStart:
      return "round-start";
    case FlightEventKind::kRoundFinish:
      return "round-finish";
    case FlightEventKind::kWorkerState:
      return "worker-state";
    case FlightEventKind::kSlowQuery:
      return "slow-query";
    case FlightEventKind::kSessionRecovery:
      return "session-recovery";
    case FlightEventKind::kStall:
      return "stall";
    case FlightEventKind::kFatal:
      return "fatal";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity) {
  MPQOPT_CHECK(capacity > 0);
  ring_.resize(capacity);
}

void FlightRecorder::Record(FlightEventKind kind, const char* fmt, ...) {
  // Format outside the lock; the critical section is one slot copy.
  FlightEvent event;
  event.t_ns = MonotonicNanos();
  event.kind = kind;
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(event.detail, sizeof(event.detail), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  ring_[event.seq % ring_.size()] = event;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> events;
  const uint64_t retained =
      next_seq_ < ring_.size() ? next_seq_ : ring_.size();
  events.reserve(retained);
  for (uint64_t seq = next_seq_ - retained; seq < next_seq_; ++seq) {
    events.push_back(ring_[seq % ring_.size()]);
  }
  return events;
}

std::string FlightRecorder::DumpText() const {
  const std::vector<FlightEvent> events = Snapshot();
  const uint64_t total = total_recorded();
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "flightrecorder %llu events recorded, %zu retained\n",
                static_cast<unsigned long long>(total), events.size());
  out += line;
  for (const FlightEvent& event : events) {
    std::snprintf(line, sizeof(line), "[%14.3f] %8llu %-16s %s\n",
                  static_cast<double>(event.t_ns) / 1e6,
                  static_cast<unsigned long long>(event.seq),
                  FlightEventKindName(event.kind), event.detail);
    out += line;
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked on purpose (like MetricsRegistry::Global): call sites append
  // from threads that may outlive static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void InstallFlightRecorderSignalDump() {
  struct sigaction action = {};
  action.sa_handler = &SignalDumpHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
  // The handler only raises a flag; the watchdog's housekeeping thread
  // does the actual (allocating, lock-taking) dump.
  StallWatchdog::Global().EnsureThread();
}

void InstallFlightRecorderFatalDump() {
  internal::SetFatalHook(&FatalDumpHook);
}

void StallWatchdog::Configure(int threshold_ms) {
  threshold_ms_.store(threshold_ms, std::memory_order_relaxed);
  if (threshold_ms > 0) {
    // Register the counter now so a scrape shows obs.stalls_total at 0
    // from the moment the watchdog is armed, not after the first stall.
    MetricsRegistry::Global().GetCounter(kStallsCounter);
    EnsureThread();
  }
}

uint64_t StallWatchdog::Register(const char* what) {
  if (threshold_ms() <= 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = ++next_id_;  // ids start at 1; 0 = disabled guard
  InFlight& entry = inflight_[id];
  entry.what = what;
  entry.start_ns = MonotonicNanos();
  return id;
}

void StallWatchdog::Unregister(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_.erase(id);
}

void StallWatchdog::EnsureThread() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_started_) return;
  thread_started_ = true;
  std::thread([this] { ThreadMain(); }).detach();
}

void StallWatchdog::ThreadMain() {
  // Housekeeping tick: drain a pending SIGUSR1 dump request and scan the
  // in-flight table. 20 ms keeps stall detection latency well under any
  // plausible threshold without measurable idle cost. The thread runs
  // for the process lifetime (the watchdog is a leaked global).
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (g_dump_requested.exchange(false, std::memory_order_relaxed)) {
      DumpGlobalRecorderToStderr("SIGUSR1");
    }
    if (threshold_ms() > 0) ScanForStalls();
  }
}

void StallWatchdog::ScanForStalls() {
  const uint64_t threshold_ns =
      static_cast<uint64_t>(threshold_ms()) * 1000000ull;
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, entry] : inflight_) {
    if (entry.flagged || now - entry.start_ns < threshold_ns) continue;
    entry.flagged = true;
    flagged_total_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter(kStallsCounter)->Add();
    FlightRecorder::Global().Record(
        FlightEventKind::kStall, "%s in flight %.1f ms (threshold %d ms)",
        entry.what, static_cast<double>(now - entry.start_ns) / 1e6,
        threshold_ms());
  }
}

StallWatchdog::Guard::Guard(const char* what)
    : id_(StallWatchdog::Global().Register(what)) {}

StallWatchdog::Guard::~Guard() { StallWatchdog::Global().Unregister(id_); }

StallWatchdog& StallWatchdog::Global() {
  static StallWatchdog* watchdog = new StallWatchdog();
  return *watchdog;
}

}  // namespace obs
}  // namespace mpqopt
