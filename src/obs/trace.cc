// Copyright 2026 mpqopt authors.

#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"

namespace mpqopt {
namespace obs {
namespace {

/// The thread's active context. A plain thread_local struct: reading it
/// on the disabled path is one TLS load, no guard variable (trivially
/// constructible).
thread_local TraceContext tls_context;

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

QueryTrace::QueryTrace(uint64_t trace_id, std::string label)
    : trace_id_(trace_id), label_(std::move(label)) {
  spans_.reserve(32);
}

uint32_t QueryTrace::BeginSpan(const char* name, uint32_t parent) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  spans_.push_back(SpanRecord{name, parent, now, 0});
  return id;
}

void QueryTrace::EndSpan(uint32_t span) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  MPQOPT_CHECK_LT(span, spans_.size());
  spans_[span].end_ns = now;
}

uint32_t QueryTrace::AddCompleteSpan(const std::string& name, uint32_t parent,
                                     uint64_t start_ns, uint64_t end_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  spans_.push_back(SpanRecord{name, parent, start_ns, end_ns});
  return id;
}

std::vector<SpanRecord> QueryTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double QueryTrace::RootMillis() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.empty() || spans_[0].end_ns == 0) return 0;
  return static_cast<double>(spans_[0].end_ns - spans_[0].start_ns) / 1e6;
}

TraceContext CurrentTraceContext() { return tls_context; }

TraceContextScope::TraceContextScope(TraceContext ctx) : saved_(tls_context) {
  tls_context = ctx;
}

TraceContextScope::TraceContextScope(QueryTrace* trace, uint32_t parent)
    : TraceContextScope(trace == nullptr ? TraceContext{}
                                         : TraceContext{trace, parent}) {}

TraceContextScope::~TraceContextScope() { tls_context = saved_; }

Span::Span(const char* name) {
  const TraceContext ctx = tls_context;
  if (ctx.trace == nullptr) return;  // tracing off: branch, nothing else
  trace_ = ctx.trace;
  saved_parent_ = ctx.span;
  span_ = trace_->BeginSpan(name, ctx.span);
  tls_context.span = span_;
}

Span::~Span() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(span_);
  tls_context.span = saved_parent_;
}

TraceCollector::TraceCollector(TraceCollectorOptions options)
    : options_(std::move(options)) {}

std::unique_ptr<QueryTrace> TraceCollector::StartTrace(std::string label) {
  return std::make_unique<QueryTrace>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed),
      std::move(label));
}

void TraceCollector::Collect(std::unique_ptr<QueryTrace> trace) {
  if (trace == nullptr) return;
  if (options_.slow_query_ms > 0 &&
      trace->RootMillis() >= options_.slow_query_ms) {
    const std::string breakdown = FormatSpanBreakdown(*trace);
    std::fprintf(stderr,
                 "SLOW QUERY trace=%llu label=%s took %.3f ms "
                 "(threshold %.3f ms)\n%s",
                 static_cast<unsigned long long>(trace->trace_id()),
                 trace->label().c_str(), trace->RootMillis(),
                 options_.slow_query_ms, breakdown.c_str());
    FlightRecorder::Global().Record(
        FlightEventKind::kSlowQuery,
        "trace=%llu label=%s took %.3f ms (threshold %.3f ms)",
        static_cast<unsigned long long>(trace->trace_id()),
        trace->label().c_str(), trace->RootMillis(), options_.slow_query_ms);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.push_back(std::move(trace));
}

size_t TraceCollector::collected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

namespace {

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// One trace's spans as Chrome "X" (complete) events. Each trace gets
/// its own tid (= trace id), so chrome://tracing lays concurrent queries
/// out as parallel rows; nesting within a row comes from the timestamps.
void AppendChromeEvents(const QueryTrace& trace, bool* first,
                        std::string* out) {
  const std::vector<SpanRecord> spans = trace.Snapshot();
  for (const SpanRecord& span : spans) {
    const uint64_t end_ns =
        span.end_ns >= span.start_ns ? span.end_ns : span.start_ns;
    if (!*first) *out += ",\n";
    *first = false;
    *out += "{\"name\":\"";
    AppendJsonEscaped(span.name, out);
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"trace_id\":%llu,\"label\":\"",
        static_cast<unsigned long long>(trace.trace_id()),
        static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(end_ns - span.start_ns) / 1e3,
        static_cast<unsigned long long>(trace.trace_id()));
    *out += buf;
    AppendJsonEscaped(trace.label(), out);
    *out += "\"}}";
  }
}

}  // namespace

Status TraceCollector::WriteChromeTrace() const {
  if (options_.chrome_out_path.empty()) return Status::OK();
  return WriteChromeTraceTo(options_.chrome_out_path);
}

Status TraceCollector::WriteChromeTraceTo(const std::string& path) const {
  std::string json = "[\n";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const std::unique_ptr<QueryTrace>& trace : traces_) {
      AppendChromeEvents(*trace, &first, &json);
    }
  }
  json += "\n]\n";
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), out);
  const int close_rc = std::fclose(out);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

std::string FormatSpanBreakdown(const QueryTrace& trace) {
  const std::vector<SpanRecord> spans = trace.Snapshot();
  // Children in recording order under each parent: one pass, since a
  // span's parent always has a smaller index.
  std::vector<std::vector<uint32_t>> children(spans.size());
  std::vector<uint32_t> roots;
  for (uint32_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == kNoSpan) {
      roots.push_back(i);
    } else if (spans[i].parent < i) {
      children[spans[i].parent].push_back(i);
    }
  }
  std::string out;
  // Depth-first with an explicit stack of (span, depth).
  std::vector<std::pair<uint32_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const auto [i, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans[i];
    const uint64_t end_ns =
        span.end_ns >= span.start_ns ? span.end_ns : span.start_ns;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %*s%-24s %10.3f ms\n", depth * 2, "",
                  span.name.c_str(),
                  static_cast<double>(end_ns - span.start_ns) / 1e6);
    out += buf;
    for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
      stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

}  // namespace obs
}  // namespace mpqopt
