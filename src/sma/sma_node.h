// Copyright 2026 mpqopt authors.
//
// SmaNode — one SMA worker replica: the FULL memotable of one simulated
// shared-nothing node (the crux of the baseline: the shared-memory
// algorithm's common data structure must be replicated per node), plus
// the per-level worker computation over it.
//
// Extracted from sma.cc so the replica can live as remote session state:
// the stateful-task registry (cluster/session/stateful_task.h) registers
// SmaNode as StatefulTaskKind::kSmaNode, which lets a session-capable
// backend — including RpcBackend over real sockets — host the replicas
// in worker processes. The node therefore OWNS its query and options
// (it is reconstructed on a remote worker from the serialized open
// request) and speaks a tiny self-describing step protocol:
//
//   open request   serialized query + SmaNodeOptions
//                  (BuildOpenRequest / FromOpenRequest)
//   step request   u8 op, then the op's body (HandleStep):
//                    kSmaComputeChunkOp   count-prefixed u64 table-set
//                                         bit patterns -> serialized
//                                         optimal entries (pure read of
//                                         the replica)
//                    kSmaApplyBroadcastOp a level's concatenated entries
//                                         -> empty (the one mutating,
//                                         deterministic state transition
//                                         — replayable for recovery)

#ifndef MPQOPT_SMA_SMA_NODE_H_
#define MPQOPT_SMA_SMA_NODE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "catalog/query.h"
#include "common/macros.h"
#include "common/status.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "cost/cost_vector.h"
#include "optimizer/dp.h"
#include "plan/plan.h"

namespace mpqopt {

/// The plan-affecting knobs a replica needs; the execution knobs of
/// SmaOptions (backend, num_workers, network) deliberately stay master-
/// side so every node's open request is identical and tiny.
struct SmaNodeOptions {
  PlanSpace space = PlanSpace::kLinear;
  Objective objective = Objective::kTime;
  double alpha = 10.0;
  CostModelOptions cost_options;
};

/// Step-request op tags (first byte of every HandleStep request).
constexpr uint8_t kSmaComputeChunkOp = 0;
constexpr uint8_t kSmaApplyBroadcastOp = 1;

/// One simulated shared-nothing node running SMA worker code.
class SmaNode {
 public:
  /// Constructs the replica directly (master replica / in-process use).
  SmaNode(Query query, const SmaNodeOptions& options);
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(SmaNode);

  /// Serialized (query, options) — the session open request every node
  /// is reconstructed from.
  static std::vector<uint8_t> BuildOpenRequest(const Query& query,
                                               const SmaNodeOptions& options);

  /// Reconstructs a replica from an open request (worker side).
  static StatusOr<std::unique_ptr<SmaNode>> FromOpenRequest(
      const std::vector<uint8_t>& request);

  /// Dispatches one step request by its op byte (see header comment).
  StatusOr<std::vector<uint8_t>> HandleStep(
      const std::vector<uint8_t>& request);

  /// Computes the optimal plan(s) for every set in `assignment`
  /// (count-prefixed u64 bit patterns) and returns the serialized
  /// entries. Pure: only reads the memo replica.
  StatusOr<std::vector<uint8_t>> ComputeChunk(const uint8_t* data,
                                              size_t size);

  /// Installs a level's broadcast entries into the local memo replica —
  /// the one mutating, deterministic state transition.
  Status ApplyBroadcast(const uint8_t* data, size_t size);
  Status ApplyBroadcast(const std::vector<uint8_t>& payload) {
    return ApplyBroadcast(payload.data(), payload.size());
  }

  bool Scalar() const { return options_.objective == Objective::kTime; }

  /// Approximate heap footprint of the replica (memo slots + frontier
  /// plans); the worker-side per-session byte cap compares against this.
  size_t ApproxBytes() const;

  /// Materializes the best plan for `s` (scalar mode).
  PlanId Build(TableSet s, PlanArena* arena) const;

  size_t FrontierSize(TableSet s) const;

  /// Materializes frontier plan `idx` for `s` (multi-objective mode).
  PlanId BuildMo(TableSet s, uint32_t idx, PlanArena* arena) const;

 private:
  /// Single-objective memo entry.
  struct Entry {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0;
    uint64_t left_bits = 0;
    JoinAlgorithm alg = JoinAlgorithm::kScan;
  };

  /// One plan of a multi-objective frontier.
  struct MoPlan {
    CostVector cost;
    uint64_t left_bits = 0;
    uint32_t left_idx = 0;
    uint32_t right_idx = 0;
    JoinAlgorithm alg = JoinAlgorithm::kScan;
  };

  /// Multi-objective memo entry.
  struct MoEntry {
    double card = 0;
    std::vector<MoPlan> plans;
  };

  /// Optimal entry for `u` from the replica's lower levels. Fails with
  /// Corruption (instead of aborting) when required sub-plans are not in
  /// the replica yet — a remote master stepping levels out of order must
  /// fail its own step, never the worker process.
  StatusOr<Entry> ComputeScalar(TableSet u) const;
  StatusOr<MoEntry> ComputeMo(TableSet u) const;

  const Query query_;  ///< owned: the replica outlives the master's call
  const SmaNodeOptions options_;
  CostModel model_;
  CardinalityEstimator estimator_;  ///< references query_ (member order!)
  int n_;
  std::vector<Entry> memo_;
  std::vector<MoEntry> mo_memo_;
};

}  // namespace mpqopt

#endif  // MPQOPT_SMA_SMA_NODE_H_
