// Copyright 2026 mpqopt authors.

#include "sma/sma_node.h"

#include <utility>

#include "common/serialize.h"
#include "optimizer/pruning.h"

namespace mpqopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SmaNode::SmaNode(Query query, const SmaNodeOptions& options)
    : query_(std::move(query)),
      options_(options),
      model_(options.objective, options.cost_options),
      estimator_(query_),
      n_(query_.num_tables()) {
  const size_t slots = size_t{1} << n_;
  if (Scalar()) {
    memo_.assign(slots, Entry());
  } else {
    mo_memo_.assign(slots, MoEntry());
  }
  for (int t = 0; t < n_; ++t) {
    const double card = query_.table(t).cardinality;
    const uint64_t bits = uint64_t{1} << t;
    if (Scalar()) {
      memo_[bits] = {model_.ScanCost(card).time(), card, 0,
                     JoinAlgorithm::kScan};
    } else {
      MoEntry& e = mo_memo_[bits];
      e.card = card;
      e.plans.push_back(
          {model_.ScanCost(card), 0, 0, 0, JoinAlgorithm::kScan});
    }
  }
}

std::vector<uint8_t> SmaNode::BuildOpenRequest(const Query& query,
                                               const SmaNodeOptions& options) {
  ByteWriter writer;
  query.Serialize(&writer);
  writer.WriteU8(static_cast<uint8_t>(options.space));
  writer.WriteU8(static_cast<uint8_t>(options.objective));
  writer.WriteDouble(options.alpha);
  writer.WriteDouble(options.cost_options.block_size);
  writer.WriteDouble(options.cost_options.hash_constant);
  writer.WriteDouble(options.cost_options.output_cost_factor);
  writer.WriteDouble(options.cost_options.sorted_scan_factor);
  return writer.Release();
}

StatusOr<std::unique_ptr<SmaNode>> SmaNode::FromOpenRequest(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  StatusOr<Query> query = Query::Deserialize(&reader);
  if (!query.ok()) return query.status();
  SmaNodeOptions options;
  uint8_t space_raw = 0;
  uint8_t objective_raw = 0;
  Status s;
  if (!(s = reader.ReadU8(&space_raw)).ok()) return s;
  if (!(s = reader.ReadU8(&objective_raw)).ok()) return s;
  if (!(s = reader.ReadDouble(&options.alpha)).ok()) return s;
  if (!(s = reader.ReadDouble(&options.cost_options.block_size)).ok()) {
    return s;
  }
  if (!(s = reader.ReadDouble(&options.cost_options.hash_constant)).ok()) {
    return s;
  }
  if (!(s = reader.ReadDouble(&options.cost_options.output_cost_factor))
           .ok()) {
    return s;
  }
  if (!(s = reader.ReadDouble(&options.cost_options.sorted_scan_factor))
           .ok()) {
    return s;
  }
  options.space = static_cast<PlanSpace>(space_raw);
  options.objective = static_cast<Objective>(objective_raw);
  Status valid = query.value().Validate();
  if (!valid.ok()) return valid;
  return std::make_unique<SmaNode>(std::move(query).value(), options);
}

StatusOr<std::vector<uint8_t>> SmaNode::HandleStep(
    const std::vector<uint8_t>& request) {
  if (request.empty()) {
    return Status::Corruption("empty SMA step request");
  }
  const uint8_t op = request[0];
  const uint8_t* body = request.data() + 1;
  const size_t body_size = request.size() - 1;
  switch (op) {
    case kSmaComputeChunkOp:
      return ComputeChunk(body, body_size);
    case kSmaApplyBroadcastOp: {
      Status s = ApplyBroadcast(body, body_size);
      if (!s.ok()) return s;
      return std::vector<uint8_t>();
    }
    default:
      return Status::Corruption("unknown SMA step op " + std::to_string(op));
  }
}

StatusOr<std::vector<uint8_t>> SmaNode::ComputeChunk(const uint8_t* data,
                                                     size_t size) {
  ByteReader reader(data, size);
  uint32_t count = 0;
  Status s = reader.ReadU32(&count);
  if (!s.ok()) return s;
  ByteWriter writer;
  writer.WriteU32(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t bits = 0;
    if (!(s = reader.ReadU64(&bits)).ok()) return s;
    // Range-check before indexing the memo: this request may arrive over
    // a real socket, and a corrupt set must fail the step, not the node
    // (singleton sets are base cases, never assignments).
    if (bits >= (uint64_t{1} << n_) || TableSet(bits).Count() < 2) {
      return Status::Corruption("assignment set out of range");
    }
    if (Scalar()) {
      StatusOr<Entry> entry = ComputeScalar(TableSet(bits));
      if (!entry.ok()) return entry.status();
      const Entry& e = entry.value();
      writer.WriteU64(bits);
      writer.WriteU8(static_cast<uint8_t>(e.alg));
      writer.WriteU64(e.left_bits);
      writer.WriteDouble(e.card);
      writer.WriteDouble(e.cost);
    } else {
      StatusOr<MoEntry> entry = ComputeMo(TableSet(bits));
      if (!entry.ok()) return entry.status();
      const MoEntry& e = entry.value();
      writer.WriteU64(bits);
      writer.WriteDouble(e.card);
      writer.WriteU32(static_cast<uint32_t>(e.plans.size()));
      for (const MoPlan& p : e.plans) {
        p.cost.Serialize(&writer);
        writer.WriteU64(p.left_bits);
        writer.WriteU32(p.left_idx);
        writer.WriteU32(p.right_idx);
        writer.WriteU8(static_cast<uint8_t>(p.alg));
      }
    }
  }
  return writer.Release();
}

Status SmaNode::ApplyBroadcast(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  while (!reader.AtEnd()) {
    uint32_t count = 0;
    Status s = reader.ReadU32(&count);
    if (!s.ok()) return s;
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      if (!(s = reader.ReadU64(&bits)).ok()) return s;
      if (bits >= (uint64_t{1} << n_)) {
        return Status::Corruption("broadcast set out of range");
      }
      if (Scalar()) {
        Entry e;
        uint8_t alg = 0;
        if (!(s = reader.ReadU8(&alg)).ok()) return s;
        if (!(s = reader.ReadU64(&e.left_bits)).ok()) return s;
        if (!(s = reader.ReadDouble(&e.card)).ok()) return s;
        if (!(s = reader.ReadDouble(&e.cost)).ok()) return s;
        e.alg = static_cast<JoinAlgorithm>(alg);
        memo_[bits] = e;
      } else {
        MoEntry e;
        uint32_t num_plans = 0;
        if (!(s = reader.ReadDouble(&e.card)).ok()) return s;
        if (!(s = reader.ReadU32(&num_plans)).ok()) return s;
        e.plans.resize(num_plans);
        for (MoPlan& p : e.plans) {
          StatusOr<CostVector> cost = CostVector::Deserialize(&reader);
          if (!cost.ok()) return cost.status();
          p.cost = cost.value();
          uint8_t alg = 0;
          if (!(s = reader.ReadU64(&p.left_bits)).ok()) return s;
          if (!(s = reader.ReadU32(&p.left_idx)).ok()) return s;
          if (!(s = reader.ReadU32(&p.right_idx)).ok()) return s;
          if (!(s = reader.ReadU8(&alg)).ok()) return s;
          p.alg = static_cast<JoinAlgorithm>(alg);
        }
        mo_memo_[bits] = std::move(e);
      }
    }
  }
  return Status::OK();
}

size_t SmaNode::ApproxBytes() const {
  size_t bytes = sizeof(SmaNode);
  bytes += memo_.capacity() * sizeof(Entry);
  bytes += mo_memo_.capacity() * sizeof(MoEntry);
  for (const MoEntry& e : mo_memo_) {
    bytes += e.plans.capacity() * sizeof(MoPlan);
  }
  return bytes;
}

PlanId SmaNode::Build(TableSet s, PlanArena* arena) const {
  const Entry& e = memo_[s.bits()];
  if (s.Count() == 1) {
    return arena->MakeScan(s.Lowest(), e.card, CostVector::Scalar(e.cost));
  }
  const TableSet left(e.left_bits);
  const PlanId lid = Build(left, arena);
  const PlanId rid = Build(s.Minus(left), arena);
  return arena->MakeJoin(e.alg, lid, rid, e.card, CostVector::Scalar(e.cost));
}

size_t SmaNode::FrontierSize(TableSet s) const {
  return mo_memo_[s.bits()].plans.size();
}

PlanId SmaNode::BuildMo(TableSet s, uint32_t idx, PlanArena* arena) const {
  const MoEntry& e = mo_memo_[s.bits()];
  const MoPlan& p = e.plans[idx];
  if (s.Count() == 1) {
    return arena->MakeScan(s.Lowest(), e.card, p.cost);
  }
  const TableSet left(p.left_bits);
  const PlanId lid = BuildMo(left, p.left_idx, arena);
  const PlanId rid = BuildMo(s.Minus(left), p.right_idx, arena);
  return arena->MakeJoin(p.alg, lid, rid, e.card, p.cost);
}

StatusOr<SmaNode::Entry> SmaNode::ComputeScalar(TableSet u) const {
  Entry best;
  best.card = estimator_.Cardinality(u);
  const auto consider = [&](TableSet left, TableSet right) {
    const Entry& le = memo_[left.bits()];
    const Entry& re = memo_[right.bits()];
    // Missing sub-plans are kInf; the inf propagates and never wins, so
    // an out-of-order chunk surfaces as "no candidate" below.
    const double base = le.cost + re.cost;
    for (JoinAlgorithm alg : kJoinAlgorithms) {
      const double cost =
          base + model_.LocalJoinTime(alg, le.card, re.card, best.card);
      if (cost < best.cost) {
        best.cost = cost;
        best.left_bits = left.bits();
        best.alg = alg;
      }
    }
  };
  if (options_.space == PlanSpace::kLinear) {
    for (int t : u) consider(u.Without(t), TableSet::Single(t));
  } else {
    SubsetEnumerator subsets(u);
    while (subsets.Next()) {
      consider(subsets.current(), u.Minus(subsets.current()));
    }
  }
  if (!(best.cost < kInf)) {
    return Status::Corruption(
        "assignment references a set whose sub-plans are not in the "
        "replica yet (level stepped out of order?)");
  }
  return best;
}

StatusOr<SmaNode::MoEntry> SmaNode::ComputeMo(TableSet u) const {
  MoEntry entry;
  entry.card = estimator_.Cardinality(u);
  const auto cost_of = [](const MoPlan& p) -> const CostVector& {
    return p.cost;
  };
  const auto consider = [&](TableSet left, TableSet right) {
    const MoEntry& le = mo_memo_[left.bits()];
    const MoEntry& re = mo_memo_[right.bits()];
    for (uint32_t li = 0; li < le.plans.size(); ++li) {
      for (uint32_t ri = 0; ri < re.plans.size(); ++ri) {
        for (JoinAlgorithm alg : kJoinAlgorithms) {
          MoPlan cand;
          cand.cost =
              model_.JoinCost(alg, le.plans[li].cost, re.plans[ri].cost,
                              le.card, re.card, entry.card);
          cand.left_bits = left.bits();
          cand.left_idx = li;
          cand.right_idx = ri;
          cand.alg = alg;
          ParetoInsert(&entry.plans, cand, cost_of, options_.alpha);
        }
      }
    }
  };
  if (options_.space == PlanSpace::kLinear) {
    for (int t : u) consider(u.Without(t), TableSet::Single(t));
  } else {
    SubsetEnumerator subsets(u);
    while (subsets.Next()) {
      consider(subsets.current(), u.Minus(subsets.current()));
    }
  }
  if (entry.plans.empty()) {
    // An empty frontier means the sub-frontiers were empty: the lower
    // levels have not been broadcast into this replica.
    return Status::Corruption(
        "assignment references a set whose sub-plans are not in the "
        "replica yet (level stepped out of order?)");
  }
  return entry;
}

}  // namespace mpqopt
