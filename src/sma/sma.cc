// Copyright 2026 mpqopt authors.

#include "sma/sma.h"

#include <bit>
#include <chrono>
#include <memory>
#include <utility>

#include "cluster/session/session.h"
#include "cluster/session/stateful_task.h"
#include "common/serialize.h"
#include "sma/sma_node.h"

namespace mpqopt {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Next k-combination of bits (Gosper's hack).
uint64_t NextCombination(uint64_t v) {
  const uint64_t t = v | (v - 1);
  return (t + 1) | (((~t & -(~t)) - 1) >> (std::countr_zero(v) + 1));
}

double MaxOf(const std::vector<double>& values) {
  double max = 0;
  for (double v : values) {
    if (v > max) max = v;
  }
  return max;
}

}  // namespace

StatusOr<SmaResult> SmaOptimize(const Query& query, const SmaOptions& options) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  const int n = query.num_tables();
  if (n > options.max_tables) {
    return Status::OutOfRange(
        "SMA replicates the full memo per worker; query too large");
  }
  const uint64_t m = options.num_workers;
  if (m < 1) {
    return Status::InvalidArgument("num_workers must be at least 1");
  }
  std::shared_ptr<ExecutionBackend> backend = options.backend;
  if (backend == nullptr) {
    backend = MakeBackend(BackendKind::kThread, options.network,
                          /*max_threads=*/1);
  }
  const NetworkModel& net = backend->network();

  SmaResult result;
  result.max_worker_memo_sets = int64_t{1} << n;

  const auto total_start = Clock::now();

  // Round 0: ship the query (with statistics and the plan-affecting
  // options) to every worker node — the session open request each
  // replica is built from.
  SmaNodeOptions node_options;
  node_options.space = options.space;
  node_options.objective = options.objective;
  node_options.alpha = options.alpha;
  node_options.cost_options = options.cost_options;
  const std::vector<uint8_t> open_request =
      SmaNode::BuildOpenRequest(query, node_options);
  for (uint64_t i = 0; i < m; ++i) {
    result.network_bytes += open_request.size();
    ++result.network_messages;
  }
  result.simulated_seconds += static_cast<double>(m) * net.task_setup_s +
                              net.TransferTime(open_request.size());

  // The worker replicas live wherever the backend hosts sessions: in
  // this process for the in-process backends (the replica state stays in
  // the task closures, as before), in remote mpqopt_worker processes for
  // the rpc backend (cluster/session/). The master additionally keeps
  // its own replica — it applies every broadcast locally and the final
  // plan is extracted from it, so extraction never crosses the wire.
  StatusOr<std::unique_ptr<SessionHandle>> session_or = backend->OpenSession(
      StatefulTaskKind::kSmaNode,
      std::vector<std::vector<uint8_t>>(m, open_request));
  if (!session_or.ok()) return session_or.status();
  std::unique_ptr<SessionHandle> session = std::move(session_or).value();
  SmaNode master_replica(query, node_options);
  std::vector<double> node_seconds(m, 0.0);

  if (n >= 2) {
    for (int k = 2; k <= n; ++k) {
      ++result.rounds;
      // Master: enumerate the level's table sets and deal them
      // round-robin into per-node compute-chunk step requests.
      std::vector<std::vector<uint8_t>> step_requests(m);
      {
        std::vector<std::vector<uint64_t>> chunks(m);
        uint64_t v = (uint64_t{1} << k) - 1;
        const uint64_t limit = uint64_t{1} << n;
        uint64_t idx = 0;
        while (v < limit) {
          chunks[idx % m].push_back(v);
          ++idx;
          v = NextCombination(v);
        }
        for (uint64_t i = 0; i < m; ++i) {
          ByteWriter writer;
          writer.WriteU8(kSmaComputeChunkOp);
          writer.WriteU32(static_cast<uint32_t>(chunks[i].size()));
          for (uint64_t bits : chunks[i]) writer.WriteU64(bits);
          step_requests[i] = writer.Release();
        }
      }

      // Workers compute their chunks against their replicas (one session
      // round per level — SMA's defining many-rounds-per-query
      // behaviour); per-node compute is measured individually, transfers
      // are modeled from the true byte counts by the shared accounting.
      StatusOr<RoundResult> round_or = session->Step(step_requests);
      if (!round_or.ok()) return round_or.status();
      RoundResult& round = round_or.value();
      for (uint64_t i = 0; i < m; ++i) {
        node_seconds[i] += round.compute_seconds[i];
      }
      result.network_bytes += round.traffic.bytes_sent;
      result.network_messages += round.traffic.messages;

      // Master: concatenate the level's entries and broadcast to all
      // workers — the shared memotable emulated over the network.
      ByteWriter broadcast_writer;
      broadcast_writer.WriteU8(kSmaApplyBroadcastOp);
      std::vector<uint8_t> broadcast = broadcast_writer.Release();
      for (const auto& r : round.responses) {
        broadcast.insert(broadcast.end(), r.begin(), r.end());
      }
      StatusOr<RoundResult> bcast_or = session->Broadcast(broadcast);
      if (!bcast_or.ok()) return bcast_or.status();
      const RoundResult& bcast = bcast_or.value();
      for (uint64_t i = 0; i < m; ++i) {
        node_seconds[i] += bcast.compute_seconds[i];
      }
      result.network_bytes += bcast.traffic.bytes_sent;
      result.network_messages += bcast.traffic.messages;
      Status s = master_replica.ApplyBroadcast(broadcast.data() + 1,
                                               broadcast.size() - 1);
      if (!s.ok()) return s;

      // Level completion: per-task dispatch + slowest compute path (both
      // in round.simulated_seconds) + the master pushing m broadcast
      // copies through its ONE uplink — serialized, the baseline's
      // bottleneck — + the slowest apply.
      result.simulated_seconds +=
          round.simulated_seconds +
          static_cast<double>(m) * net.TransferTime(broadcast.size()) +
          MaxOf(bcast.compute_seconds);
    }
  }
  session->Close();

  // Extract the final plan(s) from the master's replica.
  const auto extract_start = Clock::now();
  const TableSet all = query.all_tables();
  if (options.objective == Objective::kTime) {
    result.best.push_back(master_replica.Build(all, &result.arena));
  } else {
    const size_t frontier = master_replica.FrontierSize(all);
    for (uint32_t i = 0; i < frontier; ++i) {
      result.best.push_back(master_replica.BuildMo(all, i, &result.arena));
    }
  }
  const auto total_end = Clock::now();
  result.master_seconds = Seconds(extract_start, total_end);
  result.simulated_seconds += result.master_seconds;
  result.wall_seconds = Seconds(total_start, total_end);
  result.max_worker_seconds = MaxOf(node_seconds);
  return result;
}

}  // namespace mpqopt
