// Copyright 2026 mpqopt authors.

#include "sma/sma.h"

#include <chrono>
#include <limits>

#include "common/serialize.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "optimizer/pruning.h"

namespace mpqopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Single-objective memo entry of one SMA node.
struct Entry {
  double cost = kInf;
  double card = 0;
  uint64_t left_bits = 0;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
};

/// One plan of a multi-objective frontier.
struct MoPlan {
  CostVector cost;
  uint64_t left_bits = 0;
  uint32_t left_idx = 0;
  uint32_t right_idx = 0;
  JoinAlgorithm alg = JoinAlgorithm::kScan;
};

/// Multi-objective memo entry of one SMA node.
struct MoEntry {
  double card = 0;
  std::vector<MoPlan> plans;
};

/// One simulated shared-nothing node running SMA worker code. Every node
/// materializes the FULL memotable (this is the crux of the baseline: the
/// shared-memory algorithm's common data structure must be replicated),
/// and the master keeps the replicas consistent by broadcasting each
/// level's entries.
class SmaNode {
 public:
  SmaNode(const Query& query, const SmaOptions& options)
      : query_(query),
        options_(options),
        model_(options.objective, options.cost_options),
        estimator_(query),
        n_(query.num_tables()) {
    const size_t slots = size_t{1} << n_;
    if (Scalar()) {
      memo_.assign(slots, Entry());
    } else {
      mo_memo_.assign(slots, MoEntry());
    }
    for (int t = 0; t < n_; ++t) {
      const double card = query.table(t).cardinality;
      const uint64_t bits = uint64_t{1} << t;
      if (Scalar()) {
        memo_[bits] = {model_.ScanCost(card).time(), card, 0,
                       JoinAlgorithm::kScan};
      } else {
        MoEntry& e = mo_memo_[bits];
        e.card = card;
        e.plans.push_back(
            {model_.ScanCost(card), 0, 0, 0, JoinAlgorithm::kScan});
      }
    }
  }

  bool Scalar() const { return options_.objective == Objective::kTime; }

  /// Computes the optimal plan(s) for every set in `assignment`
  /// (count-prefixed u64 bit patterns) and returns the serialized entries.
  StatusOr<std::vector<uint8_t>> ComputeChunk(
      const std::vector<uint8_t>& assignment) {
    ByteReader reader(assignment);
    uint32_t count = 0;
    Status s = reader.ReadU32(&count);
    if (!s.ok()) return s;
    ByteWriter writer;
    writer.WriteU32(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      if (!(s = reader.ReadU64(&bits)).ok()) return s;
      if (Scalar()) {
        const Entry e = ComputeScalar(TableSet(bits));
        writer.WriteU64(bits);
        writer.WriteU8(static_cast<uint8_t>(e.alg));
        writer.WriteU64(e.left_bits);
        writer.WriteDouble(e.card);
        writer.WriteDouble(e.cost);
      } else {
        const MoEntry e = ComputeMo(TableSet(bits));
        writer.WriteU64(bits);
        writer.WriteDouble(e.card);
        writer.WriteU32(static_cast<uint32_t>(e.plans.size()));
        for (const MoPlan& p : e.plans) {
          p.cost.Serialize(&writer);
          writer.WriteU64(p.left_bits);
          writer.WriteU32(p.left_idx);
          writer.WriteU32(p.right_idx);
          writer.WriteU8(static_cast<uint8_t>(p.alg));
        }
      }
    }
    return writer.Release();
  }

  /// Installs a level's broadcast entries into the local memo replica.
  Status ApplyBroadcast(const std::vector<uint8_t>& payload) {
    ByteReader reader(payload);
    while (!reader.AtEnd()) {
      uint32_t count = 0;
      Status s = reader.ReadU32(&count);
      if (!s.ok()) return s;
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t bits = 0;
        if (!(s = reader.ReadU64(&bits)).ok()) return s;
        if (bits >= (uint64_t{1} << n_)) {
          return Status::Corruption("broadcast set out of range");
        }
        if (Scalar()) {
          Entry e;
          uint8_t alg = 0;
          if (!(s = reader.ReadU8(&alg)).ok()) return s;
          if (!(s = reader.ReadU64(&e.left_bits)).ok()) return s;
          if (!(s = reader.ReadDouble(&e.card)).ok()) return s;
          if (!(s = reader.ReadDouble(&e.cost)).ok()) return s;
          e.alg = static_cast<JoinAlgorithm>(alg);
          memo_[bits] = e;
        } else {
          MoEntry e;
          uint32_t num_plans = 0;
          if (!(s = reader.ReadDouble(&e.card)).ok()) return s;
          if (!(s = reader.ReadU32(&num_plans)).ok()) return s;
          e.plans.resize(num_plans);
          for (MoPlan& p : e.plans) {
            StatusOr<CostVector> cost = CostVector::Deserialize(&reader);
            if (!cost.ok()) return cost.status();
            p.cost = cost.value();
            uint8_t alg = 0;
            if (!(s = reader.ReadU64(&p.left_bits)).ok()) return s;
            if (!(s = reader.ReadU32(&p.left_idx)).ok()) return s;
            if (!(s = reader.ReadU32(&p.right_idx)).ok()) return s;
            if (!(s = reader.ReadU8(&alg)).ok()) return s;
            p.alg = static_cast<JoinAlgorithm>(alg);
          }
          mo_memo_[bits] = std::move(e);
        }
      }
    }
    return Status::OK();
  }

  /// Materializes the best plan for `s` (scalar mode).
  PlanId Build(TableSet s, PlanArena* arena) const {
    const Entry& e = memo_[s.bits()];
    if (s.Count() == 1) {
      return arena->MakeScan(s.Lowest(), e.card, CostVector::Scalar(e.cost));
    }
    const TableSet left(e.left_bits);
    const PlanId lid = Build(left, arena);
    const PlanId rid = Build(s.Minus(left), arena);
    return arena->MakeJoin(e.alg, lid, rid, e.card, CostVector::Scalar(e.cost));
  }

  size_t FrontierSize(TableSet s) const { return mo_memo_[s.bits()].plans.size(); }

  /// Materializes frontier plan `idx` for `s` (multi-objective mode).
  PlanId BuildMo(TableSet s, uint32_t idx, PlanArena* arena) const {
    const MoEntry& e = mo_memo_[s.bits()];
    const MoPlan& p = e.plans[idx];
    if (s.Count() == 1) {
      return arena->MakeScan(s.Lowest(), e.card, p.cost);
    }
    const TableSet left(p.left_bits);
    const PlanId lid = BuildMo(left, p.left_idx, arena);
    const PlanId rid = BuildMo(s.Minus(left), p.right_idx, arena);
    return arena->MakeJoin(p.alg, lid, rid, e.card, p.cost);
  }

 private:
  Entry ComputeScalar(TableSet u) const {
    Entry best;
    best.card = estimator_.Cardinality(u);
    const auto consider = [&](TableSet left, TableSet right) {
      const Entry& le = memo_[left.bits()];
      const Entry& re = memo_[right.bits()];
      MPQOPT_DCHECK(le.cost < kInf && re.cost < kInf);
      const double base = le.cost + re.cost;
      for (JoinAlgorithm alg : kJoinAlgorithms) {
        const double cost =
            base + model_.LocalJoinTime(alg, le.card, re.card, best.card);
        if (cost < best.cost) {
          best.cost = cost;
          best.left_bits = left.bits();
          best.alg = alg;
        }
      }
    };
    if (options_.space == PlanSpace::kLinear) {
      for (int t : u) consider(u.Without(t), TableSet::Single(t));
    } else {
      SubsetEnumerator subsets(u);
      while (subsets.Next()) {
        consider(subsets.current(), u.Minus(subsets.current()));
      }
    }
    MPQOPT_CHECK(best.cost < kInf);
    return best;
  }

  MoEntry ComputeMo(TableSet u) const {
    MoEntry entry;
    entry.card = estimator_.Cardinality(u);
    const auto cost_of = [](const MoPlan& p) -> const CostVector& {
      return p.cost;
    };
    const auto consider = [&](TableSet left, TableSet right) {
      const MoEntry& le = mo_memo_[left.bits()];
      const MoEntry& re = mo_memo_[right.bits()];
      for (uint32_t li = 0; li < le.plans.size(); ++li) {
        for (uint32_t ri = 0; ri < re.plans.size(); ++ri) {
          for (JoinAlgorithm alg : kJoinAlgorithms) {
            MoPlan cand;
            cand.cost =
                model_.JoinCost(alg, le.plans[li].cost, re.plans[ri].cost,
                                le.card, re.card, entry.card);
            cand.left_bits = left.bits();
            cand.left_idx = li;
            cand.right_idx = ri;
            cand.alg = alg;
            ParetoInsert(&entry.plans, cand, cost_of, options_.alpha);
          }
        }
      }
    };
    if (options_.space == PlanSpace::kLinear) {
      for (int t : u) consider(u.Without(t), TableSet::Single(t));
    } else {
      SubsetEnumerator subsets(u);
      while (subsets.Next()) {
        consider(subsets.current(), u.Minus(subsets.current()));
      }
    }
    MPQOPT_CHECK(!entry.plans.empty());
    return entry;
  }

  const Query& query_;
  const SmaOptions& options_;
  CostModel model_;
  CardinalityEstimator estimator_;
  int n_;
  std::vector<Entry> memo_;
  std::vector<MoEntry> mo_memo_;
};

/// Next k-combination of bits (Gosper's hack).
uint64_t NextCombination(uint64_t v) {
  const uint64_t t = v | (v - 1);
  return (t + 1) | (((~t & -(~t)) - 1) >> (std::countr_zero(v) + 1));
}

}  // namespace

StatusOr<SmaResult> SmaOptimize(const Query& query, const SmaOptions& options) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  const int n = query.num_tables();
  if (n > options.max_tables) {
    return Status::OutOfRange(
        "SMA replicates the full memo per worker; query too large");
  }
  const uint64_t m = options.num_workers;
  if (m < 1) {
    return Status::InvalidArgument("num_workers must be at least 1");
  }
  std::shared_ptr<ExecutionBackend> backend = options.backend;
  if (backend == nullptr) {
    backend = MakeBackend(BackendKind::kThread, options.network,
                          /*max_threads=*/1);
  }
  const NetworkModel& net = backend->network();

  SmaResult result;
  result.max_worker_memo_sets = int64_t{1} << n;

  const auto total_start = Clock::now();

  // Round 0: ship the query (with statistics) to every worker node.
  ByteWriter query_writer;
  query.Serialize(&query_writer);
  const uint64_t query_bytes = query_writer.size();
  for (uint64_t i = 0; i < m; ++i) {
    result.network_bytes += query_bytes;
    ++result.network_messages;
  }
  result.simulated_seconds +=
      static_cast<double>(m) * net.task_setup_s + net.TransferTime(query_bytes);

  // Worker node replicas; node_seconds accumulates per-node compute.
  std::vector<SmaNode> nodes;
  nodes.reserve(m);
  for (uint64_t i = 0; i < m; ++i) nodes.emplace_back(query, options);
  SmaNode master_replica(query, options);
  std::vector<double> node_seconds(m, 0.0);

  // Per-level chunk computation runs through the pluggable backend: node
  // i's ComputeChunk is exposed as a worker task (request = assignment
  // bytes, response = serialized entries). ComputeChunk only reads the
  // node's memo replica — state changes happen in ApplyBroadcast on the
  // master side — so every backend, including process isolation, yields
  // identical results.
  std::vector<WorkerTask> tasks;
  tasks.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    tasks.push_back([&nodes, i](const std::vector<uint8_t>& assignment) {
      return nodes[i].ComputeChunk(assignment);
    });
  }

  if (n >= 2) {
    for (int k = 2; k <= n; ++k) {
      ++result.rounds;
      // Master: enumerate the level's table sets and deal them round-robin.
      std::vector<std::vector<uint8_t>> assignments(m);
      {
        std::vector<std::vector<uint64_t>> chunks(m);
        uint64_t v = (uint64_t{1} << k) - 1;
        const uint64_t limit = uint64_t{1} << n;
        uint64_t idx = 0;
        while (v < limit) {
          chunks[idx % m].push_back(v);
          ++idx;
          v = NextCombination(v);
        }
        for (uint64_t i = 0; i < m; ++i) {
          ByteWriter writer;
          writer.WriteU32(static_cast<uint32_t>(chunks[i].size()));
          for (uint64_t bits : chunks[i]) writer.WriteU64(bits);
          assignments[i] = writer.Release();
        }
      }

      // Workers compute their chunks through the backend (one round per
      // level — SMA's defining many-rounds-per-query behaviour); per-task
      // compute is measured individually, transfers are modeled from the
      // true byte counts by the backend's shared accounting.
      StatusOr<RoundResult> round_or = backend->RunRound(tasks, assignments);
      if (!round_or.ok()) return round_or.status();
      RoundResult& round = round_or.value();
      std::vector<std::vector<uint8_t>>& responses = round.responses;
      for (uint64_t i = 0; i < m; ++i) {
        node_seconds[i] += round.compute_seconds[i];
      }
      result.network_bytes += round.traffic.bytes_sent;
      result.network_messages += round.traffic.messages;

      // Master: concatenate the level's entries and broadcast to all
      // workers — the shared memotable emulated over the network.
      std::vector<uint8_t> broadcast;
      for (const auto& r : responses) {
        broadcast.insert(broadcast.end(), r.begin(), r.end());
      }
      double max_apply = 0;
      for (uint64_t i = 0; i < m; ++i) {
        const auto start = Clock::now();
        Status s = nodes[i].ApplyBroadcast(broadcast);
        const auto end = Clock::now();
        if (!s.ok()) return s;
        const double apply = Seconds(start, end);
        node_seconds[i] += apply;
        if (apply > max_apply) max_apply = apply;
        result.network_bytes += broadcast.size();
        ++result.network_messages;
      }
      Status s = master_replica.ApplyBroadcast(broadcast);
      if (!s.ok()) return s;

      // Level completion: per-task dispatch + slowest compute path (both
      // in round.simulated_seconds) + the master pushing m broadcast
      // copies through its link + apply.
      result.simulated_seconds +=
          round.simulated_seconds +
          static_cast<double>(m) * net.TransferTime(broadcast.size()) +
          max_apply;
    }
  }

  // Extract the final plan(s) from the master's replica.
  const auto extract_start = Clock::now();
  const TableSet all = query.all_tables();
  if (options.objective == Objective::kTime) {
    result.best.push_back(master_replica.Build(all, &result.arena));
  } else {
    const size_t frontier = master_replica.FrontierSize(all);
    for (uint32_t i = 0; i < frontier; ++i) {
      result.best.push_back(master_replica.BuildMo(all, i, &result.arena));
    }
  }
  const auto total_end = Clock::now();
  result.master_seconds = Seconds(extract_start, total_end);
  result.simulated_seconds += result.master_seconds;
  result.wall_seconds = Seconds(total_start, total_end);
  for (double sec : node_seconds) {
    if (sec > result.max_worker_seconds) result.max_worker_seconds = sec;
  }
  return result;
}

}  // namespace mpqopt
