// Copyright 2026 mpqopt authors.
//
// SMA — the "shared-memory approach" baseline (paper Section 6.1).
//
// SMA represents the prior fine-grained parallelizations of DP query
// optimization (Han et al. VLDB'08, SIGMOD'09): a central master assigns
// small batches of table sets to workers level by level (all sets of
// cardinality k form one level), workers construct optimal plans for their
// assigned sets from the plans of lower levels, and — since on a
// shared-nothing architecture there is no shared memotable — the master
// must broadcast every level's freshly computed memo entries to every
// worker before the next level can start. Consequences, faithfully
// reproduced here:
//
//  * many communication rounds per query (one per level),
//  * network volume proportional to the memotable, i.e. exponential in
//    the query size and linear in the worker count,
//  * per-level task-assignment overhead on the master that grows with m.
//
// All inter-node transfers go through real byte serialization, so the
// reported network bytes are actual payload sizes, as for MPQ.
//
// The per-node memo replicas are STATEFUL, so SMA runs through the
// session protocol (cluster/session/) rather than plain stateless
// rounds: the backend opens one StatefulTaskKind::kSmaNode replica per
// worker, each level is one scatter Step (compute chunks, pure reads)
// followed by one Broadcast (apply the level's entries — the mutating,
// replayable state transition). In-process backends keep the replicas in
// this process; the rpc backend hosts them in remote mpqopt_worker
// processes with reconnect + replay recovery. Plan cost, rounds, and
// network bytes are identical on every backend (tests/sma_test.cc).

#ifndef MPQOPT_SMA_SMA_H_
#define MPQOPT_SMA_SMA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/query.h"
#include "cluster/backend.h"
#include "common/status.h"
#include "net/network_model.h"
#include "optimizer/dp.h"
#include "plan/plan.h"

namespace mpqopt {

/// Options of one SMA run.
struct SmaOptions {
  PlanSpace space = PlanSpace::kLinear;
  Objective objective = Objective::kTime;
  double alpha = 10.0;
  /// Number of workers (any value >= 1; SMA is not restricted to powers
  /// of two, tasks are dealt round-robin).
  uint64_t num_workers = 1;
  NetworkModel network;
  /// Worker-execution runtime hosting the per-node replicas (any
  /// session-capable backend, including rpc). Null (default) uses a
  /// private single-threaded ThreadBackend so per-chunk compute timing
  /// stays unpolluted; a non-null backend's NetworkModel governs the
  /// simulated transfer times.
  std::shared_ptr<ExecutionBackend> backend;
  CostModelOptions cost_options;
  /// SMA materializes the full memo on every worker; refuse queries whose
  /// memo exceeds this (the paper stops SMA at 16 tables).
  int max_tables = 22;
};

/// Result of one SMA run; mirrors MpqResult's accounting fields.
struct SmaResult {
  PlanArena arena;
  std::vector<PlanId> best;

  double simulated_seconds = 0;
  double wall_seconds = 0;
  double master_seconds = 0;
  double max_worker_seconds = 0;  ///< max summed per-worker compute
  /// Memo slots held per worker — 2^n regardless of m, in contrast to
  /// MPQ's per-partition memos.
  int64_t max_worker_memo_sets = 0;

  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;
  int rounds = 0;  ///< communication rounds (levels)
};

/// Runs SMA on `query`. Workers are simulated as isolated stateful nodes;
/// per-chunk compute time is measured, transfers are modeled from true
/// byte counts (see NetworkModel).
StatusOr<SmaResult> SmaOptimize(const Query& query, const SmaOptions& options);

}  // namespace mpqopt

#endif  // MPQOPT_SMA_SMA_H_
