// Copyright 2026 mpqopt authors.
//
// QuotaTracker — per-tenant token-bucket rate limiting for the serving
// layer (ROADMAP "Admission control").
//
// Each tenant owns one token bucket: it refills continuously at
// `rate_per_second` and holds at most `burst` tokens. Admitting a query
// spends one token; an empty bucket rejects with a deterministic
// ResourceExhausted status *before* any backend round runs, so an
// over-quota tenant costs the service one mutex acquisition, not a
// scatter/gather.
//
// The clock is injectable (same idiom as PlanCacheOptions::clock), so
// tests drive refill arithmetic deterministically. Unknown tenants get
// the default quota; `rate_per_second == 0` means "unlimited", which is
// the default — the default tenant preserves pre-admission behavior.
//
// Thread-safe; one mutex (admission is not a hot path — the backend
// round behind it is orders of magnitude more expensive).

#ifndef MPQOPT_SERVICE_ADMISSION_QUOTA_TRACKER_H_
#define MPQOPT_SERVICE_ADMISSION_QUOTA_TRACKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace mpqopt {

/// Configuration of one QuotaTracker.
struct QuotaTrackerOptions {
  /// Sustained admissions per second for tenants without an explicit
  /// quota. 0 = unlimited (every TryAcquire succeeds) — the default, so
  /// deployments that never mention tenants see no behavior change.
  double default_rate_per_second = 0;
  /// Bucket capacity for tenants without an explicit quota: how many
  /// admissions a fully-rested tenant can burst before the sustained
  /// rate applies. Clamped to >= 1 when the rate is limited.
  double default_burst = 1;
  /// Injectable clock for deterministic tests; null uses
  /// steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Per-tenant token buckets. See file comment.
class QuotaTracker {
 public:
  explicit QuotaTracker(QuotaTrackerOptions options);

  /// Sets (or replaces) the quota of one tenant. `rate_per_second == 0`
  /// makes the tenant unlimited; otherwise the bucket starts full at
  /// max(burst, 1) tokens.
  void SetQuota(const std::string& tenant, double rate_per_second,
                double burst);

  /// Spends one token from the tenant's bucket. OK on success;
  /// ResourceExhausted (naming the tenant) when the bucket is empty.
  Status TryAcquire(const std::string& tenant);

  /// Tokens currently in the tenant's bucket (after refill to now) —
  /// for tests and the stats report.
  double TokensForTesting(const std::string& tenant);

 private:
  struct Bucket {
    double rate_per_second = 0;  // 0 = unlimited
    double burst = 1;
    double tokens = 1;
    std::chrono::steady_clock::time_point last_refill;
  };

  std::chrono::steady_clock::time_point Now() const;
  /// Requires mutex_ held.
  Bucket& BucketFor(const std::string& tenant);
  void Refill(Bucket* bucket);

  const QuotaTrackerOptions options_;
  std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace mpqopt

#endif  // MPQOPT_SERVICE_ADMISSION_QUOTA_TRACKER_H_
