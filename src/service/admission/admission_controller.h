// Copyright 2026 mpqopt authors.
//
// AdmissionController — the front door of OptimizerService.
//
// Combines the two admission mechanisms into one decision per request:
//
//   1. Per-tenant token-bucket quota (quota_tracker.h): an over-quota
//      tenant is rejected with ResourceExhausted before it can occupy a
//      queue entry, let alone a backend round.
//   2. Bounded weighted-fair priority queueing (admission_queue.h): a
//      within-quota request either runs immediately, waits its turn in
//      its class queue, is shed because the queue is full
//      (ResourceExhausted), or expires waiting (DeadlineExceeded).
//
// Admit() returns an RAII Ticket; destroying it releases the running
// slot and dispatches the next queued request. The controller is what
// every later fleet/multi-master layer queues behind, so its stats
// surface (admitted / rejected / queued / timed-out) is mirrored into
// ServiceStats and the CLI report.

#ifndef MPQOPT_SERVICE_ADMISSION_ADMISSION_CONTROLLER_H_
#define MPQOPT_SERVICE_ADMISSION_ADMISSION_CONTROLLER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "service/admission/admission_queue.h"
#include "service/admission/quota_tracker.h"

namespace mpqopt {

/// Who a request belongs to and how urgent it is. The default value —
/// empty tenant, interactive — is what the 2-arg Optimize() uses, and
/// with default quotas it admits exactly like the pre-admission service.
struct RequestContext {
  /// Quota key; "" is the default tenant.
  std::string tenant;
  Priority priority = Priority::kInteractive;
};

/// Configuration of one AdmissionController (CLI: --admission,
/// --tenant-rate, --tenant-burst, --queue-depth).
struct AdmissionOptions {
  /// Default per-tenant sustained admissions/second (0 = unlimited).
  double tenant_rate = 0;
  /// Default per-tenant burst credit (bucket capacity).
  double tenant_burst = 1;
  /// Concurrent running slots (0 = 2x hardware concurrency).
  int max_concurrent = 0;
  /// Per-class queue depth.
  int queue_depth = 64;
  /// Queued-request deadline; <= 0 waits indefinitely.
  int queue_timeout_ms = 10000;
  /// Weighted-fair share per class, indexed by Priority.
  std::array<int, kNumPriorityClasses> weights = {8, 2, 1};
  /// Injectable clock (quota refill); null uses steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Admission outcome counters (monotonic except the *_now gauges).
struct AdmissionStats {
  uint64_t admitted = 0;        ///< granted a slot (ran or is running)
  uint64_t rejected_quota = 0;  ///< over-quota tenant (ResourceExhausted)
  uint64_t rejected_queue = 0;  ///< class queue full (ResourceExhausted)
  uint64_t timed_out = 0;       ///< expired queued (DeadlineExceeded)
  /// Grants per class, indexed by Priority.
  std::array<uint64_t, kNumPriorityClasses> admitted_by_class = {0, 0, 0};
  size_t queued_now = 0;
  size_t running_now = 0;
};

/// See file comment. All methods thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Holds one running slot; move-only. Destruction (of an engaged
  /// ticket) releases the slot and wakes the next queued request.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionQueue* queue) : queue_(queue) {}
    Ticket(Ticket&& other) noexcept
        : queue_(std::exchange(other.queue_, nullptr)) {}
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        ReleaseNow();
        queue_ = std::exchange(other.queue_, nullptr);
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { ReleaseNow(); }

   private:
    void ReleaseNow() {
      if (queue_ != nullptr) std::exchange(queue_, nullptr)->Release();
    }
    AdmissionQueue* queue_ = nullptr;
  };

  /// Admits one request: quota check, then (possibly queued) slot
  /// acquisition. On OK the returned Ticket holds the slot until it is
  /// destroyed. Errors are deterministic: ResourceExhausted (quota or
  /// full queue) or DeadlineExceeded (queue timeout).
  StatusOr<Ticket> Admit(const RequestContext& ctx);

  /// Sets (or replaces) one tenant's quota; see QuotaTracker::SetQuota.
  void SetQuota(const std::string& tenant, double rate_per_second,
                double burst) {
    quota_.SetQuota(tenant, rate_per_second, burst);
  }

  AdmissionStats stats() const;

  QuotaTracker& quota_for_testing() { return quota_; }

 private:
  QuotaTracker quota_;
  AdmissionQueue queue_;
  std::atomic<uint64_t> rejected_quota_{0};
};

}  // namespace mpqopt

#endif  // MPQOPT_SERVICE_ADMISSION_ADMISSION_CONTROLLER_H_
