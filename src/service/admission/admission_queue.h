// Copyright 2026 mpqopt authors.
//
// AdmissionQueue — bounded priority queueing with weighted-fair dequeue
// into a fixed number of running slots (ROADMAP "Admission control").
//
// Three priority classes (interactive / batch / background). A request
// that arrives while a slot is free and nobody is queued runs
// immediately; otherwise it joins its class's bounded FIFO. A full class
// queue sheds the request with a deterministic ResourceExhausted status
// (fail fast beats an unbounded backlog), and a queued request that
// outlives its deadline fails with DeadlineExceeded and leaves the
// queue — shed load never occupies a slot.
//
// Dequeue is weighted-fair stride scheduling: when a slot frees, the
// non-empty class with the smallest served/weight ratio dequeues next,
// so a flood of background work cannot starve interactive queries, yet
// background still gets its weighted share. The pick function is pure
// and exposed statically for deterministic unit tests.

#ifndef MPQOPT_SERVICE_ADMISSION_ADMISSION_QUEUE_H_
#define MPQOPT_SERVICE_ADMISSION_ADMISSION_QUEUE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace mpqopt {

/// Priority class of one request. Lower value = more latency-sensitive.
enum class Priority : uint8_t {
  kInteractive = 0,  ///< a user is waiting on the answer
  kBatch = 1,        ///< throughput-oriented (report jobs, ETL)
  kBackground = 2,   ///< best-effort (recosting, maintenance)
};

inline constexpr int kNumPriorityClasses = 3;

/// "interactive" / "batch" / "background".
const char* PriorityName(Priority priority);

/// Parses a priority name as accepted by the CLI's --priority= flag.
/// The error message enumerates every accepted class.
StatusOr<Priority> ParsePriority(const std::string& name);

/// "interactive|batch|background" — for --help text and error messages.
std::string PriorityList();

/// Configuration of one AdmissionQueue.
struct AdmissionQueueOptions {
  /// Requests allowed to run concurrently (the slot count). Must be
  /// >= 1.
  int max_concurrent = 8;
  /// Per-class queue depth; a request arriving at a full class queue is
  /// shed immediately. Must be >= 0 (0 = never queue, shed instead).
  int queue_depth = 64;
  /// Deadline for queued requests; a request still queued after this
  /// long fails with DeadlineExceeded. <= 0 waits indefinitely.
  int queue_timeout_ms = 10000;
  /// Weighted-fair share per class, indexed by Priority. Minimum 1 each.
  std::array<int, kNumPriorityClasses> weights = {8, 2, 1};
};

/// Counters of one AdmissionQueue (monotonic except the *_now gauges).
struct AdmissionQueueStats {
  /// Granted a slot without queueing (slot free, queues empty).
  uint64_t admitted_immediately = 0;
  /// Granted a slot after waiting in a class queue.
  uint64_t admitted_from_queue = 0;
  /// Shed because the class queue was at queue_depth.
  uint64_t shed_queue_full = 0;
  /// Expired in the queue (DeadlineExceeded).
  uint64_t timed_out = 0;
  /// Grants per class (immediate + from queue), indexed by Priority.
  std::array<uint64_t, kNumPriorityClasses> admitted_by_class = {0, 0, 0};
  /// Requests queued right now / running right now.
  size_t queued_now = 0;
  size_t running_now = 0;
};

/// Bounded weighted-fair priority queue. All methods thread-safe.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionQueueOptions options);

  /// Blocks until a slot is granted (OK — caller MUST Release() when its
  /// work finishes), the class queue is full (immediate
  /// ResourceExhausted), or the queue deadline expires
  /// (DeadlineExceeded).
  Status Acquire(Priority priority);

  /// Returns a slot taken by a successful Acquire and dispatches queued
  /// waiters (weighted-fair).
  void Release();

  AdmissionQueueStats stats() const;

  /// The weighted-fair pick, pure for deterministic tests: among classes
  /// with `nonempty[c]`, returns the one minimizing served[c]/weight[c]
  /// (ties break toward the lower class index, i.e. more interactive);
  /// -1 if every class is empty. Weights are clamped to >= 1.
  static int PickClass(
      const std::array<uint64_t, kNumPriorityClasses>& served,
      const std::array<int, kNumPriorityClasses>& weights,
      const std::array<bool, kNumPriorityClasses>& nonempty);

 private:
  struct Waiter {
    bool granted = false;
  };

  /// Requires mutex_ held: grants slots to queued waiters while any are
  /// free, in weighted-fair order.
  void DispatchLocked();

  const AdmissionQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<std::shared_ptr<Waiter>>, kNumPriorityClasses>
      queues_;
  /// Grants per class while a backlog existed — the stride counters.
  std::array<uint64_t, kNumPriorityClasses> served_ = {0, 0, 0};
  int running_ = 0;
  AdmissionQueueStats stats_;
};

}  // namespace mpqopt

#endif  // MPQOPT_SERVICE_ADMISSION_ADMISSION_QUEUE_H_
