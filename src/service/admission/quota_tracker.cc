// Copyright 2026 mpqopt authors.

#include "service/admission/quota_tracker.h"

#include <algorithm>
#include <utility>

namespace mpqopt {

QuotaTracker::QuotaTracker(QuotaTrackerOptions options)
    : options_(std::move(options)) {}

std::chrono::steady_clock::time_point QuotaTracker::Now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::steady_clock::now();
}

void QuotaTracker::SetQuota(const std::string& tenant, double rate_per_second,
                            double burst) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = buckets_[tenant];
  b.rate_per_second = rate_per_second;
  b.burst = std::max(burst, 1.0);
  b.tokens = b.burst;
  b.last_refill = Now();
}

QuotaTracker::Bucket& QuotaTracker::BucketFor(const std::string& tenant) {
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return it->second;
  Bucket b;
  b.rate_per_second = options_.default_rate_per_second;
  b.burst = std::max(options_.default_burst, 1.0);
  b.tokens = b.burst;
  b.last_refill = Now();
  return buckets_.emplace(tenant, b).first->second;
}

void QuotaTracker::Refill(Bucket* bucket) {
  const auto now = Now();
  if (now > bucket->last_refill) {
    const double elapsed =
        std::chrono::duration<double>(now - bucket->last_refill).count();
    bucket->tokens =
        std::min(bucket->burst,
                 bucket->tokens + elapsed * bucket->rate_per_second);
  }
  bucket->last_refill = now;
}

Status QuotaTracker::TryAcquire(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = BucketFor(tenant);
  if (b.rate_per_second <= 0) return Status::OK();  // unlimited
  Refill(&b);
  if (b.tokens < 1.0) {
    return Status::ResourceExhausted("tenant '" + tenant +
                                     "' is over its admission quota");
  }
  b.tokens -= 1.0;
  return Status::OK();
}

double QuotaTracker::TokensForTesting(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = BucketFor(tenant);
  if (b.rate_per_second > 0) Refill(&b);
  return b.tokens;
}

}  // namespace mpqopt
