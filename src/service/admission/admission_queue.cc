// Copyright 2026 mpqopt authors.

#include "service/admission/admission_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/macros.h"

namespace mpqopt {
namespace {

struct PriorityRow {
  Priority priority;
  const char* name;
};

constexpr PriorityRow kPriorityTable[] = {
    {Priority::kInteractive, "interactive"},
    {Priority::kBatch, "batch"},
    {Priority::kBackground, "background"},
};

}  // namespace

const char* PriorityName(Priority priority) {
  for (const PriorityRow& row : kPriorityTable) {
    if (row.priority == priority) return row.name;
  }
  return "unknown";
}

StatusOr<Priority> ParsePriority(const std::string& name) {
  for (const PriorityRow& row : kPriorityTable) {
    if (name == row.name) return row.priority;
  }
  return Status::InvalidArgument("unknown priority '" + name +
                                 "' (expected " + PriorityList() + ")");
}

std::string PriorityList() {
  std::string out;
  for (const PriorityRow& row : kPriorityTable) {
    if (!out.empty()) out += '|';
    out += row.name;
  }
  return out;
}

AdmissionQueue::AdmissionQueue(AdmissionQueueOptions options)
    : options_(std::move(options)) {
  MPQOPT_CHECK(options_.max_concurrent >= 1);
  MPQOPT_CHECK(options_.queue_depth >= 0);
}

int AdmissionQueue::PickClass(
    const std::array<uint64_t, kNumPriorityClasses>& served,
    const std::array<int, kNumPriorityClasses>& weights,
    const std::array<bool, kNumPriorityClasses>& nonempty) {
  int best = -1;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (!nonempty[c]) continue;
    if (best < 0) {
      best = c;
      continue;
    }
    // served[c]/weight[c] < served[best]/weight[best], cross-multiplied
    // to stay exact in integers; ties keep `best` (the lower index).
    const uint64_t wc = static_cast<uint64_t>(std::max(weights[c], 1));
    const uint64_t wb = static_cast<uint64_t>(std::max(weights[best], 1));
    if (served[c] * wb < served[best] * wc) best = c;
  }
  return best;
}

void AdmissionQueue::DispatchLocked() {
  bool granted_any = false;
  while (running_ < options_.max_concurrent) {
    std::array<bool, kNumPriorityClasses> nonempty;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      nonempty[c] = !queues_[c].empty();
    }
    const int c = PickClass(served_, options_.weights, nonempty);
    if (c < 0) break;
    std::shared_ptr<Waiter> waiter = std::move(queues_[c].front());
    queues_[c].pop_front();
    waiter->granted = true;
    ++running_;
    ++served_[c];
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

Status AdmissionQueue::Acquire(Priority priority) {
  const int c = static_cast<int>(priority);
  MPQOPT_CHECK(c >= 0 && c < kNumPriorityClasses);
  std::unique_lock<std::mutex> lock(mutex_);

  bool queues_empty = true;
  for (const auto& q : queues_) queues_empty &= q.empty();
  if (running_ < options_.max_concurrent && queues_empty) {
    ++running_;
    ++stats_.admitted_immediately;
    ++stats_.admitted_by_class[c];
    return Status::OK();
  }

  if (queues_[c].size() >= static_cast<size_t>(options_.queue_depth)) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        std::string(PriorityName(priority)) +
        " admission queue is full (depth " +
        std::to_string(options_.queue_depth) + ")");
  }

  auto waiter = std::make_shared<Waiter>();
  queues_[c].push_back(waiter);
  const auto granted = [&waiter] { return waiter->granted; };
  if (options_.queue_timeout_ms <= 0) {
    cv_.wait(lock, granted);
  } else if (!cv_.wait_for(
                 lock, std::chrono::milliseconds(options_.queue_timeout_ms),
                 granted)) {
    // Expired while still queued: leave the queue so the slot
    // dispatcher never grants to an abandoned waiter.
    auto& q = queues_[c];
    q.erase(std::find(q.begin(), q.end(), waiter));
    ++stats_.timed_out;
    return Status::DeadlineExceeded(
        std::string(PriorityName(priority)) + " request expired after " +
        std::to_string(options_.queue_timeout_ms) + " ms in queue");
  }
  ++stats_.admitted_from_queue;
  ++stats_.admitted_by_class[c];
  return Status::OK();
}

void AdmissionQueue::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  MPQOPT_CHECK(running_ > 0);
  --running_;
  DispatchLocked();
}

AdmissionQueueStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionQueueStats out = stats_;
  out.queued_now = 0;
  for (const auto& q : queues_) out.queued_now += q.size();
  out.running_now = static_cast<size_t>(running_);
  return out;
}

}  // namespace mpqopt
