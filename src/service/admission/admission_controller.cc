// Copyright 2026 mpqopt authors.

#include "service/admission/admission_controller.h"

#include <thread>

namespace mpqopt {
namespace {

QuotaTrackerOptions MakeQuotaOptions(const AdmissionOptions& options) {
  QuotaTrackerOptions out;
  out.default_rate_per_second = options.tenant_rate;
  out.default_burst = options.tenant_burst;
  out.clock = options.clock;
  return out;
}

AdmissionQueueOptions MakeQueueOptions(const AdmissionOptions& options) {
  AdmissionQueueOptions out;
  out.max_concurrent = options.max_concurrent;
  if (out.max_concurrent <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out.max_concurrent = 2 * static_cast<int>(hw == 0 ? 4 : hw);
  }
  out.queue_depth = options.queue_depth;
  out.queue_timeout_ms = options.queue_timeout_ms;
  out.weights = options.weights;
  return out;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : quota_(MakeQuotaOptions(options)),
      queue_(MakeQueueOptions(options)) {}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    const RequestContext& ctx) {
  Status quota = quota_.TryAcquire(ctx.tenant);
  if (!quota.ok()) {
    rejected_quota_.fetch_add(1, std::memory_order_relaxed);
    return quota;
  }
  Status slot = queue_.Acquire(ctx.priority);
  if (!slot.ok()) return slot;
  return Ticket(&queue_);
}

AdmissionStats AdmissionController::stats() const {
  const AdmissionQueueStats q = queue_.stats();
  AdmissionStats out;
  out.admitted = q.admitted_immediately + q.admitted_from_queue;
  out.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  out.rejected_queue = q.shed_queue_full;
  out.timed_out = q.timed_out;
  out.admitted_by_class = q.admitted_by_class;
  out.queued_now = q.queued_now;
  out.running_now = q.running_now;
  return out;
}

}  // namespace mpqopt
