// Copyright 2026 mpqopt authors.

#include "service/admission/admission_controller.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mpqopt {
namespace {

QuotaTrackerOptions MakeQuotaOptions(const AdmissionOptions& options) {
  QuotaTrackerOptions out;
  out.default_rate_per_second = options.tenant_rate;
  out.default_burst = options.tenant_burst;
  out.clock = options.clock;
  return out;
}

AdmissionQueueOptions MakeQueueOptions(const AdmissionOptions& options) {
  AdmissionQueueOptions out;
  out.max_concurrent = options.max_concurrent;
  if (out.max_concurrent <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out.max_concurrent = 2 * static_cast<int>(hw == 0 ? 4 : hw);
  }
  out.queue_depth = options.queue_depth;
  out.queue_timeout_ms = options.queue_timeout_ms;
  out.weights = options.weights;
  return out;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : quota_(MakeQuotaOptions(options)),
      queue_(MakeQueueOptions(options)) {}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    const RequestContext& ctx) {
  {
    obs::Span quota_span("admission.quota");
    Status quota = quota_.TryAcquire(ctx.tenant);
    if (!quota.ok()) {
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      return quota;
    }
  }
  // Queue wait is where admission latency actually accrues; the
  // histogram is recorded whether or not the slot was granted (a shed or
  // timed-out request waited, too).
  static obs::Histogram* const queue_wait_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kQueueWaitHistogram, obs::Histogram::LatencyBoundariesMs());
  const auto wait_start = std::chrono::steady_clock::now();
  Status slot = Status::OK();
  {
    obs::Span queue_span("admission.queue_wait");
    slot = queue_.Acquire(ctx.priority);
  }
  queue_wait_ms->Record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  if (!slot.ok()) return slot;
  return Ticket(&queue_);
}

AdmissionStats AdmissionController::stats() const {
  const AdmissionQueueStats q = queue_.stats();
  AdmissionStats out;
  out.admitted = q.admitted_immediately + q.admitted_from_queue;
  out.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  out.rejected_queue = q.shed_queue_full;
  out.timed_out = q.timed_out;
  out.admitted_by_class = q.admitted_by_class;
  out.queued_now = q.queued_now;
  out.running_now = q.running_now;
  return out;
}

}  // namespace mpqopt
