// Copyright 2026 mpqopt authors.

#include "service/optimizer_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace mpqopt {

OptimizerService::OptimizerService(ServiceOptions options)
    : options_(std::move(options)), backend_(options_.backend) {
  if (backend_ == nullptr) {
    BackendOptions backend_opts;
    backend_opts.network = options_.network;
    backend_opts.max_threads = options_.backend_threads;
    backend_opts.workers_addr = options_.workers_addr;
    StatusOr<std::shared_ptr<ExecutionBackend>> made =
        MakeBackend(options_.backend_kind, backend_opts);
    if (made.ok()) {
      backend_ = std::move(made).value();
    } else {
      // Surface the misconfiguration (e.g. kRpc without reachable
      // workers) from Optimize() instead of aborting a serving process.
      init_error_ = made.status();
    }
  }
  if (options_.dispatcher_threads < 1) options_.dispatcher_threads = 1;
}

StatusOr<MpqResult> OptimizerService::Optimize(const Query& query,
                                               const MpqOptions& options) {
  if (backend_ == nullptr) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries_failed;
    return init_error_;
  }
  const auto start = std::chrono::steady_clock::now();
  MpqOptions effective = options;
  effective.backend = backend_;
  MpqOptimizer optimizer(std::move(effective));
  StatusOr<MpqResult> result = optimizer.Optimize(query);
  const auto end = std::chrono::steady_clock::now();
  const double latency = std::chrono::duration<double>(end - start).count();

  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (result.ok()) {
    ++stats_.queries_completed;
    stats_.total_simulated_seconds += result.value().simulated_seconds;
    stats_.network_bytes += result.value().network_bytes;
    stats_.network_messages += result.value().network_messages;
  } else {
    ++stats_.queries_failed;
  }
  stats_.total_latency_seconds += latency;
  return result;
}

BatchReport OptimizerService::OptimizeBatch(const std::vector<Query>& queries,
                                            const MpqOptions& options) {
  const size_t n = queries.size();
  BatchReport report;
  report.latency_seconds.assign(n, 0.0);
  report.results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    report.results.push_back(Status::Internal("query not executed"));
  }
  if (n == 0) return report;

  const auto batch_start = std::chrono::steady_clock::now();
  std::atomic<size_t> next_query{0};
  const auto drive = [&]() {
    while (true) {
      const size_t i = next_query.fetch_add(1);
      if (i >= n) return;
      const auto start = std::chrono::steady_clock::now();
      report.results[i] = Optimize(queries[i], options);
      const auto end = std::chrono::steady_clock::now();
      report.latency_seconds[i] =
          std::chrono::duration<double>(end - start).count();
    }
  };

  const size_t dispatchers =
      std::min(n, static_cast<size_t>(options_.dispatcher_threads));
  if (dispatchers <= 1) {
    drive();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(dispatchers);
    for (size_t i = 0; i < dispatchers; ++i) pool.emplace_back(drive);
    for (std::thread& t : pool) t.join();
  }
  const auto batch_end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(batch_end - batch_start).count();

  size_t completed = 0;
  for (const StatusOr<MpqResult>& r : report.results) {
    if (r.ok()) ++completed;
  }
  report.queries_per_second =
      report.wall_seconds > 0
          ? static_cast<double>(completed) / report.wall_seconds
          : 0;
  return report;
}

ServiceStats OptimizerService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace mpqopt
