// Copyright 2026 mpqopt authors.

#include "service/optimizer_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "plancache/fingerprint.h"

namespace mpqopt {

OptimizerService::OptimizerService(ServiceOptions options)
    : options_(std::move(options)), backend_(options_.backend) {
  if (backend_ == nullptr) {
    BackendOptions backend_opts;
    backend_opts.network = options_.network;
    backend_opts.max_threads = options_.backend_threads;
    backend_opts.workers_addr = options_.workers_addr;
    backend_opts.worker_retries = options_.worker_retries;
    backend_opts.worker_backoff_ms = options_.worker_backoff_ms;
    backend_opts.coalesce_scatter = options_.coalesce_scatter;
    StatusOr<std::shared_ptr<ExecutionBackend>> made =
        MakeBackend(options_.backend_kind, backend_opts);
    if (made.ok()) {
      backend_ = std::move(made).value();
    } else {
      // Surface the misconfiguration (e.g. kRpc without reachable
      // workers) from Optimize() instead of aborting a serving process.
      init_error_ = made.status();
    }
  }
  if (options_.dispatcher_threads < 1) options_.dispatcher_threads = 1;
  if (options_.enable_plan_cache) {
    PlanCacheOptions cache_opts;
    cache_opts.capacity_bytes = options_.plan_cache_bytes;
    cache_opts.ttl_seconds = options_.plan_cache_ttl_seconds;
    cache_opts.num_shards = options_.plan_cache_shards;
    cache_ = std::make_unique<PlanCache>(cache_opts);
  }
  if (options_.enable_admission) {
    admission_ = std::make_unique<AdmissionController>(options_.admission);
  }
}

StatusOr<MpqResult> OptimizerService::RunOptimizer(const Query& query,
                                                   const MpqOptions& options) {
  MpqOptions effective = options;
  effective.backend = backend_;
  MpqOptimizer optimizer(std::move(effective));
  return optimizer.Optimize(query);
}

namespace {

/// Materializes a served plan into the result shape Optimize returns;
/// the arena copy happens on the caller's thread, outside any cache lock.
MpqResult ResultFromCachedPlan(const CachedPlan& plan) {
  MpqResult result;
  result.arena = plan.arena;
  result.best = plan.best;
  result.from_plan_cache = true;
  return result;
}

}  // namespace

StatusOr<MpqResult> OptimizerService::OptimizeThroughCache(
    const Query& query, const MpqOptions& options, bool* cache_hit) {
  const PlanCacheKey key = FingerprintQuery(query, options);
  // Fast path: warm hits never touch the single-flight table.
  if (std::shared_ptr<const CachedPlan> hit = cache_->Lookup(key)) {
    *cache_hit = true;
    return ResultFromCachedPlan(*hit);
  }
  const std::string flight_key(key.bytes.begin(), key.bytes.end());
  for (;;) {
    std::shared_ptr<const CachedPlan> handed;
    bool leader;
    {
      // Waiters block here until the leader's flight lands; the span
      // makes queueing behind a concurrent identical query visible.
      obs::Span flight_span("cache.flight_wait");
      leader = flights_.BeginOrWait(flight_key, &handed);
    }
    if (leader) {
      // Double-check under leadership: a previous leader may have
      // populated the cache between our probe and winning the flight,
      // in which case re-optimizing would break exactly-once. The miss
      // was already counted by the fast-path probe above.
      if (std::shared_ptr<const CachedPlan> hit =
              cache_->Lookup(key, /*count_miss=*/false)) {
        flights_.Done(flight_key, hit);
        *cache_hit = true;
        return ResultFromCachedPlan(*hit);
      }
      // Leader: this call runs the one real optimization for every
      // concurrent request on this fingerprint. Waiters get the plan
      // handed to them through the flight, so they are served even when
      // it was too large for the byte budget to retain. The epoch is
      // captured before optimizing: if statistics change mid-run, the
      // entry is inserted already-stale instead of outliving the
      // invalidation.
      const uint64_t epoch = cache_->statistics_epoch();
      StatusOr<MpqResult> result = RunOptimizer(query, options);
      std::shared_ptr<const CachedPlan> plan;
      if (result.ok()) {
        plan = cache_->Insert(key, query.TableStatistics(),
                              result.value().arena, result.value().best,
                              epoch);
      }
      flights_.Done(flight_key, std::move(plan));
      *cache_hit = false;
      return result;
    }
    if (handed != nullptr) {
      *cache_hit = true;
      return ResultFromCachedPlan(*handed);
    }
    // The leader failed: loop to become the next leader and report the
    // error (or a late success) from our own optimization run.
  }
}

StatusOr<MpqResult> OptimizerService::Optimize(const Query& query,
                                               const MpqOptions& options) {
  return Optimize(query, options, RequestContext());
}

StatusOr<MpqResult> OptimizerService::Optimize(const Query& query,
                                               const MpqOptions& options,
                                               const RequestContext& ctx) {
  obs::TraceCollector* const collector = options_.trace_collector;
  if (collector == nullptr) return OptimizeTraced(query, options, ctx);
  // Trace lifecycle wraps the whole call: the root span is the service
  // latency, and everything below — admission wait included — nests
  // under it on this thread's trace context.
  std::unique_ptr<obs::QueryTrace> trace = collector->StartTrace(
      "q" + std::to_string(query.num_tables()) + "t/" + ctx.tenant);
  StatusOr<MpqResult> result = Status::Internal("query not executed");
  {
    obs::TraceContextScope trace_scope(trace.get(), obs::kNoSpan);
    obs::Span root_span("service.optimize");
    result = OptimizeTraced(query, options, ctx);
  }
  collector->Collect(std::move(trace));
  return result;
}

StatusOr<MpqResult> OptimizerService::OptimizeTraced(
    const Query& query, const MpqOptions& options, const RequestContext& ctx) {
  // Admission is the outermost gate: a rejected request costs the
  // service nothing downstream — no fingerprinting, no cache probe, no
  // backend round. The ticket (when admission is on) holds a running
  // slot until this call returns.
  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    StatusOr<AdmissionController::Ticket> admitted = admission_->Admit(ctx);
    if (!admitted.ok()) {
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kReject, "tenant=%s: %s", ctx.tenant.c_str(),
          admitted.status().ToString().c_str());
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.queries_failed;
      return admitted.status();
    }
    obs::FlightRecorder::Global().Record(obs::FlightEventKind::kAdmit,
                                         "tenant=%s %zut query",
                                         ctx.tenant.c_str(),
                                         query.num_tables());
    ticket = std::move(admitted).value();
  }
  if (backend_ == nullptr) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries_failed;
    return init_error_;
  }
  const auto start = std::chrono::steady_clock::now();
  bool cache_hit = false;
  StatusOr<MpqResult> result =
      cache_ != nullptr ? OptimizeThroughCache(query, options, &cache_hit)
                        : RunOptimizer(query, options);
  const auto end = std::chrono::steady_clock::now();
  const double latency = std::chrono::duration<double>(end - start).count();
  // The one authoritative service-latency distribution: statz, the CLI
  // report, and the macrobench tail records all read this histogram.
  static obs::Histogram* const latency_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          obs::kServiceLatencyHistogram,
          obs::Histogram::LatencyBoundariesMs());
  latency_ms->Record(latency * 1e3);

  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (result.ok()) {
    ++stats_.queries_completed;
    stats_.total_simulated_seconds += result.value().simulated_seconds;
    stats_.network_bytes += result.value().network_bytes;
    stats_.network_messages += result.value().network_messages;
  } else {
    ++stats_.queries_failed;
  }
  if (cache_ != nullptr) {
    // Every cache-enabled query is a hit or an authoritative (leader)
    // computation; a failed leader still counts as a miss — the
    // optimizer genuinely ran.
    if (cache_hit) {
      ++stats_.cache_hits;
    } else {
      ++stats_.cache_misses;
    }
  }
  stats_.total_latency_seconds += latency;
  return result;
}

BatchReport OptimizerService::OptimizeBatch(const std::vector<Query>& queries,
                                            const MpqOptions& options,
                                            const RequestContext& ctx) {
  const size_t n = queries.size();
  BatchReport report;
  report.latency_seconds.assign(n, 0.0);
  report.results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    report.results.push_back(Status::Internal("query not executed"));
  }
  if (n == 0) return report;

  const auto batch_start = std::chrono::steady_clock::now();
  std::atomic<size_t> next_query{0};
  const auto drive = [&]() {
    while (true) {
      const size_t i = next_query.fetch_add(1);
      if (i >= n) return;
      const auto start = std::chrono::steady_clock::now();
      report.results[i] = Optimize(queries[i], options, ctx);
      const auto end = std::chrono::steady_clock::now();
      report.latency_seconds[i] =
          std::chrono::duration<double>(end - start).count();
    }
  };

  const size_t dispatchers =
      std::min(n, static_cast<size_t>(options_.dispatcher_threads));
  if (dispatchers <= 1) {
    drive();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(dispatchers);
    for (size_t i = 0; i < dispatchers; ++i) pool.emplace_back(drive);
    for (std::thread& t : pool) t.join();
  }
  const auto batch_end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(batch_end - batch_start).count();

  size_t completed = 0;
  for (const StatusOr<MpqResult>& r : report.results) {
    if (r.ok()) ++completed;
  }
  report.queries_per_second =
      report.wall_seconds > 0
          ? static_cast<double>(completed) / report.wall_seconds
          : 0;
  return report;
}

ServiceStats OptimizerService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  if (cache_ != nullptr) {
    const PlanCacheStats cache_stats = cache_->stats();
    snapshot.cache_evictions = cache_stats.evictions();
    snapshot.cache_evictions_capacity = cache_stats.evictions_capacity;
    snapshot.cache_evictions_ttl = cache_stats.evictions_ttl;
    snapshot.cache_evictions_invalidated = cache_stats.evictions_invalidated;
  }
  if (admission_ != nullptr) {
    const AdmissionStats admission_stats = admission_->stats();
    snapshot.admitted = admission_stats.admitted;
    snapshot.rejected_quota = admission_stats.rejected_quota;
    snapshot.rejected_queue = admission_stats.rejected_queue;
    snapshot.admission_timed_out = admission_stats.timed_out;
    snapshot.admission_queued_now = admission_stats.queued_now;
    snapshot.admission_running_now = admission_stats.running_now;
  }
  if (backend_ != nullptr) {
    BackendHealth health = backend_->health();
    snapshot.worker_reconnect_attempts = health.reconnect_attempts;
    snapshot.worker_reconnects = health.reconnects;
    snapshot.tasks_rescattered = health.tasks_rescattered;
    snapshot.rounds_recovered = health.rounds_recovered;
    snapshot.scatter_batches = health.scatter_batches;
    snapshot.tasks_coalesced = health.tasks_coalesced;
    snapshot.sessions_opened = health.sessions.sessions_opened;
    snapshot.session_rounds = health.sessions.session_rounds;
    snapshot.sessions_recovered = health.sessions.sessions_recovered;
    snapshot.sessions_failed = health.sessions.sessions_failed;
    snapshot.workers = std::move(health.workers);
  }
  return snapshot;
}

}  // namespace mpqopt
