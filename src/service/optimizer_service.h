// Copyright 2026 mpqopt authors.
//
// OptimizerService — the serving layer on top of the execution stack.
//
// The benchmark harness runs one MpqOptimizer at a time; a production
// optimizer endpoint faces many concurrent Optimize(query) calls. This
// service multiplexes the worker tasks of all in-flight queries onto ONE
// shared ExecutionBackend (by default an AsyncBatchBackend, whose
// persistent pool interleaves concurrently submitted rounds fairly —
// a large query cannot starve small ones), and keeps per-query and
// aggregate throughput statistics.
//
// With the plan cache enabled (ServiceOptions::enable_plan_cache), the
// service fingerprints every query (plancache/fingerprint.h) and consults
// a sharded LRU (plancache/plan_cache.h) before submitting any worker
// round: a hit skips the whole scatter/gather round trip on every
// backend, and concurrent misses on the same fingerprint are
// single-flighted — one master optimizes, the rest wait and reuse.
//
// Thread safety: Optimize() may be called from any number of threads
// concurrently. OptimizeBatch() is a convenience driver that runs a whole
// batch through a bounded dispatcher pool and reports batch wall time,
// per-query latency, and queries/second.

#ifndef MPQOPT_SERVICE_OPTIMIZER_SERVICE_H_
#define MPQOPT_SERVICE_OPTIMIZER_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "mpq/mpq.h"
#include "obs/trace.h"
#include "plancache/plan_cache.h"
#include "service/admission/admission_controller.h"

namespace mpqopt {

/// Configuration of the service runtime.
struct ServiceOptions {
  /// Shared worker-execution runtime. Null (default) builds one from
  /// `backend_kind`, `network`, `backend_threads`, and (for kRpc)
  /// `workers_addr`. If that construction fails — e.g. kRpc with no
  /// reachable workers — the service reports the error from every
  /// Optimize() call instead of aborting.
  std::shared_ptr<ExecutionBackend> backend;
  BackendKind backend_kind = BackendKind::kAsyncBatch;
  NetworkModel network;
  /// Host threads of the shared backend (0 = hardware concurrency).
  int backend_threads = 0;
  /// Worker endpoints when backend_kind == kRpc and `backend` is null.
  std::string workers_addr;
  /// Supervision knobs forwarded to the rpc backend (see BackendOptions):
  /// redial budget per worker failure episode, and the initial redial
  /// backoff (doubling, capped).
  int worker_retries = 2;
  int worker_backoff_ms = 50;
  /// Maximum number of query masters driven concurrently by
  /// OptimizeBatch (the per-query master work: serialize, submit round,
  /// final prune). Optimize() callers bring their own threads and are
  /// not bounded by this.
  int dispatcher_threads = 4;
  /// Memoized serving: fingerprint each query and serve repeats from the
  /// plan cache instead of re-optimizing (CLI: --plan-cache).
  bool enable_plan_cache = false;
  /// Byte budget of the plan cache (CLI: --plan-cache-mb).
  size_t plan_cache_bytes = size_t{64} << 20;
  /// Cached-plan lifetime; <= 0 caches forever (CLI: --plan-cache-ttl).
  double plan_cache_ttl_seconds = 0;
  /// Lock shards of the plan cache (rounded up to a power of two).
  int plan_cache_shards = 16;
  /// Admission control in front of the backend (CLI: --admission): an
  /// over-quota tenant or a full priority queue is rejected with a
  /// deterministic error before any worker round runs. Off by default —
  /// every request is admitted, exactly the pre-admission behavior.
  bool enable_admission = false;
  /// Quota / queue knobs when admission is enabled (CLI: --tenant-rate,
  /// --tenant-burst, --queue-depth).
  AdmissionOptions admission;
  /// Scatter coalescing on the rpc backend (BackendOptions::
  /// coalesce_scatter; no effect on in-process kinds). CLI: --coalesce.
  bool coalesce_scatter = false;
  /// Query-lifecycle tracing (CLI: --trace-out, --slow-query-ms). Null
  /// (default) disables tracing entirely: every Span in the serving
  /// stack stays inert and no per-query state is allocated. Non-null,
  /// each Optimize() call records a span tree — admission, cache probe,
  /// round phases, worker-side timings over rpc — into the collector.
  /// Not owned; must outlive the service.
  obs::TraceCollector* trace_collector = nullptr;
};

/// Aggregate counters since service construction.
struct ServiceStats {
  uint64_t queries_completed = 0;
  uint64_t queries_failed = 0;
  /// Sum of per-query service latencies (seconds).
  double total_latency_seconds = 0;
  /// Sum of per-query modeled cluster times (seconds).
  double total_simulated_seconds = 0;
  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;
  /// Queries served from the plan cache (no worker round ran).
  uint64_t cache_hits = 0;
  /// Queries that ran a full optimization with the cache enabled. A
  /// single-flight waiter counts toward hits, not misses — exactly one
  /// miss is recorded per computed fingerprint.
  uint64_t cache_misses = 0;
  /// Entries evicted from the plan cache for any reason (the sum of the
  /// three per-cause counters below).
  uint64_t cache_evictions = 0;
  /// Evictions split by cause: LRU byte-budget pressure, TTL expiry, and
  /// statistics invalidation (epoch bump, InvalidateWhere/Table, Clear).
  uint64_t cache_evictions_capacity = 0;
  uint64_t cache_evictions_ttl = 0;
  uint64_t cache_evictions_invalidated = 0;

  /// Remote-worker supervision (zero/empty on in-process backends; see
  /// cluster/supervisor/worker_supervisor.h). Redials attempted and
  /// succeeded across all workers:
  uint64_t worker_reconnect_attempts = 0;
  uint64_t worker_reconnects = 0;
  /// Tasks re-scattered after a worker failure, and rounds that needed
  /// at least one recovery pass:
  uint64_t tasks_rescattered = 0;
  uint64_t rounds_recovered = 0;
  /// Stateful-session activity on the shared backend (cluster/session/):
  /// session groups opened, stateful rounds run, replicas rebuilt by
  /// re-open + replay, and sessions that ended in an unrecoverable
  /// error. All-zero unless session-based work (e.g. SMA) ran.
  uint64_t sessions_opened = 0;
  uint64_t session_rounds = 0;
  uint64_t sessions_recovered = 0;
  uint64_t sessions_failed = 0;
  /// Admission outcomes (service/admission/; all-zero with admission
  /// off): requests granted a slot, rejected over quota, shed at a full
  /// class queue, and expired waiting. The gauges count requests queued
  /// or running at snapshot time.
  uint64_t admitted = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue = 0;
  uint64_t admission_timed_out = 0;
  size_t admission_queued_now = 0;
  size_t admission_running_now = 0;
  /// Scatter coalescing on the rpc backend: batch envelopes sent and
  /// task requests that rode in them (zero when coalescing is off or the
  /// backend is in-process).
  uint64_t scatter_batches = 0;
  uint64_t tasks_coalesced = 0;
  /// Per-worker endpoint, health state, and failure counters.
  std::vector<WorkerHealthSnapshot> workers;
};

/// Outcome of one OptimizeBatch call.
struct BatchReport {
  /// Per-query results, in input order.
  std::vector<StatusOr<MpqResult>> results;
  /// Measured service latency per query (seconds), in input order.
  std::vector<double> latency_seconds;
  /// Wall-clock seconds for the whole batch.
  double wall_seconds = 0;
  /// Completed queries per wall-clock second.
  double queries_per_second = 0;
};

/// Serves many concurrent optimizations over one shared backend.
class OptimizerService {
 public:
  explicit OptimizerService(ServiceOptions options);

  /// Optimizes one query with the given per-query options; the options'
  /// backend field is overridden with the service's shared backend.
  /// Thread-safe; concurrent calls share the worker pool. Runs as the
  /// default tenant at interactive priority — with default quotas this
  /// admits unconditionally, so existing callers see no change.
  StatusOr<MpqResult> Optimize(const Query& query, const MpqOptions& options);

  /// Same, on behalf of `ctx`'s tenant and priority class. With
  /// admission enabled the request passes the quota and (possibly) the
  /// priority queue first; over-quota and shed requests fail with
  /// ResourceExhausted, queue-expired ones with DeadlineExceeded, all
  /// before any backend round runs.
  StatusOr<MpqResult> Optimize(const Query& query, const MpqOptions& options,
                               const RequestContext& ctx);

  /// Optimizes every query with the same shared option set, concurrently
  /// on up to dispatcher_threads query masters. Every query runs on
  /// behalf of `ctx` (default: default tenant, interactive).
  BatchReport OptimizeBatch(const std::vector<Query>& queries,
                            const MpqOptions& options,
                            const RequestContext& ctx = RequestContext());

  /// Aggregate counters since construction (thread-safe snapshot).
  ServiceStats stats() const;

  /// OK iff the service has a usable backend; otherwise the construction
  /// error every Optimize() call will report.
  const Status& init_status() const { return init_error_; }

  /// Requires init_status().ok().
  const ExecutionBackend& backend() const { return *backend_; }
  std::shared_ptr<ExecutionBackend> shared_backend() const {
    return backend_;
  }

  /// The plan cache, or null when disabled. Callers invalidate through
  /// it directly on catalog changes, e.g.
  /// `service.plan_cache()->InvalidateTable("R3")` after a cardinality
  /// refresh, or `BumpStatisticsEpoch()` after a bulk statistics reload.
  PlanCache* plan_cache() const { return cache_.get(); }

  /// The admission controller, or null when disabled. Callers set
  /// per-tenant quotas through it, e.g.
  /// `service.admission()->SetQuota("analytics", 5, 20)`.
  AdmissionController* admission() const { return admission_.get(); }

 private:
  /// Optimize() body; runs inside the query's trace context (when
  /// tracing is enabled) so every span below lands in the trace.
  StatusOr<MpqResult> OptimizeTraced(const Query& query,
                                     const MpqOptions& options,
                                     const RequestContext& ctx);
  /// One full (uncached) optimization on the shared backend.
  StatusOr<MpqResult> RunOptimizer(const Query& query,
                                   const MpqOptions& options);
  /// Cache-aware path: probe, single-flight the miss, insert on success.
  StatusOr<MpqResult> OptimizeThroughCache(const Query& query,
                                           const MpqOptions& options,
                                           bool* cache_hit);

  ServiceOptions options_;
  std::shared_ptr<ExecutionBackend> backend_;
  Status init_error_;
  std::unique_ptr<PlanCache> cache_;
  std::unique_ptr<AdmissionController> admission_;
  SingleFlight flights_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
};

}  // namespace mpqopt

#endif  // MPQOPT_SERVICE_OPTIMIZER_SERVICE_H_
