// Copyright 2026 mpqopt authors.
//
// MPQ — massively parallel query optimization (paper Section 4).
//
// The master maps the optimization of one query to exactly one task per
// worker: it serializes (query + statistics, partition id, partition
// count) to each of the m workers, each worker independently decodes its
// partition id into join-order constraints, runs the constrained DP over
// its plan-space partition, and returns the partition-optimal plan(s).
// The master's final prune over the m returned plans yields the global
// optimum. One communication round per query; no worker-to-worker
// communication; O(m * (b_q + b_p)) bytes on the wire (Theorem 1).

#ifndef MPQOPT_MPQ_MPQ_H_
#define MPQOPT_MPQ_MPQ_H_

#include <cstdint>
#include <vector>

#include <memory>

#include "catalog/query.h"
#include "cluster/backend.h"
#include "common/status.h"
#include "net/network_model.h"
#include "optimizer/dp.h"
#include "plan/plan.h"

namespace mpqopt {

/// Options of one MPQ optimization run.
struct MpqOptions {
  PlanSpace space = PlanSpace::kLinear;
  Objective objective = Objective::kTime;
  /// Approximation factor of the multi-objective pruning function.
  double alpha = 10.0;
  /// Enable the interesting-orders DP on the workers (single-objective
  /// only; see optimizer/orders.h).
  bool interesting_orders = false;
  /// Number of plan-space partitions / worker tasks. Must be a power of
  /// two not exceeding MaxWorkers(n, space); see UsableWorkers().
  uint64_t num_workers = 1;
  /// Simulated-cluster parameters.
  NetworkModel network;
  /// Host-side thread cap for running worker tasks (0 = all cores); only
  /// consulted when `backend` is null and a private backend is created.
  int max_threads = 0;
  /// Worker-execution runtime. Null (default) gives the optimizer a
  /// private ThreadBackend built from `network` and `max_threads`. Pass a
  /// shared backend (see MakeBackend / OptimizerService) to multiplex
  /// many optimizer runs onto one long-lived worker pool; a non-null
  /// backend's own NetworkModel governs the simulated cluster time.
  std::shared_ptr<ExecutionBackend> backend;
  CostModelOptions cost_options;
  int64_t max_memo_entries = int64_t{1} << 28;
  /// Threads for the master's Phase-3 response decode (sharded finalize).
  /// 0 = auto (hardware concurrency, capped by the partition count);
  /// 1 = fully serial. Plan choice is byte-identical at every setting:
  /// only the decode is parallel, the prune itself merges the partitions
  /// in their original order. Not part of the plan-cache fingerprint —
  /// a master-side execution knob cannot change the answer.
  int finalize_threads = 0;
};

/// Everything the benchmarks need from one run.
struct MpqResult {
  /// Master-side arena holding the returned plans.
  PlanArena arena;
  /// Globally optimal plan (kTime: exactly one) or the merged
  /// alpha-approximate Pareto frontier (kTimeAndBuffer).
  std::vector<PlanId> best;

  /// Modeled cluster completion time (paper "Time"): task dispatch +
  /// slowest worker including transfers + master serialize/prune time.
  double simulated_seconds = 0;
  /// Measured wall-clock on this host (workers multiplexed onto cores).
  double wall_seconds = 0;
  /// Measured master-side time (serialization + final pruning).
  double master_seconds = 0;
  /// Max measured per-worker optimization time (paper "W-Time").
  double max_worker_seconds = 0;
  /// Max per-worker memo size in table sets (paper "Memory (relations)").
  int64_t max_worker_memo_sets = 0;

  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;

  /// True when the plan was served from the OptimizerService plan cache:
  /// no worker round ran, so the timing/traffic fields above are zero and
  /// the per-worker vectors below are empty.
  bool from_plan_cache = false;

  /// Per-worker detail, indexed by partition id.
  std::vector<double> worker_seconds;
  std::vector<int64_t> worker_memo_sets;
  int64_t total_splits = 0;
  int64_t total_plans_costed = 0;
};

/// Parallel query optimizer (the paper's Algorithm 1 master).
class MpqOptimizer {
 public:
  explicit MpqOptimizer(MpqOptions options);

  /// Optimizes `query` across options.num_workers plan-space partitions.
  StatusOr<MpqResult> Optimize(const Query& query);

  /// The worker entry point (paper Algorithm 2): fully self-contained
  /// request-bytes -> response-bytes function, suitable for remote
  /// execution. Exposed publicly so tests can exercise the wire contract.
  static StatusOr<std::vector<uint8_t>> WorkerMain(
      const std::vector<uint8_t>& request);

  /// Builds the wire request for one partition (paper: query + partition
  /// id + partition count). Exposed for tests and byte-accounting tools.
  static std::vector<uint8_t> BuildRequest(const Query& query,
                                           uint64_t partition_id,
                                           const MpqOptions& options);

  /// Builds all options.num_workers partition requests at once,
  /// byte-identical to per-partition BuildRequest calls but serializing
  /// the query and the option tail exactly once: each request is the
  /// shared prefix, its partition id, and the shared suffix spliced into
  /// one pre-sized buffer. This is the master's Phase-1 scatter path.
  static std::vector<std::vector<uint8_t>> BuildRequests(
      const Query& query, const MpqOptions& options);

  /// The master's Phase 3: decodes the per-partition responses (in
  /// parallel when options.finalize_threads allows) and final-prunes the
  /// partition-optimal plans into `MpqResult::best`. Fills the plan/stat
  /// fields only — timing and traffic are the caller's. Plan choice is
  /// byte-identical to a fully serial pass: the prune always merges the
  /// partitions in index order. Exposed for tests and benchmarks.
  static StatusOr<MpqResult> FinalizeResponses(
      const std::vector<std::vector<uint8_t>>& responses,
      const MpqOptions& options);

 private:
  MpqOptions options_;
};

}  // namespace mpqopt

#endif  // MPQOPT_MPQ_MPQ_H_
