// Copyright 2026 mpqopt authors.

#include "mpq/heterogeneous.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/serialize.h"
#include "optimizer/pruning.h"
#include "plan/plan_serde.h"

namespace mpqopt {

std::vector<PartitionShare> AssignPartitions(const std::vector<double>& speeds,
                                             uint64_t num_partitions) {
  MPQOPT_CHECK(!speeds.empty());
  double total_speed = 0;
  for (double s : speeds) {
    MPQOPT_CHECK_GT(s, 0);
    total_speed += s;
  }
  const size_t w = speeds.size();
  // Largest-remainder apportionment of integer partition counts.
  std::vector<uint64_t> counts(w, 0);
  std::vector<std::pair<double, size_t>> remainders;
  uint64_t assigned = 0;
  for (size_t i = 0; i < w; ++i) {
    const double exact =
        static_cast<double>(num_partitions) * speeds[i] / total_speed;
    counts[i] = static_cast<uint64_t>(exact);
    assigned += counts[i];
    remainders.push_back({exact - static_cast<double>(counts[i]), i});
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t r = 0; assigned < num_partitions; ++r, ++assigned) {
    ++counts[remainders[r % w].second];
  }
  std::vector<PartitionShare> shares(w);
  uint64_t next = 0;
  for (size_t i = 0; i < w; ++i) {
    shares[i].begin = next;
    next += counts[i];
    shares[i].end = next;
  }
  MPQOPT_CHECK_EQ(next, num_partitions);
  return shares;
}

HeteroMpqOptimizer::HeteroMpqOptimizer(MpqOptions options,
                                       std::vector<double> speeds)
    : options_(std::move(options)), speeds_(std::move(speeds)) {
  if (options_.backend == nullptr) {
    options_.backend = MakeBackend(BackendKind::kThread, options_.network,
                                   options_.max_threads);
  }
}

std::vector<uint8_t> HeteroMpqOptimizer::BuildRequest(
    const Query& query, PartitionShare share, const MpqOptions& options) {
  // Base request for the first partition of the range, plus the range end;
  // the worker re-derives constraints per partition id in the range.
  std::vector<uint8_t> request =
      MpqOptimizer::BuildRequest(query, share.begin, options);
  ByteWriter writer;
  writer.WriteU64(share.end);
  request.insert(request.end(), writer.buffer().begin(),
                 writer.buffer().end());
  return request;
}

StatusOr<std::vector<uint8_t>> HeteroMpqOptimizer::WorkerMain(
    const std::vector<uint8_t>& request) {
  // The trailing u64 is the range end; everything before it is a regular
  // MPQ request for the range's first partition.
  if (request.size() < 8) return Status::Corruption("short hetero request");
  ByteReader tail(request.data() + request.size() - 8, 8);
  uint64_t end = 0;
  Status s = tail.ReadU64(&end);
  if (!s.ok()) return s;
  std::vector<uint8_t> base(request.begin(), request.end() - 8);

  // Locate the partition-id field: it sits immediately after the query
  // payload. Re-encode per partition by patching that field.
  // Layout (see MpqOptimizer::BuildRequest): query | u64 part | u64 m | ...
  // We find the offset by serializing the query from the request itself.
  ByteReader probe(base);
  StatusOr<Query> query = Query::Deserialize(&probe);
  if (!query.ok()) return query.status();
  const size_t part_offset = base.size() - probe.remaining();
  // Parse the header fields following the query to recover the range
  // start and the pruning alpha for the worker-local final prune.
  uint64_t begin = 0, m = 0;
  uint8_t space = 0, objective = 0, io = 0;
  double alpha = 10.0;
  if (!(s = probe.ReadU64(&begin)).ok()) return s;
  if (!(s = probe.ReadU64(&m)).ok()) return s;
  if (!(s = probe.ReadU8(&space)).ok()) return s;
  if (!(s = probe.ReadU8(&objective)).ok()) return s;
  if (!(s = probe.ReadU8(&io)).ok()) return s;
  if (!(s = probe.ReadDouble(&alpha)).ok()) return s;
  if (end < begin) return Status::Corruption("inverted partition range");

  // Empty share: a legitimately idle worker returns an empty plan set.
  PlanArena arena;
  std::vector<PlanId> best;
  uint64_t admissible_sets = 0;
  uint64_t splits = 0;
  uint64_t costed = 0;
  double seconds = 0;
  for (uint64_t part = begin; part < end; ++part) {
    // Patch the partition id in place and delegate to the homogeneous
    // worker logic (identical wire semantics per partition).
    std::vector<uint8_t> one = base;
    ByteWriter id;
    id.WriteU64(part);
    std::copy(id.buffer().begin(), id.buffer().end(),
              one.begin() + static_cast<ptrdiff_t>(part_offset));
    StatusOr<std::vector<uint8_t>> reply = MpqOptimizer::WorkerMain(one);
    if (!reply.ok()) return reply.status();
    ByteReader reader(reply.value());
    uint64_t part_sets = 0, part_splits = 0, part_costed = 0;
    double part_seconds = 0;
    if (!(s = reader.ReadU64(&part_sets)).ok()) return s;
    if (!(s = reader.ReadU64(&part_splits)).ok()) return s;
    if (!(s = reader.ReadU64(&part_costed)).ok()) return s;
    if (!(s = reader.ReadDouble(&part_seconds)).ok()) return s;
    StatusOr<std::vector<PlanId>> plans = DeserializePlanSet(&reader, &arena);
    if (!plans.ok()) return plans.status();
    admissible_sets = std::max(admissible_sets, part_sets);
    splits += part_splits;
    costed += part_costed;
    seconds += part_seconds;
    // Worker-local final prune across the partitions of this range.
    const auto cost_of = [&](PlanId id2) -> const CostVector& {
      return arena.node(id2).cost;
    };
    for (PlanId id2 : plans.value()) {
      if (arena.node(id2).cost.num_metrics() == 1) {
        if (best.empty() ||
            arena.node(id2).cost.time() < arena.node(best[0]).cost.time()) {
          best.assign(1, id2);
        }
      } else {
        ParetoInsert(&best, id2, cost_of, alpha);
      }
    }
  }

  ByteWriter writer;
  writer.WriteU64(admissible_sets);
  writer.WriteU64(splits);
  writer.WriteU64(costed);
  writer.WriteDouble(seconds);
  SerializePlanSet(arena, best, &writer);
  return writer.Release();
}

StatusOr<MpqResult> HeteroMpqOptimizer::Optimize(const Query& query) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  const uint64_t partitions = options_.num_workers;
  valid = ValidateNumWorkers(partitions, query.num_tables(), options_.space);
  if (!valid.ok()) return valid;
  if (speeds_.empty()) {
    return Status::InvalidArgument("no workers");
  }

  const auto serialize_start = std::chrono::steady_clock::now();
  const std::vector<PartitionShare> shares =
      AssignPartitions(speeds_, partitions);
  std::vector<std::vector<uint8_t>> requests;
  requests.reserve(shares.size());
  for (const PartitionShare& share : shares) {
    requests.push_back(BuildRequest(query, share, options_));
  }
  const auto serialize_end = std::chrono::steady_clock::now();

  std::vector<WorkerTask> tasks(shares.size(),
                                WorkerTask(&HeteroMpqOptimizer::WorkerMain));
  StatusOr<RoundResult> round_or = options_.backend->RunRound(tasks, requests);
  if (!round_or.ok()) return round_or.status();
  RoundResult& round = round_or.value();

  const auto merge_start = std::chrono::steady_clock::now();
  MpqResult result;
  result.worker_seconds.resize(shares.size());
  result.worker_memo_sets.resize(shares.size());
  double slowest_simulated_worker = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    ByteReader reader(round.responses[i]);
    uint64_t sets = 0, splits = 0, costed = 0;
    double seconds = 0;
    Status s;
    if (!(s = reader.ReadU64(&sets)).ok()) return s;
    if (!(s = reader.ReadU64(&splits)).ok()) return s;
    if (!(s = reader.ReadU64(&costed)).ok()) return s;
    if (!(s = reader.ReadDouble(&seconds)).ok()) return s;
    StatusOr<std::vector<PlanId>> plans =
        DeserializePlanSet(&reader, &result.arena);
    if (!plans.ok()) return plans.status();

    // Simulated heterogeneity: host-measured compute scaled by the
    // worker's speed factor.
    const double scaled_seconds = seconds / speeds_[i];
    result.worker_seconds[i] = scaled_seconds;
    result.worker_memo_sets[i] = static_cast<int64_t>(sets);
    result.total_splits += static_cast<int64_t>(splits);
    result.total_plans_costed += static_cast<int64_t>(costed);
    result.max_worker_seconds =
        std::max(result.max_worker_seconds, scaled_seconds);
    result.max_worker_memo_sets = std::max(
        result.max_worker_memo_sets, static_cast<int64_t>(sets));
    const double path =
        options_.network.TransferTime(requests[i].size()) + scaled_seconds +
        options_.network.TransferTime(round.responses[i].size());
    slowest_simulated_worker = std::max(slowest_simulated_worker, path);

    const auto cost_of = [&](PlanId id) -> const CostVector& {
      return result.arena.node(id).cost;
    };
    for (PlanId id : plans.value()) {
      if (options_.objective == Objective::kTime) {
        if (result.best.empty() ||
            result.arena.node(id).cost.time() <
                result.arena.node(result.best[0]).cost.time()) {
          result.best.assign(1, id);
        }
      } else {
        ParetoInsert(&result.best, id, cost_of, options_.alpha);
      }
    }
  }
  const auto merge_end = std::chrono::steady_clock::now();

  result.master_seconds =
      std::chrono::duration<double>(serialize_end - serialize_start).count() +
      std::chrono::duration<double>(merge_end - merge_start).count();
  result.simulated_seconds =
      static_cast<double>(shares.size()) * options_.network.task_setup_s +
      slowest_simulated_worker + result.master_seconds;
  result.wall_seconds = round.wall_seconds + result.master_seconds;
  result.network_bytes = round.traffic.bytes_sent;
  result.network_messages = round.traffic.messages;
  if (result.best.empty()) {
    return Status::Internal("no plan returned by any worker");
  }
  return result;
}

}  // namespace mpqopt
