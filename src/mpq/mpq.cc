// Copyright 2026 mpqopt authors.

#include "mpq/mpq.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/serialize.h"
#include "obs/trace.h"
#include "optimizer/pruning.h"
#include "plan/plan_serde.h"

namespace mpqopt {
namespace {

/// Response trailer carried back from each worker alongside its plans.
struct WorkerReport {
  uint64_t admissible_sets = 0;
  uint64_t splits_tried = 0;
  uint64_t plans_costed = 0;
  double seconds = 0;
};

void SerializeReport(const WorkerReport& r, ByteWriter* writer) {
  writer->WriteU64(r.admissible_sets);
  writer->WriteU64(r.splits_tried);
  writer->WriteU64(r.plans_costed);
  writer->WriteDouble(r.seconds);
}

Status DeserializeReport(ByteReader* reader, WorkerReport* r) {
  Status s;
  if (!(s = reader->ReadU64(&r->admissible_sets)).ok()) return s;
  if (!(s = reader->ReadU64(&r->splits_tried)).ok()) return s;
  if (!(s = reader->ReadU64(&r->plans_costed)).ok()) return s;
  return reader->ReadDouble(&r->seconds);
}

/// One worker response after decoding — the unit of the sharded finalize.
/// Each shard decodes into its own arena, so the decode stage shares no
/// mutable state across threads; the prune then walks the shards in
/// partition order (ParetoInsert is order-dependent, so the merge must
/// see the plans in exactly the sequence the serial pass would).
struct DecodedResponse {
  WorkerReport report;
  PlanArena arena;
  std::vector<PlanId> plans;
  Status status = Status::OK();
};

/// A plan reference across shards: partition index + id in its arena.
struct ShardPlanRef {
  uint32_t part = 0;
  PlanId id = kInvalidPlanId;
};

}  // namespace

MpqOptimizer::MpqOptimizer(MpqOptions options) : options_(std::move(options)) {
  if (options_.backend == nullptr) {
    options_.backend = MakeBackend(BackendKind::kThread, options_.network,
                                   options_.max_threads);
  }
}

namespace {

/// The request fields after the partition id — identical for every
/// partition of one run, so BuildRequests serializes them once.
void SerializeOptionsTail(const MpqOptions& options, ByteWriter* writer) {
  writer->WriteU64(options.num_workers);
  writer->WriteU8(static_cast<uint8_t>(options.space));
  writer->WriteU8(static_cast<uint8_t>(options.objective));
  writer->WriteU8(options.interesting_orders ? 1 : 0);
  writer->WriteDouble(options.alpha);
  writer->WriteDouble(options.cost_options.block_size);
  writer->WriteDouble(options.cost_options.hash_constant);
  writer->WriteDouble(options.cost_options.output_cost_factor);
  writer->WriteU64(static_cast<uint64_t>(options.max_memo_entries));
}

}  // namespace

std::vector<uint8_t> MpqOptimizer::BuildRequest(const Query& query,
                                                uint64_t partition_id,
                                                const MpqOptions& options) {
  ByteWriter writer;
  query.Serialize(&writer);
  writer.WriteU64(partition_id);
  SerializeOptionsTail(options, &writer);
  return writer.Release();
}

std::vector<std::vector<uint8_t>> MpqOptimizer::BuildRequests(
    const Query& query, const MpqOptions& options) {
  const uint64_t m = options.num_workers;
  // Serialize the shared parts once; each request is then one pre-sized
  // buffer filled by two splices and the partition id — the query (the
  // dominant cost for real statistics) is encoded once per run instead
  // of once per partition.
  ByteWriter prefix_writer;
  query.Serialize(&prefix_writer);
  const std::vector<uint8_t>& prefix = prefix_writer.buffer();
  ByteWriter suffix_writer;
  SerializeOptionsTail(options, &suffix_writer);
  const std::vector<uint8_t>& suffix = suffix_writer.buffer();

  std::vector<std::vector<uint8_t>> requests(m);
  for (uint64_t part = 0; part < m; ++part) {
    std::vector<uint8_t>& out = requests[part];
    out.reserve(prefix.size() + sizeof(uint64_t) + suffix.size());
    ByteWriter writer(&out);
    writer.WriteBytes(prefix.data(), prefix.size());
    writer.WriteU64(part);
    writer.WriteBytes(suffix.data(), suffix.size());
  }
  return requests;
}

StatusOr<std::vector<uint8_t>> MpqOptimizer::WorkerMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  StatusOr<Query> query = Query::Deserialize(&reader);
  if (!query.ok()) return query.status();

  uint64_t partition_id = 0;
  uint64_t num_partitions = 0;
  uint8_t space_raw = 0;
  uint8_t objective_raw = 0;
  uint8_t interesting_orders = 0;
  DpConfig config;
  Status s;
  if (!(s = reader.ReadU64(&partition_id)).ok()) return s;
  if (!(s = reader.ReadU64(&num_partitions)).ok()) return s;
  if (!(s = reader.ReadU8(&space_raw)).ok()) return s;
  if (!(s = reader.ReadU8(&objective_raw)).ok()) return s;
  if (!(s = reader.ReadU8(&interesting_orders)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.alpha)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.cost_options.block_size)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.cost_options.hash_constant)).ok()) {
    return s;
  }
  if (!(s = reader.ReadDouble(&config.cost_options.output_cost_factor)).ok()) {
    return s;
  }
  uint64_t max_memo = 0;
  if (!(s = reader.ReadU64(&max_memo)).ok()) return s;
  if (space_raw > 1) return Status::Corruption("bad plan space tag");
  if (objective_raw > 1) return Status::Corruption("bad objective tag");
  config.space = static_cast<PlanSpace>(space_raw);
  config.objective = static_cast<Objective>(objective_raw);
  config.interesting_orders = interesting_orders != 0;
  config.max_memo_entries = static_cast<int64_t>(max_memo);

  // Decode the partition id into this worker's join-order constraints
  // (paper Algorithm 3) and run the constrained DP (Algorithm 2).
  StatusOr<ConstraintSet> constraints = ConstraintSet::FromPartitionId(
      query.value().num_tables(), config.space, partition_id, num_partitions);
  if (!constraints.ok()) return constraints.status();
  StatusOr<DpResult> dp =
      RunPartitionDp(query.value(), constraints.value(), config);
  if (!dp.ok()) return dp.status();
  const DpResult& result = dp.value();

  ByteWriter writer;
  WorkerReport report;
  report.admissible_sets = static_cast<uint64_t>(result.stats.admissible_sets);
  report.splits_tried = static_cast<uint64_t>(result.stats.splits_tried);
  report.plans_costed = static_cast<uint64_t>(result.stats.plans_costed);
  report.seconds = result.stats.seconds;
  SerializeReport(report, &writer);
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

StatusOr<MpqResult> MpqOptimizer::FinalizeResponses(
    const std::vector<std::vector<uint8_t>>& responses,
    const MpqOptions& options) {
  const size_t m = responses.size();

  // Decode stage — sharded. Every response decodes into its own arena,
  // so shards are fully independent; a small pool strip-mines them via
  // an atomic cursor. finalize_threads = 1 (or m = 1) degenerates to the
  // serial loop with zero thread overhead.
  std::vector<DecodedResponse> decoded(m);
  const auto decode_one = [&](size_t part) {
    DecodedResponse& d = decoded[part];
    ByteReader reader(responses[part]);
    d.status = DeserializeReport(&reader, &d.report);
    if (!d.status.ok()) return;
    StatusOr<std::vector<PlanId>> plans = DeserializePlanSet(&reader, &d.arena);
    if (!plans.ok()) {
      d.status = plans.status();
      return;
    }
    d.plans = std::move(plans).value();
  };
  size_t threads = options.finalize_threads > 0
                       ? static_cast<size_t>(options.finalize_threads)
                       : std::max<size_t>(std::thread::hardware_concurrency(), 1);
  threads = std::min(threads, m);
  if (threads <= 1) {
    for (size_t part = 0; part < m; ++part) decode_one(part);
  } else {
    std::atomic<size_t> cursor{0};
    const auto drain = [&]() {
      for (;;) {
        const size_t part = cursor.fetch_add(1, std::memory_order_relaxed);
        if (part >= m) return;
        decode_one(part);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }
  // Deterministic error reporting: the first failing partition wins,
  // exactly as the serial pass would have reported it.
  for (size_t part = 0; part < m; ++part) {
    if (!decoded[part].status.ok()) return decoded[part].status;
  }

  // Merge stage — serial, in partition order. ParetoInsert is
  // order-dependent (alpha-dominance rejection, then weak-dominance
  // eviction, then append), so the prune must see the plans in exactly
  // the sequence the serial pass would; only the decode above is
  // parallel.
  MpqResult result;
  result.worker_seconds.resize(m);
  result.worker_memo_sets.resize(m);
  std::vector<ShardPlanRef> winners;
  const auto cost_of = [&](const ShardPlanRef& ref) -> const CostVector& {
    return decoded[ref.part].arena.node(ref.id).cost;
  };
  for (size_t part = 0; part < m; ++part) {
    const DecodedResponse& d = decoded[part];
    result.worker_seconds[part] = d.report.seconds;
    result.worker_memo_sets[part] =
        static_cast<int64_t>(d.report.admissible_sets);
    result.total_splits += static_cast<int64_t>(d.report.splits_tried);
    result.total_plans_costed += static_cast<int64_t>(d.report.plans_costed);
    if (d.report.seconds > result.max_worker_seconds) {
      result.max_worker_seconds = d.report.seconds;
    }
    if (result.worker_memo_sets[part] > result.max_worker_memo_sets) {
      result.max_worker_memo_sets = result.worker_memo_sets[part];
    }

    // FinalPrune (paper Algorithm 1): compare partition-optimal plans.
    for (PlanId id : d.plans) {
      const ShardPlanRef ref{static_cast<uint32_t>(part), id};
      if (options.objective == Objective::kTime) {
        if (winners.empty() ||
            cost_of(ref).time() < cost_of(winners[0]).time()) {
          if (winners.empty()) {
            winners.push_back(ref);
          } else {
            winners[0] = ref;
          }
        }
      } else {
        ParetoInsert(&winners, ref, cost_of, options.alpha);
      }
    }
  }
  if (winners.empty()) {
    return Status::Internal("no plan returned by any worker");
  }
  // Materialize only the winning plans into the result arena (in
  // frontier order). The shards — and with them every losing plan — are
  // dropped wholesale, which also keeps plan-cache entries minimal.
  result.best.reserve(winners.size());
  for (const ShardPlanRef& ref : winners) {
    result.best.push_back(
        CopyPlan(decoded[ref.part].arena, ref.id, &result.arena));
  }
  return result;
}

StatusOr<MpqResult> MpqOptimizer::Optimize(const Query& query) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  const uint64_t m = options_.num_workers;
  valid = ValidateNumWorkers(m, query.num_tables(), options_.space);
  if (!valid.ok()) return valid;

  // Phase 1 (master): build the per-partition requests in one batch
  // (the query is serialized once, not once per partition).
  const auto serialize_start = std::chrono::steady_clock::now();
  std::vector<std::vector<uint8_t>> requests;
  {
    obs::Span serialize_span("mpq.serialize");
    requests = BuildRequests(query, options_);
  }
  const auto serialize_end = std::chrono::steady_clock::now();

  // Phase 2 (workers): one task per partition, no shared state.
  std::vector<WorkerTask> tasks(m, WorkerTask(&MpqOptimizer::WorkerMain));
  StatusOr<RoundResult> round_or = Status::Internal("round not run");
  {
    obs::Span round_span("mpq.round");
    round_or = options_.backend->RunRound(tasks, requests);
  }
  if (!round_or.ok()) return round_or.status();
  RoundResult& round = round_or.value();

  // Phase 3 (master): sharded decode + final prune.
  const auto merge_start = std::chrono::steady_clock::now();
  StatusOr<MpqResult> finalized = Status::Internal("round not finalized");
  {
    obs::Span finalize_span("mpq.finalize");
    finalized = FinalizeResponses(round.responses, options_);
  }
  if (!finalized.ok()) return finalized.status();
  MpqResult result = std::move(finalized).value();
  const auto merge_end = std::chrono::steady_clock::now();

  result.master_seconds =
      std::chrono::duration<double>(serialize_end - serialize_start).count() +
      std::chrono::duration<double>(merge_end - merge_start).count();
  result.simulated_seconds = round.simulated_seconds + result.master_seconds;
  result.wall_seconds = round.wall_seconds + result.master_seconds;
  result.network_bytes = round.traffic.bytes_sent;
  result.network_messages = round.traffic.messages;
  return result;
}

}  // namespace mpqopt
