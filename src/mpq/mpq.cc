// Copyright 2026 mpqopt authors.

#include "mpq/mpq.h"

#include <chrono>

#include "common/serialize.h"
#include "optimizer/pruning.h"
#include "plan/plan_serde.h"

namespace mpqopt {
namespace {

/// Response trailer carried back from each worker alongside its plans.
struct WorkerReport {
  uint64_t admissible_sets = 0;
  uint64_t splits_tried = 0;
  uint64_t plans_costed = 0;
  double seconds = 0;
};

void SerializeReport(const WorkerReport& r, ByteWriter* writer) {
  writer->WriteU64(r.admissible_sets);
  writer->WriteU64(r.splits_tried);
  writer->WriteU64(r.plans_costed);
  writer->WriteDouble(r.seconds);
}

Status DeserializeReport(ByteReader* reader, WorkerReport* r) {
  Status s;
  if (!(s = reader->ReadU64(&r->admissible_sets)).ok()) return s;
  if (!(s = reader->ReadU64(&r->splits_tried)).ok()) return s;
  if (!(s = reader->ReadU64(&r->plans_costed)).ok()) return s;
  return reader->ReadDouble(&r->seconds);
}

}  // namespace

MpqOptimizer::MpqOptimizer(MpqOptions options) : options_(std::move(options)) {
  if (options_.backend == nullptr) {
    options_.backend = MakeBackend(BackendKind::kThread, options_.network,
                                   options_.max_threads);
  }
}

std::vector<uint8_t> MpqOptimizer::BuildRequest(const Query& query,
                                                uint64_t partition_id,
                                                const MpqOptions& options) {
  ByteWriter writer;
  query.Serialize(&writer);
  writer.WriteU64(partition_id);
  writer.WriteU64(options.num_workers);
  writer.WriteU8(static_cast<uint8_t>(options.space));
  writer.WriteU8(static_cast<uint8_t>(options.objective));
  writer.WriteU8(options.interesting_orders ? 1 : 0);
  writer.WriteDouble(options.alpha);
  writer.WriteDouble(options.cost_options.block_size);
  writer.WriteDouble(options.cost_options.hash_constant);
  writer.WriteDouble(options.cost_options.output_cost_factor);
  writer.WriteU64(static_cast<uint64_t>(options.max_memo_entries));
  return writer.Release();
}

StatusOr<std::vector<uint8_t>> MpqOptimizer::WorkerMain(
    const std::vector<uint8_t>& request) {
  ByteReader reader(request);
  StatusOr<Query> query = Query::Deserialize(&reader);
  if (!query.ok()) return query.status();

  uint64_t partition_id = 0;
  uint64_t num_partitions = 0;
  uint8_t space_raw = 0;
  uint8_t objective_raw = 0;
  uint8_t interesting_orders = 0;
  DpConfig config;
  Status s;
  if (!(s = reader.ReadU64(&partition_id)).ok()) return s;
  if (!(s = reader.ReadU64(&num_partitions)).ok()) return s;
  if (!(s = reader.ReadU8(&space_raw)).ok()) return s;
  if (!(s = reader.ReadU8(&objective_raw)).ok()) return s;
  if (!(s = reader.ReadU8(&interesting_orders)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.alpha)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.cost_options.block_size)).ok()) return s;
  if (!(s = reader.ReadDouble(&config.cost_options.hash_constant)).ok()) {
    return s;
  }
  if (!(s = reader.ReadDouble(&config.cost_options.output_cost_factor)).ok()) {
    return s;
  }
  uint64_t max_memo = 0;
  if (!(s = reader.ReadU64(&max_memo)).ok()) return s;
  if (space_raw > 1) return Status::Corruption("bad plan space tag");
  if (objective_raw > 1) return Status::Corruption("bad objective tag");
  config.space = static_cast<PlanSpace>(space_raw);
  config.objective = static_cast<Objective>(objective_raw);
  config.interesting_orders = interesting_orders != 0;
  config.max_memo_entries = static_cast<int64_t>(max_memo);

  // Decode the partition id into this worker's join-order constraints
  // (paper Algorithm 3) and run the constrained DP (Algorithm 2).
  StatusOr<ConstraintSet> constraints = ConstraintSet::FromPartitionId(
      query.value().num_tables(), config.space, partition_id, num_partitions);
  if (!constraints.ok()) return constraints.status();
  StatusOr<DpResult> dp =
      RunPartitionDp(query.value(), constraints.value(), config);
  if (!dp.ok()) return dp.status();
  const DpResult& result = dp.value();

  ByteWriter writer;
  WorkerReport report;
  report.admissible_sets = static_cast<uint64_t>(result.stats.admissible_sets);
  report.splits_tried = static_cast<uint64_t>(result.stats.splits_tried);
  report.plans_costed = static_cast<uint64_t>(result.stats.plans_costed);
  report.seconds = result.stats.seconds;
  SerializeReport(report, &writer);
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

StatusOr<MpqResult> MpqOptimizer::Optimize(const Query& query) {
  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  const uint64_t m = options_.num_workers;
  valid = ValidateNumWorkers(m, query.num_tables(), options_.space);
  if (!valid.ok()) return valid;

  // Phase 1 (master): build one request per partition.
  const auto serialize_start = std::chrono::steady_clock::now();
  std::vector<std::vector<uint8_t>> requests;
  requests.reserve(m);
  for (uint64_t part = 0; part < m; ++part) {
    requests.push_back(BuildRequest(query, part, options_));
  }
  const auto serialize_end = std::chrono::steady_clock::now();

  // Phase 2 (workers): one task per partition, no shared state.
  std::vector<WorkerTask> tasks(m, WorkerTask(&MpqOptimizer::WorkerMain));
  StatusOr<RoundResult> round_or = options_.backend->RunRound(tasks, requests);
  if (!round_or.ok()) return round_or.status();
  RoundResult& round = round_or.value();

  // Phase 3 (master): decode responses and final-prune the m plans.
  const auto merge_start = std::chrono::steady_clock::now();
  MpqResult result;
  result.worker_seconds.resize(m);
  result.worker_memo_sets.resize(m);
  for (uint64_t part = 0; part < m; ++part) {
    ByteReader reader(round.responses[part]);
    WorkerReport report;
    Status s = DeserializeReport(&reader, &report);
    if (!s.ok()) return s;
    StatusOr<std::vector<PlanId>> plans =
        DeserializePlanSet(&reader, &result.arena);
    if (!plans.ok()) return plans.status();

    result.worker_seconds[part] = report.seconds;
    result.worker_memo_sets[part] =
        static_cast<int64_t>(report.admissible_sets);
    result.total_splits += static_cast<int64_t>(report.splits_tried);
    result.total_plans_costed += static_cast<int64_t>(report.plans_costed);
    if (report.seconds > result.max_worker_seconds) {
      result.max_worker_seconds = report.seconds;
    }
    if (result.worker_memo_sets[part] > result.max_worker_memo_sets) {
      result.max_worker_memo_sets = result.worker_memo_sets[part];
    }

    // FinalPrune (paper Algorithm 1): compare partition-optimal plans.
    if (options_.objective == Objective::kTime) {
      for (PlanId id : plans.value()) {
        if (result.best.empty() ||
            result.arena.node(id).cost.time() <
                result.arena.node(result.best[0]).cost.time()) {
          if (result.best.empty()) {
            result.best.push_back(id);
          } else {
            result.best[0] = id;
          }
        }
      }
    } else {
      const auto cost_of = [&](PlanId id) -> const CostVector& {
        return result.arena.node(id).cost;
      };
      for (PlanId id : plans.value()) {
        ParetoInsert(&result.best, id, cost_of, options_.alpha);
      }
    }
  }
  const auto merge_end = std::chrono::steady_clock::now();

  result.master_seconds =
      std::chrono::duration<double>(serialize_end - serialize_start).count() +
      std::chrono::duration<double>(merge_end - merge_start).count();
  result.simulated_seconds = round.simulated_seconds + result.master_seconds;
  result.wall_seconds = round.wall_seconds + result.master_seconds;
  result.network_bytes = round.traffic.bytes_sent;
  result.network_messages = round.traffic.messages;
  if (result.best.empty()) {
    return Status::Internal("no plan returned by any worker");
  }
  return result;
}

}  // namespace mpqopt
