// Copyright 2026 mpqopt authors.
//
// Heterogeneous-cluster MPQ (paper Section 4.1, footnote 1: "If worker
// nodes are heterogeneous then the number of partitions treated by a
// worker should be proportional to its performance").
//
// The plan space is still divided into a power-of-two number of
// equal-size partitions, but a PHYSICAL worker now receives a contiguous
// RANGE of partition ids sized proportionally to its relative speed. Each
// worker optimizes its partitions one after another in a single task
// (still one task and one communication round per worker per query) and
// returns the best plan(s) across its range after a worker-local final
// prune. A fast node therefore ends at roughly the same time as a slow
// node with a smaller share — restoring the skew-freeness that uniform
// assignment would lose on unequal hardware.

#ifndef MPQOPT_MPQ_HETEROGENEOUS_H_
#define MPQOPT_MPQ_HETEROGENEOUS_H_

#include <vector>

#include "mpq/mpq.h"

namespace mpqopt {

/// Contiguous range [begin, end) of partition ids owned by one worker.
struct PartitionShare {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
};

/// Splits `num_partitions` partition ids across workers proportionally to
/// `speeds` (relative performance factors, > 0) using largest-remainder
/// apportionment. Shares are contiguous, disjoint, cover all ids, and a
/// sufficiently slow worker may legitimately receive an empty share.
std::vector<PartitionShare> AssignPartitions(const std::vector<double>& speeds,
                                             uint64_t num_partitions);

/// MPQ master for heterogeneous clusters. options.num_workers is the
/// TOTAL number of plan-space partitions (a power of two); the physical
/// worker count is speeds.size().
class HeteroMpqOptimizer {
 public:
  HeteroMpqOptimizer(MpqOptions options, std::vector<double> speeds);

  StatusOr<MpqResult> Optimize(const Query& query);

  /// Worker entry point: optimizes every partition in its range and
  /// returns the range-optimal plan set (wire contract mirrors
  /// MpqOptimizer::WorkerMain with a trailing id range).
  static StatusOr<std::vector<uint8_t>> WorkerMain(
      const std::vector<uint8_t>& request);

  /// Builds the wire request for one worker's partition range.
  static std::vector<uint8_t> BuildRequest(const Query& query,
                                           PartitionShare share,
                                           const MpqOptions& options);

 private:
  MpqOptions options_;
  std::vector<double> speeds_;
};

}  // namespace mpqopt

#endif  // MPQOPT_MPQ_HETEROGENEOUS_H_
