// Copyright 2026 mpqopt authors.
//
// Shared-nothing network substitute. The paper ran on a 100-node cluster
// (Spark 1.5 on YARN) with high message latency and per-task assignment
// overheads; this repository reproduces that environment with (a) real
// byte-level serialization of every message (see src/common/serialize.h)
// and (b) an explicit cost model that converts message sizes and task
// counts into simulated elapsed time. All byte counts reported by the
// benchmarks are true payload sizes; only the *clock* is modeled.

#ifndef MPQOPT_NET_NETWORK_MODEL_H_
#define MPQOPT_NET_NETWORK_MODEL_H_

#include <cstdint>

namespace mpqopt {

/// Latency/bandwidth/overhead parameters of the simulated cluster.
///
/// Calibration: what determines the scaling curves is the DIMENSIONLESS
/// ratio of coordination overhead to worker compute time, not absolute
/// values. The paper's Spark/YARN/Java stack paired millisecond-scale
/// task dispatch and message latency with minutes-scale (Java) worker
/// optimizations; this library's C++ workers are roughly two orders of
/// magnitude faster on the same plan spaces, so the default overheads
/// below are the paper's cluster overheads scaled down by that factor —
/// keeping the overhead : compute ratio (and therefore the shape of the
/// time-vs-workers curves and the speedup magnitudes) faithful to the
/// paper's environment. Byte counts are unaffected; bandwidth stays at
/// the physical 1 Gbit/s. Pass explicit values (benches: see the
/// MPQOPT_TASK_SETUP_US / MPQOPT_LATENCY_US / MPQOPT_BANDWIDTH_MBPS
/// knobs) to model other clusters.
struct NetworkModel {
  /// One-way message latency in seconds (paper environment: ~1 ms,
  /// scaled by the substrate speed ratio).
  double latency_s = 10e-6;
  /// Link bandwidth in bytes per second.
  double bandwidth_bytes_per_s = 125e6;  // 1 Gbit/s
  /// Fixed cost of assigning one task to a worker (scheduling, executor
  /// wake-up). Charged once per task on the master. Paper environment:
  /// low milliseconds per Spark task, scaled by the substrate ratio.
  double task_setup_s = 30e-6;

  /// Time to push one message of `bytes` over a link.
  double TransferTime(uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Running totals of simulated network usage. The "Network (bytes)" series
/// of the paper's figures report exactly these byte counts.
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t messages = 0;

  void Record(uint64_t bytes) {
    bytes_sent += bytes;
    ++messages;
  }

  void Merge(const TrafficStats& other) {
    bytes_sent += other.bytes_sent;
    messages += other.messages;
  }
};

}  // namespace mpqopt

#endif  // MPQOPT_NET_NETWORK_MODEL_H_
