// Copyright 2026 mpqopt authors.

#include "net/frame_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace mpqopt {
namespace {

constexpr size_t kFrameHeaderBytes = 1 + 8;  // kind + length

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status WriteAllBytes(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t w = ::send(fd, data, size, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("send failed"));
    }
    if (w == 0) return Status::Internal("send wrote zero bytes");
    data += w;
    size -= static_cast<size_t>(w);
  }
  return Status::OK();
}

using Deadline = std::chrono::steady_clock::time_point;

/// Reads exactly `size` bytes. `at_frame_start` selects the status for a
/// clean close before the first byte (kNotFound) versus a disconnect once
/// part of a frame has arrived (kCorruption). A non-null `deadline` is an
/// absolute bound on the whole read — a peer trickling bytes cannot
/// stretch it.
Status ReadFullBytes(int fd, uint8_t* data, size_t size, bool at_frame_start,
                     const Deadline* deadline) {
  size_t got = 0;
  while (got < size) {
    if (deadline != nullptr) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return Status::Internal("recv timed out");
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("poll failed"));
      }
      if (ready == 0) return Status::Internal("recv timed out");
    }
    const ssize_t r = ::recv(fd, data + got, size - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("recv failed"));
    }
    if (r == 0) {
      if (at_frame_start && got == 0) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::Corruption("peer disconnected mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL) failed"));
  const int updated = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, updated) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL) failed"));
  }
  return Status::OK();
}

StatusOr<struct sockaddr_in> ResolveIpv4(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SendFrame(int fd, uint8_t kind, const std::vector<uint8_t>& payload) {
  ConstSpan part{payload.data(), payload.size()};
  return SendFrameV(fd, kind, &part, 1);
}

Status SendFrameV(int fd, uint8_t kind, const ConstSpan* parts,
                  size_t num_parts) {
  if (num_parts > kMaxSendSpans) {
    return Status::InvalidArgument("too many frame parts");
  }
  uint64_t length = 0;
  for (size_t i = 0; i < num_parts; ++i) length += parts[i].size;
  if (length > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(length) +
                                   " bytes exceeds the frame size limit");
  }
  uint8_t header[kFrameHeaderBytes];
  header[0] = kind;
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<uint8_t>(length >> (8 * i));
  }

  struct iovec iov[1 + kMaxSendSpans];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  size_t iov_count = 1;
  for (size_t i = 0; i < num_parts; ++i) {
    if (parts[i].size == 0) continue;  // sendmsg dislikes zero-length iovecs
    iov[iov_count].iov_base =
        const_cast<uint8_t*>(parts[i].data);  // sendmsg never writes
    iov[iov_count].iov_len = parts[i].size;
    ++iov_count;
  }

  // Gathering send with partial-write resume: after a short write, skip
  // fully-sent iovecs and bump the partially-sent one. sendmsg (not
  // writev) so MSG_NOSIGNAL keeps SIGPIPE suppressed, matching send().
  size_t first = 0;
  while (first < iov_count) {
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = &iov[first];
    msg.msg_iovlen = iov_count - first;
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("send failed"));
    }
    if (w == 0) return Status::Internal("send wrote zero bytes");
    size_t done = static_cast<size_t>(w);
    while (first < iov_count && done >= iov[first].iov_len) {
      done -= iov[first].iov_len;
      ++first;
    }
    if (first < iov_count && done > 0) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + done;
      iov[first].iov_len -= done;
    }
  }
  return Status::OK();
}

StatusOr<bool> WaitReadable(int fd, int timeout_ms) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("poll failed"));
    }
    return ready > 0;
  }
}

namespace {

/// Shared header stage of RecvFrame/RecvFrameSplit: reads the frame
/// header and validates the length against the frame size limit.
Status RecvFrameHeader(int fd, uint8_t* kind, uint64_t* length,
                       const Deadline* deadline) {
  uint8_t header[kFrameHeaderBytes];
  Status s = ReadFullBytes(fd, header, sizeof(header),
                           /*at_frame_start=*/true, deadline);
  if (!s.ok()) return s;
  uint64_t parsed = 0;
  for (int i = 0; i < 8; ++i) {
    parsed |= static_cast<uint64_t>(header[1 + i]) << (8 * i);
  }
  if (parsed > kMaxFramePayloadBytes) {
    return Status::Corruption("frame length " + std::to_string(parsed) +
                              " exceeds the frame size limit");
  }
  *kind = header[0];
  *length = parsed;
  return Status::OK();
}

const Deadline* MakeDeadline(int timeout_ms, Deadline* storage) {
  if (timeout_ms < 0) return nullptr;
  *storage = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms);
  return storage;
}

}  // namespace

Status RecvFrame(int fd, Frame* frame, int timeout_ms) {
  Deadline deadline;
  const Deadline* deadline_ptr = MakeDeadline(timeout_ms, &deadline);
  uint64_t length = 0;
  Status s = RecvFrameHeader(fd, &frame->kind, &length, deadline_ptr);
  if (!s.ok()) return s;
  // resize() reuses the vector's capacity — callers that keep one Frame
  // alive across a persistent connection pay no allocation in steady
  // state.
  frame->payload.resize(length);
  if (length > 0) {
    s = ReadFullBytes(fd, frame->payload.data(), length,
                      /*at_frame_start=*/false, deadline_ptr);
  }
  return s;
}

Status RecvFrameSplit(int fd, uint8_t* kind, uint8_t* header,
                      size_t header_bytes, std::vector<uint8_t>* body,
                      int timeout_ms) {
  Deadline deadline;
  const Deadline* deadline_ptr = MakeDeadline(timeout_ms, &deadline);
  uint64_t length = 0;
  Status s = RecvFrameHeader(fd, kind, &length, deadline_ptr);
  if (!s.ok()) return s;
  if (length < header_bytes) {
    return Status::Corruption("frame of " + std::to_string(length) +
                              " bytes is shorter than its " +
                              std::to_string(header_bytes) +
                              "-byte payload header");
  }
  if (header_bytes > 0) {
    s = ReadFullBytes(fd, header, header_bytes,
                      /*at_frame_start=*/false, deadline_ptr);
    if (!s.ok()) return s;
  }
  const size_t body_bytes = length - header_bytes;
  body->resize(body_bytes);
  if (body_bytes > 0) {
    s = ReadFullBytes(fd, body->data(), body_bytes,
                      /*at_frame_start=*/false, deadline_ptr);
  }
  return s;
}

Status ParseHostPort(const std::string& endpoint, std::string* host,
                     int* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not host:port");
  }
  char* end = nullptr;
  const long parsed = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || parsed < 0 || parsed > 65535) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<int>(parsed);
  return Status::OK();
}

StatusOr<Socket> DialTcp(const std::string& endpoint, int timeout_ms) {
  std::string host;
  int port = 0;
  Status s = ParseHostPort(endpoint, &host, &port);
  if (!s.ok()) return s;
  StatusOr<struct sockaddr_in> addr = ResolveIpv4(host, port);
  if (!addr.ok()) return addr.status();

  Socket socket(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!socket.valid()) return Status::Internal(Errno("socket failed"));
  s = SetNonBlocking(socket.fd(), true);
  if (!s.ok()) return s;

  if (::connect(socket.fd(),
                reinterpret_cast<const struct sockaddr*>(&addr.value()),
                sizeof(addr.value())) != 0) {
    if (errno != EINPROGRESS) {
      return Status::Internal("connect to " + endpoint + " failed: " +
                              std::strerror(errno));
    }
    struct pollfd pfd;
    pfd.fd = socket.fd();
    pfd.events = POLLOUT;
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return Status::Internal(Errno("poll failed"));
    if (ready == 0) {
      return Status::Internal("connect to " + endpoint + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::Internal(Errno("getsockopt failed"));
    }
    if (err != 0) {
      return Status::Internal("connect to " + endpoint + " failed: " +
                              std::strerror(err));
    }
  }
  s = SetNonBlocking(socket.fd(), false);
  if (!s.ok()) return s;
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Keepalive lets the kernel eventually notice a peer that vanished
  // without closing (host down, network partition) even on an otherwise
  // idle connection.
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  return socket;
}

StatusOr<TcpListener> TcpListener::Bind(const std::string& host, int port) {
  StatusOr<struct sockaddr_in> addr = ResolveIpv4(host, port);
  if (!addr.ok()) return addr.status();

  TcpListener listener;
  listener.socket_ = Socket(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!listener.socket_.valid()) {
    return Status::Internal(Errno("socket failed"));
  }
  const int one = 1;
  ::setsockopt(listener.socket_.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  if (::bind(listener.socket_.fd(),
             reinterpret_cast<const struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    return Status::Internal("bind to " + host + ":" + std::to_string(port) +
                            " failed: " + std::strerror(errno));
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listener.socket_.fd(),
                    reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
    return Status::Internal(Errno("getsockname failed"));
  }
  listener.port_ = static_cast<int>(ntohs(bound.sin_port));
  if (::listen(listener.socket_.fd(), 64) != 0) {
    return Status::Internal(Errno("listen failed"));
  }
  return listener;
}

StatusOr<Socket> TcpListener::Accept(int timeout_ms) {
  for (;;) {
    if (timeout_ms >= 0) {
      struct pollfd pfd;
      pfd.fd = socket_.fd();
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("poll failed"));
      }
      if (ready == 0) return Status::Internal("accept timed out");
    }
    const int fd = ::accept4(socket_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      // A peer that aborted its own handshake is its problem, not the
      // listener's — keep accepting.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::Internal(Errno("accept failed"));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Mirror DialTcp: let the kernel notice a master that vanished
    // without closing, so serving threads do not block forever.
    ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
    return Socket(fd);
  }
}

}  // namespace mpqopt
