// Copyright 2026 mpqopt authors.
//
// Framed-message TCP transport — the real-socket substrate under
// RpcBackend. Everything above the simulated NetworkModel clock in this
// repository already speaks in self-contained byte payloads; this header
// moves those payloads over actual TCP connections.
//
// Wire format of one frame:
//
//   u8  kind      application-defined tag (task kind on requests,
//                 ok/error on replies)
//   u64 length    payload byte count, little-endian
//   ..  payload   `length` bytes
//
// All calls are blocking with optional timeouts, handle partial reads and
// writes (short send()/recv(), EINTR), never raise SIGPIPE, and report
// failures as Status values: a peer that closes cleanly between frames
// yields kNotFound ("peer closed"), a disconnect in the middle of a frame
// yields kCorruption, oversized frames are rejected before allocation, and
// timeouts surface as kInternal with "timed out" in the message.

#ifndef MPQOPT_NET_FRAME_TRANSPORT_H_
#define MPQOPT_NET_FRAME_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace mpqopt {

/// Owning file-descriptor handle for a connected TCP stream.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(Socket);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// One framed message.
struct Frame {
  uint8_t kind = 0;
  std::vector<uint8_t> payload;
};

/// Frames larger than this are rejected by both sender and receiver —
/// a corrupted length prefix must not become a 2^60-byte allocation.
constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

/// The frame kind byte is split into two application namespaces: kinds
/// below this base are stateless task tags (cluster/task_registry.h,
/// RpcTaskKind), kinds at or above it are session-control frames of the
/// stateful-worker protocol (cluster/session/session_wire.h). The
/// transport itself never interprets the kind byte; the split only keeps
/// the two dispatch tables collision-free on one connection.
constexpr uint8_t kSessionFrameKindBase = 0x80;

/// Sends one frame, looping over partial writes. Never raises SIGPIPE; a
/// broken connection returns kInternal.
Status SendFrame(int fd, uint8_t kind, const std::vector<uint8_t>& payload);

/// A non-owning view of contiguous bytes, for gather-sends.
struct ConstSpan {
  const uint8_t* data = nullptr;
  size_t size = 0;
};

/// Maximum number of payload pieces one SendFrameV call accepts. The
/// header rides in the same gather list, so the whole frame fits a
/// stack-allocated iovec array and (buffers permitting) one syscall.
constexpr size_t kMaxSendSpans = 8;

/// Sends one frame whose payload is the concatenation of `parts` —
/// byte-identical on the wire to SendFrame over the concatenated bytes,
/// but with zero sender-side copies: header and all parts go out through
/// a single gathering sendmsg (resumed across partial writes). This is
/// how the master scatters without assembling per-worker buffers.
Status SendFrameV(int fd, uint8_t kind, const ConstSpan* parts,
                  size_t num_parts);

/// Receives one frame whose payload starts with a fixed-size header (e.g.
/// the RPC reply's compute-seconds prefix), splitting it off in place:
/// `header_bytes` bytes land in `header`, the rest in `*body`. Lets a
/// caller strip a prefix without the copy RecvFrame + erase would cost,
/// and reuses `body`'s capacity across frames on persistent connections.
/// A frame shorter than `header_bytes` is kCorruption. Timeout semantics
/// match RecvFrame.
Status RecvFrameSplit(int fd, uint8_t* kind, uint8_t* header,
                      size_t header_bytes, std::vector<uint8_t>* body,
                      int timeout_ms = -1);

/// Waits up to `timeout_ms` for `fd` to become readable (data pending, or
/// EOF/error — a subsequent read will not block). Returns true when
/// readable, false on timeout. Lets a serving loop wait for work in
/// bounded slices so it can notice a shutdown flag between frames.
StatusOr<bool> WaitReadable(int fd, int timeout_ms);

/// Receives one frame. `timeout_ms` < 0 blocks indefinitely; otherwise
/// it is one absolute deadline on the whole frame (header + payload) —
/// a peer trickling bytes cannot stretch it. Clean peer close before the
/// first header byte returns kNotFound; a disconnect mid-frame returns
/// kCorruption.
Status RecvFrame(int fd, Frame* frame, int timeout_ms = -1);

/// Splits "host:port" and validates the port range.
Status ParseHostPort(const std::string& endpoint, std::string* host,
                     int* port);

/// Connects to "host:port" (numeric IPv4, or "localhost") with a bound
/// connect timeout, and disables Nagle on the resulting stream.
StatusOr<Socket> DialTcp(const std::string& endpoint, int timeout_ms);

/// Listening TCP socket; Bind with port 0 picks an ephemeral port, which
/// `port()` reports.
class TcpListener {
 public:
  TcpListener() = default;
  static StatusOr<TcpListener> Bind(const std::string& host, int port);

  /// Accepts one connection. `timeout_ms` < 0 blocks indefinitely; on
  /// timeout returns kInternal with "timed out" in the message.
  StatusOr<Socket> Accept(int timeout_ms = -1);

  bool valid() const { return socket_.valid(); }
  int port() const { return port_; }
  /// The listening fd, for WaitReadable-style bounded accept loops.
  int fd() const { return socket_.fd(); }

 private:
  Socket socket_;
  int port_ = 0;
};

}  // namespace mpqopt

#endif  // MPQOPT_NET_FRAME_TRANSPORT_H_
