// Copyright 2026 mpqopt authors.
//
// PartitionIndex: the materialization-free equivalent of the paper's
// AdmJoinResults (Algorithm 4).
//
// Constraints partition the query tables into disjoint GROUPS (pairs for
// linear, triples for bushy, plus leftover single tables when n is not a
// multiple of the group width). The admissible join results are exactly
// the Cartesian product, over groups, of the admissible local subsets of
// each group. This product structure gives every admissible set a dense
// mixed-radix RANK computed in O(#groups) with no hash table:
//
//     rank(S) = sum_g digit_g((S >> offset_g) & mask_g) * stride_g
//
// where digit_g maps the (at most 8) local bit patterns of group g to
// 0..num_digits_g-1, or rejects inadmissible patterns. The DP memo is then
// a flat vector indexed by rank — this is what makes the per-worker space
// bound of Theorem 4 (O(2^n (3/4)^l) resp. O(2^n (7/8)^l)) tight in
// practice, and lookups O(1)-ish.
//
// The same structure drives:
//  * enumeration of admissible sets in ascending cardinality (the DP's
//    outer loop, Algorithm 2),
//  * the constrained split enumeration for bushy plans that only generates
//    admissible operand pairs (Algorithm 5, the 21/27 factor),
//  * the inner-operand admissibility test for linear plans.

#ifndef MPQOPT_PARTITION_PARTITION_INDEX_H_
#define MPQOPT_PARTITION_PARTITION_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/table_set.h"
#include "partition/constraints.h"

namespace mpqopt {

/// Index over the admissible join results of one plan-space partition.
class PartitionIndex {
 public:
  /// Builds the index for `num_tables` query tables under `constraints`.
  /// With an empty constraint set this indexes the full power set
  /// (the m = 1 / serial case).
  PartitionIndex(int num_tables, const ConstraintSet& constraints);

  int num_tables() const { return num_tables_; }
  PlanSpace space() const { return space_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  /// Number of admissible table subsets, including the empty set and all
  /// admissible singletons. This is the memo size of the worker DP — the
  /// quantity the paper plots as "Memory (relations)".
  int64_t size() const { return size_; }

  /// Number of admissible subsets with exactly k tables.
  int64_t CountSetsOfCard(int k) const;

  /// Dense rank of an admissible set in [0, size()), or -1 when `s`
  /// violates a constraint.
  int64_t Rank(TableSet s) const {
    int64_t rank = 0;
    for (const Group& g : groups_) {
      const uint8_t pattern = LocalPattern(s, g);
      const int8_t digit = g.digit_of_pattern[pattern];
      if (digit < 0) return -1;
      rank += static_cast<int64_t>(digit) * g.stride;
    }
    return rank;
  }

  bool Contains(TableSet s) const { return Rank(s) >= 0; }

  /// Invokes fn(TableSet set, int64_t rank) for every admissible set with
  /// exactly `k` tables, in mixed-radix order.
  template <typename Fn>
  void ForEachSetOfCard(int k, Fn&& fn) const {
    EnumerateRec(0, TableSet::Empty(), 0, k, fn);
  }

  /// Invokes fn(TableSet set, int64_t rank) for every admissible set
  /// (all cardinalities, including the empty set).
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (int k = 0; k <= num_tables_; ++k) {
      EnumerateRec(0, TableSet::Empty(), 0, k, fn);
    }
  }

  /// Linear DP: true if `table` may serve as the inner (last-joined)
  /// operand of join result `u`, i.e. no constraint (table ≺ v) with
  /// v ∈ u exists (Algorithm 5, linear variant).
  bool InnerAllowed(int table, TableSet u) const {
    const int successor = must_precede_[table];
    return successor < 0 || !u.Contains(successor);
  }

  /// Bushy DP: invokes fn(TableSet left, int64_t left_rank,
  /// int64_t right_rank) for every admissible ordered split of `u` into
  /// (left, u \ left) — both operands admissible, excluding the trivial
  /// splits left = {} and left = u. Only admissible splits are generated,
  /// never filtered (Algorithm 5, bushy variant); ranks are accumulated
  /// digit-by-digit so no Rank() call is needed in the DP's hot loop.
  template <typename Fn>
  void ForEachSplit(TableSet u, Fn&& fn) const {
    SplitRec(0, u, TableSet::Empty(), 0, 0, fn);
  }

  /// O(1) rank update for the linear DP: rank of (u without table t),
  /// given rank(u). Requires u to be admissible, t ∈ u, and u \ {t}
  /// admissible (guaranteed when t passes InnerAllowed, see
  /// Theorem 2's argument).
  int64_t RankWithout(TableSet u, int64_t rank_u, int table) const {
    const GroupOfTable& gt = group_of_table_[table];
    const Group& g = groups_[gt.group_index];
    const uint8_t pattern = LocalPattern(u, g);
    const uint8_t reduced =
        pattern & static_cast<uint8_t>(~(1u << (table - g.offset)));
    const int8_t d_full = g.digit_of_pattern[pattern];
    const int8_t d_red = g.digit_of_pattern[reduced];
    MPQOPT_DCHECK(d_full >= 0 && d_red >= 0);
    return rank_u - static_cast<int64_t>(d_full - d_red) * g.stride;
  }

  /// Total number of admissible ordered splits summed over all admissible
  /// join results of cardinality >= 2, excluding trivial splits. Used by
  /// the complexity ablation (Theorem 7's 3^n (21/27)^l bound).
  int64_t CountAdmissibleSplits() const;

 private:
  struct Group {
    int offset = 0;  ///< index of the first table in the group
    int width = 0;   ///< 1, 2, or 3 tables
    int num_digits = 0;
    int64_t stride = 0;
    /// pattern (local bits) -> digit, or -1 if inadmissible.
    int8_t digit_of_pattern[8];
    /// digit -> pattern (local bits).
    uint8_t pattern_of_digit[8];
    uint8_t popcount_of_digit[8];
    /// split_list[p] = sub-patterns l of p such that both l and p\l are
    /// admissible patterns; split_count[p] is its length.
    uint8_t split_list[8][8];
    uint8_t split_count[8];
    /// Maximum popcount over admissible digits (for enumeration pruning).
    int max_popcount = 0;
  };

  /// Fills digit/pattern/split tables of `g`; `excluded_pattern` is the
  /// local bit pattern a constraint forbids, or 0xFF for none.
  static void BuildGroupTables(Group* g, uint8_t excluded_pattern);

  static uint8_t LocalPattern(TableSet s, const Group& g) {
    return static_cast<uint8_t>((s.bits() >> g.offset) &
                                ((uint64_t{1} << g.width) - 1));
  }

  template <typename Fn>
  void EnumerateRec(size_t group_idx, TableSet prefix, int64_t rank,
                    int remaining, Fn&& fn) const {
    if (group_idx == groups_.size()) {
      if (remaining == 0) fn(prefix, rank);
      return;
    }
    // Prune: the remaining groups cannot supply `remaining` more tables.
    if (remaining > suffix_max_popcount_[group_idx]) return;
    const Group& g = groups_[group_idx];
    for (int d = 0; d < g.num_digits; ++d) {
      const int pop = g.popcount_of_digit[d];
      if (pop > remaining) continue;
      const TableSet bits(static_cast<uint64_t>(g.pattern_of_digit[d])
                          << g.offset);
      EnumerateRec(group_idx + 1, prefix.Union(bits), rank + d * g.stride,
                   remaining - pop, fn);
    }
  }

  template <typename Fn>
  void SplitRec(size_t group_idx, TableSet u, TableSet left,
                int64_t left_rank, int64_t right_rank, Fn&& fn) const {
    if (group_idx == groups_.size()) {
      if (!left.IsEmpty() && left != u) fn(left, left_rank, right_rank);
      return;
    }
    const Group& g = groups_[group_idx];
    const uint8_t pattern = LocalPattern(u, g);
    const uint8_t count = g.split_count[pattern];
    const uint8_t* list = g.split_list[pattern];
    for (uint8_t i = 0; i < count; ++i) {
      const uint8_t l = list[i];
      const uint8_t r = static_cast<uint8_t>(pattern & ~l);
      const TableSet bits(static_cast<uint64_t>(l) << g.offset);
      SplitRec(group_idx + 1, u, left.Union(bits),
               left_rank + g.digit_of_pattern[l] * g.stride,
               right_rank + g.digit_of_pattern[r] * g.stride, fn);
    }
  }

  struct GroupOfTable {
    int group_index = 0;
  };

  int num_tables_;
  PlanSpace space_;
  std::vector<Group> groups_;
  int64_t size_;
  /// must_precede_[t] = v if a linear constraint (t ≺ v) exists, else -1.
  int must_precede_[kMaxTables];
  /// Which group each table belongs to (for RankWithout).
  GroupOfTable group_of_table_[kMaxTables];
  /// suffix_max_popcount_[g] = sum of max_popcount over groups g..end.
  std::vector<int> suffix_max_popcount_;
  /// count_by_card_[k] = number of admissible sets with k tables.
  std::vector<int64_t> count_by_card_;
};

}  // namespace mpqopt

#endif  // MPQOPT_PARTITION_PARTITION_INDEX_H_
