// Copyright 2026 mpqopt authors.

#include "partition/constraints.h"

namespace mpqopt {

const char* PlanSpaceName(PlanSpace space) {
  return space == PlanSpace::kLinear ? "linear" : "bushy";
}

uint64_t MaxWorkers(int num_tables, PlanSpace space) {
  const int max_constraints = MaxConstraints(num_tables, space);
  // Cap the shift to keep the result well-defined for very wide queries.
  if (max_constraints >= 62) return uint64_t{1} << 62;
  return uint64_t{1} << max_constraints;
}

uint64_t UsableWorkers(int num_tables, PlanSpace space, uint64_t workers) {
  MPQOPT_CHECK_GE(workers, 1u);
  const uint64_t max_workers = MaxWorkers(num_tables, space);
  uint64_t usable = FloorPowerOfTwo(workers);
  if (usable > max_workers) usable = max_workers;
  return usable;
}

Status ValidateNumWorkers(uint64_t workers, int num_tables, PlanSpace space) {
  if (!IsPowerOfTwo(workers)) {
    return Status::InvalidArgument(
        "num_workers must be a nonzero power of two, got " +
        std::to_string(workers));
  }
  const uint64_t max_workers = MaxWorkers(num_tables, space);
  if (workers > max_workers) {
    return Status::InvalidArgument(
        "num_workers " + std::to_string(workers) +
        " exceeds the maximal degree of parallelism " +
        std::to_string(max_workers) + " for a " +
        std::to_string(num_tables) + "-table query in the " +
        PlanSpaceName(space) +
        " plan space; round down with UsableWorkers()");
  }
  return Status::OK();
}

StatusOr<ConstraintSet> ConstraintSet::FromPartitionId(
    int num_tables, PlanSpace space, uint64_t partition_id,
    uint64_t num_partitions) {
  if (!IsPowerOfTwo(num_partitions)) {
    return Status::InvalidArgument("number of partitions must be 2^l");
  }
  if (num_partitions > MaxWorkers(num_tables, space)) {
    return Status::InvalidArgument(
        "partition count exceeds the maximum degree of parallelism for "
        "this query size");
  }
  if (partition_id >= num_partitions) {
    return Status::InvalidArgument("partition id out of range");
  }
  const int num_constraints = FloorLog2(num_partitions);
  ConstraintSet out(space);
  const int width = GroupWidth(space);
  for (int i = 0; i < num_constraints; ++i) {
    // Bit i of the partition id encodes the precedence direction of the
    // constraint on the i-th table group (paper Algorithm 3).
    const bool flipped = (partition_id >> i) & 1;
    const int base = width * i;
    if (space == PlanSpace::kLinear) {
      if (!flipped) {
        out.linear_.push_back({base, base + 1});
      } else {
        out.linear_.push_back({base + 1, base});
      }
    } else {
      if (!flipped) {
        out.bushy_.push_back({base, base + 1, base + 2});
      } else {
        out.bushy_.push_back({base + 1, base, base + 2});
      }
    }
  }
  return out;
}

bool ConstraintSet::Admits(TableSet s) const {
  if (s.Count() <= 1) return true;
  if (space_ == PlanSpace::kLinear) {
    for (const LinearConstraint& c : linear_) {
      if (s.Contains(c.after) && !s.Contains(c.before)) return false;
    }
  } else {
    for (const BushyConstraint& c : bushy_) {
      if (s.Contains(c.y) && s.Contains(c.z) && !s.Contains(c.x)) {
        return false;
      }
    }
  }
  return true;
}

std::string ConstraintSet::ToString() const {
  std::string out;
  if (space_ == PlanSpace::kLinear) {
    for (const LinearConstraint& c : linear_) {
      if (!out.empty()) out += ", ";
      out += "Q" + std::to_string(c.before) + " < Q" + std::to_string(c.after);
    }
  } else {
    for (const BushyConstraint& c : bushy_) {
      if (!out.empty()) out += ", ";
      out += "Q" + std::to_string(c.x) + " <= Q" + std::to_string(c.y) + "|Q" +
             std::to_string(c.z);
    }
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace mpqopt
