// Copyright 2026 mpqopt authors.

#include "partition/partition_index.h"

#include <bit>
#include <cstring>

namespace mpqopt {
namespace {

/// Local bit pattern (within a group of `width` tables) that a constraint
/// on that group excludes from admissible join results. Returns the single
/// excluded pattern:
///  * linear, constraint a ≺ b within pair: pattern {b} (contains the
///    successor without the predecessor);
///  * bushy, constraint x ⪯ y|z within triple: pattern {y, z} (contains y
///    and z without x).
uint8_t ExcludedPattern(const LinearConstraint& c, int offset) {
  return static_cast<uint8_t>(1u << (c.after - offset));
}

uint8_t ExcludedPattern(const BushyConstraint& c, int offset) {
  return static_cast<uint8_t>((1u << (c.y - offset)) |
                              (1u << (c.z - offset)));
}

}  // namespace

PartitionIndex::PartitionIndex(int num_tables,
                               const ConstraintSet& constraints)
    : num_tables_(num_tables), space_(constraints.space()) {
  MPQOPT_CHECK_GE(num_tables, 1);
  MPQOPT_CHECK_LE(num_tables, kMaxTables);
  const int width = GroupWidth(space_);
  const int num_full_groups = num_tables / width;
  MPQOPT_CHECK_LE(constraints.num_constraints(), num_full_groups);

  for (int t = 0; t < kMaxTables; ++t) must_precede_[t] = -1;
  if (space_ == PlanSpace::kLinear) {
    for (const LinearConstraint& c : constraints.linear()) {
      must_precede_[c.before] = c.after;
    }
  }

  // Build one group per full pair/triple, then one single-table group per
  // leftover table. Constraint i always concerns group i (paper
  // Algorithm 3 numbers constraints over consecutive disjoint groups).
  int64_t stride = 1;
  for (int gi = 0; gi * width < num_tables; ++gi) {
    const int offset = gi * width;
    const int actual_width =
        offset + width <= num_tables ? width : num_tables - offset;
    if (actual_width < width) {
      // Leftover tables form unconstrained single-table groups.
      for (int t = offset; t < num_tables; ++t) {
        Group g;
        g.offset = t;
        g.width = 1;
        g.stride = stride;
        BuildGroupTables(&g, /*excluded_pattern=*/0xFF);
        stride *= g.num_digits;
        groups_.push_back(g);
      }
      break;
    }
    Group g;
    g.offset = offset;
    g.width = width;
    g.stride = stride;
    uint8_t excluded = 0xFF;  // 0xFF = no constraint on this group
    if (space_ == PlanSpace::kLinear) {
      if (gi < static_cast<int>(constraints.linear().size())) {
        excluded = ExcludedPattern(constraints.linear()[gi], offset);
      }
    } else {
      if (gi < static_cast<int>(constraints.bushy().size())) {
        excluded = ExcludedPattern(constraints.bushy()[gi], offset);
      }
    }
    BuildGroupTables(&g, excluded);
    stride *= g.num_digits;
    groups_.push_back(g);
  }
  size_ = stride;

  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const Group& g = groups_[gi];
    for (int t = g.offset; t < g.offset + g.width; ++t) {
      group_of_table_[t].group_index = static_cast<int>(gi);
    }
  }

  // Suffix maxima of per-group popcounts, for enumeration pruning.
  suffix_max_popcount_.assign(groups_.size() + 1, 0);
  for (int gi = static_cast<int>(groups_.size()) - 1; gi >= 0; --gi) {
    suffix_max_popcount_[gi] =
        suffix_max_popcount_[gi + 1] + groups_[gi].max_popcount;
  }

  // Cardinality histogram via DP over groups.
  count_by_card_.assign(num_tables_ + 1, 0);
  std::vector<int64_t> counts(num_tables_ + 1, 0);
  counts[0] = 1;
  for (const Group& g : groups_) {
    std::vector<int64_t> next(num_tables_ + 1, 0);
    for (int k = 0; k <= num_tables_; ++k) {
      if (counts[k] == 0) continue;
      for (int d = 0; d < g.num_digits; ++d) {
        next[k + g.popcount_of_digit[d]] += counts[k];
      }
    }
    counts.swap(next);
  }
  count_by_card_ = counts;
}

void PartitionIndex::BuildGroupTables(Group* g, uint8_t excluded_pattern) {
  const int num_patterns = 1 << g->width;
  std::memset(g->digit_of_pattern, -1, sizeof(g->digit_of_pattern));
  std::memset(g->split_count, 0, sizeof(g->split_count));
  g->num_digits = 0;
  g->max_popcount = 0;
  for (int p = 0; p < num_patterns; ++p) {
    if (p == excluded_pattern) continue;
    const int d = g->num_digits++;
    g->digit_of_pattern[p] = static_cast<int8_t>(d);
    g->pattern_of_digit[d] = static_cast<uint8_t>(p);
    const int pop = std::popcount(static_cast<unsigned>(p));
    g->popcount_of_digit[d] = static_cast<uint8_t>(pop);
    if (pop > g->max_popcount) g->max_popcount = pop;
  }
  // Split lists: for each admissible pattern p, the sub-patterns l with
  // both l and p\l admissible. This encodes Algorithm 5's two exclusion
  // rules (line 25: l violates a constraint; line 27: the complement of l
  // violates it) in a single table.
  for (int p = 0; p < num_patterns; ++p) {
    if (g->digit_of_pattern[p] < 0) continue;
    uint8_t count = 0;
    // Enumerate all sub-patterns of p, including 0 and p itself.
    uint8_t l = 0;
    while (true) {
      const uint8_t r = static_cast<uint8_t>(p & ~l);
      if (g->digit_of_pattern[l] >= 0 && g->digit_of_pattern[r] >= 0) {
        g->split_list[p][count++] = l;
      }
      if (l == p) break;
      l = static_cast<uint8_t>((l - p) & p);  // next sub-pattern of p
    }
    g->split_count[p] = count;
  }
}

int64_t PartitionIndex::CountSetsOfCard(int k) const {
  if (k < 0 || k > num_tables_) return 0;
  return count_by_card_[k];
}

int64_t PartitionIndex::CountAdmissibleSplits() const {
  int64_t total = 0;
  for (int k = 2; k <= num_tables_; ++k) {
    ForEachSetOfCard(k, [&](TableSet u, int64_t) {
      int64_t splits = 1;
      for (const Group& g : groups_) {
        splits *= g.split_count[LocalPattern(u, g)];
      }
      total += splits - 2;  // exclude left = {} and left = u
    });
  }
  return total;
}

}  // namespace mpqopt
