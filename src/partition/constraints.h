// Copyright 2026 mpqopt authors.
//
// Plan-space partitioning constraints (paper Section 4.2, Algorithm 3).
//
// The plan space for a query is divided into m = 2^l partitions by placing
// l independent precedence constraints on disjoint table groups:
//
//  * Linear (left-deep) spaces constrain consecutive table PAIRS:
//    constraint i concerns tables (2i, 2i+1) and has two complementary
//    directions, Q_{2i} "joined before" Q_{2i+1} or vice versa. A
//    constraint x ≺ y excludes every intermediate join result that
//    contains y but not x.
//
//  * Bushy spaces constrain consecutive table TRIPLES: constraint i
//    concerns tables (3i, 3i+1, 3i+2) and the two directions are
//    Q_{3i} ⪯ Q_{3i+1} | Q_{3i+2} and Q_{3i+1} ⪯ Q_{3i} | Q_{3i+2}.
//    A constraint x ⪯ y|z excludes every join result containing y and z
//    but not x.
//
// Bit i of the partition id selects the direction of constraint i; the 2^l
// partitions together cover the whole plan space, and all partitions have
// exactly the same number of admissible join results (skew-freeness).

#ifndef MPQOPT_PARTITION_CONSTRAINTS_H_
#define MPQOPT_PARTITION_CONSTRAINTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"
#include "common/table_set.h"

namespace mpqopt {

/// Which plan space the optimizer searches.
enum class PlanSpace : uint8_t {
  kLinear = 0,  ///< left-deep plans only
  kBushy = 1,   ///< all binary plan trees
};

const char* PlanSpaceName(PlanSpace space);

/// Join-order precedence constraint for linear spaces: `before` must be
/// joined before `after`; join results containing `after` but not `before`
/// are inadmissible.
struct LinearConstraint {
  int before;
  int after;
};

/// Precedence constraint for bushy spaces: x ⪯ y | z. When following table
/// z from its leaf to the plan root, x must appear no later than y; join
/// results containing y and z but not x are inadmissible.
struct BushyConstraint {
  int x;
  int y;
  int z;
};

/// Width of the table groups constraints are defined on: 2 for linear
/// (pairs), 3 for bushy (triples).
constexpr int GroupWidth(PlanSpace space) {
  return space == PlanSpace::kLinear ? 2 : 3;
}

/// Maximum number of constraints usable for an n-table query: floor(n/2)
/// disjoint pairs or floor(n/3) disjoint triples.
constexpr int MaxConstraints(int num_tables, PlanSpace space) {
  return num_tables / GroupWidth(space);
}

/// Maximum degree of parallelism MPQ can exploit: 2^{floor(n/2)} for
/// linear, 2^{floor(n/3)} for bushy plan spaces (paper Section 5).
uint64_t MaxWorkers(int num_tables, PlanSpace space);

/// Rounds `workers` down to the largest power of two that the algorithm
/// can exploit for this query (at least 1).
uint64_t UsableWorkers(int num_tables, PlanSpace space, uint64_t workers);

/// Validates a requested degree of parallelism: `workers` must be a power
/// of two (in particular nonzero) not exceeding MaxWorkers(num_tables,
/// space). Returns an InvalidArgument status naming the usable value
/// otherwise. Shared by the optimizers' Optimize() entry points and the
/// CLI flag parser, so an invalid value never reaches the partition-id
/// decode.
Status ValidateNumWorkers(uint64_t workers, int num_tables, PlanSpace space);

/// A fully decoded set of constraints defining one plan-space partition.
class ConstraintSet {
 public:
  /// An empty constraint set — the whole plan space (m = 1).
  static ConstraintSet None(PlanSpace space) { return ConstraintSet(space); }

  /// Decodes `partition_id` in [0, num_partitions) into the constraint set
  /// for that partition (paper Algorithm 3, PartConstraints).
  /// `num_partitions` must be a power of two not exceeding
  /// MaxWorkers(num_tables, space).
  static StatusOr<ConstraintSet> FromPartitionId(int num_tables,
                                                 PlanSpace space,
                                                 uint64_t partition_id,
                                                 uint64_t num_partitions);

  PlanSpace space() const { return space_; }
  int num_constraints() const {
    return space_ == PlanSpace::kLinear
               ? static_cast<int>(linear_.size())
               : static_cast<int>(bushy_.size());
  }
  const std::vector<LinearConstraint>& linear() const { return linear_; }
  const std::vector<BushyConstraint>& bushy() const { return bushy_; }

  /// True if join result `s` complies with every constraint (paper:
  /// admissible join results). Singletons and the empty set are always
  /// admissible here; the DP treats scan plans separately.
  bool Admits(TableSet s) const;

  /// Renders e.g. "Q0 < Q1, Q3 < Q2" for diagnostics.
  std::string ToString() const;

 private:
  explicit ConstraintSet(PlanSpace space) : space_(space) {}

  PlanSpace space_;
  std::vector<LinearConstraint> linear_;
  std::vector<BushyConstraint> bushy_;
};

}  // namespace mpqopt

#endif  // MPQOPT_PARTITION_CONSTRAINTS_H_
