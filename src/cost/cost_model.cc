// Copyright 2026 mpqopt authors.

#include "cost/cost_model.h"

#include <cmath>

namespace mpqopt {

const char* JoinAlgorithmName(JoinAlgorithm alg) {
  switch (alg) {
    case JoinAlgorithm::kScan:
      return "Scan";
    case JoinAlgorithm::kBlockNestedLoop:
      return "BNL";
    case JoinAlgorithm::kHashJoin:
      return "HJ";
    case JoinAlgorithm::kSortMergeJoin:
      return "SMJ";
  }
  return "?";
}

CostVector CostModel::ScanCost(double card) const {
  if (objective_ == Objective::kTime) {
    return CostVector::Scalar(card);
  }
  // One block of scan buffer.
  return CostVector::TimeBuffer(card, options_.block_size);
}

double CostModel::LocalJoinTime(JoinAlgorithm alg, double left_card,
                                double right_card, double output_card) const {
  double work = 0;
  switch (alg) {
    case JoinAlgorithm::kBlockNestedLoop:
      work = left_card +
             std::ceil(left_card / options_.block_size) * right_card;
      break;
    case JoinAlgorithm::kHashJoin:
      work = options_.hash_constant * (left_card + right_card);
      break;
    case JoinAlgorithm::kSortMergeJoin: {
      const double ll = left_card > 2 ? std::log2(left_card) : 1.0;
      const double lr = right_card > 2 ? std::log2(right_card) : 1.0;
      work = left_card * ll + right_card * lr + left_card + right_card;
      break;
    }
    case JoinAlgorithm::kScan:
      MPQOPT_CHECK(false);  // scans are costed via ScanCost()
  }
  return work + options_.output_cost_factor * output_card;
}

double CostModel::SortTime(double card) const {
  return card * (card > 2 ? std::log2(card) : 1.0);
}

double CostModel::SortedScanTime(double card) const {
  return options_.sorted_scan_factor * card;
}

double CostModel::MergePhaseTime(double left_card, double right_card,
                                 double output_card) const {
  return left_card + right_card + options_.output_cost_factor * output_card;
}

CostVector CostModel::JoinCost(JoinAlgorithm alg, const CostVector& left_cost,
                               const CostVector& right_cost, double left_card,
                               double right_card, double output_card) const {
  const double local_time =
      LocalJoinTime(alg, left_card, right_card, output_card);
  if (objective_ == Objective::kTime) {
    return CostVector::Scalar(left_cost.time() + right_cost.time() +
                              local_time);
  }
  double local_buffer = 0;
  switch (alg) {
    case JoinAlgorithm::kBlockNestedLoop:
      local_buffer = options_.block_size;
      break;
    case JoinAlgorithm::kHashJoin:
      local_buffer = left_card;  // build-side hash table
      break;
    case JoinAlgorithm::kSortMergeJoin:
      local_buffer = left_card + right_card;  // sort workspace
      break;
    case JoinAlgorithm::kScan:
      MPQOPT_CHECK(false);
  }
  const double time = left_cost.time() + right_cost.time() + local_time;
  double buffer = left_cost[1] > right_cost[1] ? left_cost[1] : right_cost[1];
  if (local_buffer > buffer) buffer = local_buffer;
  return CostVector::TimeBuffer(time, buffer);
}

}  // namespace mpqopt
