// Copyright 2026 mpqopt authors.
//
// Cardinality estimation under the classical independence assumption:
// |join(S)| = prod_{t in S} |t| * prod_{p inside S} sel(p).
//
// The estimator precomputes a per-table adjacency of predicates so that
// estimating one table set costs O(|S| + #predicates inside S); the DP
// calls it once per admissible join result.

#ifndef MPQOPT_COST_CARDINALITY_H_
#define MPQOPT_COST_CARDINALITY_H_

#include <vector>

#include "catalog/query.h"
#include "common/table_set.h"

namespace mpqopt {

/// Estimates intermediate-result cardinalities for one query.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Query& query);

  /// Estimated row count of joining exactly the tables in `s`.
  /// Requires s to be non-empty.
  double Cardinality(TableSet s) const;

  /// Combined selectivity of all predicates connecting `left` and `right`
  /// (1.0 if none connect them — i.e. a Cartesian product).
  double ConnectingSelectivity(TableSet left, TableSet right) const;

  /// True if at least one predicate connects `left` and `right`. With
  /// cross products allowed this does not restrict enumeration; it is used
  /// by examples/diagnostics.
  bool Connected(TableSet left, TableSet right) const;

  int num_tables() const { return static_cast<int>(table_cards_.size()); }

 private:
  struct Edge {
    int other_table;
    double selectivity;
  };

  std::vector<double> table_cards_;
  // adjacency_[t] lists predicates incident to t; to avoid double counting
  // inside a set, Cardinality() applies an edge only at its lower endpoint.
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace mpqopt

#endif  // MPQOPT_COST_CARDINALITY_H_
