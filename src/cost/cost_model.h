// Copyright 2026 mpqopt authors.
//
// Cost model with the standard textbook formulas the paper's evaluation
// uses ("standard cost formulas [Steinbrunn et al.] ... for standard join
// operators such as block-nested loop join, hash join, and sort-merge
// join", Section 6.1). Costs are abstract work units proportional to tuple
// accesses.
//
// Time metric (always metric 0):
//   Scan(R):           |R|
//   BNL(L, R):         |L| + ceil(|L| / B) * |R|   (B = block size in rows)
//   Hash(L, R):        c_h * (|L| + |R|)           (build + probe)
//   SortMerge(L, R):   |L| log2 |L| + |R| log2 |R| + |L| + |R|
// plus |out| for producing the join result; plan time is the sum over all
// operators.
//
// Buffer metric (metric 1 in kTimeAndBuffer mode, following the
// multi-objective query optimization literature the paper cites):
//   Scan: 1 block; BNL: B rows; Hash: |L| rows (build table);
//   SortMerge: |L| + |R| rows (sort workspace).
// Plan buffer is the maximum over operator workspaces — operator memory is
// reused down the pipeline, the peak governs admission. Both combination
// rules (sum for time, max for buffer) are monotone, so the principle of
// optimality holds for Pareto-set DP.

#ifndef MPQOPT_COST_COST_MODEL_H_
#define MPQOPT_COST_COST_MODEL_H_

#include <cstdint>

#include "cost/cost_vector.h"

namespace mpqopt {

/// Physical operator implementations considered by the optimizer.
enum class JoinAlgorithm : uint8_t {
  kScan = 0,           ///< leaf table scan (not a join)
  kBlockNestedLoop = 1,
  kHashJoin = 2,
  kSortMergeJoin = 3,
};

/// Returns a short display name, e.g. "HJ".
const char* JoinAlgorithmName(JoinAlgorithm alg);

/// Number of join implementations (excluding kScan).
inline constexpr int kNumJoinAlgorithms = 3;

/// The list of join implementations, for enumeration loops.
inline constexpr JoinAlgorithm kJoinAlgorithms[kNumJoinAlgorithms] = {
    JoinAlgorithm::kBlockNestedLoop, JoinAlgorithm::kHashJoin,
    JoinAlgorithm::kSortMergeJoin};

/// Which cost metrics the optimizer tracks.
enum class Objective : uint8_t {
  kTime = 0,           ///< classical single-objective optimization
  kTimeAndBuffer = 1,  ///< multi-objective: (execution time, buffer space)
};

/// Tuning constants of the cost formulas.
struct CostModelOptions {
  double block_size = 100.0;       ///< rows per BNL block
  double hash_constant = 1.2;      ///< per-row build+probe factor
  double output_cost_factor = 1.0; ///< cost per produced output row
  /// Per-row cost factor of an order-producing (clustered-index-style)
  /// scan, relative to a plain heap scan. Interesting-orders mode only.
  double sorted_scan_factor = 1.2;
};

/// Stateless cost model; cheap to copy into each worker.
class CostModel {
 public:
  explicit CostModel(Objective objective,
                     CostModelOptions options = CostModelOptions())
      : objective_(objective), options_(options) {}

  Objective objective() const { return objective_; }
  int num_metrics() const {
    return objective_ == Objective::kTime ? 1 : 2;
  }

  /// Cost of scanning a base table with `card` rows.
  CostVector ScanCost(double card) const;

  /// Full plan cost of joining two subplans with the given algorithm.
  /// `left_cost`/`right_cost` are the subplan cost vectors; `left_card`,
  /// `right_card`, `output_card` are estimated row counts.
  CostVector JoinCost(JoinAlgorithm alg, const CostVector& left_cost,
                      const CostVector& right_cost, double left_card,
                      double right_card, double output_card) const;

  /// Operator-local work (time metric only) — used by tests to validate
  /// the composition rule.
  double LocalJoinTime(JoinAlgorithm alg, double left_card, double right_card,
                       double output_card) const;

  // --- Interesting-orders mode (see optimizer/orders.h) ---------------

  /// Cost of explicitly sorting `card` rows (n log2 n).
  double SortTime(double card) const;

  /// Cost of an order-producing scan of `card` rows.
  double SortedScanTime(double card) const;

  /// Merge phase of a sort-merge join on presorted inputs (no sort term).
  double MergePhaseTime(double left_card, double right_card,
                        double output_card) const;

 private:
  Objective objective_;
  CostModelOptions options_;
};

}  // namespace mpqopt

#endif  // MPQOPT_COST_COST_MODEL_H_
