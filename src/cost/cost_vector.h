// Copyright 2026 mpqopt authors.
//
// Plan cost vectors. Single-objective optimization uses one metric
// (execution time); multi-objective optimization (paper Section 6, second
// series) adds buffer-space consumption. The vector is fixed-capacity and
// trivially copyable because it sits in every memo entry.

#ifndef MPQOPT_COST_COST_VECTOR_H_
#define MPQOPT_COST_COST_VECTOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/serialize.h"

namespace mpqopt {

/// Maximum number of simultaneous cost metrics supported. Two covers the
/// paper's evaluation (time, buffer); kept small because CostVector sits
/// in every Pareto memo entry of the multi-objective DP.
inline constexpr int kMaxCostMetrics = 2;

/// A point in cost space; lower is better in every metric.
class CostVector {
 public:
  CostVector() : num_metrics_(1) { values_.fill(0.0); }

  explicit CostVector(int num_metrics) : num_metrics_(num_metrics) {
    MPQOPT_DCHECK(num_metrics >= 1 && num_metrics <= kMaxCostMetrics);
    values_.fill(0.0);
  }

  /// Single-metric convenience constructor.
  static CostVector Scalar(double time) {
    CostVector c(1);
    c.values_[0] = time;
    return c;
  }

  /// Two-metric convenience constructor (time, buffer).
  static CostVector TimeBuffer(double time, double buffer) {
    CostVector c(2);
    c.values_[0] = time;
    c.values_[1] = buffer;
    return c;
  }

  int num_metrics() const { return num_metrics_; }
  double operator[](int i) const {
    MPQOPT_DCHECK(i >= 0 && i < num_metrics_);
    return values_[i];
  }
  double& operator[](int i) {
    MPQOPT_DCHECK(i >= 0 && i < num_metrics_);
    return values_[i];
  }

  /// First metric — execution time under both objective modes.
  double time() const { return values_[0]; }

  /// Component-wise sum; both vectors must have the same arity.
  CostVector Plus(const CostVector& other) const {
    MPQOPT_DCHECK(num_metrics_ == other.num_metrics_);
    CostVector out(num_metrics_);
    for (int i = 0; i < num_metrics_; ++i) {
      out.values_[i] = values_[i] + other.values_[i];
    }
    return out;
  }

  /// Component-wise max (used for the buffer metric, where concurrent
  /// operator workspaces are bounded by the largest requirement).
  CostVector Max(const CostVector& other) const {
    MPQOPT_DCHECK(num_metrics_ == other.num_metrics_);
    CostVector out(num_metrics_);
    for (int i = 0; i < num_metrics_; ++i) {
      out.values_[i] =
          values_[i] > other.values_[i] ? values_[i] : other.values_[i];
    }
    return out;
  }

  /// True if this vector is at least as good as `other` in every metric.
  bool WeaklyDominates(const CostVector& other) const {
    MPQOPT_DCHECK(num_metrics_ == other.num_metrics_);
    for (int i = 0; i < num_metrics_; ++i) {
      if (values_[i] > other.values_[i]) return false;
    }
    return true;
  }

  /// True if this vector weakly dominates `other` and is strictly better in
  /// at least one metric.
  bool StrictlyDominates(const CostVector& other) const {
    MPQOPT_DCHECK(num_metrics_ == other.num_metrics_);
    bool strict = false;
    for (int i = 0; i < num_metrics_; ++i) {
      if (values_[i] > other.values_[i]) return false;
      if (values_[i] < other.values_[i]) strict = true;
    }
    return strict;
  }

  /// Approximate dominance (Trummer & Koch, SIGMOD 2014): this vector
  /// alpha-dominates `other` if scaling `other` up by alpha makes it weakly
  /// dominated, i.e. values_[i] <= alpha * other[i] for all i. alpha >= 1;
  /// alpha == 1 coincides with weak dominance.
  bool AlphaDominates(const CostVector& other, double alpha) const {
    MPQOPT_DCHECK(num_metrics_ == other.num_metrics_);
    MPQOPT_DCHECK(alpha >= 1.0);
    for (int i = 0; i < num_metrics_; ++i) {
      if (values_[i] > alpha * other.values_[i]) return false;
    }
    return true;
  }

  void Serialize(ByteWriter* writer) const {
    writer->WriteU8(static_cast<uint8_t>(num_metrics_));
    for (int i = 0; i < num_metrics_; ++i) writer->WriteDouble(values_[i]);
  }

  static StatusOr<CostVector> Deserialize(ByteReader* reader) {
    uint8_t n = 0;
    Status s = reader->ReadU8(&n);
    if (!s.ok()) return s;
    if (n < 1 || n > kMaxCostMetrics) {
      return Status::Corruption("cost vector arity out of range");
    }
    CostVector out(n);
    for (int i = 0; i < n; ++i) {
      if (!(s = reader->ReadDouble(&out.values_[i])).ok()) return s;
    }
    return out;
  }

  std::string ToString() const {
    std::string out = "(";
    for (int i = 0; i < num_metrics_; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(values_[i]);
    }
    out += ")";
    return out;
  }

 private:
  std::array<double, kMaxCostMetrics> values_;
  int num_metrics_;
};

}  // namespace mpqopt

#endif  // MPQOPT_COST_COST_VECTOR_H_
