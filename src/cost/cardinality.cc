// Copyright 2026 mpqopt authors.

#include "cost/cardinality.h"

namespace mpqopt {

CardinalityEstimator::CardinalityEstimator(const Query& query) {
  const int n = query.num_tables();
  table_cards_.resize(n);
  for (int i = 0; i < n; ++i) table_cards_[i] = query.table(i).cardinality;
  adjacency_.resize(n);
  for (const JoinPredicate& p : query.predicates()) {
    adjacency_[p.left_table].push_back({p.right_table, p.selectivity});
    adjacency_[p.right_table].push_back({p.left_table, p.selectivity});
  }
}

double CardinalityEstimator::Cardinality(TableSet s) const {
  MPQOPT_DCHECK(!s.IsEmpty());
  double card = 1.0;
  for (int t : s) {
    card *= table_cards_[t];
    for (const Edge& e : adjacency_[t]) {
      // Apply each intra-set predicate exactly once, at its lower endpoint.
      if (e.other_table > t && s.Contains(e.other_table)) {
        card *= e.selectivity;
      }
    }
  }
  return card < 1.0 ? 1.0 : card;
}

double CardinalityEstimator::ConnectingSelectivity(TableSet left,
                                                   TableSet right) const {
  MPQOPT_DCHECK(!left.Intersects(right));
  double sel = 1.0;
  // Iterate over the smaller side's adjacency lists.
  const TableSet probe = left.Count() <= right.Count() ? left : right;
  const TableSet other = left.Count() <= right.Count() ? right : left;
  for (int t : probe) {
    for (const Edge& e : adjacency_[t]) {
      if (other.Contains(e.other_table)) sel *= e.selectivity;
    }
  }
  return sel;
}

bool CardinalityEstimator::Connected(TableSet left, TableSet right) const {
  const TableSet probe = left.Count() <= right.Count() ? left : right;
  const TableSet other = left.Count() <= right.Count() ? right : left;
  for (int t : probe) {
    for (const Edge& e : adjacency_[t]) {
      if (other.Contains(e.other_table)) return true;
    }
  }
  return false;
}

}  // namespace mpqopt
