// Copyright 2026 mpqopt authors.
//
// Figure 4: multi-objective query optimization (execution time + buffer
// space, approximate Pareto pruning with alpha = 10), MPQ vs SMA —
// optimization time and network bytes vs workers, for Linear 10 and
// Bushy 9. Both algorithms use the same pruning function; MPQ's network
// traffic is higher than in the single-objective case because each worker
// returns its whole partition-local Pareto frontier.

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

struct Panel {
  const char* name;
  PlanSpace space;
  int tables;
};

void RunPanel(const Panel& panel, const BenchConfig& config) {
  PrintHeader((std::string("Figure 4 — ") + panel.name +
               " (two cost metrics, alpha=10)")
                  .c_str());
  const std::vector<Query> queries = MakeQueries(
      panel.tables, config.queries_per_point, JoinGraphShape::kStar,
      config.seed);
  TablePrinter table({"workers", "MPQ time (ms)", "MPQ net (B)",
                      "SMA time (ms)", "SMA net (B)", "frontier"});
  for (uint64_t m :
       WorkerSweep(panel.tables, panel.space, config.max_workers)) {
    std::vector<double> mpq_time, mpq_net, sma_time, sma_net, frontier;
    for (const Query& q : queries) {
      MpqOptions mpq_opts;
      mpq_opts.space = panel.space;
      mpq_opts.objective = Objective::kTimeAndBuffer;
      mpq_opts.alpha = 10.0;
      mpq_opts.num_workers = m;
      mpq_opts.network = NetworkFromEnv();
      MpqOptimizer mpq(mpq_opts);
      StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
      MPQOPT_CHECK(mpq_result.ok());
      mpq_time.push_back(mpq_result.value().simulated_seconds);
      mpq_net.push_back(static_cast<double>(mpq_result.value().network_bytes));
      frontier.push_back(static_cast<double>(mpq_result.value().best.size()));

      SmaOptions sma_opts;
      sma_opts.space = panel.space;
      sma_opts.objective = Objective::kTimeAndBuffer;
      sma_opts.alpha = 10.0;
      sma_opts.num_workers = m;
      sma_opts.network = NetworkFromEnv();
      StatusOr<SmaResult> sma_result = SmaOptimize(q, sma_opts);
      MPQOPT_CHECK(sma_result.ok());
      sma_time.push_back(sma_result.value().simulated_seconds);
      sma_net.push_back(static_cast<double>(sma_result.value().network_bytes));
    }
    table.AddRow(
        {std::to_string(m), TablePrinter::FormatMillis(Median(mpq_time)),
         TablePrinter::FormatBytes(Median(mpq_net)),
         TablePrinter::FormatMillis(Median(sma_time)),
         TablePrinter::FormatBytes(Median(sma_net)),
         TablePrinter::FormatCount(Median(frontier))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv();
  const Panel panels[] = {
      {"Linear 10", PlanSpace::kLinear, 10},
      {"Bushy 9", PlanSpace::kBushy, 9},
  };
  for (const Panel& panel : panels) RunPanel(panel, config);
  std::printf(
      "Expected shape (paper): MPQ beats SMA in time and bytes; SMA\n"
      "degrades beyond ~8 workers (its maximal useful parallelism), MPQ\n"
      "keeps scaling up to the number of disjoint table pairs/triples.\n"
      "Paper reports median frontiers of 21 plans (Linear 12) / 16 plans\n"
      "(Bushy 9) for complete queries.\n");
  return 0;
}
