// Copyright 2026 mpqopt authors.
//
// Table 1: minimal degree of parallelism required to reach approximation
// precision alpha within a fixed optimization-time budget (two cost
// metrics, linear plan spaces). A cell holds the smallest worker count m
// for which at least half of the test queries finish within the budget
// when the pruning function runs with that alpha; "inf" means even the
// largest tried m was insufficient (as in the paper).
//
// The paper uses budgets of 10/30/60 seconds on 14-20 tables with up to
// 128 workers on its Java/Spark stack. Our C++ workers are roughly two
// orders of magnitude faster, so budgets are scaled by
// MPQOPT_BUDGET_SCALE (default 0.002: 20/60/120 ms — the same scaling
// ratio applied to the network model, see net/network_model.h) and the
// default sizes are 12/14/16 tables; MPQOPT_PAPER_SCALE=1 restores
// 14-20 tables. The trade-off surface (higher parallelism -> finer alpha
// affordable within a budget) is the reproduced shape.

#include <map>

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

constexpr double kAlphas[] = {1.01, 1.05, 1.25, 1.5, 2.0, 5.0, 10.0};

void RunTable(const std::vector<int>& sizes, const BenchConfig& config) {
  const double budget_scale = EnvDouble("MPQOPT_BUDGET_SCALE", 0.002);
  const double budgets[] = {10 * budget_scale, 30 * budget_scale,
                            60 * budget_scale};
  const std::vector<uint64_t> worker_counts = [&] {
    std::vector<uint64_t> out;
    for (uint64_t m = 1; m <= config.max_workers; m *= 4) out.push_back(m);
    if (out.back() != config.max_workers &&
        IsPowerOfTwo(config.max_workers)) {
      out.push_back(config.max_workers);
    }
    return out;
  }();

  // One optimization run per (size, alpha, m, query); measured times are
  // reused across all budgets.
  // key: (size, alpha index, m) -> per-query simulated seconds.
  std::map<std::tuple<int, int, uint64_t>, std::vector<double>> runs;
  for (int n : sizes) {
    const std::vector<Query> queries = MakeQueries(
        n, config.queries_per_point, JoinGraphShape::kStar, config.seed);
    for (int ai = 0; ai < static_cast<int>(std::size(kAlphas)); ++ai) {
      for (uint64_t m : worker_counts) {
        if (m > MaxWorkers(n, PlanSpace::kLinear)) continue;
        std::vector<double> seconds;
        for (const Query& q : queries) {
          MpqOptions opts;
          opts.space = PlanSpace::kLinear;
          opts.objective = Objective::kTimeAndBuffer;
          opts.alpha = kAlphas[ai];
          opts.num_workers = m;
          opts.network = NetworkFromEnv();
          MpqOptimizer mpq(opts);
          StatusOr<MpqResult> result = mpq.Optimize(q);
          MPQOPT_CHECK(result.ok());
          seconds.push_back(result.value().simulated_seconds);
        }
        runs[{n, ai, m}] = std::move(seconds);
      }
    }
  }

  for (double budget : budgets) {
    PrintHeader(("Table 1 — budget " +
                 TablePrinter::FormatMillis(budget) +
                 " ms: minimal workers to reach precision alpha")
                    .c_str());
    std::vector<std::string> headers = {"tables"};
    for (double alpha : kAlphas) {
      headers.push_back(TablePrinter::FormatDouble(alpha, 2));
    }
    TablePrinter table(std::move(headers));
    for (int n : sizes) {
      std::vector<std::string> row = {std::to_string(n)};
      for (int ai = 0; ai < static_cast<int>(std::size(kAlphas)); ++ai) {
        std::string cell = "inf";
        for (uint64_t m : worker_counts) {
          auto it = runs.find({n, ai, m});
          if (it == runs.end()) continue;
          int within = 0;
          for (double s : it->second) {
            if (s <= budget) ++within;
          }
          // "at least eight out of 15 test cases" -> at least half.
          if (2 * within >= static_cast<int>(it->second.size())) {
            cell = std::to_string(m);
            break;
          }
        }
        row.push_back(std::move(cell));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv(/*default_queries=*/3,
                                                  /*default_max_workers=*/64);
  std::vector<int> sizes = {12, 14, 16};
  if (config.paper_scale) sizes = {14, 16, 18, 20};
  RunTable(sizes, config);
  std::printf(
      "Expected shape (paper): moving right (finer alpha) or down (more\n"
      "tables) requires more workers within a fixed budget; larger budgets\n"
      "shift the whole frontier toward 1 worker; some cells stay inf.\n");
  return 0;
}
