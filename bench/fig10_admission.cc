// Copyright 2026 mpqopt authors.
//
// Figure 10 (repo extension, not in the paper): the admission layer
// under overload — tail latency and goodput at 10x offered load, with
// admission control on vs off.
//
// Phase 1, overload: an open-loop arrival process (the burst_open_loop
// idea at bench scale) offers a mixed interactive/background stream at
// TEN TIMES the service's calibrated serial rate. With admission OFF,
// every arrival runs at once: the shared pool oversubscribes and the
// interactive tail inflates without bound. With admission ON, the
// weighted-fair priority queue bounds in-service concurrency, lets
// interactive work overtake queued background work, sheds load past the
// per-class depth caps, and expires requests that out-waited their
// queue deadline — so the interactive p99 stays near its uncontended
// value and every rejection is a deterministic, immediate error instead
// of a timeout discovered downstream. The background tenant also
// carries a token-bucket quota, so over-rate background arrivals are
// rejected before they ever queue.
//
// Phase 2, determinism: admission and scatter coalescing must never
// change WHAT the optimizer produces, only when work is allowed to run.
// A fixed query set is optimized under {admission off/on} x {coalesce
// off/on} on every backend, and the run FAILS (exit 1) unless every
// combination picks byte-identical plans.
//
// Flags:
//   --json=<path>    machine-readable records (BenchJsonWriter schema)
//   --smoke          shortened overload run — the CI configuration
//   --backends=<csv> phase-2 backends (default thread,process,async,rpc;
//                    rpc self-hosts mpqopt_worker subprocesses and is
//                    skipped with a notice when the binary is missing)
//
// Knobs: MPQOPT_ADMISSION_ARRIVALS (total offered arrivals, default
// 240; smoke forces 60), MPQOPT_ADMISSION_LOAD (offered-load multiple,
// default 10), MPQOPT_POOL_THREADS (4), MPQOPT_RPC_WORKERS (2), and the
// shared MPQOPT_SEED / network knobs of bench_common.h.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "plan/plan_serde.h"
#include "plancache/fingerprint.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

using Clock = std::chrono::steady_clock;

/// Canonical 128-bit hash of a chosen plan set (same construction as
/// macrobench): agreeing on the hash means agreeing on the whole plan.
std::string PlanSignature(const PlanArena& arena,
                          const std::vector<PlanId>& best) {
  ByteWriter writer;
  SerializePlanSet(arena, best, &writer);
  const std::vector<uint8_t>& bytes = writer.buffer();
  char out[48];
  std::snprintf(out, sizeof(out), "%016llx%016llx",
                static_cast<unsigned long long>(
                    HashBytes64(bytes.data(), bytes.size(), /*seed=*/1)),
                static_cast<unsigned long long>(
                    HashBytes64(bytes.data(), bytes.size(), /*seed=*/2)));
  return out;
}

using obs::Percentile;

/// The overload stream: every third arrival is a heavy background
/// query, the rest are light interactive lookups.
struct ArrivalPlan {
  const Query* query;
  const MpqOptions* options;
  RequestContext ctx;
};

/// Outcome of one overload replay.
struct OverloadResult {
  std::vector<double> interactive_latency;  // completed interactive only
  uint64_t completed = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue = 0;
  uint64_t timed_out = 0;
  uint64_t other_failures = 0;
  double wall_seconds = 0;
};

OverloadResult RunOverload(const std::vector<ArrivalPlan>& arrivals,
                           double interarrival_ms, bool admission,
                           int pool_threads) {
  ServiceOptions service_opts;
  // The thread backend — one freshly spawned pool per worker round — is
  // the backend that actually degrades under unbounded concurrency
  // (fig6 showed the persistent pool interleaving fairly; admission is
  // the cure for the backends and machines where that fairness is not
  // available).
  service_opts.backend_kind = BackendKind::kThread;
  service_opts.network = NetworkFromEnv();
  service_opts.backend_threads = pool_threads;
  service_opts.enable_admission = admission;
  if (admission) {
    // Concurrency bounded to the pool (running more masters than pool
    // threads only builds queues downstream), shallow per-class queues,
    // and a deadline tight enough that shed work fails while the client
    // would still care about the answer.
    service_opts.admission.max_concurrent = pool_threads;
    service_opts.admission.queue_depth = 16;
    service_opts.admission.queue_timeout_ms = 500;
  }
  OptimizerService service(service_opts);
  if (admission) {
    // The background tenant is rate-limited on top of the queue: over-
    // rate ETL arrivals bounce off the token bucket without queueing.
    service.admission()->SetQuota("etl", /*rate_per_second=*/50,
                                  /*burst=*/10);
  }

  OverloadResult result;
  std::mutex result_mutex;
  std::vector<std::thread> threads;
  threads.reserve(arrivals.size());
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    threads.emplace_back([&, i]() {
      std::this_thread::sleep_until(
          start + std::chrono::duration<double, std::milli>(
                      interarrival_ms * static_cast<double>(i)));
      const ArrivalPlan& plan = arrivals[i];
      const Clock::time_point t0 = Clock::now();
      const StatusOr<MpqResult> r =
          service.Optimize(*plan.query, *plan.options, plan.ctx);
      const double latency =
          std::chrono::duration<double>(Clock::now() - t0).count();
      std::lock_guard<std::mutex> lock(result_mutex);
      if (r.ok()) {
        ++result.completed;
        if (plan.ctx.priority == Priority::kInteractive) {
          result.interactive_latency.push_back(latency);
        }
      } else if (r.status().code() == StatusCode::kResourceExhausted) {
        // Quota and queue-full rejections both surface as
        // ResourceExhausted; split them from the service counters below.
        ++result.rejected_queue;
      } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
        ++result.timed_out;
      } else {
        ++result.other_failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  const ServiceStats stats = service.stats();
  result.rejected_quota = stats.rejected_quota;
  if (result.rejected_queue >= stats.rejected_quota) {
    result.rejected_queue -= stats.rejected_quota;
  }
  return result;
}

/// One phase-2 cell: the fixed query set through a service configured
/// with (admission, coalesce) on the given shared backend; returns the
/// concatenated plan signatures or an error.
StatusOr<std::string> RunIdentityCell(
    const std::shared_ptr<ExecutionBackend>& backend,
    const std::vector<Query>& queries, const MpqOptions& opts,
    bool admission) {
  ServiceOptions service_opts;
  service_opts.backend = backend;
  service_opts.enable_admission = admission;
  // The coalescing knob was applied when `backend` was constructed;
  // ServiceOptions::coalesce_scatter only matters when the service
  // builds its own backend.
  OptimizerService service(service_opts);
  RequestContext ctx;
  ctx.tenant = "identity";
  std::string sigs;
  for (const Query& query : queries) {
    StatusOr<MpqResult> r = service.Optimize(query, opts, ctx);
    if (!r.ok()) return r.status();
    sigs += PlanSignature(r.value().arena, r.value().best);
    sigs += "\n";
  }
  return sigs;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) {
  using namespace mpqopt;
  const std::string json_path = BenchJsonWriter::ParseFlag(&argc, argv);
  BenchJsonWriter json;
  const BenchConfig config = BenchConfig::FromEnv();

  bool smoke = false;
  std::string backends_csv = "thread,process,async,rpc";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--backends=", 11) == 0) {
      backends_csv = argv[i] + 11;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--smoke] [--json=PATH] "
                   "[--backends=thread,process,async,rpc]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const int total_arrivals =
      smoke ? 60
            : static_cast<int>(EnvInt("MPQOPT_ADMISSION_ARRIVALS", 240));
  const double load_multiple =
      static_cast<double>(EnvInt("MPQOPT_ADMISSION_LOAD", 10));
  const int pool_threads =
      static_cast<int>(EnvInt("MPQOPT_POOL_THREADS", 4));
  const int rpc_workers =
      static_cast<int>(EnvInt("MPQOPT_RPC_WORKERS", 2));

  PrintHeader(smoke ? "Figure 10 — admission under overload (smoke)"
                    : "Figure 10 — admission under overload");

  // The traffic mix: light interactive stars for the latency-sensitive
  // class, heavier bushy queries as the background/ETL class.
  // Sized so the classes genuinely differ: an 8-table star optimizes in
  // a fraction of a millisecond, a 13-table chain takes tens of
  // milliseconds of real DP work — the background class can actually
  // monopolize the pool when nothing stops it.
  MpqOptions light_opts;
  light_opts.space = PlanSpace::kLinear;
  light_opts.num_workers = UsableWorkers(8, PlanSpace::kLinear, 8);
  light_opts.network = NetworkFromEnv();
  MpqOptions heavy_opts;
  heavy_opts.space = PlanSpace::kLinear;
  heavy_opts.num_workers = UsableWorkers(13, PlanSpace::kLinear, 16);
  heavy_opts.network = light_opts.network;
  const std::vector<Query> light =
      MakeQueries(8, 4, JoinGraphShape::kStar, config.seed);
  const std::vector<Query> heavy =
      MakeQueries(13, 2, JoinGraphShape::kChain, config.seed + 1);

  std::vector<ArrivalPlan> arrivals;
  arrivals.reserve(static_cast<size_t>(total_arrivals));
  for (int i = 0; i < total_arrivals; ++i) {
    ArrivalPlan plan;
    if (i % 3 == 2) {
      plan.query = &heavy[static_cast<size_t>(i / 3) % heavy.size()];
      plan.options = &heavy_opts;
      plan.ctx.tenant = "etl";
      plan.ctx.priority = Priority::kBackground;
    } else {
      plan.query = &light[static_cast<size_t>(i) % light.size()];
      plan.options = &light_opts;
      plan.ctx.tenant = "dash";
      plan.ctx.priority = Priority::kInteractive;
    }
    arrivals.push_back(plan);
  }

  // ---- Calibrate: the serial service rate of the mix. -----------------
  // One warm pass over the distinct queries, then a timed serial pass;
  // the offered load is `load_multiple` times the measured rate.
  double interarrival_ms = 1.0;
  {
    ServiceOptions service_opts;
    service_opts.backend_kind = BackendKind::kAsyncBatch;
    service_opts.network = light_opts.network;
    service_opts.backend_threads = pool_threads;
    OptimizerService service(service_opts);
    const int probe = std::min<int>(12, total_arrivals);
    for (int pass = 0; pass < 2; ++pass) {
      const Clock::time_point t0 = Clock::now();
      for (int i = 0; i < probe; ++i) {
        const ArrivalPlan& plan = arrivals[static_cast<size_t>(i)];
        MPQOPT_CHECK(service.Optimize(*plan.query, *plan.options).ok());
      }
      const double mean_s =
          std::chrono::duration<double>(Clock::now() - t0).count() / probe;
      interarrival_ms = mean_s * 1e3 / load_multiple;
    }
    // Floor: sleep_until cannot usefully space arrivals tighter than
    // scheduler granularity; the offered load stays >= the multiple.
    interarrival_ms = std::max(interarrival_ms, 0.05);
  }
  const double offered_qps = 1e3 / interarrival_ms;
  std::printf(
      "%d arrivals (2/3 interactive 8-table, 1/3 background 13-table),\n"
      "offered %.0f q/s (%.0fx the calibrated serial rate), pool %d "
      "threads\n\n",
      total_arrivals, offered_qps, load_multiple, pool_threads);

  // ---- Phase 1: overload with admission off vs on. --------------------
  TablePrinter table({"admission", "completed", "shed", "quota", "expired",
                      "interactive p99 (ms)", "goodput q/s"});
  double p99[2] = {0, 0};
  double goodput[2] = {0, 0};
  for (const bool admission : {false, true}) {
    const OverloadResult r =
        RunOverload(arrivals, interarrival_ms, admission, pool_threads);
    if (r.other_failures > 0) {
      std::fprintf(stderr, "%llu arrivals failed outside admission\n",
                   static_cast<unsigned long long>(r.other_failures));
      return 1;
    }
    const double p = Percentile(r.interactive_latency, 99) * 1e3;
    const double g = r.wall_seconds > 0
                         ? static_cast<double>(r.completed) / r.wall_seconds
                         : 0;
    p99[admission ? 1 : 0] = p;
    goodput[admission ? 1 : 0] = g;
    table.AddRow({admission ? "on" : "off", std::to_string(r.completed),
                  std::to_string(r.rejected_queue),
                  std::to_string(r.rejected_quota),
                  std::to_string(r.timed_out),
                  TablePrinter::FormatDouble(p, 2),
                  TablePrinter::FormatDouble(g, 1)});
    const std::string cfg = std::string("admission=") +
                            (admission ? "on" : "off") +
                            (smoke ? ",smoke=1" : "");
    json.Add("fig10_admission", cfg, "interactive_p99", p, "ms");
    json.Add("fig10_admission", cfg, "goodput", g, "q/s");
    json.Add("fig10_admission", cfg, "completed",
             static_cast<double>(r.completed), "count");
    json.Add("fig10_admission", cfg, "shed_queue",
             static_cast<double>(r.rejected_queue), "count");
    json.Add("fig10_admission", cfg, "rejected_quota",
             static_cast<double>(r.rejected_quota), "count");
    json.Add("fig10_admission", cfg, "timed_out",
             static_cast<double>(r.timed_out), "count");
    json.Add("fig10_admission", cfg, "offered_qps", offered_qps, "q/s");
  }
  table.Print();
  std::printf("\n");

  // ---- Phase 2: plan byte-identity across the admission/coalescing
  // matrix on every backend. -------------------------------------------
  const std::vector<Query> identity_queries =
      MakeQueries(7, 3, JoinGraphShape::kStar, config.seed + 2);
  MpqOptions identity_opts;
  identity_opts.space = PlanSpace::kLinear;
  identity_opts.num_workers = UsableWorkers(7, PlanSpace::kLinear, 8);
  identity_opts.network = light_opts.network;

  bool plans_identical = true;
  std::string reference;
  std::string reference_label;
  RpcWorkerFarm farm;  // outlives the rpc backends that dial it
  TablePrinter identity({"backend", "admission", "coalesce", "plans"});
  for (size_t start = 0; start < backends_csv.size();) {
    size_t comma = backends_csv.find(',', start);
    if (comma == std::string::npos) comma = backends_csv.size();
    const std::string name = backends_csv.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    StatusOr<BackendKind> kind = ParseBackendKind(name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    const bool is_rpc = kind.value() == BackendKind::kRpc;
    if (is_rpc &&
        (rpc_workers <= 0 || ::access(WorkerBinaryPath(), X_OK) != 0)) {
      std::printf(
          "rpc cells skipped (worker binary '%s' not runnable; set "
          "MPQOPT_WORKER_BIN or\nrun from the build directory)\n",
          WorkerBinaryPath());
      continue;
    }
    if (is_rpc && farm.size() == 0) farm.Start(rpc_workers);
    for (const bool admission : {false, true}) {
      for (const bool coalesce : {false, true}) {
        // The coalescing knob lives on backend construction, so each
        // cell builds its own backend (rpc cells redial the same farm).
        BackendOptions opts;
        opts.network = identity_opts.network;
        opts.max_threads = pool_threads;
        opts.workers_addr = farm.workers_addr();
        opts.coalesce_scatter = coalesce;
        StatusOr<std::shared_ptr<ExecutionBackend>> backend =
            MakeBackend(kind.value(), opts);
        MPQOPT_CHECK(backend.ok());
        StatusOr<std::string> sigs = RunIdentityCell(
            backend.value(), identity_queries, identity_opts, admission);
        if (!sigs.ok()) {
          std::fprintf(stderr, "identity cell %s failed: %s\n",
                       name.c_str(), sigs.status().ToString().c_str());
          return 1;
        }
        std::string verdict = "reference";
        if (reference.empty()) {
          reference = sigs.value();
          reference_label = name;
        } else if (sigs.value() == reference) {
          verdict = "= " + reference_label;
        } else {
          verdict = "MISMATCH";
          plans_identical = false;
        }
        identity.AddRow({name, admission ? "on" : "off",
                         coalesce ? "on" : "off", verdict});
        json.Add("fig10_admission",
                 "backend=" + name + ",admission=" +
                     (admission ? "on" : "off") + ",coalesce=" +
                     (coalesce ? "on" : "off"),
                 "plans_identical", sigs.value() == reference ? 1 : 0,
                 "bool");
      }
    }
  }
  identity.Print();

  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;

  if (!plans_identical) {
    std::fprintf(stderr,
                 "\nFAIL: admission or coalescing changed a plan choice — "
                 "the byte-identity contract is broken\n");
    return 1;
  }
  std::printf(
      "\nAll admission/coalescing combinations picked identical plans on "
      "every backend.\n"
      "Expected phase-1 shape: admission on keeps the interactive p99 "
      "near its\nuncontended value (off lets the oversubscribed pool "
      "inflate it: %s),\nwhile goodput holds — shed work fails fast "
      "instead of dragging the tail.\n",
      p99[1] < p99[0] ? "holds here" : "NOT visible in this run");
  if (goodput[1] > 0 || goodput[0] > 0) {
    std::printf("Goodput: %.1f q/s (off) vs %.1f q/s (on).\n", goodput[0],
                goodput[1]);
  }
  return 0;
}
