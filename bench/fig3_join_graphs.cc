// Copyright 2026 mpqopt authors.
//
// Figure 3: the impact of the join-graph structure (chain / star / cycle)
// on optimization time is negligible, because with cross products allowed
// the DP examines the same number of intermediate results for a given
// query size regardless of the graph. Panels: SMA with 8 tables, SMA with
// 12 tables, MPQ with 12 tables, at 2 / 16 / 128 workers; cells are
// arithmetic means with 95% confidence intervals, as in the paper.

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

constexpr JoinGraphShape kShapes[] = {JoinGraphShape::kChain,
                                      JoinGraphShape::kStar,
                                      JoinGraphShape::kCycle};

std::string Cell(const std::vector<double>& seconds) {
  return TablePrinter::FormatMillis(Mean(seconds)) + " ± " +
         TablePrinter::FormatMillis(ConfidenceInterval95(seconds));
}

void RunSmaPanel(int tables, const BenchConfig& config) {
  PrintHeader(("Figure 3 — SMA-" + std::to_string(tables) +
               " tables, time (ms, mean ± 95% CI)")
                  .c_str());
  TablePrinter table({"workers", "chain", "star", "cycle"});
  for (uint64_t m : {2ull, 16ull, 128ull}) {
    if (m > config.max_workers) continue;
    std::vector<std::string> row = {std::to_string(m)};
    for (JoinGraphShape shape : kShapes) {
      std::vector<double> seconds;
      for (const Query& q : MakeQueries(tables, config.queries_per_point,
                                        shape, config.seed)) {
        SmaOptions opts;
        opts.space = PlanSpace::kLinear;
        opts.num_workers = m;
        opts.network = NetworkFromEnv();
        StatusOr<SmaResult> result = SmaOptimize(q, opts);
        MPQOPT_CHECK(result.ok());
        seconds.push_back(result.value().simulated_seconds);
      }
      row.push_back(Cell(seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

void RunMpqPanel(int tables, const BenchConfig& config) {
  PrintHeader(("Figure 3 — MPQ-" + std::to_string(tables) +
               " tables, time (ms, mean ± 95% CI)")
                  .c_str());
  TablePrinter table({"workers", "chain", "star", "cycle"});
  for (uint64_t m : {2ull, 16ull, 64ull}) {
    if (m > std::min(config.max_workers, MaxWorkers(tables,
                                                    PlanSpace::kLinear))) {
      continue;
    }
    std::vector<std::string> row = {std::to_string(m)};
    for (JoinGraphShape shape : kShapes) {
      std::vector<double> seconds;
      for (const Query& q : MakeQueries(tables, config.queries_per_point,
                                        shape, config.seed)) {
        MpqOptions opts;
        opts.space = PlanSpace::kLinear;
        opts.num_workers = m;
        opts.network = NetworkFromEnv();
        MpqOptimizer mpq(opts);
        StatusOr<MpqResult> result = mpq.Optimize(q);
        MPQOPT_CHECK(result.ok());
        seconds.push_back(result.value().simulated_seconds);
      }
      row.push_back(Cell(seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv(/*default_queries=*/5);
  RunSmaPanel(8, config);
  RunSmaPanel(12, config);
  RunMpqPanel(12, config);
  std::printf(
      "Expected shape (paper): per panel, the three join-graph columns are\n"
      "statistically indistinguishable — graph structure does not matter\n"
      "for DP optimizers with cross products enabled.\n");
  return 0;
}
