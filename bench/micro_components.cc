// Copyright 2026 mpqopt authors.
//
// Microbenchmarks (google-benchmark) of the hot optimizer components:
// table-set operations, partition-index rank lookups, admissible-set and
// split enumeration, cardinality estimation, Pareto insertion, and
// message serialization.

#include <benchmark/benchmark.h>

#include "catalog/generator.h"
#include "common/rng.h"
#include "cost/cardinality.h"
#include "mpq/mpq.h"
#include "optimizer/pruning.h"
#include "partition/partition_index.h"
#include "plan/plan_serde.h"

namespace mpqopt {
namespace {

Query TestQuery(int n) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, 7);
  return gen.Generate(n);
}

ConstraintSet TestConstraints(int n, PlanSpace space, int l) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(n, space, 0, uint64_t{1} << l);
  MPQOPT_CHECK(c.ok());
  return std::move(c).value();
}

void BM_TableSetIteration(benchmark::State& state) {
  const TableSet s(0x5a5a5a5a5a5a5a5aULL);
  for (auto _ : state) {
    int sum = 0;
    for (int t : s) sum += t;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TableSetIteration);

void BM_SubsetEnumeration(benchmark::State& state) {
  const TableSet s = TableSet::AllTables(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SubsetEnumerator it(s);
    int64_t count = 0;
    while (it.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(8)->Arg(12)->Arg(16);

void BM_PartitionIndexRank(benchmark::State& state) {
  const int n = 20;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kLinear,
                         static_cast<int>(state.range(0))));
  Rng rng(5);
  std::vector<TableSet> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(
        TableSet(rng.NextUint64() & ((uint64_t{1} << n) - 1)));
  }
  for (auto _ : state) {
    int64_t acc = 0;
    for (const TableSet s : probes) acc += idx.Rank(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * probes.size());
}
BENCHMARK(BM_PartitionIndexRank)->Arg(0)->Arg(5)->Arg(10);

void BM_EnumerateAdmissibleSets(benchmark::State& state) {
  const int n = 18;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kLinear,
                         static_cast<int>(state.range(0))));
  for (auto _ : state) {
    int64_t count = 0;
    for (int k = 2; k <= n; ++k) {
      idx.ForEachSetOfCard(k, [&](TableSet, int64_t) { ++count; });
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EnumerateAdmissibleSets)->Arg(0)->Arg(4)->Arg(8);

void BM_BushySplitGeneration(benchmark::State& state) {
  const int n = 12;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kBushy,
                         static_cast<int>(state.range(0))));
  for (auto _ : state) {
    int64_t count = 0;
    for (int k = 2; k <= n; ++k) {
      idx.ForEachSetOfCard(k, [&](TableSet u, int64_t) {
        idx.ForEachSplit(u, [&](TableSet, int64_t, int64_t) { ++count; });
      });
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BushySplitGeneration)->Arg(0)->Arg(2)->Arg(4);

void BM_CardinalityEstimation(benchmark::State& state) {
  const Query q = TestQuery(20);
  const CardinalityEstimator est(q);
  Rng rng(9);
  std::vector<TableSet> probes;
  for (int i = 0; i < 256; ++i) {
    const uint64_t bits = rng.NextUint64() & ((uint64_t{1} << 20) - 1);
    probes.push_back(TableSet(bits == 0 ? 1 : bits));
  }
  for (auto _ : state) {
    double acc = 0;
    for (const TableSet s : probes) acc += est.Cardinality(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * probes.size());
}
BENCHMARK(BM_CardinalityEstimation);

void BM_ParetoInsert(benchmark::State& state) {
  Rng rng(11);
  std::vector<CostVector> points;
  for (int i = 0; i < 512; ++i) {
    points.push_back(CostVector::TimeBuffer(rng.UniformDouble() * 1e6 + 1,
                                            rng.UniformDouble() * 1e6 + 1));
  }
  const auto identity = [](const CostVector& c) -> const CostVector& {
    return c;
  };
  const double alpha = static_cast<double>(state.range(0));
  for (auto _ : state) {
    std::vector<CostVector> frontier;
    for (const CostVector& c : points) {
      ParetoInsert(&frontier, c, identity, alpha);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_ParetoInsert)->Arg(1)->Arg(10);

void BM_QuerySerialization(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ByteWriter w;
    q.Serialize(&w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_QuerySerialization)->Arg(8)->Arg(24);

void BM_RequestBuildAndWorkerDecode(benchmark::State& state) {
  const Query q = TestQuery(10);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;
  for (auto _ : state) {
    const std::vector<uint8_t> request =
        MpqOptimizer::BuildRequest(q, 1, opts);
    benchmark::DoNotOptimize(request.size());
  }
}
BENCHMARK(BM_RequestBuildAndWorkerDecode);

void BM_WorkerFullOptimization(benchmark::State& state) {
  // End-to-end worker task: decode + constrained DP + encode.
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 16;
  const std::vector<uint8_t> request = MpqOptimizer::BuildRequest(q, 3, opts);
  for (auto _ : state) {
    StatusOr<std::vector<uint8_t>> response =
        MpqOptimizer::WorkerMain(request);
    MPQOPT_CHECK(response.ok());
    benchmark::DoNotOptimize(response.value().size());
  }
}
BENCHMARK(BM_WorkerFullOptimization)->Arg(10)->Arg(14);

}  // namespace
}  // namespace mpqopt

BENCHMARK_MAIN();
