// Copyright 2026 mpqopt authors.
//
// Microbenchmarks (google-benchmark) of the hot optimizer components:
// table-set operations, partition-index rank lookups, admissible-set and
// split enumeration, cardinality estimation, Pareto insertion, and
// message serialization.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "catalog/generator.h"
#include "common/rng.h"
#include "cost/cardinality.h"
#include "mpq/mpq.h"
#include "optimizer/pruning.h"
#include "partition/partition_index.h"
#include "plan/plan_serde.h"

namespace mpqopt {
namespace {

Query TestQuery(int n) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, 7);
  return gen.Generate(n);
}

ConstraintSet TestConstraints(int n, PlanSpace space, int l) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(n, space, 0, uint64_t{1} << l);
  MPQOPT_CHECK(c.ok());
  return std::move(c).value();
}

void BM_TableSetIteration(benchmark::State& state) {
  const TableSet s(0x5a5a5a5a5a5a5a5aULL);
  for (auto _ : state) {
    int sum = 0;
    for (int t : s) sum += t;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TableSetIteration);

void BM_SubsetEnumeration(benchmark::State& state) {
  const TableSet s = TableSet::AllTables(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SubsetEnumerator it(s);
    int64_t count = 0;
    while (it.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(8)->Arg(12)->Arg(16);

void BM_PartitionIndexRank(benchmark::State& state) {
  const int n = 20;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kLinear,
                         static_cast<int>(state.range(0))));
  Rng rng(5);
  std::vector<TableSet> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(
        TableSet(rng.NextUint64() & ((uint64_t{1} << n) - 1)));
  }
  for (auto _ : state) {
    int64_t acc = 0;
    for (const TableSet s : probes) acc += idx.Rank(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * probes.size());
}
BENCHMARK(BM_PartitionIndexRank)->Arg(0)->Arg(5)->Arg(10);

void BM_EnumerateAdmissibleSets(benchmark::State& state) {
  const int n = 18;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kLinear,
                         static_cast<int>(state.range(0))));
  for (auto _ : state) {
    int64_t count = 0;
    for (int k = 2; k <= n; ++k) {
      idx.ForEachSetOfCard(k, [&](TableSet, int64_t) { ++count; });
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EnumerateAdmissibleSets)->Arg(0)->Arg(4)->Arg(8);

void BM_BushySplitGeneration(benchmark::State& state) {
  const int n = 12;
  const PartitionIndex idx(
      n, TestConstraints(n, PlanSpace::kBushy,
                         static_cast<int>(state.range(0))));
  for (auto _ : state) {
    int64_t count = 0;
    for (int k = 2; k <= n; ++k) {
      idx.ForEachSetOfCard(k, [&](TableSet u, int64_t) {
        idx.ForEachSplit(u, [&](TableSet, int64_t, int64_t) { ++count; });
      });
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BushySplitGeneration)->Arg(0)->Arg(2)->Arg(4);

void BM_CardinalityEstimation(benchmark::State& state) {
  const Query q = TestQuery(20);
  const CardinalityEstimator est(q);
  Rng rng(9);
  std::vector<TableSet> probes;
  for (int i = 0; i < 256; ++i) {
    const uint64_t bits = rng.NextUint64() & ((uint64_t{1} << 20) - 1);
    probes.push_back(TableSet(bits == 0 ? 1 : bits));
  }
  for (auto _ : state) {
    double acc = 0;
    for (const TableSet s : probes) acc += est.Cardinality(s);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * probes.size());
}
BENCHMARK(BM_CardinalityEstimation);

void BM_ParetoInsert(benchmark::State& state) {
  Rng rng(11);
  std::vector<CostVector> points;
  for (int i = 0; i < 512; ++i) {
    points.push_back(CostVector::TimeBuffer(rng.UniformDouble() * 1e6 + 1,
                                            rng.UniformDouble() * 1e6 + 1));
  }
  const auto identity = [](const CostVector& c) -> const CostVector& {
    return c;
  };
  const double alpha = static_cast<double>(state.range(0));
  for (auto _ : state) {
    std::vector<CostVector> frontier;
    for (const CostVector& c : points) {
      ParetoInsert(&frontier, c, identity, alpha);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_ParetoInsert)->Arg(1)->Arg(10);

void BM_QuerySerialization(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ByteWriter w;
    q.Serialize(&w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_QuerySerialization)->Arg(8)->Arg(24);

void BM_RequestBuildAndWorkerDecode(benchmark::State& state) {
  const Query q = TestQuery(10);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;
  for (auto _ : state) {
    const std::vector<uint8_t> request =
        MpqOptimizer::BuildRequest(q, 1, opts);
    benchmark::DoNotOptimize(request.size());
  }
}
BENCHMARK(BM_RequestBuildAndWorkerDecode);

/// Master Phase-1 scatter, the seed's way: one full BuildRequest per
/// partition, re-serializing the query m times.
void BM_MasterScatterPerPartition(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = static_cast<uint64_t>(state.range(1));
  for (auto _ : state) {
    size_t bytes = 0;
    for (uint64_t part = 0; part < opts.num_workers; ++part) {
      bytes += MpqOptimizer::BuildRequest(q, part, opts).size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.num_workers));
}
BENCHMARK(BM_MasterScatterPerPartition)->Args({14, 64})->Args({17, 64});

/// Master Phase-1 scatter, batched: the query and option tail serialize
/// once, each request is two splices + the partition id.
void BM_MasterScatterBatch(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = static_cast<uint64_t>(state.range(1));
  for (auto _ : state) {
    const std::vector<std::vector<uint8_t>> requests =
        MpqOptimizer::BuildRequests(q, opts);
    benchmark::DoNotOptimize(requests.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.num_workers));
}
BENCHMARK(BM_MasterScatterBatch)->Args({14, 64})->Args({17, 64});

/// Pre-computed worker responses for the finalize benchmarks (the DP is
/// orders of magnitude more expensive than the decode being measured).
std::vector<std::vector<uint8_t>> WorkerResponses(const Query& q,
                                                  const MpqOptions& opts) {
  std::vector<std::vector<uint8_t>> responses;
  responses.reserve(opts.num_workers);
  const std::vector<std::vector<uint8_t>> requests =
      MpqOptimizer::BuildRequests(q, opts);
  for (const std::vector<uint8_t>& request : requests) {
    StatusOr<std::vector<uint8_t>> response = MpqOptimizer::WorkerMain(request);
    MPQOPT_CHECK(response.ok());
    responses.push_back(std::move(response).value());
  }
  return responses;
}

/// Master Phase-3: decode m responses + FinalPrune. range(1) is the
/// decode thread count (1 = serial). Multi-objective, so every response
/// carries a plan frontier and the decode is the dominant cost.
void BM_MasterFinalize(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.2;
  opts.num_workers = 64;
  const std::vector<std::vector<uint8_t>> responses =
      WorkerResponses(q, opts);
  opts.finalize_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    StatusOr<MpqResult> result =
        MpqOptimizer::FinalizeResponses(responses, opts);
    MPQOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().best.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.num_workers));
}
BENCHMARK(BM_MasterFinalize)->Args({14, 1})->Args({14, 4});

/// The seed's master Phase 3, reproduced through the public slow-path
/// APIs for the before/after A/B: per-plan Status-returning decode into
/// one shared arena, then the same final prune. The production path is
/// FinalizeResponses (raw-cursor decode, pre-sized arenas, optional
/// decode shards); this stays in the bench as the baseline shape.
struct SeedFinalizeResult {
  PlanArena arena;
  std::vector<PlanId> best;
};

SeedFinalizeResult SeedFinalize(
    const std::vector<std::vector<uint8_t>>& responses,
    const MpqOptions& opts) {
  SeedFinalizeResult out;
  const auto cost_of = [&out](PlanId id) -> const CostVector& {
    return out.arena.node(id).cost;
  };
  for (const std::vector<uint8_t>& response : responses) {
    ByteReader reader(response);
    uint64_t counter = 0;
    double seconds = 0;
    for (int i = 0; i < 3; ++i) MPQOPT_CHECK(reader.ReadU64(&counter).ok());
    MPQOPT_CHECK(reader.ReadDouble(&seconds).ok());
    uint32_t count = 0;
    MPQOPT_CHECK(reader.ReadU32(&count).ok());
    for (uint32_t i = 0; i < count; ++i) {
      StatusOr<PlanId> id = DeserializePlan(&reader, &out.arena);
      MPQOPT_CHECK(id.ok());
      if (opts.objective == Objective::kTime) {
        if (out.best.empty() ||
            cost_of(id.value()).time() < cost_of(out.best[0]).time()) {
          out.best.assign(1, id.value());
        }
      } else {
        ParetoInsert(&out.best, id.value(), cost_of, opts.alpha);
      }
    }
  }
  return out;
}

/// The full master hot path (Phase 1 serialize + Phase 3 finalize),
/// before vs after: range(1) = 0 runs the seed's shape (per-partition
/// serialize, per-plan slow decode into a shared arena), 1 runs the
/// batched scatter and the production FinalizeResponses. The ratio of
/// the two is the PR's headline. range(2) selects the objective: 0 =
/// kTime (one plan per response — the default serving shape), 1 =
/// kTimeAndBuffer (frontier responses, heavier decode).
void BM_MasterSerializeFinalize(benchmark::State& state) {
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.objective = state.range(2) != 0 ? Objective::kTimeAndBuffer
                                       : Objective::kTime;
  opts.alpha = 10.0;  // paper default: compact frontiers at every n
  opts.num_workers = 64;
  const std::vector<std::vector<uint8_t>> responses =
      WorkerResponses(q, opts);
  const bool batched = state.range(1) != 0;
  opts.finalize_threads = batched ? 0 : 1;
  for (auto _ : state) {
    size_t bytes = 0;
    if (batched) {
      const std::vector<std::vector<uint8_t>> requests =
          MpqOptimizer::BuildRequests(q, opts);
      bytes = requests.size();
      StatusOr<MpqResult> result =
          MpqOptimizer::FinalizeResponses(responses, opts);
      MPQOPT_CHECK(result.ok());
      bytes += result.value().best.size();
    } else {
      for (uint64_t part = 0; part < opts.num_workers; ++part) {
        bytes += MpqOptimizer::BuildRequest(q, part, opts).size();
      }
      const SeedFinalizeResult result = SeedFinalize(responses, opts);
      bytes += result.best.size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(opts.num_workers));
}
BENCHMARK(BM_MasterSerializeFinalize)
    ->Args({14, 0, 0})
    ->Args({14, 1, 0})
    ->Args({17, 0, 0})
    ->Args({17, 1, 0})
    ->Args({17, 0, 1})
    ->Args({17, 1, 1});

void BM_WorkerFullOptimization(benchmark::State& state) {
  // End-to-end worker task: decode + constrained DP + encode.
  const Query q = TestQuery(static_cast<int>(state.range(0)));
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 16;
  const std::vector<uint8_t> request = MpqOptimizer::BuildRequest(q, 3, opts);
  for (auto _ : state) {
    StatusOr<std::vector<uint8_t>> response =
        MpqOptimizer::WorkerMain(request);
    MPQOPT_CHECK(response.ok());
    benchmark::DoNotOptimize(response.value().size());
  }
}
BENCHMARK(BM_WorkerFullOptimization)->Arg(10)->Arg(14);

/// Console output as usual, plus one BenchJsonWriter record per run
/// (bench name with its args as the config, ns/iter as the metric).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(BenchJsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const size_t slash = name.find('/');
      const std::string bench =
          slash == std::string::npos ? name : name.substr(0, slash);
      const std::string config =
          slash == std::string::npos ? "" : name.substr(slash + 1);
      const double iters = static_cast<double>(run.iterations);
      if (iters > 0) {
        json_->Add(bench, config, "real_time",
                   run.real_accumulated_time / iters * 1e9, "ns/iter");
        if (run.counters.find("items_per_second") != run.counters.end()) {
          json_->Add(bench, config, "items_per_second",
                     run.counters.at("items_per_second"), "items/s");
        }
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchJsonWriter* json_;
};

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) {
  const std::string json_path =
      mpqopt::BenchJsonWriter::ParseFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mpqopt::BenchJsonWriter json;
  mpqopt::JsonCaptureReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
