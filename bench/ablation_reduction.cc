// Copyright 2026 mpqopt authors.
//
// Ablation A: measured vs predicted reduction factors of the partitioning
// scheme (the quantities of Theorems 2, 3, 6, 7, and the optimality
// results of Section 5.5). For each number of constraints l we report:
//   * admissible join results per partition (predicted 2^n * (3/4)^l for
//     linear, 2^n * (7/8)^l for bushy),
//   * admissible split pairs for bushy partitions (predicted factor
//     (21/27)^l on the unconstrained count).
// Counting only; no cost model involved.

#include <cmath>

#include "bench/bench_common.h"
#include "partition/partition_index.h"

namespace mpqopt {
namespace {

void RunSets(PlanSpace space, int n) {
  PrintHeader((std::string("Ablation A — admissible join results, ") +
               PlanSpaceName(space) + " " + std::to_string(n) + " tables")
                  .c_str());
  const double per_constraint = space == PlanSpace::kLinear ? 0.75 : 0.875;
  TablePrinter table(
      {"constraints l", "workers m", "measured", "predicted", "ratio"});
  for (int l = 0; l <= MaxConstraints(n, space); ++l) {
    StatusOr<ConstraintSet> c = ConstraintSet::FromPartitionId(
        n, space, 0, uint64_t{1} << l);
    MPQOPT_CHECK(c.ok());
    const PartitionIndex idx(n, c.value());
    const double predicted =
        std::pow(2.0, n) * std::pow(per_constraint, l);
    table.AddRow({std::to_string(l), std::to_string(uint64_t{1} << l),
                  std::to_string(idx.size()),
                  TablePrinter::FormatCount(predicted),
                  TablePrinter::FormatDouble(
                      static_cast<double>(idx.size()) / predicted, 6)});
  }
  table.Print();
  std::printf("\n");
}

void RunSplits(int n) {
  PrintHeader(("Ablation A — admissible bushy splits, " + std::to_string(n) +
               " tables (Theorem 7: factor 21/27 per constraint)")
                  .c_str());
  TablePrinter table({"constraints l", "splits", "vs l=0", "(21/27)^l"});
  int64_t base = 0;
  for (int l = 0; l <= MaxConstraints(n, PlanSpace::kBushy); ++l) {
    StatusOr<ConstraintSet> c = ConstraintSet::FromPartitionId(
        n, PlanSpace::kBushy, 0, uint64_t{1} << l);
    MPQOPT_CHECK(c.ok());
    const PartitionIndex idx(n, c.value());
    const int64_t splits = idx.CountAdmissibleSplits();
    if (l == 0) base = splits;
    table.AddRow({std::to_string(l), std::to_string(splits),
                  TablePrinter::FormatDouble(
                      static_cast<double>(splits) / static_cast<double>(base),
                      6),
                  TablePrinter::FormatDouble(std::pow(21.0 / 27.0, l), 6)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  RunSets(PlanSpace::kLinear, 16);
  RunSets(PlanSpace::kLinear, 20);
  RunSets(PlanSpace::kBushy, 12);
  RunSets(PlanSpace::kBushy, 15);
  RunSplits(9);
  RunSplits(12);
  RunSplits(15);
  std::printf(
      "Expected: measured/predicted ratio exactly 1 whenever n is a\n"
      "multiple of the group width; the split reduction tracks (21/27)^l\n"
      "closely (exactly on fully-constrained table sets).\n");
  return 0;
}
