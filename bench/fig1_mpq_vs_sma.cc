// Copyright 2026 mpqopt authors.
//
// Figure 1: MPQ vs SMA, single cost metric — median optimization time and
// network bytes vs number of workers, for Linear 8, Linear 16, Bushy 9,
// and Bushy 15 (the paper's panels). MPQ outperforms SMA by orders of
// magnitude in time, and SMA's network volume is exponential in the query
// size while MPQ's is O(m * (b_q + b_p)).

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

struct Panel {
  const char* name;
  PlanSpace space;
  int tables;
  int sma_max_tables;  // SMA skipped above this (paper stops SMA at 16)
};

void RunPanel(const Panel& panel, const BenchConfig& config) {
  PrintHeader(
      (std::string("Figure 1 — ") + panel.name + " (single objective)")
          .c_str());
  const std::vector<Query> queries = MakeQueries(
      panel.tables, config.queries_per_point, JoinGraphShape::kStar,
      config.seed);
  TablePrinter table({"workers", "MPQ time (ms)", "MPQ net (B)",
                      "SMA time (ms)", "SMA net (B)"});
  for (uint64_t m :
       WorkerSweep(panel.tables, panel.space, config.max_workers)) {
    std::vector<double> mpq_time, mpq_net, sma_time, sma_net;
    for (const Query& q : queries) {
      MpqOptions mpq_opts;
      mpq_opts.space = panel.space;
      mpq_opts.num_workers = m;
      mpq_opts.network = NetworkFromEnv();
      MpqOptimizer mpq(mpq_opts);
      StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
      MPQOPT_CHECK(mpq_result.ok());
      mpq_time.push_back(mpq_result.value().simulated_seconds);
      mpq_net.push_back(
          static_cast<double>(mpq_result.value().network_bytes));

      if (panel.tables <= panel.sma_max_tables) {
        SmaOptions sma_opts;
        sma_opts.space = panel.space;
        sma_opts.num_workers = m;
        sma_opts.network = NetworkFromEnv();
        StatusOr<SmaResult> sma_result = SmaOptimize(q, sma_opts);
        MPQOPT_CHECK(sma_result.ok());
        sma_time.push_back(sma_result.value().simulated_seconds);
        sma_net.push_back(
            static_cast<double>(sma_result.value().network_bytes));
      }
    }
    table.AddRow({std::to_string(m), TablePrinter::FormatMillis(Median(mpq_time)),
                  TablePrinter::FormatBytes(Median(mpq_net)),
                  sma_time.empty() ? "-"
                                   : TablePrinter::FormatMillis(Median(sma_time)),
                  sma_net.empty() ? "-"
                                  : TablePrinter::FormatBytes(Median(sma_net))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv();
  const Panel panels[] = {
      {"Linear 8", PlanSpace::kLinear, 8, 16},
      {"Linear 16", PlanSpace::kLinear, 16, 16},
      {"Bushy 9", PlanSpace::kBushy, 9, 16},
      {"Bushy 15", PlanSpace::kBushy, 15, 16},
  };
  for (const Panel& panel : panels) RunPanel(panel, config);
  std::printf(
      "Expected shape (paper): MPQ time roughly flat (queries too small to\n"
      "profit from parallelism) and orders of magnitude below SMA at 16\n"
      "tables; MPQ bytes grow linearly in m and stay in the KB range while\n"
      "SMA bytes are exponential in n and reach MBs-to-hundreds-of-MBs.\n");
  return 0;
}
