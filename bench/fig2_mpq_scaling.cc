// Copyright 2026 mpqopt authors.
//
// Figure 2: MPQ scaling on search spaces large enough to justify
// parallelization, single cost metric. Series per query size: total
// modeled time, max per-worker optimization time (W-Time), max per-worker
// memory in memo relations, and network bytes — all vs worker count.
// Also prints the speedup vs one worker (paper Section 6.2 quotes 8.1x at
// 128 workers for Linear 24 and 7.2x for Linear 20).
//
// Default sizes are Linear 20 / Bushy 15; MPQOPT_PAPER_SCALE=1 adds the
// paper's largest sizes Linear 24 / Bushy 18 (minutes of runtime).

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

struct Panel {
  const char* name;
  PlanSpace space;
  int tables;
};

void RunPanel(const Panel& panel, const BenchConfig& config) {
  PrintHeader(
      (std::string("Figure 2 — ") + panel.name + " (single objective)")
          .c_str());
  const std::vector<Query> queries = MakeQueries(
      panel.tables, config.queries_per_point, JoinGraphShape::kStar,
      config.seed);
  TablePrinter table({"workers", "Time (ms)", "W-Time (ms)",
                      "Memory (relations)", "Network (B)", "speedup"});
  double single_worker_time = 0;
  for (uint64_t m :
       WorkerSweep(panel.tables, panel.space, config.max_workers)) {
    std::vector<double> time, wtime, memory, net;
    for (const Query& q : queries) {
      MpqOptions opts;
      opts.space = panel.space;
      opts.num_workers = m;
      opts.network = NetworkFromEnv();
      MpqOptimizer mpq(opts);
      StatusOr<MpqResult> result = mpq.Optimize(q);
      MPQOPT_CHECK(result.ok());
      time.push_back(result.value().simulated_seconds);
      wtime.push_back(result.value().max_worker_seconds);
      memory.push_back(
          static_cast<double>(result.value().max_worker_memo_sets));
      net.push_back(static_cast<double>(result.value().network_bytes));
    }
    const double median_time = Median(time);
    if (m == 1) {
      // Speedup baseline: pure optimization time on one worker, without
      // master computation and communication overheads (paper §6.2).
      single_worker_time = Median(wtime);
    }
    const double speedup =
        median_time > 0 ? single_worker_time / median_time : 0;
    table.AddRow({std::to_string(m), TablePrinter::FormatMillis(median_time),
                  TablePrinter::FormatMillis(Median(wtime)),
                  TablePrinter::FormatCount(Median(memory)),
                  TablePrinter::FormatBytes(Median(net)),
                  TablePrinter::FormatDouble(speedup, 2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv();
  std::vector<Panel> panels = {
      {"Linear 20", PlanSpace::kLinear, 20},
      {"Bushy 15", PlanSpace::kBushy, 15},
  };
  if (config.paper_scale) {
    panels.push_back({"Linear 24", PlanSpace::kLinear, 24});
    panels.push_back({"Bushy 18", PlanSpace::kBushy, 18});
  }
  for (const Panel& panel : panels) RunPanel(panel, config);
  std::printf(
      "Expected shape (paper): steady time decrease per worker doubling —\n"
      "factor 3/4 for linear, 21/27 for bushy; memory decrease 3/4 resp.\n"
      "7/8; network bytes grow linearly in m and only marginally in query\n"
      "size; W-Time close to Time (negligible master overhead).\n");
  return 0;
}
