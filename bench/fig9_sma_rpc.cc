// Copyright 2026 mpqopt authors.
//
// Figure 9 (repo extension, not in the paper): SMA's broadcast traffic
// priced on real loopback TCP versus the modeled network.
//
// Until the session subsystem (src/cluster/session/) existed, SMA's
// per-level broadcast pattern could only be MODELED: its per-node memo
// replicas kept its tasks off the rpc backend, so the network series of
// the paper's Figure 1/6 comparisons came from byte accounting alone.
// With stateful remote workers, the same query now runs with the
// replicas in real mpqopt_worker processes — this bench drives both and
// checks the honesty of the model: bytes, messages, and rounds must
// MATCH exactly (the model prices real serialized payloads), while the
// wall-clock column shows what loopback sockets add per level.
//
// Workers are self-hosted on loopback subprocesses like the RPC tests
// (set MPQOPT_WORKER_BIN or run from the build directory).
//
// Knobs: MPQOPT_SMA_WORKERS (default 4 SMA nodes), MPQOPT_RPC_WORKERS
// (2 worker processes), MPQOPT_SMA_MAX_TABLES (12), and the shared
// MPQOPT_SEED / network knobs of bench_common.h.

#include <memory>

#include "bench/bench_common.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

struct SeriesPoint {
  SmaResult result;
  double wall_seconds = 0;
};

int Main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const uint64_t sma_workers =
      static_cast<uint64_t>(EnvInt("MPQOPT_SMA_WORKERS", 4));
  const int rpc_workers = static_cast<int>(EnvInt("MPQOPT_RPC_WORKERS", 2));
  const int max_tables =
      static_cast<int>(EnvInt("MPQOPT_SMA_MAX_TABLES", 12));

  RpcWorkerFarm farm;
  farm.Start(rpc_workers);
  BackendOptions backend_opts;
  backend_opts.network = NetworkFromEnv();
  backend_opts.workers_addr = farm.workers_addr();
  StatusOr<std::shared_ptr<ExecutionBackend>> rpc =
      MakeBackend(BackendKind::kRpc, backend_opts);
  MPQOPT_CHECK(rpc.ok());

  PrintHeader("fig9: SMA broadcast traffic, modeled vs real loopback TCP");
  std::printf("# %llu SMA nodes over %d mpqopt_worker processes; one "
              "session per query,\n# one Step + one Broadcast per level\n",
              static_cast<unsigned long long>(sma_workers), rpc_workers);
  std::printf("%-8s %-8s %14s %10s %8s %12s %12s\n", "tables", "mode",
              "net_bytes", "messages", "rounds", "cluster_ms", "wall_ms");

  for (int n = 8; n <= max_tables; n += 2) {
    const Query query =
        MakeQueries(n, 1, JoinGraphShape::kStar, config.seed)[0];
    SmaOptions base;
    base.space = PlanSpace::kLinear;
    base.num_workers = sma_workers;
    base.network = backend_opts.network;

    SeriesPoint modeled;
    {
      StatusOr<SmaResult> r = SmaOptimize(query, base);
      MPQOPT_CHECK(r.ok());
      modeled.result = std::move(r).value();
      modeled.wall_seconds = modeled.result.wall_seconds;
    }
    SeriesPoint real;
    {
      SmaOptions over_rpc = base;
      over_rpc.backend = rpc.value();
      StatusOr<SmaResult> r = SmaOptimize(query, over_rpc);
      MPQOPT_CHECK(r.ok());
      real.result = std::move(r).value();
      real.wall_seconds = real.result.wall_seconds;
    }

    for (const auto& [mode, point] :
         {std::pair<const char*, const SeriesPoint*>{"model", &modeled},
          {"tcp", &real}}) {
      std::printf("%-8d %-8s %14llu %10llu %8d %12.3f %12.3f\n", n, mode,
                  static_cast<unsigned long long>(point->result.network_bytes),
                  static_cast<unsigned long long>(
                      point->result.network_messages),
                  point->result.rounds,
                  point->result.simulated_seconds * 1e3,
                  point->wall_seconds * 1e3);
    }
    if (real.result.network_bytes != modeled.result.network_bytes ||
        real.result.network_messages != modeled.result.network_messages ||
        real.result.rounds != modeled.result.rounds) {
      std::printf("FAIL: real-TCP accounting diverged from the model at "
                  "n=%d\n", n);
      return 1;
    }
  }
  std::printf("# bytes/messages/rounds identical in both modes: the modeled "
              "series\n# prices exactly the payloads that crossed the real "
              "sockets\n");
  return 0;
}

}  // namespace
}  // namespace mpqopt

int main() { return mpqopt::Main(); }
