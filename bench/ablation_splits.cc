// Copyright 2026 mpqopt authors.
//
// Ablation C: the bushy split-enumeration design choice of Algorithm 5.
// The paper invests extra machinery so that bushy workers GENERATE only
// admissible splits (complexity proportional to admissible splits,
// factor (21/27)^l) instead of enumerating all 2^|U| splits and FILTERING
// (complexity proportional to possible splits). This bench measures the
// enumeration cost of both strategies on identical partitions.

#include <chrono>

#include "bench/bench_common.h"
#include "partition/partition_index.h"

namespace mpqopt {
namespace {

using Clock = std::chrono::steady_clock;

/// Strategy A (paper, Algorithm 5): constrained generation.
int64_t GenerateOnly(const PartitionIndex& idx, int n) {
  int64_t splits = 0;
  for (int k = 2; k <= n; ++k) {
    idx.ForEachSetOfCard(k, [&](TableSet u, int64_t) {
      idx.ForEachSplit(u,
                       [&](TableSet, int64_t, int64_t) { ++splits; });
    });
  }
  return splits;
}

/// Strategy B (baseline): enumerate the full power set of each join
/// result and filter both operands through the admissibility test.
int64_t GenerateAndFilter(const PartitionIndex& idx, int n) {
  int64_t splits = 0;
  for (int k = 2; k <= n; ++k) {
    idx.ForEachSetOfCard(k, [&](TableSet u, int64_t) {
      SubsetEnumerator subsets(u);
      while (subsets.Next()) {
        const TableSet left = subsets.current();
        if (idx.Contains(left) && idx.Contains(u.Minus(left))) ++splits;
      }
    });
  }
  return splits;
}

void Run(int n, const BenchConfig& config) {
  PrintHeader(("Ablation C — bushy split enumeration, " + std::to_string(n) +
               " tables")
                  .c_str());
  TablePrinter table({"constraints l", "admissible splits",
                      "generate-only (ms)", "generate+filter (ms)",
                      "speedup"});
  (void)config;
  for (int l = 0; l <= MaxConstraints(n, PlanSpace::kBushy); ++l) {
    StatusOr<ConstraintSet> c = ConstraintSet::FromPartitionId(
        n, PlanSpace::kBushy, 0, uint64_t{1} << l);
    MPQOPT_CHECK(c.ok());
    const PartitionIndex idx(n, c.value());

    const auto t0 = Clock::now();
    const int64_t generated = GenerateOnly(idx, n);
    const auto t1 = Clock::now();
    const int64_t filtered = GenerateAndFilter(idx, n);
    const auto t2 = Clock::now();
    MPQOPT_CHECK_EQ(generated, filtered);  // identical split sets

    const double gen_s = std::chrono::duration<double>(t1 - t0).count();
    const double fil_s = std::chrono::duration<double>(t2 - t1).count();
    table.AddRow({std::to_string(l), std::to_string(generated),
                  TablePrinter::FormatMillis(gen_s),
                  TablePrinter::FormatMillis(fil_s),
                  TablePrinter::FormatDouble(gen_s > 0 ? fil_s / gen_s : 0,
                                             2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv();
  Run(12, config);
  Run(15, config);
  std::printf(
      "Expected: both strategies produce identical split sets; the\n"
      "generate-only strategy's advantage grows with l because its cost\n"
      "follows the shrinking admissible count while filtering still pays\n"
      "for the full power set of every join result.\n");
  return 0;
}
