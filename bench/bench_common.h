// Copyright 2026 mpqopt authors.
//
// Shared helpers of the figure/table benchmark binaries. Each binary
// prints the series of one paper figure or table (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Scaling knobs (environment):
//   MPQOPT_QUERIES_PER_POINT  queries per data point (paper: 20)
//   MPQOPT_MAX_WORKERS        cap on the worker sweep
//   MPQOPT_PAPER_SCALE=1      enable the largest paper query sizes
//   MPQOPT_SEED               workload seed

#ifndef MPQOPT_BENCH_BENCH_COMMON_H_
#define MPQOPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/generator.h"
#include "exp/harness.h"
#include "mpq/mpq.h"
#include "obs/percentile.h"  // obs::Percentile — THE tail-latency estimator
#include "sma/sma.h"

namespace mpqopt {

struct BenchConfig {
  int queries_per_point;
  uint64_t max_workers;
  bool paper_scale;
  uint64_t seed;

  static BenchConfig FromEnv(int default_queries = 3,
                             uint64_t default_max_workers = 128) {
    BenchConfig c;
    c.queries_per_point = static_cast<int>(
        EnvInt("MPQOPT_QUERIES_PER_POINT", default_queries));
    c.max_workers = static_cast<uint64_t>(
        EnvInt("MPQOPT_MAX_WORKERS", static_cast<int64_t>(default_max_workers)));
    c.paper_scale = EnvInt("MPQOPT_PAPER_SCALE", 0) != 0;
    c.seed = static_cast<uint64_t>(EnvInt("MPQOPT_SEED", 20160901));
    return c;
  }
};

/// Network model from environment knobs (defaults: the calibrated model
/// in net/network_model.h). Units: MPQOPT_TASK_SETUP_US and
/// MPQOPT_LATENCY_US in microseconds, MPQOPT_BANDWIDTH_MBPS in MB/s.
inline NetworkModel NetworkFromEnv() {
  NetworkModel model;
  model.task_setup_s =
      EnvDouble("MPQOPT_TASK_SETUP_US", model.task_setup_s * 1e6) * 1e-6;
  model.latency_s =
      EnvDouble("MPQOPT_LATENCY_US", model.latency_s * 1e6) * 1e-6;
  model.bandwidth_bytes_per_s =
      EnvDouble("MPQOPT_BANDWIDTH_MBPS",
                model.bandwidth_bytes_per_s / 1e6) *
      1e6;
  return model;
}

/// Generates `count` queries of `n` tables with the given shape.
inline std::vector<Query> MakeQueries(int n, int count, JoinGraphShape shape,
                                      uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed + static_cast<uint64_t>(n) * 1000003);
  std::vector<Query> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) queries.push_back(gen.Generate(n));
  return queries;
}

/// Worker counts 1, 2, 4, ..., capped by both `cap` and the maximal
/// parallelism the algorithm supports for the query size.
inline std::vector<uint64_t> WorkerSweep(int n, PlanSpace space,
                                         uint64_t cap,
                                         uint64_t start = 1) {
  std::vector<uint64_t> sweep;
  const uint64_t max_m = std::min(cap, MaxWorkers(n, space));
  for (uint64_t m = start; m <= max_m; m *= 2) sweep.push_back(m);
  return sweep;
}

inline void PrintHeader(const char* title) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================\n");
}

/// Machine-readable benchmark output, shared by every bench binary via
/// the `--json=<path>` flag. CI uploads the emitted BENCH_*.json files
/// per build (90-day retention) so the perf trajectory is tracked
/// across PRs; docs/benchmarking.md documents how to read and compare
/// them.
///
/// Record schema — the file is one flat JSON array; every element is an
/// object with exactly these seven keys, in this order:
///
///   {"bench":  "fig6",                    // emitting binary / figure
///    "config": "backend=thread,n=12",     // "key=value,..." data point;
///                                         //   keys are bench-specific,
///                                         //   values never contain ','
///    "metric": "latency_p95",             // measurement name
///    "value":  3.179,                     // always a JSON number
///                                         //   (%.17g, round-trips
///                                         //   doubles exactly)
///    "units":  "ms",                      // "ms", "bytes", "q/s",
///                                         //   "count", "%", "bool", ...
///    "build":  "Release",                 // CMAKE_BUILD_TYPE the binary
///                                         //   was compiled as
///    "source": "66cd793a1b2c"}            // git revision of the source
///                                         //   tree ("unknown" outside a
///                                         //   checkout)
///
/// One (bench, config, metric) triple identifies a time series across
/// builds; joining on the triple and diffing "value" is the entire
/// trajectory-comparison contract (tools/bench_diff.py implements it).
/// The build/source stamps LABEL a trajectory — which binary produced
/// which numbers — and are deliberately not part of the identity triple,
/// so diffing two revisions still joins record-for-record. Strings are
/// escaped minimally (backslash and double quote; control characters
/// become spaces — benchmark names never need them). Records appear in
/// insertion order and nothing else is ever written to the file, so
/// byte-stable inputs produce byte-stable output.
class BenchJsonWriter {
 public:
  /// Strips a `--json=<path>` argument from argc/argv (so downstream
  /// flag parsers — google-benchmark's included — never see it) and
  /// returns the path, or "" when the flag is absent.
  static std::string ParseFlag(int* argc, char** argv) {
    std::string path;
    int w = 1;
    for (int r = 1; r < *argc; ++r) {
      if (std::strncmp(argv[r], "--json=", 7) == 0) {
        path = argv[r] + 7;
        continue;
      }
      argv[w++] = argv[r];
    }
    *argc = w;
    return path;
  }

  void Add(const std::string& bench, const std::string& config,
           const std::string& metric, double value,
           const std::string& units) {
    records_.push_back({bench, config, metric, value, units});
  }

  bool empty() const { return records_.empty(); }

  /// Writes the records as a JSON array. Returns false (with a message
  /// on stderr) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write benchmark json to %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"metric\": \"%s\", \"value\": %.17g, "
                   "\"units\": \"%s\", \"build\": \"%s\", "
                   "\"source\": \"%s\"}%s\n",
                   Escaped(r.bench).c_str(), Escaped(r.config).c_str(),
                   Escaped(r.metric).c_str(), r.value,
                   Escaped(r.units).c_str(), Escaped(BuildType()).c_str(),
                   Escaped(SourceFingerprint()).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

  /// The compile-time stamps every record carries. CMake injects both
  /// definitions for bench targets; the fallbacks keep ad-hoc builds
  /// (e.g. compiling a bench by hand) working.
  static const char* BuildType() {
#ifdef MPQOPT_BUILD_TYPE
    return MPQOPT_BUILD_TYPE;
#else
    return "unknown";
#endif
  }
  static const char* SourceFingerprint() {
#ifdef MPQOPT_SOURCE_FINGERPRINT
    return MPQOPT_SOURCE_FINGERPRINT;
#else
    return "unknown";
#endif
  }

 private:
  struct Record {
    std::string bench;
    std::string config;
    std::string metric;
    double value;
    std::string units;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');  // benchmark names never need control chars
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::vector<Record> records_;
};

}  // namespace mpqopt

#endif  // MPQOPT_BENCH_BENCH_COMMON_H_
