// Copyright 2026 mpqopt authors.
//
// Figure 5: multi-objective MPQ (time + buffer, alpha = 10) on search
// spaces large enough to exploit high parallelism — total modeled time,
// W-Time, memory (relations), and network bytes vs workers, for linear
// plan spaces. The paper scales 16 to 256 workers for Linear 16/18/20 and
// quotes speedups of 5.1x / 5.5x / 9.4x.
//
// Defaults run Linear 16 (and 18 at MPQOPT_PAPER_SCALE=1; 20 is also
// gated there to keep default runtime in minutes).

#include "bench/bench_common.h"

namespace mpqopt {
namespace {

void RunPanel(int tables, const BenchConfig& config) {
  PrintHeader(("Figure 5 — Linear " + std::to_string(tables) +
               " (two cost metrics, alpha=10)")
                  .c_str());
  const std::vector<Query> queries = MakeQueries(
      tables, config.queries_per_point, JoinGraphShape::kStar, config.seed);
  TablePrinter table({"workers", "Time (ms)", "W-Time (ms)",
                      "Memory (relations)", "Network (B)", "speedup"});
  double single_worker_time = 0;
  {
    // Speedup baseline: classical multi-objective optimizer == MPQ with
    // one worker, counting only worker-side optimization time.
    std::vector<double> wtime;
    for (const Query& q : queries) {
      MpqOptions opts;
      opts.space = PlanSpace::kLinear;
      opts.objective = Objective::kTimeAndBuffer;
      opts.alpha = 10.0;
      opts.num_workers = 1;
      opts.network = NetworkFromEnv();
      MpqOptimizer mpq(opts);
      StatusOr<MpqResult> result = mpq.Optimize(q);
      MPQOPT_CHECK(result.ok());
      wtime.push_back(result.value().max_worker_seconds);
    }
    single_worker_time = Median(wtime);
  }
  for (uint64_t m : WorkerSweep(tables, PlanSpace::kLinear,
                                std::min<uint64_t>(config.max_workers, 256),
                                /*start=*/16)) {
    std::vector<double> time, wtime, memory, net;
    for (const Query& q : queries) {
      MpqOptions opts;
      opts.space = PlanSpace::kLinear;
      opts.objective = Objective::kTimeAndBuffer;
      opts.alpha = 10.0;
      opts.num_workers = m;
      opts.network = NetworkFromEnv();
      MpqOptimizer mpq(opts);
      StatusOr<MpqResult> result = mpq.Optimize(q);
      MPQOPT_CHECK(result.ok());
      time.push_back(result.value().simulated_seconds);
      wtime.push_back(result.value().max_worker_seconds);
      memory.push_back(
          static_cast<double>(result.value().max_worker_memo_sets));
      net.push_back(static_cast<double>(result.value().network_bytes));
    }
    const double median_time = Median(time);
    table.AddRow({std::to_string(m), TablePrinter::FormatMillis(median_time),
                  TablePrinter::FormatMillis(Median(wtime)),
                  TablePrinter::FormatCount(Median(memory)),
                  TablePrinter::FormatBytes(Median(net)),
                  TablePrinter::FormatDouble(
                      median_time > 0 ? single_worker_time / median_time : 0,
                      2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv(/*default_queries=*/2,
                                                  /*default_max_workers=*/256);
  std::vector<int> sizes = {16};
  if (config.paper_scale) {
    sizes.push_back(18);
    sizes.push_back(20);
  }
  for (int tables : sizes) RunPanel(tables, config);
  std::printf(
      "Expected shape (paper): steady scaling up to 256 workers without\n"
      "diminishing returns; network bytes higher than single-objective\n"
      "because whole Pareto frontiers are returned; speedups 5.1x (16\n"
      "tables) to 9.4x (20 tables) at the maximal worker count.\n");
  return 0;
}
