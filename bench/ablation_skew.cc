// Copyright 2026 mpqopt authors.
//
// Ablation B: skew across partitions. The paper's partitioning guarantees
// that all plan-space partitions contain exactly the same number of
// admissible join results, so per-worker DP run time is near-uniform —
// the property that makes the coarse one-task-per-worker decomposition
// viable. We run every partition of one decomposition and report the
// distribution of per-worker optimization times and memo sizes.

#include <algorithm>

#include "bench/bench_common.h"
#include "optimizer/dp.h"

namespace mpqopt {
namespace {

void Run(PlanSpace space, int n, uint64_t m, const BenchConfig& config) {
  PrintHeader((std::string("Ablation B — skew across ") + std::to_string(m) +
               " partitions, " + PlanSpaceName(space) + " " +
               std::to_string(n) + " tables")
                  .c_str());
  TablePrinter table({"query", "sets/worker", "min time (ms)",
                      "median time (ms)", "max time (ms)", "max/min"});
  const std::vector<Query> queries = MakeQueries(
      n, config.queries_per_point, JoinGraphShape::kStar, config.seed);
  int qi = 0;
  for (const Query& q : queries) {
    std::vector<double> seconds;
    int64_t sets = -1;
    for (uint64_t part = 0; part < m; ++part) {
      StatusOr<ConstraintSet> c =
          ConstraintSet::FromPartitionId(n, space, part, m);
      MPQOPT_CHECK(c.ok());
      DpConfig dp;
      dp.space = space;
      StatusOr<DpResult> result = RunPartitionDp(q, c.value(), dp);
      MPQOPT_CHECK(result.ok());
      seconds.push_back(result.value().stats.seconds);
      if (sets < 0) {
        sets = result.value().stats.admissible_sets;
      } else {
        MPQOPT_CHECK_EQ(sets, result.value().stats.admissible_sets);
      }
    }
    const double min_s = *std::min_element(seconds.begin(), seconds.end());
    const double max_s = *std::max_element(seconds.begin(), seconds.end());
    table.AddRow({std::to_string(qi++), std::to_string(sets),
                  TablePrinter::FormatMillis(min_s),
                  TablePrinter::FormatMillis(Median(seconds)),
                  TablePrinter::FormatMillis(max_s),
                  TablePrinter::FormatDouble(
                      min_s > 0 ? max_s / min_s : 0, 2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv(/*default_queries=*/3);
  Run(PlanSpace::kLinear, 16, 16, config);
  Run(PlanSpace::kBushy, 12, 8, config);
  std::printf(
      "Expected: identical sets/worker across partitions (skew-free by\n"
      "construction); max/min time close to 1 (small deviations come from\n"
      "host timing noise, not from workload imbalance).\n");
  return 0;
}
