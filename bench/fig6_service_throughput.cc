// Copyright 2026 mpqopt authors.
//
// Figure 6 (repo extension, not in the paper): serving throughput of the
// OptimizerService under concurrent query load, per execution backend.
//
// The paper benchmarks one query at a time; a production optimizer
// endpoint faces many concurrent Optimize() calls. This bench sweeps the
// number of in-flight queries and compares
//
//  * thread  — the shared ThreadBackend: every round spawns and joins a
//              fresh thread pool (the paper-faithful per-query runtime),
//  * async   — the shared AsyncBatchBackend: one persistent pool for the
//              whole service, rounds pipelined and interleaved fairly.
//
// Both backends host the same worker-task bytes and return identical
// plans; the difference is pure host-side scheduling. Expected shape: the
// backends tie at concurrency 1, and the persistent pool pulls ahead as
// concurrency grows (no per-round thread spawn, no pool oversubscription
// — m concurrent thread-backend queries spawn m pools).
//
// Knobs: MPQOPT_SERVICE_TABLES (default 10), MPQOPT_SERVICE_WORKERS (16),
// MPQOPT_SERVICE_TOTAL_QUERIES (48), MPQOPT_POOL_THREADS (4), and the
// shared MPQOPT_SEED / network knobs of bench_common.h.

#include "bench/bench_common.h"
#include "service/optimizer_service.h"

namespace mpqopt {
namespace {

struct ModeResult {
  double wall_seconds = 0;
  double qps = 0;
};

ModeResult RunMode(BackendKind kind, const std::vector<Query>& queries,
                   const MpqOptions& opts, int concurrency, int pool_threads,
                   int repetitions) {
  ServiceOptions service_opts;
  service_opts.backend_kind = kind;
  service_opts.network = opts.network;
  service_opts.backend_threads = pool_threads;
  service_opts.dispatcher_threads = concurrency;
  OptimizerService service(service_opts);

  // Median over repetitions — single-shot wall times are noisy on busy
  // hosts, and the service (with its long-lived pool) is exactly the
  // steady-state scenario the repeated batches model.
  std::vector<double> walls;
  for (int rep = 0; rep < repetitions; ++rep) {
    const BatchReport report = service.OptimizeBatch(queries, opts);
    for (const StatusOr<MpqResult>& r : report.results) {
      MPQOPT_CHECK(r.ok());
    }
    walls.push_back(report.wall_seconds);
  }
  ModeResult mode;
  mode.wall_seconds = Median(walls);
  mode.qps = mode.wall_seconds > 0
                 ? static_cast<double>(queries.size()) / mode.wall_seconds
                 : 0;
  return mode;
}

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) {
  using namespace mpqopt;
  const std::string json_path = BenchJsonWriter::ParseFlag(&argc, argv);
  BenchJsonWriter json;
  const BenchConfig config = BenchConfig::FromEnv();
  const int tables =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_TABLES", 10));
  const uint64_t workers = static_cast<uint64_t>(
      EnvInt("MPQOPT_SERVICE_WORKERS", 16));
  const int total_queries =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_TOTAL_QUERIES", 48));
  const int pool_threads =
      static_cast<int>(EnvInt("MPQOPT_POOL_THREADS", 4));

  PrintHeader("Figure 6 — service throughput under concurrent queries");
  std::printf(
      "%d-table star queries, %llu workers each, %d queries per point,\n"
      "%d host threads per backend pool\n\n",
      tables, static_cast<unsigned long long>(workers), total_queries,
      pool_threads);

  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = UsableWorkers(tables, PlanSpace::kLinear, workers);
  opts.network = NetworkFromEnv();

  const std::vector<Query> queries =
      MakeQueries(tables, total_queries, JoinGraphShape::kStar, config.seed);

  TablePrinter table({"concurrency", "thread (ms)", "thread q/s",
                      "async (ms)", "async q/s", "async speedup"});
  const int repetitions =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_REPETITIONS", 3));
  for (int concurrency : {1, 2, 4, 8, 16}) {
    if (concurrency > total_queries) break;
    // Warm the page cache / branch predictors once per point with a
    // throwaway pass so neither mode pays first-touch costs.
    RunMode(BackendKind::kThread, {queries[0]}, opts, 1, pool_threads, 1);

    const ModeResult threads = RunMode(BackendKind::kThread, queries, opts,
                                       concurrency, pool_threads, repetitions);
    const ModeResult async_batch =
        RunMode(BackendKind::kAsyncBatch, queries, opts, concurrency,
                pool_threads, repetitions);
    const double speedup = async_batch.wall_seconds > 0
                               ? threads.wall_seconds /
                                     async_batch.wall_seconds
                               : 0;
    table.AddRow({std::to_string(concurrency),
                  TablePrinter::FormatMillis(threads.wall_seconds),
                  TablePrinter::FormatDouble(threads.qps, 1),
                  TablePrinter::FormatMillis(async_batch.wall_seconds),
                  TablePrinter::FormatDouble(async_batch.qps, 1),
                  TablePrinter::FormatDouble(speedup, 2)});
    const std::string point = "concurrency=" + std::to_string(concurrency);
    json.Add("fig6_service_throughput", point + ",backend=thread",
             "queries_per_second", threads.qps, "q/s");
    json.Add("fig6_service_throughput", point + ",backend=thread",
             "wall_time", threads.wall_seconds * 1e3, "ms");
    json.Add("fig6_service_throughput", point + ",backend=async",
             "queries_per_second", async_batch.qps, "q/s");
    json.Add("fig6_service_throughput", point + ",backend=async",
             "wall_time", async_batch.wall_seconds * 1e3, "ms");
  }
  table.Print();
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  std::printf(
      "\nExpected shape: near-tie at concurrency 1; the persistent pool\n"
      "(async) pulls ahead as concurrency grows — per-round thread spawn\n"
      "and pool oversubscription cost the thread backend one pool per\n"
      "in-flight query.\n");
  return 0;
}
