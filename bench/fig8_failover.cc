// Copyright 2026 mpqopt authors.
//
// Figure 8 (repo extension, not in the paper): serving throughput of the
// OptimizerService over the rpc backend under worker churn.
//
// The supervision subsystem (src/cluster/supervisor/) turns a worker
// crash from a round-failing event into a recovery event: the failed
// worker's tasks re-scatter across the survivors, the endpoint is
// redialed with backoff, and a restarted worker rejoins the pool. This
// bench measures what that costs: one batch on a stable pool (baseline),
// one batch during which a worker is SIGKILLed mid-flight and restarted
// shortly after (churn). Both batches must complete every query; the
// churn column reports the recovery counters alongside the throughput.
//
// Workers are self-hosted on loopback subprocesses like the RPC tests
// (set MPQOPT_WORKER_BIN or run from the build directory).
//
// Knobs: MPQOPT_SERVICE_TABLES (default 11), MPQOPT_SERVICE_WORKERS (8),
// MPQOPT_SERVICE_TOTAL_QUERIES (60), MPQOPT_SERVICE_CONCURRENCY (4),
// MPQOPT_RPC_WORKERS (4), MPQOPT_KILL_AFTER_MS (30),
// MPQOPT_RESTART_AFTER_MS (80), and the shared MPQOPT_SEED / network
// knobs of bench_common.h.

#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

struct ChurnResult {
  BatchReport report;
  ServiceStats stats;
};

ChurnResult RunBatch(RpcWorkerFarm* farm, const std::vector<Query>& queries,
                     const MpqOptions& opts, int concurrency,
                     bool inject_churn, int kill_after_ms,
                     int restart_after_ms) {
  BackendOptions backend_opts;
  backend_opts.network = opts.network;
  backend_opts.workers_addr = farm->workers_addr();
  backend_opts.worker_backoff_ms = 20;
  // A budget generous enough to still be redialing when the restarted
  // worker comes back, so the reconnect path shows in the counters.
  backend_opts.worker_retries = 6;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, backend_opts);
  MPQOPT_CHECK(backend.ok());

  ServiceOptions service_opts;
  service_opts.backend = std::move(backend).value();
  service_opts.dispatcher_threads = concurrency;
  OptimizerService service(service_opts);

  std::thread churn;
  if (inject_churn) {
    churn = std::thread([farm, kill_after_ms, restart_after_ms]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
      farm->Kill(0);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(restart_after_ms - kill_after_ms));
      farm->Restart(0);
    });
  }
  ChurnResult result;
  result.report = service.OptimizeBatch(queries, opts);
  if (churn.joinable()) churn.join();
  result.stats = service.stats();
  return result;
}

int Main() {
  const BenchConfig config = BenchConfig::FromEnv();
  const int tables = static_cast<int>(EnvInt("MPQOPT_SERVICE_TABLES", 11));
  const uint64_t workers =
      static_cast<uint64_t>(EnvInt("MPQOPT_SERVICE_WORKERS", 8));
  const int total =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_TOTAL_QUERIES", 60));
  const int concurrency =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_CONCURRENCY", 4));
  const int rpc_workers = static_cast<int>(EnvInt("MPQOPT_RPC_WORKERS", 4));
  const int kill_after_ms =
      static_cast<int>(EnvInt("MPQOPT_KILL_AFTER_MS", 30));
  const int restart_after_ms =
      static_cast<int>(EnvInt("MPQOPT_RESTART_AFTER_MS", 80));

  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = workers;
  opts.network = NetworkFromEnv();
  const std::vector<Query> queries =
      MakeQueries(tables, total, JoinGraphShape::kStar, config.seed);

  std::printf("# fig8: rpc serving throughput under worker churn\n");
  std::printf("# %d loopback workers, %d queries x %d tables, "
              "concurrency %d; churn: kill worker 0 at %d ms, restart at "
              "%d ms\n",
              rpc_workers, total, tables, concurrency, kill_after_ms,
              restart_after_ms);
  std::printf("%-10s %10s %10s %12s %12s %12s\n", "mode", "wall_s", "qps",
              "completed", "rescattered", "reconnects");

  for (const bool churn : {false, true}) {
    RpcWorkerFarm farm;
    farm.Start(rpc_workers);
    const ChurnResult r = RunBatch(&farm, queries, opts, concurrency, churn,
                                   kill_after_ms, restart_after_ms);
    size_t completed = 0;
    for (const StatusOr<MpqResult>& q : r.report.results) {
      if (q.ok()) ++completed;
    }
    std::printf("%-10s %10.3f %10.1f %9zu/%-2d %12llu %12llu\n",
                churn ? "churn" : "stable", r.report.wall_seconds,
                r.report.queries_per_second, completed, total,
                static_cast<unsigned long long>(r.stats.tasks_rescattered),
                static_cast<unsigned long long>(r.stats.worker_reconnects));
    if (completed != static_cast<size_t>(total)) {
      std::printf("FAIL: %zu/%d queries completed under %s\n", completed,
                  total, churn ? "churn" : "stable pool");
      return 1;
    }
  }
  std::printf("# every query completed in both modes; churn cost is the "
              "qps delta\n");
  return 0;
}

}  // namespace
}  // namespace mpqopt

int main() { return mpqopt::Main(); }
