// Copyright 2026 mpqopt authors.
//
// Ablation D: the interesting-orders extension (paper Section 5.4 sketches
// its complexity impact: one optimal plan per interesting order and table
// set). We measure, per query size and plan space:
//   * plan-cost improvement of order-aware optimization over the
//     order-blind DP (how much sort sharing buys),
//   * optimization-time and split-count overhead of the extra order
//     dimension,
// and verify that the partitioning still divides the work (per-worker
// admissible sets shrink by the usual factors with m).

#include "bench/bench_common.h"
#include "optimizer/dp.h"

namespace mpqopt {
namespace {

void Run(PlanSpace space, int n, JoinGraphShape shape,
         const BenchConfig& config) {
  PrintHeader((std::string("Ablation D — interesting orders, ") +
               PlanSpaceName(space) + " " + std::to_string(n) + " tables, " +
               JoinGraphShapeName(shape) + " graph")
                  .c_str());
  TablePrinter table({"query", "blind cost", "IO cost", "cost ratio",
                      "blind ms", "IO ms", "time ratio"});
  const std::vector<Query> queries =
      MakeQueries(n, config.queries_per_point, shape, config.seed);
  int qi = 0;
  for (const Query& q : queries) {
    DpConfig blind;
    blind.space = space;
    DpConfig io = blind;
    io.interesting_orders = true;
    StatusOr<DpResult> blind_result = OptimizeSerial(q, blind);
    StatusOr<DpResult> io_result = OptimizeSerial(q, io);
    MPQOPT_CHECK(blind_result.ok() && io_result.ok());
    const double bc =
        blind_result.value().arena.node(blind_result.value().best[0])
            .cost.time();
    const double ic =
        io_result.value().arena.node(io_result.value().best[0]).cost.time();
    table.AddRow(
        {std::to_string(qi++), TablePrinter::FormatCount(bc),
         TablePrinter::FormatCount(ic),
         TablePrinter::FormatDouble(ic / bc, 4),
         TablePrinter::FormatMillis(blind_result.value().stats.seconds),
         TablePrinter::FormatMillis(io_result.value().stats.seconds),
         TablePrinter::FormatDouble(
             blind_result.value().stats.seconds > 0
                 ? io_result.value().stats.seconds /
                       blind_result.value().stats.seconds
                 : 0,
             2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv(/*default_queries=*/5);
  Run(PlanSpace::kLinear, 12, JoinGraphShape::kChain, config);
  Run(PlanSpace::kLinear, 12, JoinGraphShape::kStar, config);
  Run(PlanSpace::kBushy, 10, JoinGraphShape::kChain, config);
  std::printf(
      "Expected: cost ratio <= 1 always (order-aware space is a superset);\n"
      "chain queries benefit most (long same-class sort-merge chains).\n"
      "The time overhead is substantial — per-set plan lists are bounded\n"
      "by the order-class count, so split work grows roughly with its\n"
      "square — which is exactly why Section 5.4 predicts higher DP cost\n"
      "for richer plan properties, and why partitioning such optimizers\n"
      "across workers (unchanged, orthogonal) pays off sooner.\n");
  return 0;
}
