// Copyright 2026 mpqopt authors.
//
// macrobench — the deterministic macro-benchmark suite.
//
// Drives the versioned workloads in bench/workloads/*.mbw (see
// src/workload/workload_spec.h for the format) through the full serving
// stack — OptimizerService with the plan cache on, SMA queries through
// the session layer — on every execution backend: thread, process,
// async, and rpc self-hosted on loopback mpqopt_worker subprocesses
// (set MPQOPT_WORKER_BIN or run from the build directory; the rpc sweep
// is skipped with a notice when the worker binary is not runnable).
//
// Unlike the figure benches, which sweep one axis of synthetic queries,
// this suite measures the system on something workload-shaped: fixed
// catalogs, join hypergraphs beyond star/chain (snowflake, grid, clique,
// multi-condition edges, bushy spaces), per-query option deltas, and an
// arrival schedule whose repetition drives real plan-cache hit rates and
// session replica reuse. Reported per (workload, backend): latency
// percentiles (p50/p95/p99), throughput, cache hit rate, and session
// counters; every backend's per-arrival plan choices are
// hash-compared and the run FAILS if any backend ever picks a
// different plan — the cross-backend determinism contract, enforced on
// the real workload mix.
//
// Flags:
//   --json=<path>        machine-readable records (BenchJsonWriter
//                        schema, see bench/bench_common.h); CI uploads
//                        BENCH_macro.json per push next to
//                        BENCH_micro.json
//   --smoke              shortened schedule (each entry capped at 2
//                        arrivals) — the CI configuration
//   --workloads=<dir>    directory of .mbw files (default: the
//                        checked-in bench/workloads/, baked in at
//                        compile time; MPQOPT_WORKLOAD_DIR overrides)
//   --backends=<csv>     subset of thread,process,async,rpc
//   --trace-out=<path>   per-query span traces as Chrome trace-event
//                        JSON (also enables the admission layer with
//                        effectively unlimited slots, so the traces
//                        show the full front door; CI validates the
//                        file with tools/check_trace.py)
//
// Knobs: MPQOPT_RPC_WORKERS (default 2 worker processes; 0 disables the
// rpc sweep), MPQOPT_POOL_THREADS (4), and the shared network knobs of
// bench_common.h.
//
// Replay modes. Serial workloads (no @offsets) are submitted one at a
// time, in schedule order, so hit rates and latency distributions are
// deterministic properties of the workload file — the reported rate is
// the SERIAL completion rate (metric "serial_rate"), i.e. 1/mean
// latency, not a throughput: nothing ever queued behind anything.
// Timed workloads (schedule lines with @<start_ms>) are replayed
// OPEN-LOOP: every arrival fires at its offset whether or not earlier
// queries have finished, which makes offered load independent of
// service speed; those runs report the offered rate ("offered_qps")
// and the achieved completion rate ("throughput") separately. Plan
// choices stay deterministic in both modes and the cross-backend
// equality check applies to both.

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "plan/plan_serde.h"
#include "plancache/fingerprint.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"
#include "workload/workload_spec.h"

// The checked-in workload directory, baked in by CMake so the binary
// finds the suite from any working directory.
#ifndef MPQOPT_WORKLOAD_DIR
#define MPQOPT_WORKLOAD_DIR "bench/workloads"
#endif

namespace mpqopt {
namespace {

using Clock = std::chrono::steady_clock;

/// Canonical 128-bit hash of a chosen plan (set): the serialized plan
/// bytes cover structure, operators, cardinalities, and cost vectors, so
/// two backends agreeing on the hash agree on the whole plan choice.
std::string PlanSignature(const PlanArena& arena,
                          const std::vector<PlanId>& best) {
  ByteWriter writer;
  SerializePlanSet(arena, best, &writer);
  const std::vector<uint8_t>& bytes = writer.buffer();
  char out[48];
  std::snprintf(out, sizeof(out), "%016llx%016llx",
                static_cast<unsigned long long>(
                    HashBytes64(bytes.data(), bytes.size(), /*seed=*/1)),
                static_cast<unsigned long long>(
                    HashBytes64(bytes.data(), bytes.size(), /*seed=*/2)));
  return out;
}

using obs::Percentile;

/// Everything one (workload, backend) run produces.
struct WorkloadRun {
  std::vector<double> latency_seconds;  // per arrival
  std::vector<std::string> plan_sigs;   // per arrival
  double wall_seconds = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t sessions_opened = 0;
  uint64_t session_rounds = 0;
  bool ok = true;
  std::string error;
};

WorkloadRun RunWorkload(const Workload& workload,
                        const std::shared_ptr<ExecutionBackend>& backend,
                        int repeat_cap, obs::TraceCollector* collector) {
  WorkloadRun run;
  ServiceOptions service_opts;
  service_opts.backend = backend;
  service_opts.enable_plan_cache = true;
  if (collector != nullptr) {
    service_opts.trace_collector = collector;
    // Tracing runs also exercise the admission layer so the trace shows
    // the full front door (admission.quota / admission.queue_wait spans)
    // — but with slots and queue depth far above anything the workloads
    // offer, so no arrival is ever actually shed or reordered and the
    // deterministic plan-choice contract is untouched.
    service_opts.enable_admission = true;
    service_opts.admission.max_concurrent = 1 << 16;
    service_opts.admission.queue_depth = 1 << 16;
  }
  OptimizerService service(service_opts);

  // Session counters live on the SHARED backend and accumulate across
  // workloads; report this run's delta.
  const BackendHealth before = backend->health();

  // One arrival: optimize through the right variant, hash the plan.
  const auto run_one = [&](const WorkloadQuery& wq,
                           std::string* sig) -> Status {
    if (wq.variant == WorkloadVariant::kMpq) {
      StatusOr<MpqResult> result = service.Optimize(wq.query, wq.options);
      if (!result.ok()) return result.status();
      *sig = PlanSignature(result.value().arena, result.value().best);
    } else {
      SmaOptions sma;
      sma.space = wq.options.space;
      sma.objective = wq.options.objective;
      sma.alpha = wq.options.alpha;
      sma.num_workers = wq.options.num_workers;
      sma.cost_options = wq.options.cost_options;
      sma.backend = service.shared_backend();
      StatusOr<SmaResult> result = SmaOptimize(wq.query, sma);
      if (!result.ok()) return result.status();
      *sig = PlanSignature(result.value().arena, result.value().best);
    }
    return Status::OK();
  };

  if (workload.timed()) {
    // Open-loop replay: every arrival fires at its schedule offset on
    // its own thread, regardless of whether earlier queries finished.
    // Results land in per-arrival slots, so plan_sigs stays in arrival
    // order (and thus comparable across backends) no matter which
    // queries complete first.
    const std::vector<Workload::TimedArrival> arrivals =
        workload.TimedArrivals(repeat_cap);
    run.latency_seconds.assign(arrivals.size(), 0.0);
    run.plan_sigs.assign(arrivals.size(), std::string());
    std::mutex error_mutex;
    const Clock::time_point batch_start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
      threads.emplace_back([&, i]() {
        std::this_thread::sleep_until(
            batch_start + std::chrono::milliseconds(arrivals[i].at_ms));
        const WorkloadQuery& wq =
            workload.queries[static_cast<size_t>(arrivals[i].query_index)];
        const Clock::time_point start = Clock::now();
        std::string sig;
        const Status status = run_one(wq, &sig);
        run.latency_seconds[i] =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (status.ok()) {
          run.plan_sigs[i] = std::move(sig);
        } else {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (run.ok) {
            run.ok = false;
            run.error = wq.name + ": " + status.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    run.wall_seconds =
        std::chrono::duration<double>(Clock::now() - batch_start).count();
    if (!run.ok) return run;
  } else {
    const std::vector<int> arrivals = workload.Arrivals(repeat_cap);
    const Clock::time_point batch_start = Clock::now();
    for (const int index : arrivals) {
      const WorkloadQuery& wq = workload.queries[static_cast<size_t>(index)];
      const Clock::time_point start = Clock::now();
      std::string sig;
      const Status status = run_one(wq, &sig);
      if (!status.ok()) {
        run.ok = false;
        run.error = wq.name + ": " + status.ToString();
        return run;
      }
      run.latency_seconds.push_back(
          std::chrono::duration<double>(Clock::now() - start).count());
      run.plan_sigs.push_back(std::move(sig));
    }
    run.wall_seconds =
        std::chrono::duration<double>(Clock::now() - batch_start).count();
  }

  const ServiceStats stats = service.stats();
  run.cache_hits = stats.cache_hits;
  run.cache_misses = stats.cache_misses;
  const BackendHealth after = backend->health();
  run.sessions_opened =
      after.sessions.sessions_opened - before.sessions.sessions_opened;
  run.session_rounds =
      after.sessions.session_rounds - before.sessions.session_rounds;
  return run;
}

std::vector<std::string> ListWorkloadFiles(const std::string& dir) {
  std::vector<std::string> files;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() > 4 && name.rfind(".mbw") == name.size() - 4) {
        files.push_back(dir + "/" + name);
      }
    }
    ::closedir(d);
  }
  std::sort(files.begin(), files.end());  // deterministic run order
  return files;
}

struct BackendEntry {
  BackendKind kind;
  std::shared_ptr<ExecutionBackend> backend;
};

}  // namespace
}  // namespace mpqopt

int main(int argc, char** argv) {
  using namespace mpqopt;
  const std::string json_path = BenchJsonWriter::ParseFlag(&argc, argv);
  BenchJsonWriter json;

  bool smoke = false;
  std::string workload_dir = MPQOPT_WORKLOAD_DIR;
  if (const char* env = std::getenv("MPQOPT_WORKLOAD_DIR")) {
    workload_dir = env;
  }
  std::string backends_csv = "thread,process,async,rpc";
  std::string trace_out;
  std::string scrape_out;
  std::string flight_out;
  int telemetry_port = -1;  // -1 = no telemetry server
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--workloads=", 12) == 0) {
      workload_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--backends=", 11) == 0) {
      backends_csv = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--telemetry-port=", 17) == 0) {
      telemetry_port = std::atoi(argv[i] + 17);
      if (telemetry_port < 0 || telemetry_port > 65535) {
        std::fprintf(stderr, "invalid --telemetry-port value: %s\n",
                     argv[i] + 17);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--scrape-out=", 13) == 0) {
      scrape_out = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--flight-out=", 13) == 0) {
      flight_out = argv[i] + 13;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--smoke] [--json=PATH] "
                   "[--workloads=DIR] [--backends=thread,process,async,rpc] "
                   "[--trace-out=PATH] [--telemetry-port=PORT] "
                   "[--scrape-out=PATH] [--flight-out=PATH]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  if ((!scrape_out.empty() || !flight_out.empty()) && telemetry_port < 0) {
    std::fprintf(stderr,
                 "--scrape-out/--flight-out require --telemetry-port\n");
    return 2;
  }
  obs::TraceCollectorOptions trace_opts;
  trace_opts.chrome_out_path = trace_out;
  obs::TraceCollector collector(trace_opts);
  obs::TraceCollector* const collector_ptr =
      trace_out.empty() ? nullptr : &collector;
  const int repeat_cap =
      smoke ? 2 : static_cast<int>(EnvInt("MPQOPT_MACRO_REPEAT_CAP", 0));
  const int pool_threads = static_cast<int>(EnvInt("MPQOPT_POOL_THREADS", 4));
  const int rpc_workers = static_cast<int>(EnvInt("MPQOPT_RPC_WORKERS", 2));
  const NetworkModel network = NetworkFromEnv();

  PrintHeader(smoke ? "macrobench — deterministic macro workloads (smoke)"
                    : "macrobench — deterministic macro workloads");

  // ---- Load and fingerprint the suite. --------------------------------
  std::vector<Workload> workloads;
  {
    const std::vector<std::string> files = ListWorkloadFiles(workload_dir);
    if (files.empty()) {
      std::fprintf(stderr, "no .mbw workload files under %s\n",
                   workload_dir.c_str());
      return 2;
    }
    TablePrinter table({"workload", "queries", "arrivals", "fingerprint"});
    for (const std::string& file : files) {
      StatusOr<Workload> loaded = LoadWorkloadFile(file);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 2;
      }
      Workload w = std::move(loaded).value();
      table.AddRow({w.name, std::to_string(w.queries.size()),
                    std::to_string(w.Arrivals(repeat_cap).size()),
                    WorkloadFingerprint(w)});
      workloads.push_back(std::move(w));
    }
    table.Print();
    std::printf("\n");
  }

  // ---- Build the backend roster. --------------------------------------
  RpcWorkerFarm farm;  // outlives the backends that dial it
  std::vector<BackendEntry> roster;
  for (size_t start = 0; start < backends_csv.size();) {
    size_t comma = backends_csv.find(',', start);
    if (comma == std::string::npos) comma = backends_csv.size();
    const std::string name = backends_csv.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    StatusOr<BackendKind> kind = ParseBackendKind(name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    if (kind.value() == BackendKind::kRpc) {
      if (rpc_workers <= 0 || ::access(WorkerBinaryPath(), X_OK) != 0) {
        std::printf(
            "rpc backend skipped (worker binary '%s' not runnable; set "
            "MPQOPT_WORKER_BIN\nor run from the build directory; "
            "MPQOPT_RPC_WORKERS=0 also disables)\n\n",
            WorkerBinaryPath());
        continue;
      }
      farm.Start(rpc_workers);
      BackendOptions opts;
      opts.network = network;
      opts.workers_addr = farm.workers_addr();
      StatusOr<std::shared_ptr<ExecutionBackend>> rpc =
          MakeBackend(BackendKind::kRpc, opts);
      MPQOPT_CHECK(rpc.ok());
      roster.push_back({BackendKind::kRpc, rpc.value()});
    } else {
      roster.push_back(
          {kind.value(), MakeBackend(kind.value(), network, pool_threads)});
    }
  }
  if (roster.empty()) {
    std::fprintf(stderr, "no usable backends\n");
    return 2;
  }

  // ---- Telemetry plane (optional). ------------------------------------
  // Served live for the whole run so an external scraper can watch; the
  // self-scrape at the end goes through the same real HTTP socket. Wired
  // to the rpc backend when present so /metrics carries worker-labeled
  // series from every farm worker and /healthz reflects the farm.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (telemetry_port >= 0) {
    obs::TelemetryOptions topts;
    topts.port = telemetry_port;
    topts.worker_poll_ttl_ms = 0;  // the gate wants fresh worker series
    for (const BackendEntry& entry : roster) {
      if (entry.kind == BackendKind::kRpc) topts.backend = entry.backend;
    }
    if (topts.backend == nullptr) topts.backend = roster.front().backend;
    StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
        obs::TelemetryServer::Start(std::move(topts));
    if (!server.ok()) {
      std::fprintf(stderr, "telemetry server failed: %s\n",
                   server.status().ToString().c_str());
      return 2;
    }
    telemetry = std::move(server).value();
    std::printf("telemetry          http://127.0.0.1:%d/metrics\n\n",
                telemetry->port());
  }

  // ---- Run: every workload on every backend. --------------------------
  // reference_sigs[workload] = first backend's per-arrival plan hashes;
  // every later backend must match them exactly.
  std::map<std::string, std::vector<std::string>> reference_sigs;
  std::map<std::string, std::string> reference_backend;
  bool plans_identical = true;

  for (const Workload& workload : workloads) {
    const bool timed = workload.timed();
    std::printf("--- workload %s%s ---\n", workload.name.c_str(),
                timed ? " (open-loop)" : "");
    // The rate column is honest about what it measures: a serial replay
    // reports the serial completion rate (1/mean latency — nothing ever
    // queues), an open-loop replay reports achieved throughput under
    // the offered arrival rate.
    TablePrinter table({"backend", "arrivals", "p50 (ms)", "p95 (ms)",
                        "p99 (ms)", timed ? "thru q/s" : "serial q/s",
                        "hit rate", "sessions", "plans"});
    for (const BackendEntry& entry : roster) {
      const char* backend_name = BackendKindName(entry.kind);
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      // Register-or-fetch up front so the Since() deltas below are
      // well-defined even for a run that never records (e.g. queue wait
      // without admission enabled).
      obs::Histogram* const service_hist = registry.GetHistogram(
          obs::kServiceLatencyHistogram, obs::Histogram::LatencyBoundariesMs());
      obs::Histogram* const queue_hist = registry.GetHistogram(
          obs::kQueueWaitHistogram, obs::Histogram::LatencyBoundariesMs());
      obs::Histogram* const round_hist = registry.GetHistogram(
          obs::kRoundTimeHistogram, obs::Histogram::LatencyBoundariesMs());
      const obs::HistogramSnapshot service_before = service_hist->Snapshot();
      const obs::HistogramSnapshot queue_before = queue_hist->Snapshot();
      const obs::HistogramSnapshot round_before = round_hist->Snapshot();
      const WorkloadRun run =
          RunWorkload(workload, entry.backend, repeat_cap, collector_ptr);
      if (!run.ok) {
        std::fprintf(stderr, "workload %s on %s failed: %s\n",
                     workload.name.c_str(), backend_name, run.error.c_str());
        return 1;
      }
      const size_t arrivals = run.latency_seconds.size();
      const double qps =
          run.wall_seconds > 0
              ? static_cast<double>(arrivals) / run.wall_seconds
              : 0;
      const uint64_t lookups = run.cache_hits + run.cache_misses;
      const double hit_rate =
          lookups > 0
              ? static_cast<double>(run.cache_hits) /
                    static_cast<double>(lookups)
              : 0;

      std::string plan_verdict = "reference";
      auto ref = reference_sigs.find(workload.name);
      if (ref == reference_sigs.end()) {
        reference_sigs[workload.name] = run.plan_sigs;
        reference_backend[workload.name] = backend_name;
      } else if (run.plan_sigs == ref->second) {
        plan_verdict = "= " + reference_backend[workload.name];
      } else {
        plan_verdict = "MISMATCH";
        plans_identical = false;
      }

      table.AddRow(
          {backend_name, std::to_string(arrivals),
           TablePrinter::FormatMillis(Percentile(run.latency_seconds, 50)),
           TablePrinter::FormatMillis(Percentile(run.latency_seconds, 95)),
           TablePrinter::FormatMillis(Percentile(run.latency_seconds, 99)),
           TablePrinter::FormatDouble(qps, 1),
           TablePrinter::FormatDouble(hit_rate * 100, 1) + "%",
           std::to_string(run.sessions_opened) + "/" +
               std::to_string(run.session_rounds),
           plan_verdict});

      const std::string config = "workload=" + workload.name +
                                 ",backend=" + backend_name +
                                 (smoke ? ",smoke=1" : "");
      json.Add("macrobench", config, "latency_p50",
               Percentile(run.latency_seconds, 50) * 1e3, "ms");
      json.Add("macrobench", config, "latency_p95",
               Percentile(run.latency_seconds, 95) * 1e3, "ms");
      json.Add("macrobench", config, "latency_p99",
               Percentile(run.latency_seconds, 99) * 1e3, "ms");
      if (timed) {
        // Offered rate is a property of the schedule (arrivals over the
        // schedule span), throughput is what the service achieved.
        const std::vector<Workload::TimedArrival> plan =
            workload.TimedArrivals(repeat_cap);
        const double span_s =
            plan.empty() ? 0
                         : static_cast<double>(plan.back().at_ms) / 1e3;
        json.Add("macrobench", config, "offered_qps",
                 span_s > 0 ? static_cast<double>(arrivals) / span_s : 0,
                 "q/s");
        json.Add("macrobench", config, "throughput", qps, "q/s");
      } else {
        // The serial replay's rate is 1/mean latency, not a throughput
        // (requests never queue behind each other), so it is not called
        // queries_per_second.
        json.Add("macrobench", config, "serial_rate", qps, "q/s");
      }
      json.Add("macrobench", config, "cache_hit_rate", hit_rate * 100, "%");
      json.Add("macrobench", config, "sessions_opened",
               static_cast<double>(run.sessions_opened), "count");
      json.Add("macrobench", config, "session_rounds",
               static_cast<double>(run.session_rounds), "count");
      json.Add("macrobench", config, "arrivals",
               static_cast<double>(arrivals), "count");
      // Tail latencies as the serving stack itself measured them — the
      // global registry's fixed-boundary histograms, windowed to exactly
      // this run by snapshot subtraction. service.latency_ms only counts
      // queries that went THROUGH OptimizerService (SMA arrivals bypass
      // it), and admission.queue_wait_ms only fills under --trace-out
      // (which enables the admission layer), so counts are recorded
      // alongside the percentiles.
      const auto add_hist = [&](const char* prefix,
                                const obs::HistogramSnapshot& delta) {
        json.Add("macrobench", config, std::string(prefix) + "_count",
                 static_cast<double>(delta.count), "count");
        if (delta.count == 0) return;
        json.Add("macrobench", config, std::string(prefix) + "_p50",
                 delta.Percentile(50), "ms");
        json.Add("macrobench", config, std::string(prefix) + "_p95",
                 delta.Percentile(95), "ms");
        json.Add("macrobench", config, std::string(prefix) + "_p99",
                 delta.Percentile(99), "ms");
      };
      add_hist("hist_service_latency",
               service_hist->Snapshot().Since(service_before));
      add_hist("hist_queue_wait", queue_hist->Snapshot().Since(queue_before));
      add_hist("hist_round_time", round_hist->Snapshot().Since(round_before));
    }
    table.Print();
    std::printf("\n");
  }

  for (const Workload& workload : workloads) {
    json.Add("macrobench", "workload=" + workload.name, "plans_identical",
             plans_identical ? 1 : 0, "bool");
  }
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;

  // ---- Live telemetry self-scrape. ------------------------------------
  // Over a real TCP socket while the worker farm is still alive — exactly
  // the bytes an external Prometheus scraper would have received.
  if (telemetry != nullptr) {
    const auto save = [](const std::string& path,
                         const std::string& body) -> bool {
      FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      return true;
    };
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(telemetry->port());
    StatusOr<obs::HttpResponse> metrics = obs::HttpGet(endpoint, "/metrics");
    StatusOr<obs::HttpResponse> health = obs::HttpGet(endpoint, "/healthz");
    StatusOr<obs::HttpResponse> flight =
        obs::HttpGet(endpoint, "/debug/flightrecorder");
    if (!metrics.ok() || metrics.value().status != 200 || !health.ok() ||
        health.value().status != 200 || !flight.ok() ||
        flight.value().status != 200) {
      std::fprintf(stderr, "telemetry self-scrape failed\n");
      return 1;
    }
    std::printf("telemetry scrape   %zu bytes of /metrics, /healthz %s\n",
                metrics.value().body.size(),
                health.value().body.find("\"state\":\"READY\"") !=
                        std::string::npos
                    ? "READY"
                    : "NOT READY");
    if (!scrape_out.empty() && !save(scrape_out, metrics.value().body)) {
      return 1;
    }
    if (!flight_out.empty() && !save(flight_out, flight.value().body)) {
      return 1;
    }
  }

  if (collector_ptr != nullptr) {
    const Status written = collector.WriteChromeTrace();
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu query traces to %s (chrome://tracing)\n\n",
                collector.collected(), trace_out.c_str());
  }

  if (!plans_identical) {
    std::fprintf(stderr,
                 "FAIL: backends disagreed on at least one plan choice — "
                 "the cross-backend determinism contract is broken\n");
    return 1;
  }
  std::printf(
      "All backends produced identical plan choices on every arrival.\n"
      "Expected shape: oltp_repeat's ~92%% repetition makes hits dominate\n"
      "(flat low latency everywhere, biggest win on rpc); analytics_mix is\n"
      "miss-heavy, so backends differ by their real round cost;\n"
      "sma_sessions' session counters are nonzero — replicas opened and\n"
      "stepped per SMA arrival.\n");
  return 0;
}
