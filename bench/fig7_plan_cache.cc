// Copyright 2026 mpqopt authors.
//
// Figure 7 (repo extension, not in the paper): serving throughput of the
// OptimizerService with and without the plan cache, as a function of how
// repetitive the workload is.
//
// A production optimizer endpoint sees the same query shapes over and
// over; the plan cache (src/plancache/) fingerprints each query and
// serves repeats from a sharded LRU, skipping the whole scatter/gather
// round. This bench sweeps the repeated-query fraction (0%, 50%, 90%)
// and measures cache-off vs. cache-on throughput on the async backend,
// plus the rpc backend when worker servers are available (self-hosted on
// loopback subprocesses, like the RPC tests; set MPQOPT_WORKER_BIN or
// run from the build directory).
//
// Expected shape: at 0% repetition the cache is pure (tiny) overhead; at
// 90% it serves nine of ten queries from memory and throughput grows by
// multiples (the PR's acceptance bar is >= 2x at 90% on async).
//
// Knobs: MPQOPT_SERVICE_TABLES (default 11), MPQOPT_SERVICE_WORKERS (16),
// MPQOPT_SERVICE_TOTAL_QUERIES (60), MPQOPT_POOL_THREADS (4),
// MPQOPT_SERVICE_CONCURRENCY (8), MPQOPT_RPC_WORKERS (2; 0 disables the
// rpc sweep), and the shared MPQOPT_SEED / network knobs.

#include <unistd.h>

#include <algorithm>
#include <memory>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

/// `total` queries of which ~`repeat_fraction` are repeats of a small
/// distinct set, interleaved pseudo-randomly (deterministic in the seed)
/// the way arrivals from many clients would be.
std::vector<Query> MakeRepeatedWorkload(int tables, int total,
                                        double repeat_fraction,
                                        uint64_t seed) {
  const int distinct =
      std::max(1, static_cast<int>(total * (1.0 - repeat_fraction) + 0.5));
  const std::vector<Query> unique =
      MakeQueries(tables, distinct, JoinGraphShape::kStar, seed);
  std::vector<Query> workload;
  workload.reserve(static_cast<size_t>(total));
  // First pass guarantees every distinct query appears once...
  for (const Query& q : unique) workload.push_back(q);
  // ...then repeats fill the rest, drawn uniformly.
  Rng rng(seed ^ 0xf1677ULL);
  while (workload.size() < static_cast<size_t>(total)) {
    workload.push_back(
        unique[static_cast<size_t>(rng.UniformInt(0, distinct - 1))]);
  }
  // Shuffle so repeats interleave with first sights (Fisher-Yates).
  for (size_t i = workload.size() - 1; i > 0; --i) {
    const size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i)));
    std::swap(workload[i], workload[j]);
  }
  return workload;
}

struct ModeResult {
  double wall_seconds = 0;
  double qps = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

ModeResult RunMode(std::shared_ptr<ExecutionBackend> backend,
                   const std::vector<Query>& workload,
                   const MpqOptions& opts, bool cache_on, int concurrency,
                   int repetitions) {
  std::vector<double> walls;
  ModeResult mode;
  for (int rep = 0; rep < repetitions; ++rep) {
    // A fresh service per repetition: each batch starts cache-cold, so
    // the measured hit rate is the workload's repetition rate, not an
    // artifact of earlier batches.
    ServiceOptions service_opts;
    service_opts.backend = backend;
    service_opts.dispatcher_threads = concurrency;
    service_opts.enable_plan_cache = cache_on;
    OptimizerService service(service_opts);
    const BatchReport report = service.OptimizeBatch(workload, opts);
    for (const StatusOr<MpqResult>& r : report.results) {
      MPQOPT_CHECK(r.ok());
    }
    walls.push_back(report.wall_seconds);
    const ServiceStats stats = service.stats();
    mode.hits = stats.cache_hits;
    mode.misses = stats.cache_misses;
  }
  mode.wall_seconds = Median(walls);
  mode.qps = mode.wall_seconds > 0
                 ? static_cast<double>(workload.size()) / mode.wall_seconds
                 : 0;
  return mode;
}

void SweepBackend(const char* label, std::shared_ptr<ExecutionBackend> backend,
                  const MpqOptions& opts, int tables, int total_queries,
                  int concurrency, int repetitions, uint64_t seed) {
  std::printf("--- %s backend ---\n", label);
  TablePrinter table({"repeat %", "off (ms)", "off q/s", "on (ms)", "on q/s",
                      "hits/misses", "speedup"});
  for (double repeat : {0.0, 0.5, 0.9}) {
    const std::vector<Query> workload =
        MakeRepeatedWorkload(tables, total_queries, repeat, seed);
    const ModeResult off = RunMode(backend, workload, opts, /*cache_on=*/false,
                                   concurrency, repetitions);
    const ModeResult on = RunMode(backend, workload, opts, /*cache_on=*/true,
                                  concurrency, repetitions);
    const double speedup =
        on.wall_seconds > 0 ? off.wall_seconds / on.wall_seconds : 0;
    table.AddRow({TablePrinter::FormatDouble(repeat * 100, 0),
                  TablePrinter::FormatMillis(off.wall_seconds),
                  TablePrinter::FormatDouble(off.qps, 1),
                  TablePrinter::FormatMillis(on.wall_seconds),
                  TablePrinter::FormatDouble(on.qps, 1),
                  std::to_string(on.hits) + "/" + std::to_string(on.misses),
                  TablePrinter::FormatDouble(speedup, 2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpqopt

int main() {
  using namespace mpqopt;
  const BenchConfig config = BenchConfig::FromEnv();
  const int tables = static_cast<int>(EnvInt("MPQOPT_SERVICE_TABLES", 11));
  const uint64_t workers =
      static_cast<uint64_t>(EnvInt("MPQOPT_SERVICE_WORKERS", 16));
  const int total_queries =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_TOTAL_QUERIES", 60));
  const int pool_threads =
      static_cast<int>(EnvInt("MPQOPT_POOL_THREADS", 4));
  const int concurrency =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_CONCURRENCY", 8));
  const int repetitions =
      static_cast<int>(EnvInt("MPQOPT_SERVICE_REPETITIONS", 3));
  const int rpc_workers =
      static_cast<int>(EnvInt("MPQOPT_RPC_WORKERS", 2));

  PrintHeader("Figure 7 — plan-cache throughput vs. workload repetition");
  std::printf(
      "%d-table star queries, %llu workers each, %d queries per batch,\n"
      "%d dispatchers over %d pool threads; cache: 64 MB, no TTL\n\n",
      tables, static_cast<unsigned long long>(workers), total_queries,
      concurrency, pool_threads);

  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = UsableWorkers(tables, PlanSpace::kLinear, workers);
  opts.network = NetworkFromEnv();

  SweepBackend("async",
               MakeBackend(BackendKind::kAsyncBatch, opts.network,
                           pool_threads),
               opts, tables, total_queries, concurrency, repetitions,
               config.seed);

  if (rpc_workers > 0 && ::access(WorkerBinaryPath(), X_OK) == 0) {
    RpcWorkerFarm farm;
    farm.Start(rpc_workers);
    BackendOptions backend_opts;
    backend_opts.network = opts.network;
    backend_opts.workers_addr = farm.workers_addr();
    StatusOr<std::shared_ptr<ExecutionBackend>> rpc =
        MakeBackend(BackendKind::kRpc, backend_opts);
    MPQOPT_CHECK(rpc.ok());
    SweepBackend("rpc (loopback)", rpc.value(), opts, tables, total_queries,
                 concurrency, repetitions, config.seed);
  } else {
    std::printf(
        "--- rpc backend skipped (worker binary '%s' not runnable; set\n"
        "MPQOPT_WORKER_BIN or run from the build directory;\n"
        "MPQOPT_RPC_WORKERS=0 also disables) ---\n",
        WorkerBinaryPath());
  }

  std::printf(
      "Expected shape: cache-off is flat in the repeat fraction; cache-on\n"
      "matches it at 0%% and pulls away as repetition grows — at 90%% nine\n"
      "of ten queries skip the scatter/gather round entirely. The effect\n"
      "compounds on rpc, where a skipped round also skips real sockets.\n");
  return 0;
}
