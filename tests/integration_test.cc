// Copyright 2026 mpqopt authors.
//
// End-to-end integration tests: MPQ through the full wire protocol must
// return exactly the serial optimizer's result for every supported degree
// of parallelism, every plan space, every join-graph shape, and both
// objectives — the paper's central exactness claim.

#include <gtest/gtest.h>

#include <tuple>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "optimizer/dp.h"
#include "optimizer/pruning.h"
#include "plan/plan_validator.h"
#include "sma/sma.h"

namespace mpqopt {
namespace {

Query MakeQuery(int n, JoinGraphShape shape, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

class ExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<PlanSpace, int, JoinGraphShape>> {};

TEST_P(ExactnessTest, MpqMatchesSerialForAllWorkerCounts) {
  const auto [space, n, shape] = GetParam();
  const Query q = MakeQuery(n, shape, 1000 + n);
  DpConfig config;
  config.space = space;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  const double optimum =
      serial.value().arena.node(serial.value().best[0]).cost.time();

  const uint64_t max_m = UsableWorkers(n, space, 64);
  for (uint64_t m = 1; m <= max_m; m *= 2) {
    MpqOptions opts;
    opts.space = space;
    opts.num_workers = m;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok()) << "m=" << m;
    const double cost =
        result.value().arena.node(result.value().best[0]).cost.time();
    EXPECT_NEAR(cost / optimum, 1.0, 1e-12)
        << PlanSpaceName(space) << " n=" << n << " m=" << m;

    const CostModel model(Objective::kTime);
    PlanValidationOptions vopts;
    vopts.require_left_deep = space == PlanSpace::kLinear;
    EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                             model, vopts)
                    .ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, ExactnessTest,
    ::testing::Values(
        std::make_tuple(PlanSpace::kLinear, 8, JoinGraphShape::kStar),
        std::make_tuple(PlanSpace::kLinear, 9, JoinGraphShape::kChain),
        std::make_tuple(PlanSpace::kLinear, 10, JoinGraphShape::kCycle),
        std::make_tuple(PlanSpace::kLinear, 11, JoinGraphShape::kClique),
        std::make_tuple(PlanSpace::kLinear, 12, JoinGraphShape::kStar),
        std::make_tuple(PlanSpace::kBushy, 8, JoinGraphShape::kStar),
        std::make_tuple(PlanSpace::kBushy, 9, JoinGraphShape::kChain),
        std::make_tuple(PlanSpace::kBushy, 10, JoinGraphShape::kCycle),
        std::make_tuple(PlanSpace::kBushy, 11, JoinGraphShape::kStar)));

class MoExactnessTest
    : public ::testing::TestWithParam<std::tuple<PlanSpace, int>> {};

TEST_P(MoExactnessTest, MpqFrontierCoversSerialFrontierBothWays) {
  const auto [space, n] = GetParam();
  const Query q = MakeQuery(n, JoinGraphShape::kStar, 2000 + n);
  DpConfig config;
  config.space = space;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 1.0;  // exact frontiers -> exact coverage both ways
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  std::vector<CostVector> serial_frontier;
  for (PlanId id : serial.value().best) {
    serial_frontier.push_back(serial.value().arena.node(id).cost);
  }

  const uint64_t max_m = UsableWorkers(n, space, 16);
  for (uint64_t m = 1; m <= max_m; m *= 2) {
    MpqOptions opts;
    opts.space = space;
    opts.objective = Objective::kTimeAndBuffer;
    opts.alpha = 1.0;
    opts.num_workers = m;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok()) << "m=" << m;
    std::vector<CostVector> frontier;
    for (PlanId id : result.value().best) {
      frontier.push_back(result.value().arena.node(id).cost);
    }
    EXPECT_TRUE(AlphaCovers(frontier, serial_frontier, 1.0 + 1e-12))
        << "m=" << m;
    EXPECT_TRUE(AlphaCovers(serial_frontier, frontier, 1.0 + 1e-12))
        << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, MoExactnessTest,
    ::testing::Values(std::make_tuple(PlanSpace::kLinear, 8),
                      std::make_tuple(PlanSpace::kLinear, 10),
                      std::make_tuple(PlanSpace::kBushy, 8),
                      std::make_tuple(PlanSpace::kBushy, 9)));

TEST(IntegrationTest, MpqAndSmaAgreeOnOptimum) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Query q = MakeQuery(10, JoinGraphShape::kStar, 3000 + seed);
    MpqOptions mpq_opts;
    mpq_opts.space = PlanSpace::kLinear;
    mpq_opts.num_workers = 16;
    MpqOptimizer mpq(mpq_opts);
    SmaOptions sma_opts;
    sma_opts.space = PlanSpace::kLinear;
    sma_opts.num_workers = 5;
    StatusOr<MpqResult> a = mpq.Optimize(q);
    StatusOr<SmaResult> b = SmaOptimize(q, sma_opts);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(a.value().arena.node(a.value().best[0]).cost.time(),
                     b.value().arena.node(b.value().best[0]).cost.time());
  }
}

TEST(IntegrationTest, WorkerMemoryScalesDownAsTheoremsPredict) {
  // Figure 2's memory series: per-worker memo sets must shrink by 3/4
  // (linear) resp. 7/8 (bushy) per doubling of m.
  const Query q = MakeQuery(12, JoinGraphShape::kStar, 4001);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    int64_t prev = 0;
    const uint64_t max_m = UsableWorkers(12, space, 16);
    for (uint64_t m = 1; m <= max_m; m *= 2) {
      MpqOptions opts;
      opts.space = space;
      opts.num_workers = m;
      MpqOptimizer mpq(opts);
      StatusOr<MpqResult> result = mpq.Optimize(q);
      ASSERT_TRUE(result.ok());
      const int64_t sets = result.value().max_worker_memo_sets;
      if (prev > 0) {
        if (space == PlanSpace::kLinear) {
          EXPECT_EQ(sets, prev * 3 / 4);
        } else {
          EXPECT_EQ(sets, prev * 7 / 8);
        }
      }
      prev = sets;
    }
  }
}

TEST(IntegrationTest, TotalSplitsShrinkWithParallelism) {
  // Theorem 6/7: per-worker enumeration work decreases with m; the MAX
  // over workers (which equals total/m by skew-freeness) must shrink.
  const Query q = MakeQuery(12, JoinGraphShape::kStar, 4002);
  int64_t prev_per_worker = 0;
  for (uint64_t m : {1u, 2u, 4u, 8u}) {
    MpqOptions opts;
    opts.space = PlanSpace::kLinear;
    opts.num_workers = m;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok());
    const int64_t per_worker =
        result.value().total_splits / static_cast<int64_t>(m);
    if (prev_per_worker > 0) EXPECT_LT(per_worker, prev_per_worker);
    prev_per_worker = per_worker;
  }
}

TEST(IntegrationTest, SerializedQueriesIdenticalAcrossPartitions) {
  // All workers must receive the same query bytes and numbering — the
  // correctness precondition called out in Section 4.2.
  const Query q = MakeQuery(8, JoinGraphShape::kStar, 4003);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;
  std::vector<uint8_t> first = MpqOptimizer::BuildRequest(q, 0, opts);
  for (uint64_t part = 1; part < 4; ++part) {
    std::vector<uint8_t> req = MpqOptimizer::BuildRequest(q, part, opts);
    ASSERT_EQ(req.size(), first.size());
    // Requests differ only in the partition id field.
    int diff_bytes = 0;
    for (size_t i = 0; i < req.size(); ++i) {
      if (req[i] != first[i]) ++diff_bytes;
    }
    EXPECT_LE(diff_bytes, 8);
  }
}

TEST(IntegrationTest, LargeLinearQueryEndToEnd) {
  // A 16-table query exercising deeper recursion and larger memos.
  const Query q = MakeQuery(16, JoinGraphShape::kStar, 4004);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 64;
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(
      result.value().arena.node(result.value().best[0]).cost.time() /
          serial.value().arena.node(serial.value().best[0]).cost.time(),
      1.0, 1e-12);
}

}  // namespace
}  // namespace mpqopt
