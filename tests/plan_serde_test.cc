// Copyright 2026 mpqopt authors.

#include "plan/plan_serde.h"

#include <gtest/gtest.h>

namespace mpqopt {
namespace {

PlanId BuildSample(PlanArena* arena) {
  const PlanId s0 = arena->MakeScan(0, 100, CostVector::Scalar(100));
  const PlanId s1 = arena->MakeScan(1, 200, CostVector::Scalar(200));
  const PlanId s2 = arena->MakeScan(2, 300, CostVector::Scalar(300));
  const PlanId j = arena->MakeJoin(JoinAlgorithm::kSortMergeJoin, s1, s2, 40,
                                   CostVector::Scalar(900));
  return arena->MakeJoin(JoinAlgorithm::kHashJoin, s0, j, 10,
                         CostVector::Scalar(1500));
}

TEST(PlanSerdeTest, RoundTripPreservesStructure) {
  PlanArena src;
  const PlanId root = BuildSample(&src);
  ByteWriter w;
  SerializePlan(src, root, &w);

  PlanArena dst;
  ByteReader r(w.buffer());
  StatusOr<PlanId> back = DeserializePlan(&r, &dst);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(PlanToString(dst, back.value()), PlanToString(src, root));
  EXPECT_EQ(dst.node(back.value()).tables, src.node(root).tables);
  EXPECT_DOUBLE_EQ(dst.node(back.value()).cost.time(),
                   src.node(root).cost.time());
  EXPECT_DOUBLE_EQ(dst.node(back.value()).cardinality,
                   src.node(root).cardinality);
}

TEST(PlanSerdeTest, RoundTripSingleScan) {
  PlanArena src;
  const PlanId scan = src.MakeScan(5, 77, CostVector::Scalar(77));
  ByteWriter w;
  SerializePlan(src, scan, &w);
  PlanArena dst;
  ByteReader r(w.buffer());
  StatusOr<PlanId> back = DeserializePlan(&r, &dst);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(dst.node(back.value()).IsScan());
  EXPECT_EQ(dst.node(back.value()).table, 5);
}

TEST(PlanSerdeTest, RoundTripMultiMetricCosts) {
  PlanArena src;
  const PlanId s0 = src.MakeScan(0, 10, CostVector::TimeBuffer(10, 100));
  const PlanId s1 = src.MakeScan(1, 20, CostVector::TimeBuffer(20, 100));
  const PlanId j = src.MakeJoin(JoinAlgorithm::kHashJoin, s0, s1, 5,
                                CostVector::TimeBuffer(66, 200));
  ByteWriter w;
  SerializePlan(src, j, &w);
  PlanArena dst;
  ByteReader r(w.buffer());
  StatusOr<PlanId> back = DeserializePlan(&r, &dst);
  ASSERT_TRUE(back.ok());
  const CostVector& cost = dst.node(back.value()).cost;
  EXPECT_EQ(cost.num_metrics(), 2);
  EXPECT_DOUBLE_EQ(cost[1], 200);
}

TEST(PlanSerdeTest, PlanSetRoundTrip) {
  PlanArena src;
  std::vector<PlanId> ids;
  ids.push_back(BuildSample(&src));
  ids.push_back(src.MakeScan(7, 42, CostVector::Scalar(42)));
  ByteWriter w;
  SerializePlanSet(src, ids, &w);
  PlanArena dst;
  ByteReader r(w.buffer());
  StatusOr<std::vector<PlanId>> back = DeserializePlanSet(&r, &dst);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(PlanToString(dst, back.value()[0]), PlanToString(src, ids[0]));
  EXPECT_EQ(PlanToString(dst, back.value()[1]), "R7");
}

TEST(PlanSerdeTest, EmptyPlanSetRoundTrip) {
  PlanArena src;
  ByteWriter w;
  SerializePlanSet(src, {}, &w);
  PlanArena dst;
  ByteReader r(w.buffer());
  StatusOr<std::vector<PlanId>> back = DeserializePlanSet(&r, &dst);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(PlanSerdeTest, BadTagIsCorruption) {
  ByteWriter w;
  w.WriteU8(200);  // invalid node tag
  PlanArena dst;
  ByteReader r(w.buffer());
  EXPECT_EQ(DeserializePlan(&r, &dst).status().code(),
            StatusCode::kCorruption);
}

TEST(PlanSerdeTest, TruncatedPlanIsCorruption) {
  PlanArena src;
  const PlanId root = BuildSample(&src);
  ByteWriter w;
  SerializePlan(src, root, &w);
  std::vector<uint8_t> truncated(w.buffer().begin(),
                                 w.buffer().begin() + w.size() - 4);
  PlanArena dst;
  ByteReader r(truncated);
  EXPECT_FALSE(DeserializePlan(&r, &dst).ok());
}

TEST(PlanSerdeTest, OverlappingOperandsRejected) {
  // Hand-craft a malicious payload: Join(Scan(0), Scan(0)).
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(JoinAlgorithm::kHashJoin));
  for (int i = 0; i < 2; ++i) {
    w.WriteU8(static_cast<uint8_t>(JoinAlgorithm::kScan));
    w.WriteU32(0);
    w.WriteDouble(10);
    CostVector::Scalar(10).Serialize(&w);
  }
  w.WriteDouble(5);
  CostVector::Scalar(50).Serialize(&w);
  PlanArena dst;
  ByteReader r(w.buffer());
  EXPECT_EQ(DeserializePlan(&r, &dst).status().code(),
            StatusCode::kCorruption);
}

TEST(PlanSerdeTest, ScanTableOutOfRangeRejected) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(JoinAlgorithm::kScan));
  w.WriteU32(1000);  // > kMaxTables
  w.WriteDouble(10);
  CostVector::Scalar(10).Serialize(&w);
  PlanArena dst;
  ByteReader r(w.buffer());
  EXPECT_FALSE(DeserializePlan(&r, &dst).ok());
}

}  // namespace
}  // namespace mpqopt
