// Copyright 2026 mpqopt authors.

#include "plan/plan_validator.h"

#include <gtest/gtest.h>

#include "cost/cardinality.h"

namespace mpqopt {
namespace {

Query TwoTableQuery() {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = 100;
  tables[1].cardinality = 50;
  for (auto& t : tables) t.attribute_domains = {10.0};
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0, 0.1}};
  return Query(std::move(tables), std::move(preds));
}

/// Builds a correctly costed HJ(R0, R1) for TwoTableQuery().
PlanId BuildCorrect(const Query& q, const CostModel& model,
                    PlanArena* arena) {
  const CardinalityEstimator est(q);
  const PlanId s0 = arena->MakeScan(0, 100, model.ScanCost(100));
  const PlanId s1 = arena->MakeScan(1, 50, model.ScanCost(50));
  const double out = est.Cardinality(TableSet::AllTables(2));
  return arena->MakeJoin(
      JoinAlgorithm::kHashJoin, s0, s1, out,
      model.JoinCost(JoinAlgorithm::kHashJoin, arena->node(s0).cost,
                     arena->node(s1).cost, 100, 50, out));
}

TEST(PlanValidatorTest, AcceptsCorrectPlan) {
  const Query q = TwoTableQuery();
  const CostModel model(Objective::kTime);
  PlanArena arena;
  const PlanId root = BuildCorrect(q, model, &arena);
  EXPECT_TRUE(ValidatePlan(arena, root, q, model).ok());
}

TEST(PlanValidatorTest, RejectsIncompletePlan) {
  const Query q = TwoTableQuery();
  const CostModel model(Objective::kTime);
  PlanArena arena;
  const PlanId scan = arena.MakeScan(0, 100, model.ScanCost(100));
  EXPECT_FALSE(ValidatePlan(arena, scan, q, model).ok());
}

TEST(PlanValidatorTest, RejectsWrongCardinality) {
  const Query q = TwoTableQuery();
  const CostModel model(Objective::kTime);
  PlanArena arena;
  const PlanId s0 = arena.MakeScan(0, 100, model.ScanCost(100));
  const PlanId s1 = arena.MakeScan(1, 50, model.ScanCost(50));
  const PlanId root = arena.MakeJoin(
      JoinAlgorithm::kHashJoin, s0, s1, 99999 /* wrong */,
      model.JoinCost(JoinAlgorithm::kHashJoin, arena.node(s0).cost,
                     arena.node(s1).cost, 100, 50, 99999));
  EXPECT_FALSE(ValidatePlan(arena, root, q, model).ok());
}

TEST(PlanValidatorTest, RejectsWrongCost) {
  const Query q = TwoTableQuery();
  const CostModel model(Objective::kTime);
  const CardinalityEstimator est(q);
  PlanArena arena;
  const PlanId s0 = arena.MakeScan(0, 100, model.ScanCost(100));
  const PlanId s1 = arena.MakeScan(1, 50, model.ScanCost(50));
  const double out = est.Cardinality(TableSet::AllTables(2));
  const PlanId root = arena.MakeJoin(JoinAlgorithm::kHashJoin, s0, s1, out,
                                     CostVector::Scalar(1) /* wrong */);
  EXPECT_FALSE(ValidatePlan(arena, root, q, model).ok());
}

TEST(PlanValidatorTest, RejectsWrongScanCost) {
  const Query q = TwoTableQuery();
  const CostModel model(Objective::kTime);
  const CardinalityEstimator est(q);
  PlanArena arena;
  const PlanId s0 = arena.MakeScan(0, 100, CostVector::Scalar(5) /* wrong */);
  const PlanId s1 = arena.MakeScan(1, 50, model.ScanCost(50));
  const double out = est.Cardinality(TableSet::AllTables(2));
  const PlanId root = arena.MakeJoin(
      JoinAlgorithm::kHashJoin, s0, s1, out,
      model.JoinCost(JoinAlgorithm::kHashJoin, arena.node(s0).cost,
                     arena.node(s1).cost, 100, 50, out));
  EXPECT_FALSE(ValidatePlan(arena, root, q, model).ok());
}

TEST(PlanValidatorTest, LeftDeepRestriction) {
  std::vector<TableInfo> tables(4);
  for (auto& t : tables) {
    t.cardinality = 10;
    t.attribute_domains = {5.0};
  }
  const Query q(std::move(tables), {});
  const CostModel model(Objective::kTime);
  const CardinalityEstimator est(q);
  PlanArena arena;
  PlanId scans[4];
  for (int i = 0; i < 4; ++i) {
    scans[i] = arena.MakeScan(i, 10, model.ScanCost(10));
  }
  const auto join = [&](PlanId l, PlanId r) {
    const TableSet t = arena.node(l).tables.Union(arena.node(r).tables);
    const double out = est.Cardinality(t);
    return arena.MakeJoin(
        JoinAlgorithm::kHashJoin, l, r, out,
        model.JoinCost(JoinAlgorithm::kHashJoin, arena.node(l).cost,
                       arena.node(r).cost, arena.node(l).cardinality,
                       arena.node(r).cardinality, out));
  };
  const PlanId bushy = join(join(scans[0], scans[1]), join(scans[2], scans[3]));
  PlanValidationOptions opts;
  EXPECT_TRUE(ValidatePlan(arena, bushy, q, model, opts).ok());
  opts.require_left_deep = true;
  EXPECT_FALSE(ValidatePlan(arena, bushy, q, model, opts).ok());
}

TEST(PlanValidatorTest, ConstraintComplianceChecked) {
  std::vector<TableInfo> tables(4);
  for (auto& t : tables) {
    t.cardinality = 10;
    t.attribute_domains = {5.0};
  }
  const Query q(std::move(tables), {});
  const CostModel model(Objective::kTime);
  const CardinalityEstimator est(q);
  PlanArena arena;
  PlanId scans[4];
  for (int i = 0; i < 4; ++i) {
    scans[i] = arena.MakeScan(i, 10, model.ScanCost(10));
  }
  const auto join = [&](PlanId l, PlanId r) {
    const TableSet t = arena.node(l).tables.Union(arena.node(r).tables);
    const double out = est.Cardinality(t);
    return arena.MakeJoin(
        JoinAlgorithm::kHashJoin, l, r, out,
        model.JoinCost(JoinAlgorithm::kHashJoin, arena.node(l).cost,
                       arena.node(r).cost, arena.node(l).cardinality,
                       arena.node(r).cardinality, out));
  };
  // Left-deep join order 1, 0, 2, 3 — violates Q0 < Q1 because the
  // intermediate result {1} ∪ {0} is preceded by result {1}... the
  // violating intermediate is {1,0}'s predecessor {1} joined next with 0:
  // the result {1, 0} contains both, but the FIRST join input was {1}
  // alone, so the plan's intermediate {1} ∪ nothing is a scan (always
  // admissible) and the first JOIN RESULT is {0,1}. The real violation
  // under Q0 < Q1 is an intermediate containing 1 but not 0, e.g. order
  // 1, 2, 0, 3 whose first join result is {1,2}.
  const PlanId violating =
      join(join(join(scans[1], scans[2]), scans[0]), scans[3]);
  StatusOr<ConstraintSet> constraints = ConstraintSet::FromPartitionId(
      4, PlanSpace::kLinear, /*partition_id=*/0, /*num_partitions=*/2);
  ASSERT_TRUE(constraints.ok());
  PlanValidationOptions opts;
  opts.constraints = &constraints.value();
  EXPECT_FALSE(ValidatePlan(arena, violating, q, model, opts).ok());
  // Order 0, 1, 2, 3 complies.
  const PlanId compliant =
      join(join(join(scans[0], scans[1]), scans[2]), scans[3]);
  EXPECT_TRUE(ValidatePlan(arena, compliant, q, model, opts).ok());
}

}  // namespace
}  // namespace mpqopt
