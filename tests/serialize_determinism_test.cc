// Copyright 2026 mpqopt authors.
//
// Deterministic-serialization regression tests — the correctness
// precondition of the plan-cache fingerprint (plancache/fingerprint.h):
// logically equal queries must serialize to byte-identical buffers, or
// memoized serving would silently stop hitting. Covers re-serializing
// the same Query, regenerating an identical workload from the same
// generator seed, and the canonical bool encoding.

#include <cstring>

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/query.h"
#include "common/serialize.h"
#include "plancache/fingerprint.h"

namespace mpqopt {
namespace {

std::vector<uint8_t> SerializeQuery(const Query& query) {
  ByteWriter writer;
  query.Serialize(&writer);
  return writer.Release();
}

TEST(SerializeDeterminismTest, SameQuerySerializesByteIdentically) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kClique;
  QueryGenerator gen(opts, 2024);
  for (int tables = 4; tables <= 12; tables += 4) {
    const Query query = gen.Generate(tables);
    EXPECT_EQ(SerializeQuery(query), SerializeQuery(query))
        << "n=" << tables;
  }
}

TEST(SerializeDeterminismTest, RegeneratedWorkloadSerializesByteIdentically) {
  // Two generators with the same options and seed must produce query
  // streams whose serializations — and therefore fingerprints — match
  // byte for byte. This is what lets a restarted service warm its cache
  // from a replayed workload.
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen_a(opts, 555);
  QueryGenerator gen_b(opts, 555);
  MpqOptions mpq_opts;
  mpq_opts.num_workers = 4;
  for (int i = 0; i < 8; ++i) {
    const Query a = gen_a.Generate(9);
    const Query b = gen_b.Generate(9);
    EXPECT_EQ(SerializeQuery(a), SerializeQuery(b)) << "draw " << i;
    EXPECT_EQ(FingerprintQuery(a, mpq_opts), FingerprintQuery(b, mpq_opts))
        << "draw " << i;
  }
  // ... and a different seed must diverge (guards against a generator
  // that ignores its seed, which would make this whole test vacuous).
  QueryGenerator gen_c(opts, 556);
  EXPECT_NE(SerializeQuery(gen_a.Generate(9)),
            SerializeQuery(gen_c.Generate(9)));
}

TEST(SerializeDeterminismTest, RoundTripPreservesSerialization) {
  GeneratorOptions opts;
  QueryGenerator gen(opts, 77);
  const Query query = gen.Generate(10);
  const std::vector<uint8_t> bytes = SerializeQuery(query);
  ByteReader reader(bytes);
  StatusOr<Query> decoded = Query::Deserialize(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(SerializeQuery(decoded.value()), bytes);
}

TEST(SerializeDeterminismTest, BoolEncodingIsCanonical) {
  ByteWriter writer;
  writer.WriteBool(true);
  writer.WriteBool(false);
  ASSERT_EQ(writer.size(), 2u);
  EXPECT_EQ(writer.buffer()[0], 1u);
  EXPECT_EQ(writer.buffer()[1], 0u);

  ByteReader reader(writer.buffer());
  bool a = false;
  bool b = true;
  ASSERT_TRUE(reader.ReadBool(&a).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);

  // Any non-canonical byte is corruption, not silent truthiness.
  const uint8_t bad[] = {2};
  ByteReader bad_reader(bad, 1);
  bool out = false;
  EXPECT_EQ(bad_reader.ReadBool(&out).code(), StatusCode::kCorruption);
}

TEST(SerializeDeterminismTest, ExternalBufferWriterMatchesOwningWriter) {
  // The zero-copy scatter path serializes straight into caller-owned
  // request buffers; the bytes must be indistinguishable from the
  // owning-writer path or frame contents diverge by construction site.
  ByteWriter owning;
  owning.WriteU8(0x5a);
  owning.WriteU32(123456u);
  owning.WriteU64(0x0102030405060708ull);
  owning.WriteDouble(3.25);
  owning.WriteBool(true);
  owning.WriteString("zero-copy");

  std::vector<uint8_t> sink;
  ByteWriter external(&sink);
  external.WriteU8(0x5a);
  external.WriteU32(123456u);
  external.WriteU64(0x0102030405060708ull);
  external.WriteDouble(3.25);
  external.WriteBool(true);
  external.WriteString("zero-copy");

  EXPECT_EQ(sink, owning.buffer());
  EXPECT_EQ(external.size(), owning.size());
}

TEST(SerializeDeterminismTest, ExternalBufferWriterAppendsAfterPrefix) {
  // size() reports only bytes written by this writer, even when the sink
  // already holds a prefix (the request path writes after a hoisted
  // query prefix).
  std::vector<uint8_t> sink = {0xaa, 0xbb, 0xcc};
  ByteWriter writer(&sink);
  EXPECT_EQ(writer.size(), 0u);
  writer.WriteU32(7u);
  EXPECT_EQ(writer.size(), 4u);
  ASSERT_EQ(sink.size(), 7u);
  EXPECT_EQ(sink[0], 0xaa);
  EXPECT_EQ(sink[1], 0xbb);
  EXPECT_EQ(sink[2], 0xcc);

  ByteReader reader(sink.data() + 3, sink.size() - 3);
  uint32_t v = 0;
  ASSERT_TRUE(reader.ReadU32(&v).ok());
  EXPECT_EQ(v, 7u);
}

TEST(SerializeDeterminismTest, EncodeU64MatchesWriteU64) {
  // EncodeU64 builds fixed-size frame headers on the stack; its byte
  // pattern must match WriteU64 exactly for the gather-send frames to be
  // byte-identical with the legacy single-buffer frames.
  const uint64_t values[] = {0, 1, 0x7f, 0x80, 0xdeadbeefcafebabeull,
                             ~0ull};
  for (const uint64_t v : values) {
    uint8_t encoded[8];
    EncodeU64(v, encoded);
    ByteWriter writer;
    writer.WriteU64(v);
    ASSERT_EQ(writer.size(), 8u);
    EXPECT_EQ(std::memcmp(encoded, writer.buffer().data(), 8), 0)
        << "mismatch for " << v;
  }
}

TEST(SerializeDeterminismTest, QuerySerializationIntoExternalBuffer) {
  // End-to-end: the same query serialized via both writer modes yields
  // identical bytes (the scatter path's byte-identity guarantee).
  GeneratorOptions opts;
  QueryGenerator gen(opts, 4242);
  const Query q = gen.Generate(11);
  ByteWriter owning;
  q.Serialize(&owning);

  std::vector<uint8_t> sink;
  ByteWriter external(&sink);
  q.Serialize(&external);
  EXPECT_EQ(sink, owning.buffer());
}

}  // namespace
}  // namespace mpqopt
