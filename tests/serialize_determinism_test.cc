// Copyright 2026 mpqopt authors.
//
// Deterministic-serialization regression tests — the correctness
// precondition of the plan-cache fingerprint (plancache/fingerprint.h):
// logically equal queries must serialize to byte-identical buffers, or
// memoized serving would silently stop hitting. Covers re-serializing
// the same Query, regenerating an identical workload from the same
// generator seed, and the canonical bool encoding.

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/query.h"
#include "common/serialize.h"
#include "plancache/fingerprint.h"

namespace mpqopt {
namespace {

std::vector<uint8_t> SerializeQuery(const Query& query) {
  ByteWriter writer;
  query.Serialize(&writer);
  return writer.Release();
}

TEST(SerializeDeterminismTest, SameQuerySerializesByteIdentically) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kClique;
  QueryGenerator gen(opts, 2024);
  for (int tables = 4; tables <= 12; tables += 4) {
    const Query query = gen.Generate(tables);
    EXPECT_EQ(SerializeQuery(query), SerializeQuery(query))
        << "n=" << tables;
  }
}

TEST(SerializeDeterminismTest, RegeneratedWorkloadSerializesByteIdentically) {
  // Two generators with the same options and seed must produce query
  // streams whose serializations — and therefore fingerprints — match
  // byte for byte. This is what lets a restarted service warm its cache
  // from a replayed workload.
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen_a(opts, 555);
  QueryGenerator gen_b(opts, 555);
  MpqOptions mpq_opts;
  mpq_opts.num_workers = 4;
  for (int i = 0; i < 8; ++i) {
    const Query a = gen_a.Generate(9);
    const Query b = gen_b.Generate(9);
    EXPECT_EQ(SerializeQuery(a), SerializeQuery(b)) << "draw " << i;
    EXPECT_EQ(FingerprintQuery(a, mpq_opts), FingerprintQuery(b, mpq_opts))
        << "draw " << i;
  }
  // ... and a different seed must diverge (guards against a generator
  // that ignores its seed, which would make this whole test vacuous).
  QueryGenerator gen_c(opts, 556);
  EXPECT_NE(SerializeQuery(gen_a.Generate(9)),
            SerializeQuery(gen_c.Generate(9)));
}

TEST(SerializeDeterminismTest, RoundTripPreservesSerialization) {
  GeneratorOptions opts;
  QueryGenerator gen(opts, 77);
  const Query query = gen.Generate(10);
  const std::vector<uint8_t> bytes = SerializeQuery(query);
  ByteReader reader(bytes);
  StatusOr<Query> decoded = Query::Deserialize(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(SerializeQuery(decoded.value()), bytes);
}

TEST(SerializeDeterminismTest, BoolEncodingIsCanonical) {
  ByteWriter writer;
  writer.WriteBool(true);
  writer.WriteBool(false);
  ASSERT_EQ(writer.size(), 2u);
  EXPECT_EQ(writer.buffer()[0], 1u);
  EXPECT_EQ(writer.buffer()[1], 0u);

  ByteReader reader(writer.buffer());
  bool a = false;
  bool b = true;
  ASSERT_TRUE(reader.ReadBool(&a).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);

  // Any non-canonical byte is corruption, not silent truthiness.
  const uint8_t bad[] = {2};
  ByteReader bad_reader(bad, 1);
  bool out = false;
  EXPECT_EQ(bad_reader.ReadBool(&out).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace mpqopt
