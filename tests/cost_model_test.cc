// Copyright 2026 mpqopt authors.

#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mpqopt {
namespace {

TEST(CostModelTest, ScanCostEqualsCardinalityInTimeMetric) {
  const CostModel model(Objective::kTime);
  EXPECT_DOUBLE_EQ(model.ScanCost(1000).time(), 1000);
  EXPECT_EQ(model.ScanCost(1000).num_metrics(), 1);
}

TEST(CostModelTest, ScanCostBufferIsOneBlock) {
  CostModelOptions opts;
  opts.block_size = 64;
  const CostModel model(Objective::kTimeAndBuffer, opts);
  const CostVector c = model.ScanCost(1000);
  EXPECT_EQ(c.num_metrics(), 2);
  EXPECT_DOUBLE_EQ(c[1], 64);
}

TEST(CostModelTest, BlockNestedLoopFormula) {
  CostModelOptions opts;
  opts.block_size = 100;
  opts.output_cost_factor = 1.0;
  const CostModel model(Objective::kTime, opts);
  // |L|=250 -> 3 blocks; 250 + 3*1000 + out 50.
  EXPECT_DOUBLE_EQ(
      model.LocalJoinTime(JoinAlgorithm::kBlockNestedLoop, 250, 1000, 50),
      250 + 3 * 1000 + 50);
}

TEST(CostModelTest, HashJoinFormula) {
  CostModelOptions opts;
  opts.hash_constant = 1.2;
  const CostModel model(Objective::kTime, opts);
  EXPECT_DOUBLE_EQ(model.LocalJoinTime(JoinAlgorithm::kHashJoin, 100, 200, 30),
                   1.2 * 300 + 30);
}

TEST(CostModelTest, SortMergeFormula) {
  const CostModel model(Objective::kTime);
  const double expected =
      1024 * 10 + 16 * 4 + 1024 + 16 + 7;  // n log n terms + merge + out
  EXPECT_DOUBLE_EQ(
      model.LocalJoinTime(JoinAlgorithm::kSortMergeJoin, 1024, 16, 7),
      expected);
}

TEST(CostModelTest, JoinCostAddsChildTimes) {
  const CostModel model(Objective::kTime);
  const CostVector l = CostVector::Scalar(500);
  const CostVector r = CostVector::Scalar(700);
  const CostVector joined =
      model.JoinCost(JoinAlgorithm::kHashJoin, l, r, 100, 200, 30);
  EXPECT_DOUBLE_EQ(
      joined.time(),
      500 + 700 + model.LocalJoinTime(JoinAlgorithm::kHashJoin, 100, 200, 30));
}

TEST(CostModelTest, BufferMetricIsPeakNotSum) {
  const CostModel model(Objective::kTimeAndBuffer);
  const CostVector l = CostVector::TimeBuffer(10, 5000);
  const CostVector r = CostVector::TimeBuffer(10, 300);
  // Hash join build side of 100 rows: local buffer 100 < child peak 5000.
  const CostVector joined =
      model.JoinCost(JoinAlgorithm::kHashJoin, l, r, 100, 200, 30);
  EXPECT_DOUBLE_EQ(joined[1], 5000);
}

TEST(CostModelTest, HashJoinBufferIsBuildSide) {
  const CostModel model(Objective::kTimeAndBuffer);
  const CostVector l = CostVector::TimeBuffer(10, 1);
  const CostVector r = CostVector::TimeBuffer(10, 1);
  const CostVector joined =
      model.JoinCost(JoinAlgorithm::kHashJoin, l, r, 4000, 200, 30);
  EXPECT_DOUBLE_EQ(joined[1], 4000);
}

TEST(CostModelTest, SortMergeBufferIsBothSides) {
  const CostModel model(Objective::kTimeAndBuffer);
  const CostVector l = CostVector::TimeBuffer(10, 1);
  const CostVector r = CostVector::TimeBuffer(10, 1);
  const CostVector joined =
      model.JoinCost(JoinAlgorithm::kSortMergeJoin, l, r, 4000, 600, 30);
  EXPECT_DOUBLE_EQ(joined[1], 4600);
}

TEST(CostModelTest, MonotoneInInputCardinalities) {
  const CostModel model(Objective::kTime);
  for (JoinAlgorithm alg : kJoinAlgorithms) {
    const double base = model.LocalJoinTime(alg, 1000, 1000, 10);
    EXPECT_LT(base, model.LocalJoinTime(alg, 2000, 1000, 10));
    EXPECT_LT(base, model.LocalJoinTime(alg, 1000, 2000, 10));
    EXPECT_LT(base, model.LocalJoinTime(alg, 1000, 1000, 500));
  }
}

TEST(CostModelTest, HashBeatsNestedLoopOnLargeInputs) {
  const CostModel model(Objective::kTime);
  EXPECT_LT(model.LocalJoinTime(JoinAlgorithm::kHashJoin, 1e6, 1e6, 10),
            model.LocalJoinTime(JoinAlgorithm::kBlockNestedLoop, 1e6, 1e6, 10));
}

TEST(CostModelTest, NestedLoopCompetitiveOnTinyOuter) {
  CostModelOptions opts;
  opts.block_size = 100;
  const CostModel model(Objective::kTime, opts);
  // A one-block outer makes BNL a single inner pass.
  EXPECT_LT(
      model.LocalJoinTime(JoinAlgorithm::kBlockNestedLoop, 10, 1000, 10),
      model.LocalJoinTime(JoinAlgorithm::kSortMergeJoin, 10, 1000, 10));
}

TEST(CostModelTest, NumMetricsFollowsObjective) {
  EXPECT_EQ(CostModel(Objective::kTime).num_metrics(), 1);
  EXPECT_EQ(CostModel(Objective::kTimeAndBuffer).num_metrics(), 2);
}

TEST(CostModelTest, AlgorithmNames) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kScan), "Scan");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kBlockNestedLoop), "BNL");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kHashJoin), "HJ");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kSortMergeJoin), "SMJ");
}

}  // namespace
}  // namespace mpqopt
