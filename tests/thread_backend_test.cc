// Copyright 2026 mpqopt authors.

#include "cluster/thread_backend.h"

#include <gtest/gtest.h>

#include <thread>

namespace mpqopt {
namespace {

WorkerTask Echo() {
  return [](const std::vector<uint8_t>& request)
             -> StatusOr<std::vector<uint8_t>> { return request; };
}

TEST(ThreadBackendTest, RunsAllTasksAndReturnsResponses) {
  ThreadBackend exec(NetworkModel{});
  std::vector<WorkerTask> tasks(4, Echo());
  std::vector<std::vector<uint8_t>> requests = {
      {1}, {2, 2}, {3, 3, 3}, {4, 4, 4, 4}};
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().responses.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(round.value().responses[i], requests[i]);
  }
}

TEST(ThreadBackendTest, TrafficCountsBothDirections) {
  ThreadBackend exec(NetworkModel{});
  std::vector<WorkerTask> tasks(2, Echo());
  std::vector<std::vector<uint8_t>> requests = {{1, 2, 3}, {4, 5}};
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().traffic.bytes_sent, 2u * (3 + 2));
  EXPECT_EQ(round.value().traffic.messages, 4u);  // 2 requests + 2 replies
}

TEST(ThreadBackendTest, FirstTaskErrorPropagates) {
  ThreadBackend exec(NetworkModel{}, 1);
  std::vector<WorkerTask> tasks;
  tasks.push_back(Echo());
  tasks.push_back([](const std::vector<uint8_t>&)
                      -> StatusOr<std::vector<uint8_t>> {
    return Status::Internal("worker died");
  });
  std::vector<std::vector<uint8_t>> requests = {{1}, {2}};
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  EXPECT_FALSE(round.ok());
  EXPECT_EQ(round.status().code(), StatusCode::kInternal);
}

TEST(ThreadBackendTest, SimulatedTimeIncludesPerTaskSetup) {
  NetworkModel model;
  model.task_setup_s = 0.5;
  model.latency_s = 0;
  model.bandwidth_bytes_per_s = 1e18;
  ThreadBackend exec(model);
  std::vector<WorkerTask> tasks(8, Echo());
  std::vector<std::vector<uint8_t>> requests(8, std::vector<uint8_t>{1});
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  EXPECT_GE(round.value().simulated_seconds, 8 * 0.5);
  EXPECT_LT(round.value().simulated_seconds, 8 * 0.5 + 1.0);
}

TEST(ThreadBackendTest, SimulatedTimeIsMaxNotSumOfWorkers) {
  NetworkModel model;
  model.task_setup_s = 0;
  model.latency_s = 0;
  ThreadBackend exec(model, 1);
  // Two tasks that each sleep ~30ms: modeled cluster time must reflect
  // the slowest worker, not the serial sum measured on this host.
  const WorkerTask sleeper =
      [](const std::vector<uint8_t>& r) -> StatusOr<std::vector<uint8_t>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return r;
  };
  std::vector<WorkerTask> tasks(2, sleeper);
  std::vector<std::vector<uint8_t>> requests(2, std::vector<uint8_t>{1});
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  const double max_compute = std::max(round.value().compute_seconds[0],
                                      round.value().compute_seconds[1]);
  EXPECT_NEAR(round.value().simulated_seconds, max_compute, 0.02);
}

TEST(ThreadBackendTest, ComputeSecondsMeasuredPerTask) {
  ThreadBackend exec(NetworkModel{}, 1);
  const WorkerTask sleeper =
      [](const std::vector<uint8_t>& r) -> StatusOr<std::vector<uint8_t>> {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return r;
  };
  std::vector<WorkerTask> tasks = {Echo(), sleeper};
  std::vector<std::vector<uint8_t>> requests(2, std::vector<uint8_t>{1});
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  EXPECT_LT(round.value().compute_seconds[0], 0.01);
  EXPECT_GE(round.value().compute_seconds[1], 0.019);
}

TEST(ThreadBackendTest, EmptyRound) {
  ThreadBackend exec(NetworkModel{});
  StatusOr<RoundResult> round = exec.RunRound({}, {});
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().responses.empty());
  EXPECT_EQ(round.value().traffic.bytes_sent, 0u);
}

TEST(NetworkModelTest, TransferTimeFormula) {
  NetworkModel model;
  model.latency_s = 0.001;
  model.bandwidth_bytes_per_s = 1000;
  EXPECT_DOUBLE_EQ(model.TransferTime(500), 0.001 + 0.5);
  EXPECT_DOUBLE_EQ(model.TransferTime(0), 0.001);
}

TEST(TrafficStatsTest, RecordAndMerge) {
  TrafficStats a;
  a.Record(100);
  a.Record(50);
  TrafficStats b;
  b.Record(10);
  a.Merge(b);
  EXPECT_EQ(a.bytes_sent, 160u);
  EXPECT_EQ(a.messages, 3u);
}

}  // namespace
}  // namespace mpqopt
