// Copyright 2026 mpqopt authors.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace mpqopt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.UniformInt(0, 3)];
  for (int c : counts) EXPECT_GT(c, 800);  // each bucket near 1000
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, LogUniformWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.LogUniformInt(10, 100000);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 100000);
  }
}

TEST(RngTest, LogUniformDecadesRoughlyBalanced) {
  // Each decade [10,100), [100,1000), ... should receive a comparable
  // share — the defining property of the Steinbrunn distribution.
  Rng rng(19);
  int decades[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    const int64_t v = rng.LogUniformInt(10, 99999);
    if (v < 100) {
      ++decades[0];
    } else if (v < 1000) {
      ++decades[1];
    } else if (v < 10000) {
      ++decades[2];
    } else {
      ++decades[3];
    }
  }
  for (int d : decades) {
    EXPECT_GT(d, 8000);
    EXPECT_LT(d, 12000);
  }
}

}  // namespace
}  // namespace mpqopt
