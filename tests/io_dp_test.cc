// Copyright 2026 mpqopt authors.

#include "optimizer/io_dp.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "plan/plan_validator.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, JoinGraphShape shape, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

double BestCost(const DpResult& r) {
  return r.arena.node(r.best[0]).cost.time();
}

TEST(IoDpTest, NeverWorseThanOrderBlindDp) {
  // The order-aware plan space is a superset (sorted scans + sort
  // savings), so its optimum cannot be more expensive.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (JoinGraphShape shape :
         {JoinGraphShape::kChain, JoinGraphShape::kStar}) {
      const Query q = RandomQuery(8, shape, seed);
      DpConfig plain;
      plain.space = PlanSpace::kLinear;
      DpConfig io = plain;
      io.interesting_orders = true;
      StatusOr<DpResult> plain_result = OptimizeSerial(q, plain);
      StatusOr<DpResult> io_result = OptimizeSerial(q, io);
      ASSERT_TRUE(plain_result.ok() && io_result.ok());
      EXPECT_LE(BestCost(io_result.value()),
                BestCost(plain_result.value()) * (1 + 1e-12))
          << seed;
    }
  }
}

TEST(IoDpTest, SortSharingBeatsRepeatedSorting) {
  // A chain of joins on the SAME attribute class: once an input is sorted,
  // downstream sort-merge joins must reuse the order. Verify that the
  // order-aware optimum is strictly cheaper than the order-blind one for
  // a workload engineered to reward order reuse (large tables make the
  // n log n sort terms dominate).
  std::vector<TableInfo> tables(5);
  for (auto& t : tables) {
    t.cardinality = 50000;
    t.attribute_domains = {50.0};
  }
  std::vector<JoinPredicate> preds;
  for (int i = 0; i + 1 < 5; ++i) preds.push_back({i, 0, i + 1, 0, 0.02});
  const Query q(std::move(tables), std::move(preds));

  DpConfig plain;
  plain.space = PlanSpace::kBushy;
  DpConfig io = plain;
  io.interesting_orders = true;
  StatusOr<DpResult> plain_result = OptimizeSerial(q, plain);
  StatusOr<DpResult> io_result = OptimizeSerial(q, io);
  ASSERT_TRUE(plain_result.ok() && io_result.ok());
  EXPECT_LT(BestCost(io_result.value()), BestCost(plain_result.value()));
}

TEST(IoDpTest, PlansStructurallyValid) {
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    const Query q = RandomQuery(7, JoinGraphShape::kCycle, 11);
    DpConfig config;
    config.space = space;
    config.interesting_orders = true;
    StatusOr<DpResult> result = OptimizeSerial(q, config);
    ASSERT_TRUE(result.ok());
    const CostModel model(Objective::kTime);
    PlanValidationOptions opts;
    opts.check_costs = false;  // costs are order-dependent
    opts.require_left_deep = space == PlanSpace::kLinear;
    EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                             model, opts)
                    .ok());
  }
}

TEST(IoDpTest, ExactAcrossPartitions) {
  // Partitioning is orthogonal to the order dimension: the min over all
  // partitions of the order-aware DP equals its serial optimum.
  const Query q = RandomQuery(8, JoinGraphShape::kChain, 13);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    DpConfig config;
    config.space = space;
    config.interesting_orders = true;
    StatusOr<DpResult> serial = OptimizeSerial(q, config);
    ASSERT_TRUE(serial.ok());
    const uint64_t m = space == PlanSpace::kLinear ? 8 : 4;
    double best = std::numeric_limits<double>::infinity();
    for (uint64_t part = 0; part < m; ++part) {
      StatusOr<ConstraintSet> c =
          ConstraintSet::FromPartitionId(q.num_tables(), space, part, m);
      ASSERT_TRUE(c.ok());
      StatusOr<DpResult> result = RunPartitionDp(q, c.value(), config);
      ASSERT_TRUE(result.ok());
      best = std::min(best, BestCost(result.value()));
      EXPECT_GE(BestCost(result.value()),
                BestCost(serial.value()) * (1 - 1e-12));
    }
    EXPECT_NEAR(best / BestCost(serial.value()), 1.0, 1e-12)
        << PlanSpaceName(space);
  }
}

TEST(IoDpTest, MpqEndToEndWithInterestingOrders) {
  const Query q = RandomQuery(10, JoinGraphShape::kChain, 17);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.interesting_orders = true;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  for (uint64_t m : {1u, 4u, 32u}) {
    MpqOptions opts;
    opts.space = PlanSpace::kLinear;
    opts.interesting_orders = true;
    opts.num_workers = m;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok()) << "m=" << m;
    EXPECT_NEAR(result.value().arena.node(result.value().best[0]).cost.time() /
                    BestCost(serial.value()),
                1.0, 1e-12)
        << "m=" << m;
  }
}

TEST(IoDpTest, RejectsMultiObjective) {
  const Query q = RandomQuery(4, JoinGraphShape::kStar, 19);
  DpConfig config;
  config.objective = Objective::kTimeAndBuffer;
  config.interesting_orders = true;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(IoDpTest, SingleTableQuery) {
  const Query q = RandomQuery(1, JoinGraphShape::kStar, 23);
  DpConfig config;
  config.interesting_orders = true;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().arena.node(result.value().best[0]).IsScan());
}

TEST(IoDpTest, CrossProductQueryFallsBackGracefully) {
  // No predicates at all: no merge classes, no sorted scans pay off; the
  // order-aware DP must still terminate and match the plain optimum.
  std::vector<TableInfo> tables(5);
  for (auto& t : tables) {
    t.cardinality = 50;
    t.attribute_domains = {10.0};
  }
  const Query q(std::move(tables), {});
  DpConfig plain;
  plain.space = PlanSpace::kBushy;
  DpConfig io = plain;
  io.interesting_orders = true;
  StatusOr<DpResult> a = OptimizeSerial(q, plain);
  StatusOr<DpResult> b = OptimizeSerial(q, io);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(BestCost(a.value()), BestCost(b.value()));
}

TEST(IoDpTest, MemoSizeFollowsPartitioningTheorems) {
  // The order dimension multiplies memo entries but the SET count still
  // shrinks by 3/4 per constraint, as in the order-blind DP.
  const Query q = RandomQuery(10, JoinGraphShape::kChain, 29);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.interesting_orders = true;
  int64_t prev = 0;
  for (uint64_t m : {1u, 4u}) {
    StatusOr<ConstraintSet> c =
        ConstraintSet::FromPartitionId(10, PlanSpace::kLinear, 0, m);
    ASSERT_TRUE(c.ok());
    StatusOr<DpResult> result = RunPartitionDp(q, c.value(), config);
    ASSERT_TRUE(result.ok());
    if (prev > 0) {
      EXPECT_EQ(result.value().stats.admissible_sets, prev * 9 / 16);
    }
    prev = result.value().stats.admissible_sets;
  }
}

}  // namespace
}  // namespace mpqopt
