// Copyright 2026 mpqopt authors.

#include "optimizer/pruning.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace mpqopt {
namespace {

struct Item {
  CostVector cost;
  int id;
};

const CostVector& CostOf(const Item& item) { return item.cost; }

TEST(ParetoInsertTest, InsertsIntoEmptySet) {
  std::vector<Item> set;
  EXPECT_TRUE(ParetoInsert(&set, {CostVector::TimeBuffer(1, 2), 0}, CostOf,
                           1.0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ParetoInsertTest, RejectsDominatedCandidate) {
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::TimeBuffer(1, 1), 0}, CostOf, 1.0);
  EXPECT_FALSE(ParetoInsert(&set, {CostVector::TimeBuffer(2, 2), 1}, CostOf,
                            1.0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ParetoInsertTest, EvictsDominatedIncumbents) {
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::TimeBuffer(5, 1), 0}, CostOf, 1.0);
  ParetoInsert(&set, {CostVector::TimeBuffer(1, 5), 1}, CostOf, 1.0);
  ASSERT_EQ(set.size(), 2u);
  // Dominates both incumbents.
  EXPECT_TRUE(
      ParetoInsert(&set, {CostVector::TimeBuffer(1, 1), 2}, CostOf, 1.0));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].id, 2);
}

TEST(ParetoInsertTest, KeepsIncomparablePlans) {
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::TimeBuffer(1, 10), 0}, CostOf, 1.0);
  ParetoInsert(&set, {CostVector::TimeBuffer(10, 1), 1}, CostOf, 1.0);
  ParetoInsert(&set, {CostVector::TimeBuffer(5, 5), 2}, CostOf, 1.0);
  EXPECT_EQ(set.size(), 3u);
}

TEST(ParetoInsertTest, AlphaRejectsNearDuplicates) {
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::TimeBuffer(10, 10), 0}, CostOf, 2.0);
  // Within factor 2 of the incumbent in both metrics -> rejected.
  EXPECT_FALSE(
      ParetoInsert(&set, {CostVector::TimeBuffer(6, 6), 1}, CostOf, 2.0));
  // Better by more than factor 2 in one metric -> kept.
  EXPECT_TRUE(
      ParetoInsert(&set, {CostVector::TimeBuffer(4, 11), 2}, CostOf, 2.0));
}

TEST(ParetoInsertTest, TiesAreRejected) {
  // Equal cost vectors: the incumbent alpha-dominates the candidate even
  // at alpha = 1, so duplicates never accumulate.
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::TimeBuffer(3, 3), 0}, CostOf, 1.0);
  EXPECT_FALSE(
      ParetoInsert(&set, {CostVector::TimeBuffer(3, 3), 1}, CostOf, 1.0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ParetoInsertTest, SingleMetricBehavesLikeMin) {
  std::vector<Item> set;
  ParetoInsert(&set, {CostVector::Scalar(10), 0}, CostOf, 1.0);
  EXPECT_FALSE(ParetoInsert(&set, {CostVector::Scalar(11), 1}, CostOf, 1.0));
  EXPECT_TRUE(ParetoInsert(&set, {CostVector::Scalar(9), 2}, CostOf, 1.0));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].id, 2);
}

TEST(ParetoInsertTest, ExactFrontierIsMutuallyNonDominated) {
  Rng rng(31);
  std::vector<Item> set;
  for (int i = 0; i < 1000; ++i) {
    const CostVector c = CostVector::TimeBuffer(
        rng.UniformDouble() * 100 + 1, rng.UniformDouble() * 100 + 1);
    ParetoInsert(&set, {c, i}, CostOf, 1.0);
  }
  for (const Item& a : set) {
    for (const Item& b : set) {
      if (a.id == b.id) continue;
      EXPECT_FALSE(a.cost.StrictlyDominates(b.cost));
    }
  }
}

TEST(ParetoInsertTest, FrontierAlphaCoversAllInsertedPoints) {
  // The defining guarantee of the approximate pruning function: every
  // point ever offered is alpha-covered by the final frontier.
  for (double alpha : {1.0, 1.5, 10.0}) {
    Rng rng(37);
    std::vector<Item> set;
    std::vector<CostVector> all;
    for (int i = 0; i < 2000; ++i) {
      const CostVector c = CostVector::TimeBuffer(
          rng.UniformDouble() * 1e4 + 1, rng.UniformDouble() * 1e4 + 1);
      all.push_back(c);
      ParetoInsert(&set, {c, i}, CostOf, alpha);
    }
    std::vector<CostVector> frontier;
    for (const Item& item : set) frontier.push_back(item.cost);
    EXPECT_TRUE(AlphaCovers(frontier, all, alpha)) << "alpha=" << alpha;
  }
}

TEST(ParetoInsertTest, LargerAlphaYieldsSmallerFrontier) {
  Rng rng(41);
  std::vector<CostVector> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(CostVector::TimeBuffer(rng.UniformDouble() * 1e4 + 1,
                                            rng.UniformDouble() * 1e4 + 1));
  }
  size_t previous = SIZE_MAX;
  for (double alpha : {1.0, 1.25, 2.0, 10.0}) {
    std::vector<Item> set;
    int id = 0;
    for (const CostVector& c : points) ParetoInsert(&set, {c, id++}, CostOf, alpha);
    EXPECT_LE(set.size(), previous) << "alpha=" << alpha;
    previous = set.size();
  }
}

TEST(AlphaCoversTest, DetectsUncoveredPoint) {
  const std::vector<CostVector> frontier = {CostVector::TimeBuffer(10, 10)};
  const std::vector<CostVector> reference = {CostVector::TimeBuffer(1, 1)};
  EXPECT_FALSE(AlphaCovers(frontier, reference, 2.0));
  EXPECT_TRUE(AlphaCovers(frontier, reference, 10.0));
}

TEST(AlphaCoversTest, EmptyReferenceAlwaysCovered) {
  EXPECT_TRUE(AlphaCovers({}, {}, 1.0));
}

}  // namespace
}  // namespace mpqopt
