// Copyright 2026 mpqopt authors.
//
// Backend-parameterized wire-contract tests: every ExecutionBackend must
// produce byte-identical worker responses and consistent TrafficStats for
// the same tasks — the property that makes the hosting choice (threads,
// processes, persistent async pool, remote RPC workers) invisible to the
// optimizers. The kRpc parameter self-hosts: the fixture spawns real
// mpqopt_worker subprocesses on loopback, so the same assertions run over
// actual sockets.

#include "cluster/backend.h"

#include <gtest/gtest.h>

#include <thread>

#include "catalog/generator.h"
#include "cluster/async_batch_backend.h"
#include "cluster/task_registry.h"
#include "mpq/mpq.h"
#include "plan/plan_serde.h"
#include "sma/sma.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

/// Echo through the registered entry point, so the task is shippable to a
/// remote worker as well as runnable in-process.
WorkerTask Echo() { return WorkerTask(&EchoTaskMain); }

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kRpc) farm_.Start(2);
  }

  std::shared_ptr<ExecutionBackend> MakeTestBackend(
      NetworkModel model = NetworkModel{}) {
    BackendOptions options;
    options.network = model;
    options.max_threads = 2;
    options.workers_addr = farm_.workers_addr();
    StatusOr<std::shared_ptr<ExecutionBackend>> backend =
        MakeBackend(GetParam(), options);
    MPQOPT_CHECK(backend.ok());
    return std::move(backend).value();
  }

  RpcWorkerFarm farm_;
};

TEST_P(BackendTest, EchoRoundTrip) {
  auto backend = MakeTestBackend();
  EXPECT_STREQ(backend->name(), BackendKindName(GetParam()));
  std::vector<WorkerTask> tasks(3, Echo());
  std::vector<std::vector<uint8_t>> requests = {{1, 2}, {}, {7, 7, 7}};
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round.value().responses.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(round.value().responses[i], requests[i]);
  }
}

TEST_P(BackendTest, ErrorPropagates) {
  auto backend = MakeTestBackend();
  // FailTaskMain fails with the request bytes as the message — a
  // registered entry point, so the error path is exercised remotely too.
  const std::string message = "bad payload";
  StatusOr<RoundResult> round = backend->RunRound(
      {Echo(), WorkerTask(&FailTaskMain)},
      {{1}, std::vector<uint8_t>(message.begin(), message.end())});
  EXPECT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("bad payload"), std::string::npos);
}

TEST_P(BackendTest, EmptyRound) {
  auto backend = MakeTestBackend();
  StatusOr<RoundResult> round = backend->RunRound({}, {});
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().responses.empty());
  EXPECT_EQ(round.value().traffic.bytes_sent, 0u);
  EXPECT_EQ(round.value().traffic.messages, 0u);
}

/// The worker report trailer leads each response with three u64 counters
/// followed by the measured compute seconds (a double at bytes [24, 32)).
/// That one field is genuinely nondeterministic; byte-identity is asserted
/// on everything else.
std::vector<uint8_t> MaskMeasuredSeconds(std::vector<uint8_t> response) {
  for (size_t i = 24; i < 32 && i < response.size(); ++i) response[i] = 0;
  return response;
}

TEST_P(BackendTest, WorkerMainWireContractIsByteIdentical) {
  // MPQ's worker entry point through the backend must return exactly the
  // bytes a direct in-process call produces, for every partition.
  const Query q = MakeQuery(8, 417);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;

  std::vector<std::vector<uint8_t>> requests;
  std::vector<std::vector<uint8_t>> reference;
  for (uint64_t part = 0; part < opts.num_workers; ++part) {
    requests.push_back(MpqOptimizer::BuildRequest(q, part, opts));
    StatusOr<std::vector<uint8_t>> direct =
        MpqOptimizer::WorkerMain(requests.back());
    ASSERT_TRUE(direct.ok());
    reference.push_back(std::move(direct).value());
  }

  auto backend = MakeTestBackend();
  std::vector<WorkerTask> tasks(opts.num_workers,
                                WorkerTask(&MpqOptimizer::WorkerMain));
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  for (uint64_t part = 0; part < opts.num_workers; ++part) {
    EXPECT_EQ(MaskMeasuredSeconds(round.value().responses[part]),
              MaskMeasuredSeconds(reference[part]))
        << "partition " << part << " on " << backend->name();
    // Payload sizes (and hence byte accounting) match exactly.
    ASSERT_EQ(round.value().responses[part].size(), reference[part].size());
  }

  // Traffic accounting must be derivable from the payloads alone:
  // request + response bytes, two messages per worker.
  uint64_t expect_bytes = 0;
  for (uint64_t part = 0; part < opts.num_workers; ++part) {
    expect_bytes += requests[part].size() + reference[part].size();
  }
  EXPECT_EQ(round.value().traffic.bytes_sent, expect_bytes);
  EXPECT_EQ(round.value().traffic.messages, 2 * opts.num_workers);
}

TEST_P(BackendTest, SimulatedTimeIncludesPerTaskSetup) {
  NetworkModel model;
  model.task_setup_s = 0.25;
  model.latency_s = 0;
  model.bandwidth_bytes_per_s = 1e18;
  auto backend = MakeTestBackend(model);
  std::vector<WorkerTask> tasks(4, Echo());
  std::vector<std::vector<uint8_t>> requests(4, std::vector<uint8_t>{1});
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok());
  EXPECT_GE(round.value().simulated_seconds, 4 * 0.25);
  EXPECT_LT(round.value().simulated_seconds, 4 * 0.25 + 1.0);
}

TEST_P(BackendTest, MpqOptimizeMatchesDefaultBackend) {
  const Query q = MakeQuery(9, 418);
  MpqOptions base;
  base.space = PlanSpace::kLinear;
  base.num_workers = 8;
  MpqOptimizer reference(base);
  StatusOr<MpqResult> a = reference.Optimize(q);

  MpqOptions with_backend = base;
  with_backend.backend = MakeTestBackend();
  MpqOptimizer optimizer(with_backend);
  StatusOr<MpqResult> b = optimizer.Optimize(q);

  ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
  EXPECT_DOUBLE_EQ(a.value().arena.node(a.value().best[0]).cost.time(),
                   b.value().arena.node(b.value().best[0]).cost.time());
  EXPECT_EQ(a.value().network_bytes, b.value().network_bytes);
  EXPECT_EQ(a.value().network_messages, b.value().network_messages);
  EXPECT_EQ(a.value().max_worker_memo_sets, b.value().max_worker_memo_sets);
}

TEST_P(BackendTest, ShardedFinalizeMatchesSerialOnEveryBackend) {
  // The master's sharded Phase-3 decode is a host-side knob; over every
  // backend (and both objectives) it must leave the answer untouched:
  // byte-identical serialized plans, identical traffic and memo stats.
  const Query q = MakeQuery(9, 420);
  for (Objective objective : {Objective::kTime, Objective::kTimeAndBuffer}) {
    MpqOptions serial;
    serial.space = PlanSpace::kLinear;
    serial.num_workers = 8;
    serial.objective = objective;
    serial.alpha = 1.2;
    serial.backend = MakeTestBackend();
    serial.finalize_threads = 1;
    MpqOptions sharded = serial;
    sharded.finalize_threads = 4;

    MpqOptimizer serial_optimizer(serial);
    MpqOptimizer sharded_optimizer(sharded);
    StatusOr<MpqResult> a = serial_optimizer.Optimize(q);
    StatusOr<MpqResult> b = sharded_optimizer.Optimize(q);
    ASSERT_TRUE(a.ok() && b.ok()) << a.status().ToString() << " / "
                                  << b.status().ToString();

    ByteWriter plans_a;
    ByteWriter plans_b;
    SerializePlanSet(a.value().arena, a.value().best, &plans_a);
    SerializePlanSet(b.value().arena, b.value().best, &plans_b);
    EXPECT_EQ(plans_a.buffer(), plans_b.buffer());
    EXPECT_EQ(a.value().network_bytes, b.value().network_bytes);
    EXPECT_EQ(a.value().network_messages, b.value().network_messages);
    EXPECT_EQ(a.value().worker_memo_sets, b.value().worker_memo_sets);
    EXPECT_EQ(a.value().total_splits, b.value().total_splits);
    EXPECT_EQ(a.value().total_plans_costed, b.value().total_plans_costed);
  }
}

TEST_P(BackendTest, SmaRunsOnEveryBackend) {
  // SMA's per-level computation runs through the session protocol
  // (cluster/session/), so its per-node memo replicas follow the
  // backend: in-process state for the local kinds, remote replicas in
  // mpqopt_worker processes for rpc — no skip, the result and byte
  // counts must not depend on the hosting choice.
  const Query q = MakeQuery(8, 419);
  SmaOptions base;
  base.space = PlanSpace::kLinear;
  base.num_workers = 3;
  StatusOr<SmaResult> a = SmaOptimize(q, base);

  SmaOptions with_backend = base;
  with_backend.backend = MakeTestBackend();
  StatusOr<SmaResult> b = SmaOptimize(q, with_backend);

  ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
  EXPECT_DOUBLE_EQ(a.value().arena.node(a.value().best[0]).cost.time(),
                   b.value().arena.node(b.value().best[0]).cost.time());
  EXPECT_EQ(a.value().network_bytes, b.value().network_bytes);
  EXPECT_EQ(a.value().network_messages, b.value().network_messages);
  EXPECT_EQ(a.value().rounds, b.value().rounds);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kProcess,
                                           BackendKind::kAsyncBatch,
                                           BackendKind::kRpc),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

TEST(BackendFactoryTest, ParseBackendKind) {
  EXPECT_TRUE(ParseBackendKind("thread").ok());
  EXPECT_TRUE(ParseBackendKind("process").ok());
  EXPECT_TRUE(ParseBackendKind("async").ok());
  EXPECT_TRUE(ParseBackendKind("rpc").ok());
  EXPECT_EQ(ParseBackendKind("async").value(), BackendKind::kAsyncBatch);
  EXPECT_EQ(ParseBackendKind("rpc").value(), BackendKind::kRpc);
  const StatusOr<BackendKind> unknown = ParseBackendKind("spark");
  ASSERT_FALSE(unknown.ok());
  // The error enumerates every valid name.
  for (const char* name : {"thread", "process", "async", "rpc"}) {
    EXPECT_NE(unknown.status().message().find(name), std::string::npos)
        << name;
  }
}

TEST(BackendFactoryTest, RpcWithoutEndpointsIsACleanError) {
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, BackendOptions{});
  ASSERT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
}

TEST(AsyncBatchBackendTest, PersistentPoolSurvivesManyRounds) {
  AsyncBatchBackend backend(NetworkModel{}, 2);
  EXPECT_EQ(backend.pool_size(), 2);
  std::vector<WorkerTask> tasks(4, Echo());
  std::vector<std::vector<uint8_t>> requests(4, std::vector<uint8_t>{5});
  for (int round = 0; round < 100; ++round) {
    StatusOr<RoundResult> r = backend.RunRound(tasks, requests);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().responses.size(), 4u);
    EXPECT_EQ(r.value().responses[3], requests[3]);
  }
}

TEST(AsyncBatchBackendTest, ConcurrentRoundsFromManySubmitters) {
  // Many threads push rounds into the same pool simultaneously; each
  // round's responses must match its own requests (no cross-talk).
  AsyncBatchBackend backend(NetworkModel{}, 3);
  constexpr int kSubmitters = 8;
  constexpr int kRoundsEach = 20;
  std::vector<std::thread> submitters;
  std::vector<int> failures(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&backend, &failures, s]() {
      for (int r = 0; r < kRoundsEach; ++r) {
        std::vector<WorkerTask> tasks(5, Echo());
        std::vector<std::vector<uint8_t>> requests;
        for (int t = 0; t < 5; ++t) {
          requests.push_back({static_cast<uint8_t>(s), static_cast<uint8_t>(r),
                              static_cast<uint8_t>(t)});
        }
        StatusOr<RoundResult> round = backend.RunRound(tasks, requests);
        if (!round.ok() || round.value().responses != requests) {
          ++failures[s];
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(failures[s], 0) << "submitter " << s;
  }
}

TEST(AsyncBatchBackendTest, ErrorInOneRoundDoesNotPoisonOthers) {
  AsyncBatchBackend backend(NetworkModel{}, 2);
  const WorkerTask failing =
      [](const std::vector<uint8_t>&) -> StatusOr<std::vector<uint8_t>> {
    return Status::Internal("boom");
  };
  StatusOr<RoundResult> bad = backend.RunRound({failing}, {{1}});
  EXPECT_FALSE(bad.ok());
  StatusOr<RoundResult> good = backend.RunRound({Echo()}, {{2}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().responses[0], std::vector<uint8_t>{2});
}

}  // namespace
}  // namespace mpqopt
