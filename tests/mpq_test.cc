// Copyright 2026 mpqopt authors.

#include "mpq/mpq.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "optimizer/pruning.h"
#include "plan/plan_serde.h"
#include "plan/plan_validator.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

MpqOptions Options(PlanSpace space, uint64_t workers) {
  MpqOptions opts;
  opts.space = space;
  opts.num_workers = workers;
  return opts;
}

TEST(MpqTest, SingleWorkerEqualsSerialOptimizer) {
  const Query q = RandomQuery(8, 1);
  MpqOptimizer mpq(Options(PlanSpace::kLinear, 1));
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      serial.value().arena.node(serial.value().best[0]).cost.time());
}

TEST(MpqTest, RejectsNonPowerOfTwoWorkers) {
  const Query q = RandomQuery(8, 2);
  MpqOptimizer mpq(Options(PlanSpace::kLinear, 3));
  EXPECT_FALSE(mpq.Optimize(q).ok());
}

TEST(MpqTest, RejectsTooManyWorkers) {
  const Query q = RandomQuery(4, 3);
  // Max workers for 4 tables linear = 2^2 = 4.
  MpqOptimizer ok_case(Options(PlanSpace::kLinear, 4));
  EXPECT_TRUE(ok_case.Optimize(q).ok());
  MpqOptimizer bad_case(Options(PlanSpace::kLinear, 8));
  EXPECT_FALSE(bad_case.Optimize(q).ok());
}

TEST(MpqTest, RejectsInvalidQuery) {
  Query q;
  MpqOptimizer mpq(Options(PlanSpace::kLinear, 1));
  EXPECT_FALSE(mpq.Optimize(q).ok());
}

TEST(MpqTest, WorkerMainRoundTripsOnWire) {
  const Query q = RandomQuery(6, 4);
  const MpqOptions opts = Options(PlanSpace::kLinear, 4);
  const std::vector<uint8_t> request = MpqOptimizer::BuildRequest(q, 2, opts);
  StatusOr<std::vector<uint8_t>> response = MpqOptimizer::WorkerMain(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response.value().size(), 0u);
}

TEST(MpqTest, WorkerMainRejectsGarbage) {
  std::vector<uint8_t> garbage(32, 0xCD);
  EXPECT_FALSE(MpqOptimizer::WorkerMain(garbage).ok());
}

TEST(MpqTest, WorkerMainRejectsTruncatedRequest) {
  const Query q = RandomQuery(6, 5);
  std::vector<uint8_t> request =
      MpqOptimizer::BuildRequest(q, 0, Options(PlanSpace::kLinear, 2));
  request.resize(request.size() / 2);
  EXPECT_FALSE(MpqOptimizer::WorkerMain(request).ok());
}

TEST(MpqTest, NetworkBytesLinearInWorkers) {
  // Theorem 1: O(m * (b_q + b_p)). Doubling m should roughly double the
  // traffic, and traffic must not scale with the memo size.
  const Query q = RandomQuery(12, 6);
  uint64_t bytes_at[3] = {0, 0, 0};
  int i = 0;
  for (uint64_t m : {1u, 2u, 4u}) {
    MpqOptimizer mpq(Options(PlanSpace::kLinear, m));
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok());
    bytes_at[i++] = result.value().network_bytes;
  }
  EXPECT_GT(bytes_at[1], bytes_at[0]);
  EXPECT_GT(bytes_at[2], bytes_at[1]);
  // Within a factor ~2.5 of strict linearity (responses vary slightly).
  EXPECT_LT(bytes_at[2], bytes_at[0] * 10);
  EXPECT_GT(bytes_at[2], bytes_at[0] * 3);
}

TEST(MpqTest, MemoSizeDecreasesWithWorkers) {
  const Query q = RandomQuery(12, 7);
  int64_t prev = 0;
  for (uint64_t m : {1u, 4u, 16u, 64u}) {
    MpqOptimizer mpq(Options(PlanSpace::kLinear, m));
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok());
    const int64_t sets = result.value().max_worker_memo_sets;
    if (prev != 0) {
      // Two extra constraints per 4x workers: (3/4)^2 = 9/16.
      EXPECT_EQ(sets, prev * 9 / 16);
    }
    prev = sets;
  }
}

TEST(MpqTest, AllPartitionsReportEqualMemoSizes) {
  const Query q = RandomQuery(10, 8);
  MpqOptimizer mpq(Options(PlanSpace::kLinear, 16));
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  for (int64_t sets : result.value().worker_memo_sets) {
    EXPECT_EQ(sets, result.value().worker_memo_sets[0]);
  }
}

TEST(MpqTest, ReturnedPlanValidates) {
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    const Query q = RandomQuery(9, 9);
    const uint64_t m = 8;
    MpqOptimizer mpq(Options(space, m));
    StatusOr<MpqResult> result = mpq.Optimize(q);
    ASSERT_TRUE(result.ok());
    const CostModel model(Objective::kTime);
    PlanValidationOptions vopts;
    vopts.require_left_deep = space == PlanSpace::kLinear;
    EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                             model, vopts)
                    .ok());
  }
}

TEST(MpqTest, SimulatedTimeAccountsForSetupOverhead) {
  const Query q = RandomQuery(8, 10);
  MpqOptions opts = Options(PlanSpace::kLinear, 16);
  opts.network.task_setup_s = 0.1;
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().simulated_seconds, 1.6);
}

TEST(MpqTest, MultiObjectiveFrontierMerged) {
  const Query q = RandomQuery(8, 11);
  MpqOptions opts = Options(PlanSpace::kLinear, 4);
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.0;
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.value().best.size(), 1u);
  // Frontier plans are mutually non-dominated after the final prune.
  for (PlanId a : result.value().best) {
    for (PlanId b : result.value().best) {
      if (a == b) continue;
      EXPECT_FALSE(result.value().arena.node(a).cost.StrictlyDominates(
          result.value().arena.node(b).cost));
    }
  }
}

TEST(MpqTest, MultiObjectiveMergeCoversSerialFrontier) {
  const Query q = RandomQuery(8, 12);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 1.0;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  std::vector<CostVector> reference;
  for (PlanId id : serial.value().best) {
    reference.push_back(serial.value().arena.node(id).cost);
  }

  MpqOptions opts = Options(PlanSpace::kLinear, 8);
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.0;
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  std::vector<CostVector> merged;
  for (PlanId id : result.value().best) {
    merged.push_back(result.value().arena.node(id).cost);
  }
  // With alpha = 1 and exact per-partition frontiers, the merged frontier
  // must weakly cover the serial frontier.
  EXPECT_TRUE(AlphaCovers(merged, reference, 1.0 + 1e-12));
}

TEST(MpqTest, BatchedRequestsMatchPerPartitionRequests) {
  // BuildRequests serializes the query and option tail once and splices
  // per-partition buffers; the result must be byte-identical to the
  // legacy one-BuildRequest-per-partition loop, or workers would decode
  // different tasks depending on which master path scattered them.
  const Query q = RandomQuery(10, 21);
  for (Objective objective : {Objective::kTime, Objective::kTimeAndBuffer}) {
    MpqOptions opts = Options(PlanSpace::kBushy, 8);
    opts.objective = objective;
    opts.interesting_orders = (objective == Objective::kTime);
    const std::vector<std::vector<uint8_t>> batched =
        MpqOptimizer::BuildRequests(q, opts);
    ASSERT_EQ(batched.size(), 8u);
    for (uint64_t part = 0; part < 8; ++part) {
      EXPECT_EQ(batched[part], MpqOptimizer::BuildRequest(q, part, opts))
          << "partition " << part;
    }
  }
}

std::vector<uint8_t> SerializedBest(const MpqResult& result) {
  ByteWriter writer;
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

TEST(MpqTest, ShardedFinalizeIsByteIdenticalToSerial) {
  // The sharded Phase-3 parallelizes only the response decode; the
  // final prune still merges partitions in order. Any thread count must
  // therefore produce byte-identical plans and identical statistics —
  // for the single-plan kTime objective and for the order-dependent
  // multi-objective frontier alike.
  const Query q = RandomQuery(9, 22);
  for (Objective objective : {Objective::kTime, Objective::kTimeAndBuffer}) {
    MpqOptions opts = Options(PlanSpace::kLinear, 8);
    opts.objective = objective;
    opts.alpha = 1.2;
    const std::vector<std::vector<uint8_t>> requests =
        MpqOptimizer::BuildRequests(q, opts);
    std::vector<std::vector<uint8_t>> responses;
    for (const std::vector<uint8_t>& request : requests) {
      StatusOr<std::vector<uint8_t>> response =
          MpqOptimizer::WorkerMain(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      responses.push_back(std::move(response).value());
    }

    MpqOptions serial = opts;
    serial.finalize_threads = 1;
    StatusOr<MpqResult> reference =
        MpqOptimizer::FinalizeResponses(responses, serial);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    for (int threads : {2, 4, 8}) {
      MpqOptions sharded = opts;
      sharded.finalize_threads = threads;
      StatusOr<MpqResult> result =
          MpqOptimizer::FinalizeResponses(responses, sharded);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(SerializedBest(result.value()),
                SerializedBest(reference.value()))
          << "threads=" << threads;
      EXPECT_EQ(result.value().total_splits, reference.value().total_splits);
      EXPECT_EQ(result.value().total_plans_costed,
                reference.value().total_plans_costed);
      EXPECT_EQ(result.value().worker_memo_sets,
                reference.value().worker_memo_sets);
      EXPECT_EQ(result.value().max_worker_memo_sets,
                reference.value().max_worker_memo_sets);
    }
  }
}

TEST(MpqTest, FinalizeSurfacesTheFirstBadResponseByPartitionIndex) {
  const Query q = RandomQuery(8, 23);
  MpqOptions opts = Options(PlanSpace::kLinear, 4);
  std::vector<std::vector<uint8_t>> responses;
  for (const std::vector<uint8_t>& request :
       MpqOptimizer::BuildRequests(q, opts)) {
    StatusOr<std::vector<uint8_t>> response =
        MpqOptimizer::WorkerMain(request);
    ASSERT_TRUE(response.ok());
    responses.push_back(std::move(response).value());
  }
  // Corrupt partitions 1 and 3: whatever the decode-thread interleaving,
  // the reported failure must be partition 1 (deterministic errors).
  responses[1] = {0xff, 0xff};
  responses[3] = {0xff};
  for (int threads : {1, 4}) {
    MpqOptions sharded = opts;
    sharded.finalize_threads = threads;
    StatusOr<MpqResult> result =
        MpqOptimizer::FinalizeResponses(responses, sharded);
    ASSERT_FALSE(result.ok());
  }
}

TEST(MpqTest, WorkerSecondsPopulatedPerPartition) {
  const Query q = RandomQuery(10, 13);
  MpqOptimizer mpq(Options(PlanSpace::kLinear, 8));
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().worker_seconds.size(), 8u);
  double max_seen = 0;
  for (double s : result.value().worker_seconds) {
    EXPECT_GE(s, 0);
    max_seen = std::max(max_seen, s);
  }
  EXPECT_DOUBLE_EQ(max_seen, result.value().max_worker_seconds);
}

}  // namespace
}  // namespace mpqopt
