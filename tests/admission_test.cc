// Copyright 2026 mpqopt authors.
//
// The admission subsystem (src/service/admission/): token-bucket
// arithmetic under an injected clock, the pure weighted-fair pick,
// queue-cap shedding and deadline expiry, the controller's
// quota-before-queue order and RAII ticket, and — end to end — the
// coalesced-scatter byte-identity contract: with scatter coalescing on,
// every backend must pick plans byte-identical to the uncoalesced run.
// The concurrent stress cases are TSan targets (this test is in the
// sanitizer matrix's test_regex lists).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "catalog/generator.h"
#include "common/serialize.h"
#include "plan/plan_serde.h"
#include "service/admission/admission_controller.h"
#include "service/admission/admission_queue.h"
#include "service/admission/quota_tracker.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

using Clock = std::chrono::steady_clock;

// ------------------------------------------------------------- quota

/// A hand-cranked clock for deterministic refill arithmetic.
struct FakeClock {
  Clock::time_point now = Clock::time_point() + std::chrono::hours(1);
  std::function<Clock::time_point()> fn() {
    return [this]() { return now; };
  }
  void Advance(std::chrono::milliseconds d) { now += d; }
};

TEST(QuotaTrackerTest, TokenBucketArithmeticUnderInjectedClock) {
  FakeClock clock;
  QuotaTrackerOptions opts;
  opts.clock = clock.fn();
  QuotaTracker quota(opts);
  quota.SetQuota("t", /*rate_per_second=*/2.0, /*burst=*/4);

  // The bucket starts full: exactly `burst` admissions, then rejection.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(quota.TryAcquire("t").ok()) << "admission " << i;
  }
  const Status over = quota.TryAcquire("t");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("'t'"), std::string::npos)
      << over.ToString();

  // 500 ms at 2 tokens/s refills exactly one token — one admission,
  // not two.
  clock.Advance(std::chrono::milliseconds(500));
  EXPECT_TRUE(quota.TryAcquire("t").ok());
  EXPECT_FALSE(quota.TryAcquire("t").ok());

  // A long rest refills to the burst cap, never beyond it.
  clock.Advance(std::chrono::milliseconds(60 * 1000));
  EXPECT_DOUBLE_EQ(quota.TokensForTesting("t"), 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(quota.TryAcquire("t").ok());
  EXPECT_FALSE(quota.TryAcquire("t").ok());
}

TEST(QuotaTrackerTest, DefaultTenantIsUnlimitedByDefault) {
  FakeClock clock;
  QuotaTrackerOptions opts;
  opts.clock = clock.fn();
  QuotaTracker quota(opts);
  // No quota configured anywhere: every tenant admits forever — the
  // pre-admission behavior the default configuration must preserve.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(quota.TryAcquire("").ok());
    ASSERT_TRUE(quota.TryAcquire("anyone").ok());
  }
}

TEST(QuotaTrackerTest, DefaultRateAppliesToUnknownTenants) {
  FakeClock clock;
  QuotaTrackerOptions opts;
  opts.default_rate_per_second = 1.0;
  opts.default_burst = 2;
  opts.clock = clock.fn();
  QuotaTracker quota(opts);
  // Each tenant gets its own bucket at the default quota.
  EXPECT_TRUE(quota.TryAcquire("a").ok());
  EXPECT_TRUE(quota.TryAcquire("a").ok());
  EXPECT_FALSE(quota.TryAcquire("a").ok());
  EXPECT_TRUE(quota.TryAcquire("b").ok());  // b's bucket is untouched
  // An explicit SetQuota overrides the default (and refills the bucket).
  quota.SetQuota("a", /*rate_per_second=*/0, /*burst=*/1);
  EXPECT_TRUE(quota.TryAcquire("a").ok());  // now unlimited
}

// ------------------------------------------------- weighted-fair pick

TEST(AdmissionQueueTest, PickClassIsWeightedFairWithInteractiveTies) {
  const std::array<int, kNumPriorityClasses> weights = {8, 2, 1};
  const std::array<bool, kNumPriorityClasses> all = {true, true, true};
  std::array<uint64_t, kNumPriorityClasses> served = {0, 0, 0};

  // Simulate 22 grants with every class backlogged: each window of 11
  // grants divides 8 / 2 / 1 — the configured shares.
  std::array<int, kNumPriorityClasses> granted = {0, 0, 0};
  for (int i = 0; i < 22; ++i) {
    const int c = AdmissionQueue::PickClass(served, weights, all);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, kNumPriorityClasses);
    ++served[static_cast<size_t>(c)];
    ++granted[static_cast<size_t>(c)];
  }
  EXPECT_EQ(granted[0], 16);  // interactive: 8 of every 11
  EXPECT_EQ(granted[1], 4);   // batch:       2 of every 11
  EXPECT_EQ(granted[2], 2);   // background:  1 of every 11

  // Ties break toward the more interactive class.
  served = {0, 0, 0};
  EXPECT_EQ(AdmissionQueue::PickClass(served, weights, all), 0);
  // Only one class backlogged: it wins regardless of its ratio.
  EXPECT_EQ(AdmissionQueue::PickClass({100, 0, 0}, weights,
                                      {false, false, true}),
            2);
  // Nothing queued anywhere.
  EXPECT_EQ(AdmissionQueue::PickClass(served, weights,
                                      {false, false, false}),
            -1);
}

// --------------------------------------------------- queue semantics

TEST(AdmissionQueueTest, ShedsDeterministicallyAtFullClassQueue) {
  AdmissionQueueOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 0;  // never queue: a busy slot sheds immediately
  AdmissionQueue queue(opts);

  ASSERT_TRUE(queue.Acquire(Priority::kInteractive).ok());
  const Status shed = queue.Acquire(Priority::kInteractive);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  AdmissionQueueStats stats = queue.stats();
  EXPECT_EQ(stats.admitted_immediately, 1u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.running_now, 1u);

  // Shedding is per class: a different class still sheds on ITS queue,
  // and releasing the slot restores immediate admission.
  EXPECT_EQ(queue.Acquire(Priority::kBackground).code(),
            StatusCode::kResourceExhausted);
  queue.Release();
  EXPECT_TRUE(queue.Acquire(Priority::kBackground).ok());
  queue.Release();
  stats = queue.stats();
  EXPECT_EQ(stats.running_now, 0u);
  EXPECT_EQ(stats.admitted_by_class[0], 1u);
  EXPECT_EQ(stats.admitted_by_class[2], 1u);
}

TEST(AdmissionQueueTest, QueuedRequestExpiresWithDeadlineExceeded) {
  AdmissionQueueOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 4;
  opts.queue_timeout_ms = 50;
  AdmissionQueue queue(opts);

  ASSERT_TRUE(queue.Acquire(Priority::kBatch).ok());  // hold the slot
  const Clock::time_point t0 = Clock::now();
  const Status expired = queue.Acquire(Priority::kBatch);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.message().find("batch"), std::string::npos)
      << expired.ToString();
  EXPECT_GE(waited_ms, 45.0);  // it actually waited out the deadline

  AdmissionQueueStats stats = queue.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.queued_now, 0u);  // the expired waiter left the queue

  // The slot was never leaked to the expired waiter.
  queue.Release();
  EXPECT_TRUE(queue.Acquire(Priority::kBatch).ok());
  queue.Release();
}

TEST(AdmissionQueueTest, InteractiveOvertakesEarlierBackgroundInQueue) {
  AdmissionQueueOptions opts;
  opts.max_concurrent = 1;
  AdmissionQueue queue(opts);
  ASSERT_TRUE(queue.Acquire(Priority::kInteractive).ok());  // hold slot

  // Queue a background waiter FIRST, then an interactive one. When the
  // slot frees, weighted-fair picks interactive despite its later
  // arrival (both classes start at served 0; ties prefer interactive).
  std::atomic<int> order{0};
  std::atomic<int> background_rank{-1};
  std::atomic<int> interactive_rank{-1};
  std::thread background([&]() {
    ASSERT_TRUE(queue.Acquire(Priority::kBackground).ok());
    background_rank = order.fetch_add(1);
    queue.Release();
  });
  while (queue.stats().queued_now < 1) std::this_thread::yield();
  std::thread interactive([&]() {
    ASSERT_TRUE(queue.Acquire(Priority::kInteractive).ok());
    interactive_rank = order.fetch_add(1);
    queue.Release();
  });
  while (queue.stats().queued_now < 2) std::this_thread::yield();

  queue.Release();
  background.join();
  interactive.join();
  EXPECT_EQ(interactive_rank.load(), 0);
  EXPECT_EQ(background_rank.load(), 1);
  const AdmissionQueueStats stats = queue.stats();
  EXPECT_EQ(stats.admitted_from_queue, 2u);
  EXPECT_EQ(stats.running_now, 0u);
}

// ----------------------------------------------------- controller

TEST(AdmissionControllerTest, QuotaIsCheckedBeforeTheQueue) {
  FakeClock clock;
  AdmissionOptions opts;
  opts.max_concurrent = 8;  // slots are plentiful; quota must still bite
  opts.clock = clock.fn();
  AdmissionController controller(opts);
  controller.SetQuota("metered", /*rate_per_second=*/1, /*burst=*/1);

  RequestContext ctx;
  ctx.tenant = "metered";
  StatusOr<AdmissionController::Ticket> first = controller.Admit(ctx);
  ASSERT_TRUE(first.ok());
  StatusOr<AdmissionController::Ticket> second = controller.Admit(ctx);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  // The default tenant (2-arg Optimize) is untouched by another
  // tenant's quota.
  EXPECT_TRUE(controller.Admit(RequestContext()).ok());

  const AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.admitted, 2u);
}

TEST(AdmissionControllerTest, TicketReleasesSlotOnDestruction) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 0;
  AdmissionController controller(opts);
  {
    StatusOr<AdmissionController::Ticket> ticket =
        controller.Admit(RequestContext());
    ASSERT_TRUE(ticket.ok());
    // The slot is held: a second request sheds.
    EXPECT_FALSE(controller.Admit(RequestContext()).ok());
    // Moving the ticket moves the slot, not releases it.
    AdmissionController::Ticket moved = std::move(ticket).value();
    EXPECT_FALSE(controller.Admit(RequestContext()).ok());
  }
  // Scope exit destroyed the ticket: the slot is free again.
  EXPECT_TRUE(controller.Admit(RequestContext()).ok());
  EXPECT_EQ(controller.stats().running_now, 0u);
}

/// TSan target: admissions, rejections, and releases from many threads
/// must race cleanly, and the books must balance afterwards.
TEST(AdmissionControllerTest, ConcurrentAdmitStressBalancesTheBooks) {
  AdmissionOptions opts;
  opts.max_concurrent = 4;
  opts.queue_depth = 8;
  opts.queue_timeout_ms = 2000;
  AdmissionController controller(opts);
  controller.SetQuota("metered", /*rate_per_second=*/500, /*burst=*/32);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      RequestContext ctx;
      ctx.tenant = (t % 2 == 0) ? "metered" : "";
      ctx.priority = static_cast<Priority>(t % kNumPriorityClasses);
      for (int i = 0; i < kPerThread; ++i) {
        StatusOr<AdmissionController::Ticket> ticket =
            controller.Admit(ctx);
        if (ticket.ok()) {
          ++ok_count;
          std::this_thread::yield();  // hold the slot across a schedule
        } else {
          ASSERT_TRUE(ticket.status().code() ==
                          StatusCode::kResourceExhausted ||
                      ticket.status().code() ==
                          StatusCode::kDeadlineExceeded)
              << ticket.status().ToString();
          ++rejected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const AdmissionStats stats = controller.stats();
  EXPECT_EQ(ok_count + rejected, uint64_t{kThreads * kPerThread});
  EXPECT_EQ(stats.admitted, ok_count);
  EXPECT_EQ(stats.rejected_quota + stats.rejected_queue + stats.timed_out,
            rejected);
  EXPECT_EQ(stats.admitted_by_class[0] + stats.admitted_by_class[1] +
                stats.admitted_by_class[2],
            ok_count);
  EXPECT_EQ(stats.running_now, 0u);
  EXPECT_EQ(stats.queued_now, 0u);
}

// ------------------------------------- coalesced-scatter byte identity

std::vector<Query> MakeQueries(int count, int tables, uint64_t seed) {
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(gen_opts, seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) queries.push_back(gen.Generate(tables));
  return queries;
}

/// Serialized plan-set bytes of every query through a service on
/// `kind`, with scatter coalescing on or off.
std::vector<std::vector<uint8_t>> PlansOn(BackendKind kind,
                                          const std::string& workers_addr,
                                          bool coalesce,
                                          const std::vector<Query>& queries,
                                          const MpqOptions& opts) {
  ServiceOptions service_opts;
  service_opts.backend_kind = kind;
  service_opts.backend_threads = 2;
  service_opts.workers_addr = workers_addr;
  service_opts.coalesce_scatter = coalesce;
  service_opts.dispatcher_threads = 4;
  OptimizerService service(service_opts);
  std::vector<std::vector<uint8_t>> plans;
  const BatchReport report = service.OptimizeBatch(queries, opts);
  for (const StatusOr<MpqResult>& r : report.results) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return plans;
    ByteWriter writer;
    SerializePlanSet(r.value().arena, r.value().best, &writer);
    plans.push_back(writer.buffer());
  }
  if (kind == BackendKind::kRpc && coalesce) {
    // The coalesced path actually ran: batch envelopes were sent and
    // carried more than one request each on average.
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.scatter_batches, 0u);
    EXPECT_GT(stats.tasks_coalesced, stats.scatter_batches);
  }
  return plans;
}

class CoalesceIdentityTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(CoalesceIdentityTest, CoalescedPlansAreByteIdenticalToUncoalesced) {
  const std::vector<Query> queries = MakeQueries(6, 9, 20260808);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;  // several subtasks per physical worker per round

  RpcWorkerFarm farm;
  std::string workers_addr;
  if (GetParam() == BackendKind::kRpc) {
    farm.Start(2);
    workers_addr = farm.workers_addr();
  }
  const std::vector<std::vector<uint8_t>> off =
      PlansOn(GetParam(), workers_addr, /*coalesce=*/false, queries, opts);
  const std::vector<std::vector<uint8_t>> on =
      PlansOn(GetParam(), workers_addr, /*coalesce=*/true, queries, opts);
  ASSERT_EQ(off.size(), queries.size());
  ASSERT_EQ(on.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "plan bytes diverged for query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CoalesceIdentityTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kProcess,
                                           BackendKind::kAsyncBatch,
                                           BackendKind::kRpc),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

/// TSan target for the per-worker batcher: many dispatchers coalescing
/// into shared per-worker queues concurrently, with admission on top.
TEST(CoalesceIdentityTest, ConcurrentCoalescedRpcUnderAdmission) {
  const std::vector<Query> queries = MakeQueries(8, 8, 42);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;

  RpcWorkerFarm farm;
  farm.Start(2);
  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kRpc;
  service_opts.workers_addr = farm.workers_addr();
  service_opts.coalesce_scatter = true;
  service_opts.dispatcher_threads = 4;
  service_opts.enable_admission = true;
  service_opts.admission.max_concurrent = 3;
  service_opts.admission.queue_depth = 16;
  OptimizerService service(service_opts);

  const BatchReport report = service.OptimizeBatch(queries, opts);
  for (const StatusOr<MpqResult>& r : report.results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.admitted, queries.size());
  EXPECT_GT(stats.scatter_batches, 0u);
  EXPECT_EQ(stats.admission_running_now, 0u);
}

}  // namespace
}  // namespace mpqopt
