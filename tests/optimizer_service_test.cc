// Copyright 2026 mpqopt authors.
//
// OptimizerService correctness: many concurrent queries multiplexed onto
// one shared backend must return exactly the same plans, costs, and byte
// counts as the same queries run one-by-one through MpqOptimizer.

#include "service/optimizer_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "catalog/generator.h"
#include "cluster/async_batch_backend.h"

namespace mpqopt {
namespace {

std::vector<Query> MakeQueries(int count, int tables, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) queries.push_back(gen.Generate(tables));
  return queries;
}

struct Reference {
  double cost;
  uint64_t network_bytes;
  uint64_t network_messages;
};

std::vector<Reference> SequentialReference(const std::vector<Query>& queries,
                                           const MpqOptions& options) {
  std::vector<Reference> refs;
  for (const Query& q : queries) {
    MpqOptimizer optimizer(options);
    StatusOr<MpqResult> r = optimizer.Optimize(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    refs.push_back({r.value().arena.node(r.value().best[0]).cost.time(),
                    r.value().network_bytes, r.value().network_messages});
  }
  return refs;
}

class OptimizerServiceTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(OptimizerServiceTest, ConcurrentBatchMatchesSequentialRuns) {
  const int kQueries = 8;
  const std::vector<Query> queries = MakeQueries(kQueries, 10, 7001);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 16;
  const std::vector<Reference> refs = SequentialReference(queries, opts);

  ServiceOptions service_opts;
  service_opts.backend_kind = GetParam();
  service_opts.backend_threads = 2;
  service_opts.dispatcher_threads = 4;
  OptimizerService service(service_opts);
  const BatchReport report = service.OptimizeBatch(queries, opts);

  ASSERT_EQ(report.results.size(), static_cast<size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(report.results[i].ok())
        << report.results[i].status().ToString();
    const MpqResult& r = report.results[i].value();
    EXPECT_DOUBLE_EQ(r.arena.node(r.best[0]).cost.time(), refs[i].cost)
        << "query " << i;
    EXPECT_EQ(r.network_bytes, refs[i].network_bytes) << "query " << i;
    EXPECT_EQ(r.network_messages, refs[i].network_messages) << "query " << i;
    EXPECT_GE(report.latency_seconds[i], 0.0);
  }
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.queries_per_second, 0.0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_GT(stats.total_simulated_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, OptimizerServiceTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kAsyncBatch),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

TEST(OptimizerServiceTest2, ManyThreadsCallOptimizeDirectly) {
  // Optimize() is the serving entry point: callers bring their own
  // threads and share the backend pool.
  const std::vector<Query> queries = MakeQueries(6, 9, 7002);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;
  const std::vector<Reference> refs = SequentialReference(queries, opts);

  ServiceOptions service_opts;
  service_opts.backend = std::make_shared<AsyncBatchBackend>(NetworkModel{}, 2);
  OptimizerService service(service_opts);
  std::vector<std::thread> callers;
  std::vector<double> costs(queries.size(), 0.0);
  for (size_t i = 0; i < queries.size(); ++i) {
    callers.emplace_back([&, i]() {
      StatusOr<MpqResult> r = service.Optimize(queries[i], opts);
      if (r.ok()) {
        costs[i] = r.value().arena.node(r.value().best[0]).cost.time();
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(costs[i], refs[i].cost) << "query " << i;
  }
  EXPECT_EQ(service.stats().queries_completed, queries.size());
}

TEST(OptimizerServiceTest2, InvalidWorkerCountIsRejectedNotCrashed) {
  const std::vector<Query> queries = MakeQueries(1, 8, 7003);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 3;  // not a power of two
  ServiceOptions service_opts;
  service_opts.backend_threads = 1;
  OptimizerService service(service_opts);
  StatusOr<MpqResult> r = service.Optimize(queries[0], opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  opts.num_workers = 0;
  EXPECT_FALSE(service.Optimize(queries[0], opts).ok());

  // Exceeding the maximal parallelism for the query size is also an
  // InvalidArgument, not a crash in the partition decode.
  opts.num_workers = uint64_t{1} << 20;
  StatusOr<MpqResult> too_many = service.Optimize(queries[0], opts);
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(service.stats().queries_failed, 3u);
  EXPECT_EQ(service.stats().queries_completed, 0u);
}

TEST(OptimizerServiceTest2, StatsSnapshotIsConsistentUnderConcurrency) {
  // stats() must return an internally consistent snapshot while serving
  // threads are mutating the counters: completed + failed never exceeds
  // the number of queries issued so far, and with the plan cache on,
  // hits + misses always equals completed + failed at quiescence.
  const std::vector<Query> queries = MakeQueries(4, 8, 7004);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;

  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kAsyncBatch;
  service_opts.backend_threads = 2;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);

  std::atomic<bool> done{false};
  std::thread snapshotter([&]() {
    while (!done.load(std::memory_order_acquire)) {
      const ServiceStats snap = service.stats();
      EXPECT_LE(snap.cache_hits + snap.cache_misses,
                snap.queries_completed + snap.queries_failed);
      std::this_thread::yield();
    }
  });

  constexpr int kRounds = 3;
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        EXPECT_TRUE(
            service.Optimize(queries[static_cast<size_t>(t)], opts).ok());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, 4u * kRounds);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries_completed);
  // Four distinct fingerprints, each single-flighted to one miss.
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

TEST(OptimizerServiceTest2, EvictionCountersAreSplitByCause) {
  // ServiceStats no longer collapses evictions into one number: the
  // per-cause counters (capacity / TTL / invalidated) must sum to the
  // total and attribute each eviction to what actually triggered it.
  const std::vector<Query> queries = MakeQueries(2, 8, 7006);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;
  ServiceOptions service_opts;
  service_opts.backend_threads = 1;
  service_opts.enable_plan_cache = true;
  service_opts.plan_cache_shards = 1;
  OptimizerService service(service_opts);
  ASSERT_TRUE(service.Optimize(queries[0], opts).ok());
  ASSERT_TRUE(service.Optimize(queries[1], opts).ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_evictions, 0u);

  // A statistics-epoch bump eagerly evicts both entries, attributed to
  // the invalidation cause — not to capacity or TTL.
  service.plan_cache()->BumpStatisticsEpoch();
  stats = service.stats();
  EXPECT_EQ(stats.cache_evictions_invalidated, 2u);
  EXPECT_EQ(stats.cache_evictions_capacity, 0u);
  EXPECT_EQ(stats.cache_evictions_ttl, 0u);
  EXPECT_EQ(stats.cache_evictions, stats.cache_evictions_capacity +
                                       stats.cache_evictions_ttl +
                                       stats.cache_evictions_invalidated);
}

TEST(OptimizerServiceTest2, CacheCountersStayZeroWhenDisabled) {
  const std::vector<Query> queries = MakeQueries(1, 8, 7005);
  MpqOptions opts;
  opts.num_workers = 4;
  ServiceOptions service_opts;
  service_opts.backend_threads = 1;
  OptimizerService service(service_opts);
  EXPECT_EQ(service.plan_cache(), nullptr);
  ASSERT_TRUE(service.Optimize(queries[0], opts).ok());
  ASSERT_TRUE(service.Optimize(queries[0], opts).ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.queries_completed, 2u);
}

TEST(OptimizerServiceTest2, EmptyBatch) {
  ServiceOptions service_opts;
  service_opts.backend_threads = 1;
  OptimizerService service(service_opts);
  const BatchReport report = service.OptimizeBatch({}, MpqOptions{});
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.queries_per_second, 0.0);
}

}  // namespace
}  // namespace mpqopt
